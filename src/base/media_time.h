// Exact rational time. The paper expresses offsets "in terms of media-
// dependent units (such as seconds, frames, bytes, etc.)" (section 5.3.2);
// mixing 25 fps frames with 8 kHz samples and milliseconds must not drift,
// so all document time is carried as a normalized rational number of seconds.
#ifndef SRC_BASE_MEDIA_TIME_H_
#define SRC_BASE_MEDIA_TIME_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "src/base/status.h"

namespace cmif {

// A point in (or span of) time, as an exact rational count of seconds.
// Always normalized: gcd(num, den) == 1, den > 0. Value-semantic, ordered.
class MediaTime {
 public:
  // Zero time.
  constexpr MediaTime() = default;

  // num/den seconds. den must be nonzero; the result is normalized.
  static MediaTime Rational(std::int64_t num, std::int64_t den);

  static MediaTime Seconds(std::int64_t s) { return MediaTime(s, 1); }
  static MediaTime Millis(std::int64_t ms) { return Rational(ms, 1000); }
  static MediaTime Micros(std::int64_t us) { return Rational(us, 1000000); }
  // `frames` at `fps` frames per second (fps > 0).
  static MediaTime Frames(std::int64_t frames, std::int64_t fps) { return Rational(frames, fps); }
  // `samples` at `rate` samples per second (rate > 0).
  static MediaTime Samples(std::int64_t samples, std::int64_t rate) {
    return Rational(samples, rate);
  }
  // `bytes` through a channel of `bytes_per_second` (must be > 0).
  static MediaTime Bytes(std::int64_t bytes, std::int64_t bytes_per_second) {
    return Rational(bytes, bytes_per_second);
  }

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_negative() const { return num_ < 0; }
  bool is_positive() const { return num_ > 0; }

  // Approximate value in seconds, for display and measurement only.
  double ToSecondsF() const { return static_cast<double>(num_) / static_cast<double>(den_); }
  // Rounded (toward nearest) count of whole units, e.g. ToUnits(1000) = ms.
  std::int64_t ToUnits(std::int64_t units_per_second) const;

  // "num/den" or "num" when den == 1 (seconds).
  std::string ToString() const;

  MediaTime operator+(MediaTime other) const;
  MediaTime operator-(MediaTime other) const;
  MediaTime operator-() const { return MediaTime(-num_, den_); }
  MediaTime& operator+=(MediaTime other) { return *this = *this + other; }
  MediaTime& operator-=(MediaTime other) { return *this = *this - other; }

  // Scale by an integer factor (e.g. repeat counts).
  MediaTime operator*(std::int64_t factor) const;
  // Scale by a rational rate, e.g. slow-motion at 1/2 speed divides by 1/2.
  MediaTime MulRational(std::int64_t num, std::int64_t den) const;

  friend bool operator==(MediaTime a, MediaTime b) { return a.num_ == b.num_ && a.den_ == b.den_; }
  friend bool operator!=(MediaTime a, MediaTime b) { return !(a == b); }
  friend bool operator<(MediaTime a, MediaTime b);
  friend bool operator>(MediaTime a, MediaTime b) { return b < a; }
  friend bool operator<=(MediaTime a, MediaTime b) { return !(b < a); }
  friend bool operator>=(MediaTime a, MediaTime b) { return !(a < b); }

 private:
  constexpr MediaTime(std::int64_t num, std::int64_t den) : num_(num), den_(den) {}

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, MediaTime t);

// Parse "N", "N/D", or "X.Y" seconds. Rejects division by zero and garbage.
StatusOr<MediaTime> ParseMediaTime(const std::string& text);

}  // namespace cmif

#endif  // SRC_BASE_MEDIA_TIME_H_
