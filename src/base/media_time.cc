#include "src/base/media_time.h"

#include <cassert>
#include <cstdlib>
#include <numeric>
#include <sstream>

namespace cmif {
namespace {

// Normalize a possibly-large intermediate rational back into int64 range.
MediaTime Normalize(__int128 num, __int128 den) {
  assert(den != 0);
  if (den < 0) {
    num = -num;
    den = -den;
  }
  __int128 a = num < 0 ? -num : num;
  __int128 b = den;
  while (b != 0) {
    __int128 t = a % b;
    a = b;
    b = t;
  }
  if (a > 1) {
    num /= a;
    den /= a;
  }
  assert(num <= INT64_MAX && num >= INT64_MIN && den <= INT64_MAX);
  return MediaTime::Rational(static_cast<std::int64_t>(num), static_cast<std::int64_t>(den));
}

}  // namespace

MediaTime MediaTime::Rational(std::int64_t num, std::int64_t den) {
  assert(den != 0 && "MediaTime denominator must be nonzero");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  std::int64_t g = std::gcd(num < 0 ? -num : num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  return MediaTime(num, den);
}

std::int64_t MediaTime::ToUnits(std::int64_t units_per_second) const {
  __int128 scaled = static_cast<__int128>(num_) * units_per_second;
  __int128 d = den_;
  // Round to nearest, ties away from zero.
  __int128 half = d / 2;
  __int128 q = scaled >= 0 ? (scaled + half) / d : (scaled - half) / d;
  return static_cast<std::int64_t>(q);
}

std::string MediaTime::ToString() const {
  std::ostringstream os;
  os << num_;
  if (den_ != 1) {
    os << '/' << den_;
  }
  return os.str();
}

MediaTime MediaTime::operator+(MediaTime other) const {
  __int128 num =
      static_cast<__int128>(num_) * other.den_ + static_cast<__int128>(other.num_) * den_;
  __int128 den = static_cast<__int128>(den_) * other.den_;
  return Normalize(num, den);
}

MediaTime MediaTime::operator-(MediaTime other) const { return *this + (-other); }

MediaTime MediaTime::operator*(std::int64_t factor) const {
  return Normalize(static_cast<__int128>(num_) * factor, den_);
}

MediaTime MediaTime::MulRational(std::int64_t num, std::int64_t den) const {
  assert(den != 0);
  return Normalize(static_cast<__int128>(num_) * num, static_cast<__int128>(den_) * den);
}

bool operator<(MediaTime a, MediaTime b) {
  return static_cast<__int128>(a.num_) * b.den_ < static_cast<__int128>(b.num_) * a.den_;
}

std::ostream& operator<<(std::ostream& os, MediaTime t) { return os << t.ToString(); }

StatusOr<MediaTime> ParseMediaTime(const std::string& text) {
  if (text.empty()) {
    return InvalidArgumentError("empty time literal");
  }
  std::size_t slash = text.find('/');
  std::size_t dot = text.find('.');
  errno = 0;
  char* end = nullptr;
  if (slash != std::string::npos) {
    std::int64_t num = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + slash || errno != 0) {
      return DataLossError("bad rational numerator in '" + text + "'");
    }
    const char* dstart = text.c_str() + slash + 1;
    std::int64_t den = std::strtoll(dstart, &end, 10);
    if (*end != '\0' || end == dstart || errno != 0 || den == 0) {
      return DataLossError("bad rational denominator in '" + text + "'");
    }
    return MediaTime::Rational(num, den);
  }
  if (dot != std::string::npos) {
    // X.Y decimal seconds, up to 9 fractional digits.
    std::int64_t whole = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + dot || errno != 0) {
      return DataLossError("bad decimal in '" + text + "'");
    }
    std::string frac = text.substr(dot + 1);
    if (frac.empty() || frac.size() > 9 ||
        frac.find_first_not_of("0123456789") != std::string::npos) {
      return DataLossError("bad fractional part in '" + text + "'");
    }
    std::int64_t scale = 1;
    for (std::size_t i = 0; i < frac.size(); ++i) {
      scale *= 10;
    }
    std::int64_t fnum = std::strtoll(frac.c_str(), &end, 10);
    bool negative = text[0] == '-';
    std::int64_t num = whole * scale + (negative ? -fnum : fnum);
    return MediaTime::Rational(num, scale);
  }
  std::int64_t s = std::strtoll(text.c_str(), &end, 10);
  if (*end != '\0' || end == text.c_str() || errno != 0) {
    return DataLossError("bad time literal '" + text + "'");
  }
  return MediaTime::Seconds(s);
}

}  // namespace cmif
