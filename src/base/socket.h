// Thin RAII wrappers over blocking POSIX TCP sockets, the transport under
// the CMIF wire protocol (src/net). Status-based like everything else: no
// exceptions, no errno leaking past this header. IPv4 numeric addresses only
// ("127.0.0.1") — the serving layer binds loopback or an explicit interface
// address; name resolution is a deployment concern, not a library one.
//
// Thread contract: a Socket is used by one thread at a time, except
// ShutdownBoth(), which may be called from another thread to unblock a
// pending read/write (the blocked call returns kUnavailable). ListenSocket
// follows the same pattern: Close() from any thread unblocks Accept().
#ifndef SRC_BASE_SOCKET_H_
#define SRC_BASE_SOCKET_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/status.h"

namespace cmif {

// Outcome of one non-blocking IO attempt (TryRead/TryWrite below). Exactly
// one state applies; `bytes` is meaningful only for kOk.
struct IoResult {
  enum class State {
    kOk,          // transferred `bytes` (> 0)
    kWouldBlock,  // no progress possible now; wait for readiness
    kEof,         // peer closed its write side (reads only)
    kError,       // transport failure; see `error`
  };
  State state = State::kError;
  std::size_t bytes = 0;
  Status error;
};

// One connected TCP stream. Move-only; the destructor closes the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();
  // Half-close both directions without releasing the fd: safe from another
  // thread while this socket is blocked in a read/write, which then fails
  // with kUnavailable. The fd itself is reclaimed by Close()/the destructor,
  // so there is no close/reuse race with the blocked thread.
  void ShutdownBoth();

  // Blocking-IO deadlines (SO_RCVTIMEO / SO_SNDTIMEO); 0 = no timeout.
  Status SetTimeouts(int recv_ms, int send_ms);
  // Disables Nagle coalescing — the wire protocol writes one frame per
  // request/response and latency benches need it on the wire immediately.
  Status SetNoDelay();

  // Reads exactly `n` bytes. Returns false on a clean EOF *before the first
  // byte* (the peer closed between messages); a mid-read EOF, timeout, or
  // socket error is kUnavailable.
  StatusOr<bool> ReadExactOrEof(char* buffer, std::size_t n);
  // ReadExactOrEof with EOF-at-start also an error (kUnavailable).
  Status ReadExact(char* buffer, std::size_t n);

  // Writes all of `bytes` (kUnavailable on any error; SIGPIPE suppressed).
  Status WriteAll(std::string_view bytes);

  // Switches the fd to O_NONBLOCK for use with the epoll reactor; the
  // blocking helpers above must not be used afterwards.
  Status SetNonBlocking();

  // One recv()/send() attempt on a non-blocking socket. Never loops beyond
  // EINTR; partial progress is kOk with the transferred byte count.
  IoResult TryRead(char* buffer, std::size_t n);
  IoResult TryWrite(std::string_view bytes);

 private:
  int fd_ = -1;
};

// A bound, listening TCP socket.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  // Binds `host:port` (port 0 = ephemeral; see port()) and listens.
  Status Listen(const std::string& host, int port, int backlog);

  // The actually bound port (resolves port 0 after Listen).
  int port() const { return port_; }
  bool valid() const { return fd_.load() >= 0; }
  // The raw listener fd, for epoll registration (-1 when not listening).
  int fd() const { return fd_.load(); }

  // Blocks for the next connection. kUnavailable once Close() was called or
  // on a listener error.
  StatusOr<Socket> Accept();

  // Switches the listener to O_NONBLOCK (reactor use).
  Status SetNonBlocking();

  // Non-blocking accept: a socket, nullopt when no connection is pending,
  // kUnavailable once closed.
  StatusOr<std::optional<Socket>> TryAccept();

  // Shuts the listener down (idempotent, any thread): a blocked Accept()
  // and all future ones return kUnavailable. The fd is released by the
  // destructor.
  void Close();

 private:
  std::atomic<int> fd_{-1};
  std::atomic<bool> closed_{false};
  int port_ = 0;
};

// Blocking connect to `host:port`, then applies `io_timeout_ms` to reads and
// writes (0 = none).
StatusOr<Socket> ConnectTcp(const std::string& host, int port, int io_timeout_ms = 0);

}  // namespace cmif

#endif  // SRC_BASE_SOCKET_H_
