#include "src/base/lexer.h"

#include <cctype>

#include "src/base/string_util.h"

namespace cmif {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kWord:
      return "word";
    case TokenKind::kString:
      return "string";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

StatusOr<Token> Lexer::Peek() {
  if (!has_peeked_) {
    CMIF_ASSIGN_OR_RETURN(peeked_, Lex());
    has_peeked_ = true;
  }
  return peeked_;
}

StatusOr<Token> Lexer::Next() {
  if (has_peeked_) {
    has_peeked_ = false;
    return peeked_;
  }
  return Lex();
}

StatusOr<Token> Lexer::Expect(TokenKind kind) {
  CMIF_ASSIGN_OR_RETURN(Token token, Next());
  if (token.kind != kind) {
    return DataLossError(StrFormat("line %d (offset %zu): expected %s, got %s '%s'", token.line,
                                   token.offset, std::string(TokenKindName(kind)).c_str(),
                                   std::string(TokenKindName(token.kind)).c_str(),
                                   token.text.c_str()));
  }
  return token;
}

StatusOr<Token> Lexer::Lex() {
  // Skip whitespace and ';' comments.
  while (pos_ < input_.size()) {
    char c = input_[pos_];
    if (c == '\n') {
      ++line_;
      ++pos_;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == ';') {
      while (pos_ < input_.size() && input_[pos_] != '\n') {
        ++pos_;
      }
    } else {
      break;
    }
  }
  if (pos_ >= input_.size()) {
    return Token{TokenKind::kEnd, "", line_, pos_};
  }
  std::size_t token_offset = pos_;
  char c = input_[pos_];
  if (c == '(') {
    ++pos_;
    return Token{TokenKind::kLParen, "(", line_, token_offset};
  }
  if (c == ')') {
    ++pos_;
    return Token{TokenKind::kRParen, ")", line_, token_offset};
  }
  if (c == '"') {
    ++pos_;
    std::size_t start = pos_;
    while (pos_ < input_.size()) {
      if (input_[pos_] == '\\' && pos_ + 1 < input_.size()) {
        pos_ += 2;
      } else if (input_[pos_] == '"') {
        break;
      } else {
        if (input_[pos_] == '\n') {
          ++line_;
        }
        ++pos_;
      }
    }
    if (pos_ >= input_.size()) {
      return DataLossError(
          StrFormat("line %d (offset %zu): unterminated string", line_, token_offset));
    }
    std::string body = UnescapeString(input_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return Token{TokenKind::kString, std::move(body), line_, token_offset};
  }
  // Bare word: everything up to whitespace, parens, quote or comment.
  std::size_t start = pos_;
  while (pos_ < input_.size()) {
    char w = input_[pos_];
    if (std::isspace(static_cast<unsigned char>(w)) || w == '(' || w == ')' || w == '"' ||
        w == ';') {
      break;
    }
    ++pos_;
  }
  return Token{TokenKind::kWord, std::string(input_.substr(start, pos_ - start)), line_,
               token_offset};
}

}  // namespace cmif
