#include "src/base/varint.h"

#include "src/base/string_util.h"

namespace cmif {

std::size_t PutVarint64(std::string& out, std::uint64_t value) {
  std::size_t appended = 0;
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
    ++appended;
  }
  out.push_back(static_cast<char>(value));
  return appended + 1;
}

StatusOr<std::uint64_t> GetVarint64(std::string_view bytes, std::size_t* pos) {
  std::uint64_t value = 0;
  std::size_t start = *pos;
  for (std::size_t i = 0; i < kMaxVarint64Bytes; ++i) {
    if (start + i >= bytes.size()) {
      return DataLossError(StrFormat("varint truncated at byte offset %zu", start + i));
    }
    std::uint8_t byte = static_cast<std::uint8_t>(bytes[start + i]);
    // The 10th byte may only carry the final high bit of a uint64.
    if (i == kMaxVarint64Bytes - 1 && byte > 1) {
      return DataLossError(StrFormat("varint overflows uint64 at byte offset %zu", start));
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      *pos = start + i + 1;
      return value;
    }
  }
  return DataLossError(StrFormat("varint longer than %zu bytes at byte offset %zu",
                                 kMaxVarint64Bytes, start));
}

}  // namespace cmif
