#include "src/base/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace cmif {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view TrimString(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string QuoteString(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string UnescapeString(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      ++i;
      switch (text[i]) {
        case 'n':
          out.push_back('\n');
          break;
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        default:
          out.push_back('\\');
          out.push_back(text[i]);
      }
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

bool IsValidId(std::string_view text) {
  if (text.empty()) {
    return false;
  }
  char first = text[0];
  if (!std::isalpha(static_cast<unsigned char>(first)) && first != '_') {
    return false;
  }
  for (char c : text.substr(1)) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

namespace {
constexpr char kB64Alphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int B64Value(char c) {
  if (c >= 'A' && c <= 'Z') {
    return c - 'A';
  }
  if (c >= 'a' && c <= 'z') {
    return c - 'a' + 26;
  }
  if (c >= '0' && c <= '9') {
    return c - '0' + 52;
  }
  if (c == '+') {
    return 62;
  }
  if (c == '/') {
    return 63;
  }
  return -1;
}
}  // namespace

std::string Base64Encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= bytes.size()) {
    std::uint32_t v = static_cast<std::uint8_t>(bytes[i]) << 16 |
                      static_cast<std::uint8_t>(bytes[i + 1]) << 8 |
                      static_cast<std::uint8_t>(bytes[i + 2]);
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back(kB64Alphabet[v & 63]);
    i += 3;
  }
  std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[i])) << 16;
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out += "==";
  } else if (rest == 2) {
    std::uint32_t v = static_cast<std::uint8_t>(bytes[i]) << 16 |
                      static_cast<std::uint8_t>(bytes[i + 1]) << 8;
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

StatusOr<std::string> Base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    return DataLossError("base64 length is not a multiple of 4");
  }
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t v = 0;
    for (int j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last two positions of the last group.
        if (i + 4 != text.size() || j < 2) {
          return DataLossError("misplaced base64 padding");
        }
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) {
        return DataLossError("data after base64 padding");
      }
      int value = B64Value(c);
      if (value < 0) {
        return DataLossError(std::string("invalid base64 character '") + c + "'");
      }
      v = v << 6 | static_cast<std::uint32_t>(value);
    }
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    if (pad < 2) {
      out.push_back(static_cast<char>((v >> 8) & 0xff));
    }
    if (pad < 1) {
      out.push_back(static_cast<char>(v & 0xff));
    }
  }
  return out;
}

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t Fnv1a64Combine(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace cmif
