// LEB128 variable-length integers: the length encoding of the CMIF wire
// protocol (src/net/wire.h). Little-endian base-128, low 7 bits per byte,
// high bit = continuation; at most 10 bytes encode any uint64. The encoder
// is canonical (no redundant trailing zero groups); the decoder accepts any
// terminated encoding up to 10 bytes and reports truncation and overlength
// as structured kDataLoss, the same contract as the persist-v2 reader.
#ifndef SRC_BASE_VARINT_H_
#define SRC_BASE_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/status.h"

namespace cmif {

// The longest possible uint64 varint.
inline constexpr std::size_t kMaxVarint64Bytes = 10;

// Appends the canonical encoding of `value` to `out`; returns the number of
// bytes appended (1..10).
std::size_t PutVarint64(std::string& out, std::uint64_t value);

// Decodes one varint starting at `bytes[*pos]` and advances `*pos` past it.
// kDataLoss when the buffer ends mid-varint or the encoding runs past 10
// bytes; `*pos` is left at the start of the bad varint.
StatusOr<std::uint64_t> GetVarint64(std::string_view bytes, std::size_t* pos);

}  // namespace cmif

#endif  // SRC_BASE_VARINT_H_
