// Status and StatusOr: the error-handling vocabulary used across the CMIF
// libraries. No exceptions cross library boundaries; fallible operations
// return Status (or StatusOr<T> when they produce a value).
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cmif {

// Broad error categories. The message carries the detail; the code is what
// callers branch on.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // a named entity does not exist
  kAlreadyExists,     // uniqueness rule violated
  kFailedPrecondition,// operation not valid in the current state
  kOutOfRange,        // index/slice/clip outside the valid range
  kUnimplemented,     // feature intentionally not supported
  kDataLoss,          // parse error or corrupted input
  kResourceExhausted, // capability/resource limit hit
  kInfeasible,        // constraint system has no solution
  kInternal,          // invariant violation inside the library
  kUnavailable,       // transient failure; retrying may succeed
};

// Human-readable name of a status code, e.g. "INVALID_ARGUMENT".
std::string_view StatusCodeName(StatusCode code);

// A success-or-error result. Cheap to copy on success (no allocation).
class Status {
 public:
  // Success.
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors mirroring the StatusCode values.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status DataLossError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InfeasibleError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);

// A value or an error. Exactly one of the two is present.
template <typename T>
class StatusOr {
 public:
  // Error state. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit by design
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }
  // Value state.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate a non-OK Status to the caller.
#define CMIF_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::cmif::Status cmif_status_ = (expr);   \
    if (!cmif_status_.ok()) {               \
      return cmif_status_;                  \
    }                                       \
  } while (0)

// Evaluate a StatusOr expression; on error return the status, otherwise bind
// the value to `lhs`. Usage: CMIF_ASSIGN_OR_RETURN(auto v, Compute());
#define CMIF_ASSIGN_OR_RETURN(lhs, expr)                       \
  CMIF_ASSIGN_OR_RETURN_IMPL_(CMIF_CONCAT_(cmif_sor_, __LINE__), lhs, expr)

#define CMIF_CONCAT_INNER_(a, b) a##b
#define CMIF_CONCAT_(a, b) CMIF_CONCAT_INNER_(a, b)
#define CMIF_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

}  // namespace cmif

#endif  // SRC_BASE_STATUS_H_
