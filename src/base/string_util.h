// Small string helpers shared across the CMIF libraries.
#ifndef SRC_BASE_STRING_UTIL_H_
#define SRC_BASE_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace cmif {

// Split `text` on `sep`; empty fields are preserved ("a//b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view text, char sep);

// Strip leading and trailing ASCII whitespace.
std::string_view TrimString(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Quote a string for the CMIF concrete syntax: wraps in double quotes and
// backslash-escapes '"', '\\', and newlines.
std::string QuoteString(std::string_view text);

// Inverse of QuoteString for the text between the quotes (no surrounding
// quotes expected). Unknown escapes are passed through verbatim.
std::string UnescapeString(std::string_view text);

// True if `text` is a valid CMIF ID: nonempty, [A-Za-z_][A-Za-z0-9_.-]*.
// IDs "contain a character value without embedded spaces" (section 5.2).
bool IsValidId(std::string_view text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

// Join the elements with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

// 64-bit FNV-1a hash: a stable, platform-independent content hash (unlike
// std::hash) for cache keys and deterministic sharding.
std::uint64_t Fnv1a64(std::string_view bytes);
// Mixes `value` into `hash` as if its 8 bytes were appended (little-endian).
std::uint64_t Fnv1a64Combine(std::uint64_t hash, std::uint64_t value);

// Standard base64 (RFC 4648, with padding). Used to embed binary media
// payloads in text catalogs and immediate nodes.
std::string Base64Encode(std::string_view bytes);
// Decodes base64; rejects non-alphabet characters and bad padding.
StatusOr<std::string> Base64Decode(std::string_view text);

}  // namespace cmif

#endif  // SRC_BASE_STRING_UTIL_H_
