// A fixed-size worker pool for the serving layer: dependency-free,
// work-stealing-free (one shared FIFO queue, mutex + condition variable),
// with a minimal Future-style handle for task results. The design goal is
// predictable behaviour under TSan rather than peak queue throughput — the
// serve workload amortizes one dequeue over an entire pipeline run.
#ifndef SRC_BASE_THREAD_POOL_H_
#define SRC_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace cmif {

namespace internal {

// Shared state between a Future and the task that fulfills it.
template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;

  void Set(T v) {
    {
      std::lock_guard<std::mutex> lock(mu);
      value = std::move(v);
    }
    cv.notify_all();
  }
};

}  // namespace internal

// A one-shot handle to a task's result. Take() blocks until the task ran and
// moves the value out; valid() is false for default-constructed handles and
// after Take().
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  // True once the producing task has stored its result.
  bool Ready() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->value.has_value();
  }

  // Blocks until the result is available and moves it out of the handle.
  T Take() {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
    T result = std::move(*state_->value);
    lock.unlock();
    state_.reset();
    return result;
  }

 private:
  template <typename U>
  friend class FuturePromise;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state) : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
class FuturePromise {
 public:
  FuturePromise() : state_(std::make_shared<internal::FutureState<T>>()) {}
  Future<T> GetFuture() { return Future<T>(state_); }
  void Set(T value) { state_->Set(std::move(value)); }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

// Fixed-size thread pool. Tasks run in submission order (FIFO); destruction
// drains the queue before joining the workers.
class ThreadPool {
 public:
  // threads < 1 is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues a fire-and-forget task.
  void Run(std::function<void()> task);

  // Enqueues a task and returns a Future for its (non-void) result.
  template <typename Fn, typename R = std::invoke_result_t<Fn&>>
  Future<R> Submit(Fn fn) {
    static_assert(!std::is_void_v<R>, "Submit requires a value-returning task; use Run for void");
    FuturePromise<R> promise;
    Future<R> future = promise.GetFuture();
    Run([promise, fn = std::move(fn)]() mutable { promise.Set(fn()); });
    return future;
  }

  // Blocks until the queue is empty and every worker is idle. Tasks may keep
  // being submitted concurrently; this returns at some instant where nothing
  // was queued or running.
  void WaitIdle();

  // The hardware concurrency, clamped to at least 1.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;       // workers wait for tasks / stop
  std::condition_variable idle_;       // WaitIdle waits for quiescence
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cmif

#endif  // SRC_BASE_THREAD_POOL_H_
