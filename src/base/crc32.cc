#include "src/base/crc32.h"

#include <array>

namespace cmif {
namespace {

constexpr std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = BuildTable();

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, std::string_view bytes) {
  crc = ~crc;
  for (unsigned char c : bytes) {
    crc = (crc >> 8) ^ kTable[(crc ^ c) & 0xFF];
  }
  return ~crc;
}

std::uint32_t Crc32(std::string_view bytes) { return Crc32Update(0, bytes); }

}  // namespace cmif
