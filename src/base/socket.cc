#include "src/base/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/base/string_util.h"

namespace cmif {
namespace {

Status ErrnoError(const char* what) {
  return UnavailableError(StrFormat("%s: %s", what, std::strerror(errno)));
}

StatusOr<sockaddr_in> MakeAddress(const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    return InvalidArgumentError(StrFormat("port %d out of range", port));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("not a numeric IPv4 address: '" + host + "'");
  }
  return addr;
}

Status SetNonBlockingFd(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoError("fcntl O_NONBLOCK");
  }
  return Status::Ok();
}

Status SetTimeoutOption(int fd, int option, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    return ErrnoError("setsockopt timeout");
  }
  return Status::Ok();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Status Socket::SetTimeouts(int recv_ms, int send_ms) {
  if (!valid()) {
    return FailedPreconditionError("socket not open");
  }
  if (recv_ms > 0) {
    CMIF_RETURN_IF_ERROR(SetTimeoutOption(fd_, SO_RCVTIMEO, recv_ms));
  }
  if (send_ms > 0) {
    CMIF_RETURN_IF_ERROR(SetTimeoutOption(fd_, SO_SNDTIMEO, send_ms));
  }
  return Status::Ok();
}

Status Socket::SetNoDelay() {
  if (!valid()) {
    return FailedPreconditionError("socket not open");
  }
  int on = 1;
  if (setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on)) != 0) {
    return ErrnoError("setsockopt TCP_NODELAY");
  }
  return Status::Ok();
}

StatusOr<bool> Socket::ReadExactOrEof(char* buffer, std::size_t n) {
  if (!valid()) {
    return FailedPreconditionError("socket not open");
  }
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, buffer + got, n - got, 0);
    if (r == 0) {
      if (got == 0) {
        return false;  // clean EOF at a message boundary
      }
      return UnavailableError(
          StrFormat("connection closed mid-read (%zu of %zu bytes)", got, n));
    }
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return UnavailableError("socket read timed out");
      }
      return ErrnoError("recv");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

Status Socket::ReadExact(char* buffer, std::size_t n) {
  CMIF_ASSIGN_OR_RETURN(bool open, ReadExactOrEof(buffer, n));
  if (!open) {
    return UnavailableError("connection closed by peer");
  }
  return Status::Ok();
}

Status Socket::WriteAll(std::string_view bytes) {
  if (!valid()) {
    return FailedPreconditionError("socket not open");
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return UnavailableError("socket write timed out");
      }
      return ErrnoError("send");
    }
    sent += static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

Status Socket::SetNonBlocking() {
  if (!valid()) {
    return FailedPreconditionError("socket not open");
  }
  return SetNonBlockingFd(fd_);
}

IoResult Socket::TryRead(char* buffer, std::size_t n) {
  IoResult result;
  if (!valid()) {
    result.error = FailedPreconditionError("socket not open");
    return result;
  }
  for (;;) {
    ssize_t r = ::recv(fd_, buffer, n, 0);
    if (r > 0) {
      result.state = IoResult::State::kOk;
      result.bytes = static_cast<std::size_t>(r);
      return result;
    }
    if (r == 0) {
      result.state = IoResult::State::kEof;
      return result;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.state = IoResult::State::kWouldBlock;
      return result;
    }
    result.error = ErrnoError("recv");
    return result;
  }
}

IoResult Socket::TryWrite(std::string_view bytes) {
  IoResult result;
  if (!valid()) {
    result.error = FailedPreconditionError("socket not open");
    return result;
  }
  for (;;) {
    ssize_t w = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (w >= 0) {
      result.state = IoResult::State::kOk;
      result.bytes = static_cast<std::size_t>(w);
      return result;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.state = IoResult::State::kWouldBlock;
      return result;
    }
    result.error = ErrnoError("send");
    return result;
  }
}

ListenSocket::~ListenSocket() {
  int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::close(fd);
  }
}

Status ListenSocket::Listen(const std::string& host, int port, int backlog) {
  if (valid()) {
    return FailedPreconditionError("listener already open");
  }
  CMIF_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket");
  }
  int on = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = ErrnoError("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = ErrnoError("listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status status = ErrnoError("getsockname");
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  closed_.store(false);
  fd_.store(fd);
  return Status::Ok();
}

StatusOr<Socket> ListenSocket::Accept() {
  int fd = fd_.load();
  if (fd < 0 || closed_.load()) {
    return UnavailableError("listener closed");
  }
  for (;;) {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      if (closed_.load()) {
        ::close(conn);
        return UnavailableError("listener closed");
      }
      return Socket(conn);
    }
    if (errno == EINTR) {
      continue;
    }
    if (closed_.load()) {
      return UnavailableError("listener closed");
    }
    return ErrnoError("accept");
  }
}

Status ListenSocket::SetNonBlocking() {
  int fd = fd_.load();
  if (fd < 0) {
    return FailedPreconditionError("listener not open");
  }
  return SetNonBlockingFd(fd);
}

StatusOr<std::optional<Socket>> ListenSocket::TryAccept() {
  int fd = fd_.load();
  if (fd < 0 || closed_.load()) {
    return UnavailableError("listener closed");
  }
  for (;;) {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      if (closed_.load()) {
        ::close(conn);
        return UnavailableError("listener closed");
      }
      return std::optional<Socket>(Socket(conn));
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return std::optional<Socket>();
    }
    if (closed_.load()) {
      return UnavailableError("listener closed");
    }
    return ErrnoError("accept");
  }
}

void ListenSocket::Close() {
  bool was_closed = closed_.exchange(true);
  int fd = fd_.load();
  if (!was_closed && fd >= 0) {
    // shutdown() wakes a blocked accept(); the fd stays allocated until the
    // destructor so a racing Accept() never touches a recycled descriptor.
    ::shutdown(fd, SHUT_RDWR);
  }
}

StatusOr<Socket> ConnectTcp(const std::string& host, int port, int io_timeout_ms) {
  CMIF_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = UnavailableError(
        StrFormat("connect %s:%d: %s", host.c_str(), port, std::strerror(errno)));
    ::close(fd);
    return status;
  }
  Socket socket(fd);
  CMIF_RETURN_IF_ERROR(socket.SetTimeouts(io_timeout_ms, io_timeout_ms));
  CMIF_RETURN_IF_ERROR(socket.SetNoDelay());
  return socket;
}

}  // namespace cmif
