// A small tokenizer for the CMIF concrete syntax and the DDBMS catalog
// format: parenthesized lists of bare words and quoted strings, with ';'
// line comments. Words cover IDs, numbers and rational times; the parsers
// interpret them.
#ifndef SRC_BASE_LEXER_H_
#define SRC_BASE_LEXER_H_

#include <string>
#include <string_view>

#include "src/base/status.h"

namespace cmif {

enum class TokenKind {
  kLParen = 0,
  kRParen,
  kWord,    // bare token: identifier, number, or rational
  kString,  // quoted string, already unescaped
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // word contents or unescaped string body
  int line = 1;      // 1-based source line, for error messages
  std::size_t offset = 0;  // byte offset of the token's first character
};

// Tokenizes an in-memory buffer. The buffer must outlive the lexer.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  // The current token without consuming it.
  StatusOr<Token> Peek();
  // Consumes and returns the current token.
  StatusOr<Token> Next();
  // Consumes the current token, which must have `kind`; DataLoss otherwise.
  StatusOr<Token> Expect(TokenKind kind);

  int line() const { return line_; }
  // Byte offset of the next unconsumed character (of the peeked token's
  // first character when one is buffered).
  std::size_t offset() const { return has_peeked_ ? peeked_.offset : pos_; }

  // Bounded lookahead: Save() captures the full lexer position, Restore()
  // rewinds to it (used e.g. to sniff an optional catalog header form).
  struct Checkpoint {
    std::size_t pos = 0;
    int line = 1;
    bool has_peeked = false;
    Token peeked;
  };
  Checkpoint Save() const { return Checkpoint{pos_, line_, has_peeked_, peeked_}; }
  void Restore(const Checkpoint& checkpoint) {
    pos_ = checkpoint.pos;
    line_ = checkpoint.line;
    has_peeked_ = checkpoint.has_peeked;
    peeked_ = checkpoint.peeked;
  }

 private:
  StatusOr<Token> Lex();

  std::string_view input_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool has_peeked_ = false;
  Token peeked_;
};

std::string_view TokenKindName(TokenKind kind);

}  // namespace cmif

#endif  // SRC_BASE_LEXER_H_
