#include "src/base/thread_pool.h"

#include <algorithm>

namespace cmif {

ThreadPool::ThreadPool(int threads) {
  int count = std::max(1, threads);
  workers_.reserve(count);
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      return;  // stop_ set and queue drained
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) {
      idle_.notify_all();
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace cmif
