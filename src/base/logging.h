// Minimal leveled logging. Libraries log sparingly (warnings about dropped
// "may" arcs, filter decisions); tools may raise the verbosity. Output goes
// through a pluggable LogSink so tests and structured exporters can capture
// lines; the default sink writes to stderr.
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cmif {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// One-letter tag for a level: "D", "I", "W", "E".
std::string_view LogLevelTag(LogLevel level);

// Global threshold; messages below it are discarded. Defaults to kWarning.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

// Destination for log lines that pass the threshold. Implementations must be
// thread-safe: Write may be called concurrently.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, const char* file, int line,
                     const std::string& message) = 0;
};

// Replaces the global sink; nullptr restores the default stderr sink.
// Returns the previous sink (nullptr when it was the default). The caller
// keeps ownership and must keep the sink alive while installed.
LogSink* SetLogSink(LogSink* sink);

// Emit one log line (used by the CMIF_LOG macro; callable directly too).
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Test helper: captures every log line that passes the threshold while
// alive, then restores the previously installed sink.
class ScopedLogCapture : public LogSink {
 public:
  struct Line {
    LogLevel level;
    std::string file;  // basename
    int line;
    std::string message;
  };

  ScopedLogCapture() : previous_(SetLogSink(this)) {}
  ~ScopedLogCapture() override { SetLogSink(previous_); }
  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  void Write(LogLevel level, const char* file, int line, const std::string& message) override;

  std::vector<Line> lines() const;
  std::size_t size() const;
  // True if any captured message contains `needle`.
  bool Contains(std::string_view needle) const;

 private:
  LogSink* previous_;
  mutable std::mutex mu_;
  std::vector<Line> lines_;
};

// Internal helper: builds the message with stream syntax, emits on destruction.
class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace cmif

// Usage: CMIF_LOG(kWarning) << "dropped may-arc " << arc;
#define CMIF_LOG(severity) \
  ::cmif::LogCapture(::cmif::LogLevel::severity, __FILE__, __LINE__).stream()

#endif  // SRC_BASE_LOGGING_H_
