// Minimal leveled logging. Libraries log sparingly (warnings about dropped
// "may" arcs, filter decisions); tools may raise the verbosity.
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace cmif {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are discarded. Defaults to kWarning.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

// Emit one log line (used by the CMIF_LOG macro; callable directly too).
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Internal helper: builds the message with stream syntax, emits on destruction.
class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace cmif

// Usage: CMIF_LOG(kWarning) << "dropped may-arc " << arc;
#define CMIF_LOG(severity) \
  ::cmif::LogCapture(::cmif::LogLevel::severity, __FILE__, __LINE__).stream()

#endif  // SRC_BASE_LOGGING_H_
