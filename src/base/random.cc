#include "src/base/random.h"

#include <algorithm>
#include <cmath>

namespace cmif {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::Next() {
  // xoshiro256**
  std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    std::uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) {
  if (p <= 0) {
    return false;
  }
  if (p >= 1) {
    return true;
  }
  return NextDouble() < p;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : skew_(s) {
  cdf_.resize(n == 0 ? 1 : n);
  double total = 0;
  for (std::size_t k = 0; k < cdf_.size(); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& value : cdf_) {
    value /= total;
  }
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace cmif
