// Shared primitives for binary message codecs (src/net/protocol.cc,
// src/net/stream.cc, src/media/block_codec.cc): varint-prefixed strings, bools, fixed 8-byte doubles,
// zigzag-signed integers, and exact rational MediaTime. Every decoder
// returns kDataLoss on truncated or malformed input with the byte offset of
// the failure — the same discipline the frame layer enforces.
#ifndef SRC_BASE_CODEC_UTIL_H_
#define SRC_BASE_CODEC_UTIL_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/media_time.h"
#include "src/base/status.h"
#include "src/base/string_util.h"
#include "src/base/varint.h"

namespace cmif {

inline void PutString(std::string& out, std::string_view value) {
  PutVarint64(out, value.size());
  out.append(value);
}

inline StatusOr<std::string> GetString(std::string_view bytes, std::size_t* pos) {
  CMIF_ASSIGN_OR_RETURN(std::uint64_t length, GetVarint64(bytes, pos));
  if (bytes.size() - *pos < length) {
    return DataLossError(StrFormat("string of %llu bytes truncated at offset %zu",
                                   static_cast<unsigned long long>(length), *pos));
  }
  std::string value(bytes.substr(*pos, length));
  *pos += length;
  return value;
}

inline StatusOr<bool> GetBool(std::string_view bytes, std::size_t* pos) {
  CMIF_ASSIGN_OR_RETURN(std::uint64_t raw, GetVarint64(bytes, pos));
  if (raw > 1) {
    return DataLossError(StrFormat("bool field has value %llu at offset %zu",
                                   static_cast<unsigned long long>(raw), *pos));
  }
  return raw == 1;
}

// Doubles travel as their IEEE-754 bit pattern in fixed 8-byte
// little-endian form — bit-exact across peers, unlike a decimal rendering.
inline void PutF64(std::string& out, double value) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

inline StatusOr<double> GetF64(std::string_view bytes, std::size_t* pos) {
  if (bytes.size() - *pos < 8) {
    return DataLossError(StrFormat("f64 truncated at offset %zu", *pos));
  }
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[*pos + i])) << (8 * i);
  }
  *pos += 8;
  double value = std::bit_cast<double>(bits);
  if (std::isnan(value) || std::isinf(value)) {
    return DataLossError(StrFormat("non-finite f64 at offset %zu", *pos - 8));
  }
  return value;
}

// Signed integers as zigzag varints (small magnitudes stay small either
// sign).
inline void PutZigzag64(std::string& out, std::int64_t value) {
  std::uint64_t raw = static_cast<std::uint64_t>(value);
  PutVarint64(out, (raw << 1) ^ static_cast<std::uint64_t>(value >> 63));
}

inline StatusOr<std::int64_t> GetZigzag64(std::string_view bytes, std::size_t* pos) {
  CMIF_ASSIGN_OR_RETURN(std::uint64_t raw, GetVarint64(bytes, pos));
  return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

// Exact rational time as zigzag numerator + varint denominator; the decoder
// re-normalizes through MediaTime::Rational, so a denormal encoding cannot
// smuggle in a distinct-but-equal value.
inline void PutMediaTime(std::string& out, MediaTime t) {
  PutZigzag64(out, t.num());
  PutVarint64(out, static_cast<std::uint64_t>(t.den()));
}

inline StatusOr<MediaTime> GetMediaTime(std::string_view bytes, std::size_t* pos) {
  CMIF_ASSIGN_OR_RETURN(std::int64_t num, GetZigzag64(bytes, pos));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t den, GetVarint64(bytes, pos));
  if (den == 0 || den > static_cast<std::uint64_t>(INT64_MAX)) {
    return DataLossError(StrFormat("bad media-time denominator %llu at offset %zu",
                                   static_cast<unsigned long long>(den), *pos));
  }
  return MediaTime::Rational(num, static_cast<std::int64_t>(den));
}

inline Status CheckFullyConsumed(std::string_view bytes, std::size_t pos) {
  if (pos != bytes.size()) {
    return DataLossError(
        StrFormat("%zu trailing bytes after message at offset %zu", bytes.size() - pos, pos));
  }
  return Status::Ok();
}

}  // namespace cmif

#endif  // SRC_BASE_CODEC_UTIL_H_
