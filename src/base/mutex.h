// An annotated mutex for clang thread-safety analysis. std::mutex from
// libstdc++ has no capability attributes, so the analysis cannot track it;
// this is the standard fix (same shape as absl::Mutex / LLVM's sys::Mutex):
// a zero-overhead wrapper that *is* a capability, an RAII MutexLock that is
// a scoped capability, and a CondVar that takes the annotated lock. New
// concurrent code (net reactor, request scheduler) uses these; legacy code
// on bare std::mutex keeps working and simply isn't analysed.
#ifndef SRC_BASE_MUTEX_H_
#define SRC_BASE_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/base/thread_annotations.h"

namespace cmif {

class CMIF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CMIF_ACQUIRE() { mu_.lock(); }
  void Unlock() CMIF_RELEASE() { mu_.unlock(); }
  bool TryLock() CMIF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For the rare call site that needs the raw handle (never to lock around
  // the annotations — that defeats the analysis).
  std::mutex& native() { return mu_; }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock; the only intended way to hold a Mutex.
class CMIF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CMIF_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() CMIF_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable over the annotated Mutex. Wait() releases and reacquires
// the lock internally; the analysis models it as requiring the capability
// throughout (which matches how callers must treat guarded state around a
// wait: re-check the predicate after every wakeup).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Pred>
  void Wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <typename Pred>
  bool WaitFor(MutexLock& lock, std::chrono::microseconds timeout, Pred pred) {
    return cv_.wait_for(lock.lock_, timeout, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cmif

#endif  // SRC_BASE_MUTEX_H_
