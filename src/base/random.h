// Deterministic PRNG for workload generation (benches, property tests).
// A fixed algorithm (splitmix64 + xoshiro256**) keeps generated documents
// identical across standard libraries and platforms.
#ifndef SRC_BASE_RANDOM_H_
#define SRC_BASE_RANDOM_H_

#include <cstdint>

namespace cmif {

// Value-semantic deterministic random generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t Next();
  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);
  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);
  // Uniform double in [0, 1).
  double NextDouble();
  // Bernoulli with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

 private:
  std::uint64_t state_[4];
};

}  // namespace cmif

#endif  // SRC_BASE_RANDOM_H_
