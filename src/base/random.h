// Deterministic PRNG for workload generation (benches, property tests).
// A fixed algorithm (splitmix64 + xoshiro256**) keeps generated documents
// identical across standard libraries and platforms.
#ifndef SRC_BASE_RANDOM_H_
#define SRC_BASE_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cmif {

// Value-semantic deterministic random generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t Next();
  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);
  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);
  // Uniform double in [0, 1).
  double NextDouble();
  // Bernoulli with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

 private:
  std::uint64_t state_[4];
};

// Zipf (power-law) distribution over ranks [0, n): rank k is drawn with
// probability proportional to 1/(k+1)^s. s = 0 degenerates to uniform;
// s = 1.0 is the classic web-request popularity curve. The CDF is
// precomputed, so sampling is one Rng draw plus a binary search and the
// sequence is fully determined by the Rng seed.
class ZipfDistribution {
 public:
  // n must be > 0; s must be >= 0.
  ZipfDistribution(std::size_t n, double s);

  std::size_t size() const { return cdf_.size(); }
  double skew() const { return skew_; }

  // Draws a rank in [0, n) using `rng`.
  std::size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
  double skew_ = 0;
};

}  // namespace cmif

#endif  // SRC_BASE_RANDOM_H_
