// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum used
// to protect persisted block payloads against corruption in transit or on
// disk. Dependency-free table-driven implementation; the standard check
// value is Crc32("123456789") == 0xCBF43926.
#ifndef SRC_BASE_CRC32_H_
#define SRC_BASE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace cmif {

// CRC of a whole buffer.
std::uint32_t Crc32(std::string_view bytes);

// Incremental form: feed `bytes` into a running CRC (start from 0).
std::uint32_t Crc32Update(std::uint32_t crc, std::string_view bytes);

}  // namespace cmif

#endif  // SRC_BASE_CRC32_H_
