#include "src/base/logging.h"

#include <cstdio>
#include <cstring>

namespace cmif {
namespace {

LogLevel g_threshold = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold = level; }

LogLevel GetLogThreshold() { return g_threshold; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (level < g_threshold) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line, message.c_str());
}

}  // namespace cmif
