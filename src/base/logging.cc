#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace cmif {
namespace {

LogLevel g_threshold = LogLevel::kWarning;

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

// The default sink: the pre-LogSink stderr behaviour, unchanged.
class StderrLogSink : public LogSink {
 public:
  void Write(LogLevel level, const char* file, int line, const std::string& message) override {
    std::fprintf(stderr, "[%.*s %s:%d] %s\n", static_cast<int>(LogLevelTag(level).size()),
                 LogLevelTag(level).data(), Basename(file), line, message.c_str());
  }
};

LogSink* DefaultSink() {
  static StderrLogSink* const kSink = new StderrLogSink();
  return kSink;
}

std::atomic<LogSink*> g_sink{nullptr};  // nullptr = default stderr sink

}  // namespace

std::string_view LogLevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

void SetLogThreshold(LogLevel level) { g_threshold = level; }

LogLevel GetLogThreshold() { return g_threshold; }

LogSink* SetLogSink(LogSink* sink) {
  LogSink* previous = g_sink.exchange(sink, std::memory_order_acq_rel);
  return previous;
}

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (level < g_threshold) {
    return;
  }
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) {
    sink = DefaultSink();
  }
  sink->Write(level, file, line, message);
}

void ScopedLogCapture::Write(LogLevel level, const char* file, int line,
                             const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(Line{level, Basename(file), line, message});
}

std::vector<ScopedLogCapture::Line> ScopedLogCapture::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

std::size_t ScopedLogCapture::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

bool ScopedLogCapture::Contains(std::string_view needle) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Line& line : lines_) {
    if (line.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace cmif
