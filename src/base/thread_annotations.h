// Clang thread-safety-analysis attribute macros (the Abseil/LLVM pattern).
// libstdc++'s std::mutex carries no capability annotations, so annotating
// members as GUARDED_BY(std::mutex) buys nothing — instead src/base/mutex.h
// wraps std::mutex in an annotated cmif::Mutex and lock sites use the macros
// below. Under any compiler without the attributes (gcc, old clang) every
// macro expands to nothing, so annotated code stays portable; CI builds the
// asan/tsan rows with clang and -Wthread-safety -Werror=thread-safety to
// actually enforce them (CMake option CMIF_THREAD_SAFETY).
#ifndef SRC_BASE_THREAD_ANNOTATIONS_H_
#define SRC_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define CMIF_TSA_HAS(x) __has_attribute(x)
#else
#define CMIF_TSA_HAS(x) 0
#endif

#if CMIF_TSA_HAS(capability)
#define CMIF_TSA(x) __attribute__((x))
#else
#define CMIF_TSA(x)
#endif

// On types: this class is a lockable capability ("mutex" names the kind in
// diagnostics).
#define CMIF_CAPABILITY(x) CMIF_TSA(capability(x))
// On RAII guard types: constructing acquires, destructing releases.
#define CMIF_SCOPED_CAPABILITY CMIF_TSA(scoped_lockable)

// On data members: reads/writes require holding the named capability.
#define CMIF_GUARDED_BY(x) CMIF_TSA(guarded_by(x))
// On pointer/reference members: the pointee is guarded.
#define CMIF_PT_GUARDED_BY(x) CMIF_TSA(pt_guarded_by(x))

// On functions: caller must hold / must not hold the capability.
#define CMIF_REQUIRES(...) CMIF_TSA(requires_capability(__VA_ARGS__))
#define CMIF_REQUIRES_SHARED(...) CMIF_TSA(requires_shared_capability(__VA_ARGS__))
#define CMIF_EXCLUDES(...) CMIF_TSA(locks_excluded(__VA_ARGS__))

// On lock/unlock methods.
#define CMIF_ACQUIRE(...) CMIF_TSA(acquire_capability(__VA_ARGS__))
#define CMIF_ACQUIRE_SHARED(...) CMIF_TSA(acquire_shared_capability(__VA_ARGS__))
#define CMIF_RELEASE(...) CMIF_TSA(release_capability(__VA_ARGS__))
#define CMIF_RELEASE_SHARED(...) CMIF_TSA(release_shared_capability(__VA_ARGS__))
// Releases a capability held in either mode (what a shared_mutex guard's
// destructor does when the mode was chosen at runtime).
#define CMIF_RELEASE_GENERIC(...) CMIF_TSA(release_generic_capability(__VA_ARGS__))
#define CMIF_TRY_ACQUIRE(...) CMIF_TSA(try_acquire_capability(__VA_ARGS__))

// On functions whose locking is deliberately invisible to the analysis
// (e.g. lock stripes chosen by thread id).
#define CMIF_NO_THREAD_SAFETY_ANALYSIS CMIF_TSA(no_thread_safety_analysis)

// On return values: returns a reference to the named capability.
#define CMIF_RETURN_CAPABILITY(x) CMIF_TSA(lock_returned(x))

#endif  // SRC_BASE_THREAD_ANNOTATIONS_H_
