// Raster images: the atomic payload of image/graphic data blocks and the
// frames of video segments. Self-contained RGB8 buffer with PPM/PGM codecs
// and the constraint-filter operations the paper's pipeline performs
// ("24-bit color to 8-bit color, color to monochrome, high-resolution to low
// resolution", section 2), plus the Crop attribute's subimage operation.
#ifndef SRC_MEDIA_RASTER_H_
#define SRC_MEDIA_RASTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace cmif {

// One RGB8 pixel.
struct Pixel {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
  bool operator==(const Pixel& other) const = default;
};

// A width x height RGB8 image, row-major. Value-semantic.
class Raster {
 public:
  Raster() = default;
  // Solid-filled image. width/height must be >= 0.
  Raster(int width, int height, Pixel fill = Pixel{});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }
  std::size_t byte_size() const { return pixels_.size() * sizeof(Pixel); }

  // Unchecked pixel access; (x, y) must be in range.
  Pixel At(int x, int y) const { return pixels_[static_cast<std::size_t>(y) * width_ + x]; }
  void Put(int x, int y, Pixel p) { pixels_[static_cast<std::size_t>(y) * width_ + x] = p; }

  const std::vector<Pixel>& pixels() const { return pixels_; }

  // Fills the axis-aligned rectangle clamped to the image bounds.
  void FillRect(int x, int y, int w, int h, Pixel p);

  // The Crop attribute: the subimage at (x, y) sized w x h. Out-of-bounds
  // rectangles are errors (the validator reports them as conflicts).
  StatusOr<Raster> Crop(int x, int y, int w, int h) const;

  // Constraint filters.
  // Quantizes each channel to `bits` (1..8) significant bits.
  Raster QuantizeColor(int bits) const;
  // Luma-only version of the image (color -> monochrome filter).
  Raster ToMonochrome() const;
  // Box-filter downscale to new_width x new_height (both >= 1 and <= current).
  StatusOr<Raster> Downscale(int new_width, int new_height) const;
  // Nearest-neighbor integer upscale by `factor` (>= 1).
  Raster UpscaleNearest(int factor) const;

  bool operator==(const Raster& other) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Pixel> pixels_;
};

// Binary PPM (P6) encoding of the image.
std::string EncodePpm(const Raster& image);
// Parses a binary PPM (P6); errors are kDataLoss.
StatusOr<Raster> DecodePpm(const std::string& bytes);
// Binary PGM (P5) of the luma channel.
std::string EncodePgm(const Raster& image);

// Synthetic sources (stand-ins for the paper's media capture tools).
// A labeled color-bar test card.
Raster MakeTestCard(int width, int height, std::uint32_t seed);
// A flat background with a contrasting moving box at `phase` in [0,1) — the
// "flying bird" of the paper's introduction, one frame of it.
Raster MakeFlyingBirdFrame(int width, int height, double phase);

}  // namespace cmif

#endif  // SRC_MEDIA_RASTER_H_
