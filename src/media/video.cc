#include "src/media/video.h"

#include "src/base/string_util.h"

namespace cmif {

std::size_t VideoSegment::byte_size() const {
  std::size_t total = 0;
  for (const Raster& f : frames_) {
    total += f.byte_size();
  }
  return total;
}

MediaTime VideoSegment::Duration() const {
  if (fps_ <= 0) {
    return MediaTime();
  }
  return MediaTime::Frames(static_cast<std::int64_t>(frames_.size()), fps_);
}

Status VideoSegment::Append(Raster frame) {
  if (!frames_.empty() &&
      (frame.width() != width() || frame.height() != height())) {
    return InvalidArgumentError(StrFormat("frame size %dx%d differs from segment %dx%d",
                                          frame.width(), frame.height(), width(), height()));
  }
  frames_.push_back(std::move(frame));
  return Status::Ok();
}

StatusOr<VideoSegment> VideoSegment::Slice(std::size_t begin, std::size_t length) const {
  if (begin > frames_.size() || length > frames_.size() - begin) {
    return OutOfRangeError(StrFormat("slice [%zu,+%zu) outside %zu frames", begin, length,
                                     frames_.size()));
  }
  VideoSegment out(fps_);
  for (std::size_t i = 0; i < length; ++i) {
    out.frames_.push_back(frames_[begin + i]);
  }
  return out;
}

StatusOr<VideoSegment> VideoSegment::SubsampleRate(int factor) const {
  if (factor < 1) {
    return InvalidArgumentError("subsample factor must be >= 1");
  }
  if (fps_ % factor != 0) {
    return InvalidArgumentError(StrFormat("factor %d does not divide fps %d", factor, fps_));
  }
  VideoSegment out(fps_ / factor);
  for (std::size_t i = 0; i < frames_.size(); i += static_cast<std::size_t>(factor)) {
    out.frames_.push_back(frames_[i]);
  }
  return out;
}

StatusOr<VideoSegment> VideoSegment::DownscaleFrames(int new_width, int new_height) const {
  VideoSegment out(fps_);
  for (const Raster& f : frames_) {
    CMIF_ASSIGN_OR_RETURN(Raster scaled, f.Downscale(new_width, new_height));
    out.frames_.push_back(std::move(scaled));
  }
  return out;
}

VideoSegment VideoSegment::QuantizeColor(int bits) const {
  VideoSegment out(fps_);
  for (const Raster& f : frames_) {
    out.frames_.push_back(f.QuantizeColor(bits));
  }
  return out;
}

VideoSegment MakeFlyingBirdSegment(int width, int height, int fps, MediaTime duration) {
  VideoSegment out(fps);
  std::int64_t n = duration.ToUnits(fps);
  for (std::int64_t i = 0; i < n; ++i) {
    double phase = n <= 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(n);
    (void)out.Append(MakeFlyingBirdFrame(width, height, phase));
  }
  return out;
}

VideoSegment MakeTalkingHeadSegment(int width, int height, int fps, MediaTime duration,
                                    std::uint64_t seed) {
  VideoSegment out(fps);
  Raster base = MakeTestCard(width, height, static_cast<std::uint32_t>(seed));
  std::int64_t n = duration.ToUnits(fps);
  int mouth_w = std::max(width / 6, 1);
  int mouth_h = std::max(height / 12, 1);
  for (std::int64_t i = 0; i < n; ++i) {
    Raster frame = base;
    // Mouth toggles roughly three times a second, like the speech envelope.
    bool open = (i * 6 / std::max(fps, 1)) % 2 == 0;
    frame.FillRect(width / 2 - mouth_w / 2, height * 2 / 3, mouth_w,
                   open ? mouth_h : mouth_h / 2, Pixel{180, 30, 30});
    (void)out.Append(std::move(frame));
  }
  return out;
}

}  // namespace cmif
