#include "src/media/raster.h"

#include <algorithm>
#include <cmath>

#include "src/base/random.h"
#include "src/base/string_util.h"

namespace cmif {

Raster::Raster(int width, int height, Pixel fill)
    : width_(std::max(width, 0)),
      height_(std::max(height, 0)),
      pixels_(static_cast<std::size_t>(width_) * height_, fill) {}

void Raster::FillRect(int x, int y, int w, int h, Pixel p) {
  int x0 = std::clamp(x, 0, width_);
  int y0 = std::clamp(y, 0, height_);
  int x1 = std::clamp(x + w, 0, width_);
  int y1 = std::clamp(y + h, 0, height_);
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) {
      Put(xx, yy, p);
    }
  }
}

StatusOr<Raster> Raster::Crop(int x, int y, int w, int h) const {
  if (w <= 0 || h <= 0) {
    return InvalidArgumentError(StrFormat("crop size %dx%d must be positive", w, h));
  }
  if (x < 0 || y < 0 || x + w > width_ || y + h > height_) {
    return OutOfRangeError(StrFormat("crop (%d,%d %dx%d) outside image %dx%d", x, y, w, h,
                                     width_, height_));
  }
  Raster out(w, h);
  for (int yy = 0; yy < h; ++yy) {
    for (int xx = 0; xx < w; ++xx) {
      out.Put(xx, yy, At(x + xx, y + yy));
    }
  }
  return out;
}

Raster Raster::QuantizeColor(int bits) const {
  bits = std::clamp(bits, 1, 8);
  int shift = 8 - bits;
  // Requantize and rescale so white stays white.
  auto q = [shift, bits](std::uint8_t v) -> std::uint8_t {
    int level = v >> shift;
    int max_level = (1 << bits) - 1;
    return static_cast<std::uint8_t>(max_level == 0 ? 0 : level * 255 / max_level);
  };
  Raster out = *this;
  for (Pixel& p : out.pixels_) {
    p = Pixel{q(p.r), q(p.g), q(p.b)};
  }
  return out;
}

Raster Raster::ToMonochrome() const {
  Raster out = *this;
  for (Pixel& p : out.pixels_) {
    // BT.601 integer luma.
    std::uint8_t y = static_cast<std::uint8_t>((77 * p.r + 150 * p.g + 29 * p.b) >> 8);
    p = Pixel{y, y, y};
  }
  return out;
}

StatusOr<Raster> Raster::Downscale(int new_width, int new_height) const {
  if (new_width <= 0 || new_height <= 0) {
    return InvalidArgumentError("downscale target must be positive");
  }
  if (new_width > width_ || new_height > height_) {
    return InvalidArgumentError(StrFormat("downscale target %dx%d exceeds source %dx%d",
                                          new_width, new_height, width_, height_));
  }
  Raster out(new_width, new_height);
  for (int y = 0; y < new_height; ++y) {
    int sy0 = y * height_ / new_height;
    int sy1 = std::max((y + 1) * height_ / new_height, sy0 + 1);
    for (int x = 0; x < new_width; ++x) {
      int sx0 = x * width_ / new_width;
      int sx1 = std::max((x + 1) * width_ / new_width, sx0 + 1);
      long r = 0;
      long g = 0;
      long b = 0;
      long n = 0;
      for (int sy = sy0; sy < sy1; ++sy) {
        for (int sx = sx0; sx < sx1; ++sx) {
          Pixel p = At(sx, sy);
          r += p.r;
          g += p.g;
          b += p.b;
          ++n;
        }
      }
      out.Put(x, y,
              Pixel{static_cast<std::uint8_t>(r / n), static_cast<std::uint8_t>(g / n),
                    static_cast<std::uint8_t>(b / n)});
    }
  }
  return out;
}

Raster Raster::UpscaleNearest(int factor) const {
  if (factor <= 1 || empty()) {
    return *this;
  }
  Raster out(width_ * factor, height_ * factor);
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      out.Put(x, y, At(x / factor, y / factor));
    }
  }
  return out;
}

std::string EncodePpm(const Raster& image) {
  std::string out = StrFormat("P6\n%d %d\n255\n", image.width(), image.height());
  out.reserve(out.size() + image.byte_size());
  for (const Pixel& p : image.pixels()) {
    out.push_back(static_cast<char>(p.r));
    out.push_back(static_cast<char>(p.g));
    out.push_back(static_cast<char>(p.b));
  }
  return out;
}

namespace {

// Reads the next whitespace-delimited token, skipping '#' comments.
bool NextPpmToken(const std::string& bytes, std::size_t& pos, std::string& token) {
  while (pos < bytes.size()) {
    char c = bytes[pos];
    if (c == '#') {
      while (pos < bytes.size() && bytes[pos] != '\n') {
        ++pos;
      }
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
    } else {
      break;
    }
  }
  std::size_t start = pos;
  while (pos < bytes.size() && !std::isspace(static_cast<unsigned char>(bytes[pos]))) {
    ++pos;
  }
  token = bytes.substr(start, pos - start);
  return !token.empty();
}

}  // namespace

StatusOr<Raster> DecodePpm(const std::string& bytes) {
  std::size_t pos = 0;
  std::string token;
  if (!NextPpmToken(bytes, pos, token) || token != "P6") {
    return DataLossError("not a binary PPM (missing P6 magic)");
  }
  int fields[3];
  for (int& field : fields) {
    if (!NextPpmToken(bytes, pos, token)) {
      return DataLossError("truncated PPM header");
    }
    char* end = nullptr;
    long v = std::strtol(token.c_str(), &end, 10);
    if (*end != '\0' || v < 0 || v > 1 << 20) {
      return DataLossError("bad PPM header field '" + token + "'");
    }
    field = static_cast<int>(v);
  }
  if (fields[2] != 255) {
    return DataLossError("only maxval 255 PPMs are supported");
  }
  ++pos;  // the single whitespace after maxval
  std::size_t need = static_cast<std::size_t>(fields[0]) * fields[1] * 3;
  if (bytes.size() - pos < need) {
    return DataLossError("truncated PPM pixel data");
  }
  Raster out(fields[0], fields[1]);
  for (int y = 0; y < fields[1]; ++y) {
    for (int x = 0; x < fields[0]; ++x) {
      Pixel p{static_cast<std::uint8_t>(bytes[pos]), static_cast<std::uint8_t>(bytes[pos + 1]),
              static_cast<std::uint8_t>(bytes[pos + 2])};
      pos += 3;
      out.Put(x, y, p);
    }
  }
  return out;
}

std::string EncodePgm(const Raster& image) {
  std::string out = StrFormat("P5\n%d %d\n255\n", image.width(), image.height());
  for (const Pixel& p : image.pixels()) {
    out.push_back(static_cast<char>((77 * p.r + 150 * p.g + 29 * p.b) >> 8));
  }
  return out;
}

Raster MakeTestCard(int width, int height, std::uint32_t seed) {
  static constexpr Pixel kBars[] = {
      {255, 255, 255}, {255, 255, 0}, {0, 255, 255}, {0, 255, 0},
      {255, 0, 255},   {255, 0, 0},   {0, 0, 255},   {16, 16, 16},
  };
  Raster out(width, height);
  Rng rng(seed);
  int rotate = static_cast<int>(rng.NextBelow(8));
  for (int x = 0; x < width; ++x) {
    int bar = (x * 8 / std::max(width, 1) + rotate) % 8;
    for (int y = 0; y < height; ++y) {
      out.Put(x, y, kBars[bar]);
    }
  }
  // A seed-dependent marker block so different cards differ beyond rotation.
  int mx = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(std::max(width / 2, 1))));
  int my = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(std::max(height / 2, 1))));
  out.FillRect(mx, my, std::max(width / 8, 1), std::max(height / 8, 1), Pixel{0, 0, 0});
  return out;
}

Raster MakeFlyingBirdFrame(int width, int height, double phase) {
  Raster out(width, height, Pixel{40, 80, 160});  // sky
  phase -= std::floor(phase);
  int bw = std::max(width / 8, 2);
  int bh = std::max(height / 8, 2);
  int x = static_cast<int>(phase * (width - bw));
  int wob = static_cast<int>(std::sin(phase * 2 * 3.14159265358979) * height / 8);
  int y = height / 2 - bh / 2 + wob;
  out.FillRect(x, y, bw, bh, Pixel{230, 230, 230});  // the bird
  return out;
}

}  // namespace cmif
