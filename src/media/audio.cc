#include "src/media/audio.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/base/random.h"
#include "src/base/string_util.h"

namespace cmif {

AudioBuffer::AudioBuffer(int rate, int channels, std::size_t frames)
    : rate_(rate), channels_(channels), samples_(frames * channels, 0) {}

MediaTime AudioBuffer::Duration() const {
  if (rate_ <= 0) {
    return MediaTime();
  }
  return MediaTime::Samples(static_cast<std::int64_t>(frames()), rate_);
}

StatusOr<AudioBuffer> AudioBuffer::Clip(std::size_t begin, std::size_t length) const {
  if (begin > frames() || length > frames() - begin) {
    return OutOfRangeError(StrFormat("clip [%zu,+%zu) outside %zu frames", begin, length,
                                     frames()));
  }
  AudioBuffer out(rate_, channels_, length);
  std::copy(samples_.begin() + static_cast<std::ptrdiff_t>(begin * channels_),
            samples_.begin() + static_cast<std::ptrdiff_t>((begin + length) * channels_),
            out.samples_.begin());
  return out;
}

StatusOr<AudioBuffer> AudioBuffer::Resample(int new_rate) const {
  if (new_rate <= 0) {
    return InvalidArgumentError("resample rate must be positive");
  }
  if (new_rate == rate_ || empty()) {
    AudioBuffer out = *this;
    out.rate_ = new_rate;
    return out;
  }
  std::size_t new_frames =
      static_cast<std::size_t>(static_cast<std::uint64_t>(frames()) * new_rate / rate_);
  AudioBuffer out(new_rate, channels_, new_frames);
  for (std::size_t f = 0; f < new_frames; ++f) {
    std::size_t src = static_cast<std::size_t>(static_cast<std::uint64_t>(f) * rate_ / new_rate);
    for (int c = 0; c < channels_; ++c) {
      out.SetSample(f, c, Sample(src, c));
    }
  }
  return out;
}

AudioBuffer AudioBuffer::ToMono() const {
  if (channels_ <= 1) {
    return *this;
  }
  AudioBuffer out(rate_, 1, frames());
  for (std::size_t f = 0; f < frames(); ++f) {
    int sum = 0;
    for (int c = 0; c < channels_; ++c) {
      sum += Sample(f, c);
    }
    out.SetSample(f, 0, static_cast<std::int16_t>(sum / channels_));
  }
  return out;
}

double AudioBuffer::RmsLevel() const {
  if (samples_.empty()) {
    return 0;
  }
  double acc = 0;
  for (std::int16_t s : samples_) {
    double v = s / 32768.0;
    acc += v * v;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

namespace {

void PutU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

std::uint32_t GetU32(const std::string& bytes, std::size_t pos) {
  return static_cast<std::uint8_t>(bytes[pos]) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + 1])) << 8 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + 2])) << 16 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + 3])) << 24;
}

std::uint16_t GetU16(const std::string& bytes, std::size_t pos) {
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(bytes[pos]) |
                                    static_cast<std::uint8_t>(bytes[pos + 1]) << 8);
}

}  // namespace

std::string EncodeWav(const AudioBuffer& audio) {
  std::uint32_t data_bytes = static_cast<std::uint32_t>(audio.byte_size());
  std::string out;
  out.reserve(44 + data_bytes);
  out += "RIFF";
  PutU32(out, 36 + data_bytes);
  out += "WAVEfmt ";
  PutU32(out, 16);
  PutU16(out, 1);  // PCM
  PutU16(out, static_cast<std::uint16_t>(audio.channels()));
  PutU32(out, static_cast<std::uint32_t>(audio.rate()));
  std::uint32_t byte_rate = static_cast<std::uint32_t>(audio.rate()) * audio.channels() * 2;
  PutU32(out, byte_rate);
  PutU16(out, static_cast<std::uint16_t>(audio.channels() * 2));  // block align
  PutU16(out, 16);                                                // bits per sample
  out += "data";
  PutU32(out, data_bytes);
  for (std::int16_t s : audio.samples()) {
    PutU16(out, static_cast<std::uint16_t>(s));
  }
  return out;
}

StatusOr<AudioBuffer> DecodeWav(const std::string& bytes) {
  if (bytes.size() < 44 || bytes.compare(0, 4, "RIFF") != 0 ||
      bytes.compare(8, 4, "WAVE") != 0) {
    return DataLossError("not a RIFF/WAVE file");
  }
  std::size_t pos = 12;
  int channels = 0;
  int rate = 0;
  int bits = 0;
  std::size_t data_pos = 0;
  std::size_t data_len = 0;
  while (pos + 8 <= bytes.size()) {
    std::string id = bytes.substr(pos, 4);
    std::uint32_t len = GetU32(bytes, pos + 4);
    pos += 8;
    if (pos + len > bytes.size()) {
      return DataLossError("truncated WAV chunk '" + id + "'");
    }
    if (id == "fmt ") {
      if (len < 16) {
        return DataLossError("short fmt chunk");
      }
      if (GetU16(bytes, pos) != 1) {
        return DataLossError("only PCM WAV is supported");
      }
      channels = GetU16(bytes, pos + 2);
      rate = static_cast<int>(GetU32(bytes, pos + 4));
      bits = GetU16(bytes, pos + 14);
    } else if (id == "data") {
      data_pos = pos;
      data_len = len;
    }
    pos += len + (len & 1);  // chunks are word-aligned
  }
  if (rate <= 0 || channels <= 0 || channels > 2 || bits != 16) {
    return DataLossError("unsupported WAV format (need PCM16, 1-2 channels)");
  }
  if (data_pos == 0) {
    return DataLossError("WAV has no data chunk");
  }
  std::size_t total_samples = data_len / 2;
  AudioBuffer out(rate, channels, total_samples / static_cast<std::size_t>(channels));
  for (std::size_t i = 0; i < total_samples; ++i) {
    std::int16_t s = static_cast<std::int16_t>(GetU16(bytes, data_pos + i * 2));
    out.SetSample(i / static_cast<std::size_t>(channels),
                  static_cast<int>(i % static_cast<std::size_t>(channels)), s);
  }
  return out;
}

AudioBuffer MakeTone(int rate, MediaTime duration, double hz, double amplitude) {
  std::size_t frames = static_cast<std::size_t>(std::max<std::int64_t>(duration.ToUnits(rate), 0));
  AudioBuffer out(rate, 1, frames);
  amplitude = std::clamp(amplitude, 0.0, 1.0);
  for (std::size_t f = 0; f < frames; ++f) {
    double t = static_cast<double>(f) / rate;
    double v = std::sin(2 * 3.14159265358979 * hz * t) * amplitude;
    out.SetSample(f, 0, static_cast<std::int16_t>(v * 32767));
  }
  return out;
}

AudioBuffer MakeSpeechLike(int rate, MediaTime duration, std::uint64_t seed) {
  std::size_t frames = static_cast<std::size_t>(std::max<std::int64_t>(duration.ToUnits(rate), 0));
  AudioBuffer out(rate, 1, frames);
  Rng rng(seed);
  double lp = 0;           // one-pole low-pass state (band-limits the noise)
  double syllable_hz = 3;  // ~3 syllables per second
  for (std::size_t f = 0; f < frames; ++f) {
    double t = static_cast<double>(f) / rate;
    double noise = rng.NextDouble() * 2 - 1;
    lp += 0.12 * (noise - lp);
    double envelope = 0.55 + 0.45 * std::sin(2 * 3.14159265358979 * syllable_hz * t);
    double v = lp * envelope * 0.8;
    out.SetSample(f, 0, static_cast<std::int16_t>(std::clamp(v, -1.0, 1.0) * 32767));
  }
  return out;
}

}  // namespace cmif
