// Media taxonomy. The paper's example channels carry video, audio, graphic
// (still image), caption text and label text; channels declare exactly one
// medium ("each channel definition defines the medium used by that channel",
// Figure 7).
#ifndef SRC_MEDIA_MEDIA_TYPE_H_
#define SRC_MEDIA_MEDIA_TYPE_H_

#include <string>
#include <string_view>

#include "src/base/status.h"

namespace cmif {

// The media a data block / channel can carry.
enum class MediaType {
  kText = 0,   // formatted text (captions, labels)
  kAudio,      // PCM sound
  kVideo,      // frame sequences
  kImage,      // still raster graphics
  kGraphic,    // structured graphics (rendered to rasters in this library)
};

// Canonical lowercase name, e.g. "audio".
std::string_view MediaTypeName(MediaType type);

// Parse a canonical name; error on unknown names.
StatusOr<MediaType> ParseMediaType(std::string_view name);

// The natural unit in which offsets on this medium are expressed
// (section 5.3.2: "seconds, frames, bytes, etc.").
enum class MediaUnit {
  kSeconds = 0,
  kFrames,
  kSamples,
  kBytes,
  kCharacters,
};

std::string_view MediaUnitName(MediaUnit unit);
StatusOr<MediaUnit> ParseMediaUnit(std::string_view name);

// The default unit used by each medium.
MediaUnit DefaultUnitFor(MediaType type);

}  // namespace cmif

#endif  // SRC_MEDIA_MEDIA_TYPE_H_
