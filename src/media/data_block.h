// Data blocks: "the basic atomic element of single-media data" (section 3.1).
// "Examples may be sound clips, video segments, text blocks, graphics images
// ... They may also be programs that produce information of a particular
// type." The fundamental property is atomicity: a block is never further
// decomposed or sub-scheduled by CMIF.
#ifndef SRC_MEDIA_DATA_BLOCK_H_
#define SRC_MEDIA_DATA_BLOCK_H_

#include <functional>
#include <string>
#include <variant>

#include "src/base/media_time.h"
#include "src/base/status.h"
#include "src/media/audio.h"
#include "src/media/media_type.h"
#include "src/media/raster.h"
#include "src/media/text.h"
#include "src/media/video.h"

namespace cmif {

class DataBlock;

// A "program that produces information of a particular type": the generator
// is invoked to materialize the block's payload on demand (e.g. a graphics
// program rendering a 3-D image, per the paper's example).
struct GeneratorSpec {
  // Registered generator name, e.g. "flying_bird".
  std::string generator;
  // Free-form parameter string interpreted by the generator.
  std::string params;
  // Declared duration and approximate size, available without running it.
  MediaTime duration;
  std::size_t approx_bytes = 0;
  bool operator==(const GeneratorSpec& other) const = default;
};

// An atomic single-media payload.
class DataBlock {
 public:
  DataBlock() = default;

  static DataBlock FromText(TextBlock text);
  static DataBlock FromAudio(AudioBuffer audio);
  static DataBlock FromVideo(VideoSegment video);
  // `medium` distinguishes kImage from kGraphic (both raster payloads).
  static DataBlock FromImage(Raster image, MediaType medium = MediaType::kImage);
  static DataBlock FromGenerator(MediaType medium, GeneratorSpec spec);

  MediaType medium() const { return medium_; }
  bool is_generator() const { return std::holds_alternative<GeneratorSpec>(payload_); }

  // Payload accessors; the caller must have checked the medium (or use the
  // typed Status variants below).
  const TextBlock& text() const { return std::get<TextBlock>(payload_); }
  const AudioBuffer& audio() const { return std::get<AudioBuffer>(payload_); }
  const VideoSegment& video() const { return std::get<VideoSegment>(payload_); }
  const Raster& image() const { return std::get<Raster>(payload_); }
  const GeneratorSpec& generator() const { return std::get<GeneratorSpec>(payload_); }

  StatusOr<TextBlock> AsText() const;
  StatusOr<AudioBuffer> AsAudio() const;
  StatusOr<VideoSegment> AsVideo() const;
  StatusOr<Raster> AsImage() const;

  // Intrinsic presentation length: exact for audio/video, reading time for
  // text, zero for stills (their event supplies the duration), declared for
  // generators.
  MediaTime IntrinsicDuration() const;

  // Approximate in-memory payload size; the "often massive amounts of
  // media-based data" the attribute layer lets tools avoid touching.
  std::size_t ByteSize() const;

  bool operator==(const DataBlock& other) const = default;

 private:
  MediaType medium_ = MediaType::kText;
  std::variant<TextBlock, AudioBuffer, VideoSegment, Raster, GeneratorSpec> payload_;
};

// Registry of named generator programs. Thread-compatible (register at
// startup, run from anywhere afterwards).
class GeneratorRegistry {
 public:
  using GeneratorFn = std::function<StatusOr<DataBlock>(const GeneratorSpec&)>;

  // The process-wide registry, pre-populated with the built-in synthetic
  // generators ("flying_bird", "talking_head", "test_card", "tone",
  // "speech"). Parameter string format: "key=value,key=value".
  static GeneratorRegistry& Global();

  Status Register(std::string name, GeneratorFn fn);
  // Materializes a generator block's payload. NotFound for unknown names.
  StatusOr<DataBlock> Run(const GeneratorSpec& spec) const;

 private:
  std::vector<std::pair<std::string, GeneratorFn>> generators_;
};

}  // namespace cmif

#endif  // SRC_MEDIA_DATA_BLOCK_H_
