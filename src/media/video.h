// Video segments: frame sequences at a fixed rate. Provides the Slice
// attribute's subsequence operation and the constraint filter's "full-frame-
// rate video to sub-sampled rate video" reduction (section 2).
#ifndef SRC_MEDIA_VIDEO_H_
#define SRC_MEDIA_VIDEO_H_

#include <cstdint>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"
#include "src/media/raster.h"

namespace cmif {

// A sequence of equally-sized frames at `fps` frames per second.
class VideoSegment {
 public:
  VideoSegment() = default;
  explicit VideoSegment(int fps) : fps_(fps) {}

  int fps() const { return fps_; }
  std::size_t frame_count() const { return frames_.size(); }
  bool empty() const { return frames_.empty(); }
  int width() const { return frames_.empty() ? 0 : frames_[0].width(); }
  int height() const { return frames_.empty() ? 0 : frames_[0].height(); }
  std::size_t byte_size() const;

  // Exact duration: frame_count / fps seconds.
  MediaTime Duration() const;

  const Raster& Frame(std::size_t index) const { return frames_[index]; }
  const std::vector<Raster>& frames() const { return frames_; }

  // Appends a frame; error if its size differs from existing frames.
  Status Append(Raster frame);

  // The Slice attribute: frames [begin, begin + length).
  StatusOr<VideoSegment> Slice(std::size_t begin, std::size_t length) const;

  // Constraint filters.
  // Keep every `factor`-th frame; the rate divides accordingly (factor >= 1,
  // must divide fps so the resulting rate is integral).
  StatusOr<VideoSegment> SubsampleRate(int factor) const;
  // Downscale every frame.
  StatusOr<VideoSegment> DownscaleFrames(int new_width, int new_height) const;
  // Quantize every frame's color depth.
  VideoSegment QuantizeColor(int bits) const;

  bool operator==(const VideoSegment& other) const = default;

 private:
  int fps_ = 0;
  std::vector<Raster> frames_;
};

// Synthetic sources (stand-ins for the paper's video capture tools).
// A segment of the flying bird crossing the screen once over `duration`.
VideoSegment MakeFlyingBirdSegment(int width, int height, int fps, MediaTime duration);
// "Talking head": a static test card with a mouth rectangle toggling.
VideoSegment MakeTalkingHeadSegment(int width, int height, int fps, MediaTime duration,
                                    std::uint64_t seed);

}  // namespace cmif

#endif  // SRC_MEDIA_VIDEO_H_
