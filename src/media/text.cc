#include "src/media/text.h"

#include <algorithm>
#include <sstream>

namespace cmif {

MediaTime TextBlock::ReadingDuration(int chars_per_second) const {
  if (chars_per_second <= 0) {
    chars_per_second = 15;
  }
  MediaTime t = MediaTime::Rational(static_cast<std::int64_t>(text_.size()), chars_per_second);
  MediaTime floor = MediaTime::Seconds(1);
  return t < floor ? floor : t;
}

std::vector<std::string> TextBlock::WrapLines(int columns) const {
  std::vector<std::string> lines;
  int indent = std::max(formatting_.indent, 0);
  int usable = std::max(columns - indent, 1);
  std::string pad(static_cast<std::size_t>(indent), ' ');

  std::istringstream words(text_);
  std::string word;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      lines.push_back(pad + current);
      current.clear();
    }
  };
  while (words >> word) {
    while (static_cast<int>(word.size()) > usable) {
      flush();
      lines.push_back(pad + word.substr(0, static_cast<std::size_t>(usable)));
      word.erase(0, static_cast<std::size_t>(usable));
    }
    if (current.empty()) {
      current = word;
    } else if (static_cast<int>(current.size() + 1 + word.size()) <= usable) {
      current += ' ';
      current += word;
    } else {
      flush();
      current = word;
    }
  }
  flush();
  if (lines.empty() && !text_.empty()) {
    lines.push_back(pad);  // whitespace-only text still occupies a line
  }
  return lines;
}

}  // namespace cmif
