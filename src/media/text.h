// Text blocks: captions, labels and immediate-node data. Carries the
// T_Formatting shorthand parameters (font, size, indent, vspace — Figure 7)
// and a line breaker used by the virtual text renderer.
#ifndef SRC_MEDIA_TEXT_H_
#define SRC_MEDIA_TEXT_H_

#include <string>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"

namespace cmif {

// The T_Formatting parameters. "It is wise not to use these attributes
// directly but to place them in a style definition" (Figure 7).
struct TextFormatting {
  std::string font = "default";
  int size = 12;    // points
  int indent = 0;   // columns
  int vspace = 1;   // blank lines between paragraphs
  bool operator==(const TextFormatting& other) const = default;
};

// A formatted text fragment.
class TextBlock {
 public:
  TextBlock() = default;
  TextBlock(std::string text, TextFormatting formatting)
      : text_(std::move(text)), formatting_(formatting) {}

  const std::string& text() const { return text_; }
  const TextFormatting& formatting() const { return formatting_; }
  void set_formatting(TextFormatting f) { formatting_ = f; }

  std::size_t byte_size() const { return text_.size(); }
  bool empty() const { return text_.empty(); }

  // Reading duration estimate: `chars_per_second` characters per second,
  // minimum one second. Used when a caption has no explicit duration; the
  // paper's conflict example (section 5.3.3) is "text must be displayed long
  // enough to be readable".
  MediaTime ReadingDuration(int chars_per_second = 15) const;

  // Greedy word wrap into lines of at most `columns` columns, honoring the
  // formatting's indent on every line. Words longer than a line are split.
  std::vector<std::string> WrapLines(int columns) const;

  bool operator==(const TextBlock& other) const = default;

 private:
  std::string text_;
  TextFormatting formatting_;
};

}  // namespace cmif

#endif  // SRC_MEDIA_TEXT_H_
