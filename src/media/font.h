// A built-in 5x7 bitmap font so the virtual display can render caption and
// label text without any external font files. Uppercase-only glyph set
// (lowercase input is folded); unknown characters render as a hollow box.
#ifndef SRC_MEDIA_FONT_H_
#define SRC_MEDIA_FONT_H_

#include <string_view>

#include "src/media/raster.h"

namespace cmif {

inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;
// One blank column between glyphs.
inline constexpr int kGlyphAdvance = kGlyphWidth + 1;

// Width in pixels of `text` at `scale`.
int TextWidth(std::string_view text, int scale = 1);
// Height in pixels of one line at `scale`.
int TextHeight(int scale = 1);

// Draws one line of text with its top-left corner at (x, y), clipped to the
// target. scale >= 1 integer-scales each glyph pixel.
void DrawText(Raster& target, int x, int y, std::string_view text, Pixel color, int scale = 1);

}  // namespace cmif

#endif  // SRC_MEDIA_FONT_H_
