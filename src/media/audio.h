// PCM audio: the payload of audio data blocks. Mono/stereo signed 16-bit with
// a WAV (RIFF) codec, the Clip attribute's "part of a sound fragment"
// operation, and the constraint filter's sample-rate reduction.
#ifndef SRC_MEDIA_AUDIO_H_
#define SRC_MEDIA_AUDIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"

namespace cmif {

// Interleaved signed 16-bit PCM. Value-semantic.
class AudioBuffer {
 public:
  AudioBuffer() = default;
  // Silence of `frames` sample-frames. rate > 0, channels in {1, 2}.
  AudioBuffer(int rate, int channels, std::size_t frames);

  int rate() const { return rate_; }
  int channels() const { return channels_; }
  // Sample-frames (samples per channel).
  std::size_t frames() const { return channels_ == 0 ? 0 : samples_.size() / channels_; }
  std::size_t byte_size() const { return samples_.size() * sizeof(std::int16_t); }
  bool empty() const { return samples_.empty(); }

  // Exact duration: frames / rate seconds.
  MediaTime Duration() const;

  std::int16_t Sample(std::size_t frame, int channel) const {
    return samples_[frame * channels_ + channel];
  }
  void SetSample(std::size_t frame, int channel, std::int16_t v) {
    samples_[frame * channels_ + channel] = v;
  }
  const std::vector<std::int16_t>& samples() const { return samples_; }

  // The Clip attribute: frames [begin, begin + length). Out-of-range is an
  // error surfaced as a document conflict.
  StatusOr<AudioBuffer> Clip(std::size_t begin, std::size_t length) const;

  // Constraint filter: naive decimation/zero-order-hold resample to new_rate.
  StatusOr<AudioBuffer> Resample(int new_rate) const;
  // Constraint filter: stereo -> mono mixdown (no-op on mono).
  AudioBuffer ToMono() const;

  // RMS level in [0, 1], for tests and capability decisions.
  double RmsLevel() const;

  bool operator==(const AudioBuffer& other) const = default;

 private:
  int rate_ = 0;
  int channels_ = 0;
  std::vector<std::int16_t> samples_;
};

// RIFF/WAVE PCM16 encoding.
std::string EncodeWav(const AudioBuffer& audio);
// Parses PCM16 RIFF/WAVE; errors are kDataLoss.
StatusOr<AudioBuffer> DecodeWav(const std::string& bytes);

// Synthetic sources (stand-ins for the paper's audio capture tools).
// A sine tone of `duration`, `hz` hertz at `amplitude` in [0,1].
AudioBuffer MakeTone(int rate, MediaTime duration, double hz, double amplitude);
// Speech-like babble: band-limited noise with a syllabic envelope. The
// announcer's voice in the Evening News workload.
AudioBuffer MakeSpeechLike(int rate, MediaTime duration, std::uint64_t seed);

}  // namespace cmif

#endif  // SRC_MEDIA_AUDIO_H_
