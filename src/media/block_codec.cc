#include "src/media/block_codec.h"

#include "src/base/codec_util.h"
#include "src/base/string_util.h"
#include "src/base/varint.h"

namespace cmif {
namespace {

// Plausibility caps: a corrupted varint must fail structurally, not turn
// into an unbounded allocation or an absurd-but-parseable block.
constexpr std::uint64_t kMaxPlausibleBytes = 1ull << 40;
constexpr std::uint64_t kMaxPixelDim = 1u << 15;
constexpr std::uint64_t kMaxAudioRate = 1u << 24;
constexpr std::uint64_t kMaxVideoFps = 10000;

StatusOr<MediaType> CheckMediaType(std::uint64_t raw) {
  if (raw > static_cast<std::uint64_t>(MediaType::kGraphic)) {
    return DataLossError(
        StrFormat("unknown media type %llu", static_cast<unsigned long long>(raw)));
  }
  return static_cast<MediaType>(raw);
}

void PutRaster(std::string& out, const Raster& image) {
  for (const Pixel& p : image.pixels()) {
    out.push_back(static_cast<char>(p.r));
    out.push_back(static_cast<char>(p.g));
    out.push_back(static_cast<char>(p.b));
  }
}

// Reads width*height raw RGB triples at *pos (bounds already validated).
Raster GetRaster(std::string_view bytes, std::size_t* pos, int width, int height) {
  Raster image(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      Pixel p;
      p.r = static_cast<std::uint8_t>(bytes[(*pos)++]);
      p.g = static_cast<std::uint8_t>(bytes[(*pos)++]);
      p.b = static_cast<std::uint8_t>(bytes[(*pos)++]);
      image.Put(x, y, p);
    }
  }
  return image;
}

}  // namespace

std::string EncodeBlockPayload(const DataBlock& block) {
  std::string out;
  PutVarint64(out, static_cast<std::uint64_t>(block.medium()));
  PutVarint64(out, block.is_generator() ? 1 : 0);
  if (block.is_generator()) {
    const GeneratorSpec& gen = block.generator();
    PutString(out, gen.generator);
    PutString(out, gen.params);
    PutMediaTime(out, gen.duration);
    PutVarint64(out, gen.approx_bytes);
    return out;
  }
  switch (block.medium()) {
    case MediaType::kText: {
      const TextBlock& text = block.text();
      PutString(out, text.text());
      PutString(out, text.formatting().font);
      PutZigzag64(out, text.formatting().size);
      PutZigzag64(out, text.formatting().indent);
      PutZigzag64(out, text.formatting().vspace);
      break;
    }
    case MediaType::kAudio: {
      const AudioBuffer& audio = block.audio();
      PutVarint64(out, static_cast<std::uint64_t>(audio.rate()));
      PutVarint64(out, static_cast<std::uint64_t>(audio.channels()));
      PutVarint64(out, audio.frames());
      for (std::int16_t sample : audio.samples()) {
        std::uint16_t raw = static_cast<std::uint16_t>(sample);
        out.push_back(static_cast<char>(raw & 0xff));
        out.push_back(static_cast<char>((raw >> 8) & 0xff));
      }
      break;
    }
    case MediaType::kVideo: {
      const VideoSegment& video = block.video();
      PutVarint64(out, static_cast<std::uint64_t>(video.fps()));
      PutVarint64(out, video.frame_count());
      PutVarint64(out, static_cast<std::uint64_t>(video.width()));
      PutVarint64(out, static_cast<std::uint64_t>(video.height()));
      for (const Raster& frame : video.frames()) {
        PutRaster(out, frame);
      }
      break;
    }
    case MediaType::kImage:
    case MediaType::kGraphic: {
      const Raster& image = block.image();
      PutVarint64(out, static_cast<std::uint64_t>(image.width()));
      PutVarint64(out, static_cast<std::uint64_t>(image.height()));
      PutRaster(out, image);
      break;
    }
  }
  return out;
}

StatusOr<DataBlock> DecodeBlockPayload(std::string_view payload) {
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(std::uint64_t medium_raw, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(MediaType medium, CheckMediaType(medium_raw));
  CMIF_ASSIGN_OR_RETURN(bool is_generator, GetBool(payload, &pos));
  if (is_generator) {
    GeneratorSpec gen;
    CMIF_ASSIGN_OR_RETURN(gen.generator, GetString(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(gen.params, GetString(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(gen.duration, GetMediaTime(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(std::uint64_t approx, GetVarint64(payload, &pos));
    if (approx > kMaxPlausibleBytes) {
      return DataLossError(StrFormat("implausible generator size %llu",
                                     static_cast<unsigned long long>(approx)));
    }
    gen.approx_bytes = static_cast<std::size_t>(approx);
    CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
    return DataBlock::FromGenerator(medium, std::move(gen));
  }
  switch (medium) {
    case MediaType::kText: {
      CMIF_ASSIGN_OR_RETURN(std::string text, GetString(payload, &pos));
      TextFormatting formatting;
      CMIF_ASSIGN_OR_RETURN(formatting.font, GetString(payload, &pos));
      CMIF_ASSIGN_OR_RETURN(std::int64_t size, GetZigzag64(payload, &pos));
      CMIF_ASSIGN_OR_RETURN(std::int64_t indent, GetZigzag64(payload, &pos));
      CMIF_ASSIGN_OR_RETURN(std::int64_t vspace, GetZigzag64(payload, &pos));
      if (size < -(1 << 20) || size > (1 << 20) || indent < -(1 << 20) || indent > (1 << 20) ||
          vspace < -(1 << 20) || vspace > (1 << 20)) {
        return DataLossError(StrFormat("implausible text formatting at offset %zu", pos));
      }
      formatting.size = static_cast<int>(size);
      formatting.indent = static_cast<int>(indent);
      formatting.vspace = static_cast<int>(vspace);
      CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
      return DataBlock::FromText(TextBlock(std::move(text), formatting));
    }
    case MediaType::kAudio: {
      CMIF_ASSIGN_OR_RETURN(std::uint64_t rate, GetVarint64(payload, &pos));
      CMIF_ASSIGN_OR_RETURN(std::uint64_t channels, GetVarint64(payload, &pos));
      CMIF_ASSIGN_OR_RETURN(std::uint64_t frames, GetVarint64(payload, &pos));
      if (channels == 0) {
        if (rate != 0 || frames != 0) {
          return DataLossError("channel-less audio with a rate or frames");
        }
        CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
        return DataBlock::FromAudio(AudioBuffer());
      }
      if (channels > 2 || rate == 0 || rate > kMaxAudioRate) {
        return DataLossError(StrFormat("implausible audio geometry (rate %llu, %llu channels)",
                                       static_cast<unsigned long long>(rate),
                                       static_cast<unsigned long long>(channels)));
      }
      if (frames > kMaxPlausibleBytes || payload.size() - pos != frames * channels * 2) {
        return DataLossError(StrFormat("audio of %llu frames truncated at offset %zu",
                                       static_cast<unsigned long long>(frames), pos));
      }
      AudioBuffer audio(static_cast<int>(rate), static_cast<int>(channels),
                        static_cast<std::size_t>(frames));
      for (std::uint64_t frame = 0; frame < frames; ++frame) {
        for (std::uint64_t channel = 0; channel < channels; ++channel) {
          std::uint16_t raw =
              static_cast<std::uint8_t>(payload[pos]) |
              static_cast<std::uint16_t>(static_cast<std::uint8_t>(payload[pos + 1])) << 8;
          pos += 2;
          audio.SetSample(static_cast<std::size_t>(frame), static_cast<int>(channel),
                          static_cast<std::int16_t>(raw));
        }
      }
      return DataBlock::FromAudio(std::move(audio));
    }
    case MediaType::kVideo: {
      CMIF_ASSIGN_OR_RETURN(std::uint64_t fps, GetVarint64(payload, &pos));
      CMIF_ASSIGN_OR_RETURN(std::uint64_t frame_count, GetVarint64(payload, &pos));
      CMIF_ASSIGN_OR_RETURN(std::uint64_t width, GetVarint64(payload, &pos));
      CMIF_ASSIGN_OR_RETURN(std::uint64_t height, GetVarint64(payload, &pos));
      if (fps > kMaxVideoFps || (fps == 0 && frame_count > 0) || width > kMaxPixelDim ||
          height > kMaxPixelDim) {
        return DataLossError(StrFormat("implausible video geometry (%llu fps, %llux%llu)",
                                       static_cast<unsigned long long>(fps),
                                       static_cast<unsigned long long>(width),
                                       static_cast<unsigned long long>(height)));
      }
      // width/height are capped at kMaxPixelDim, so frame_bytes fits in 64
      // bits — but frame_count * frame_bytes can wrap. Bounding frame_count
      // by remaining / frame_bytes first keeps the product exact.
      const std::uint64_t frame_bytes = width * height * 3;
      const std::uint64_t remaining = payload.size() - pos;
      if (frame_count > 0 && frame_bytes == 0) {
        return DataLossError(StrFormat("implausible video geometry (%llu zero-area frames)",
                                       static_cast<unsigned long long>(frame_count)));
      }
      if (frame_count > kMaxPlausibleBytes ||
          (frame_bytes > 0 && frame_count > remaining / frame_bytes) ||
          remaining != frame_count * frame_bytes) {
        return DataLossError(StrFormat("video of %llu frames truncated at offset %zu",
                                       static_cast<unsigned long long>(frame_count), pos));
      }
      VideoSegment video(static_cast<int>(fps));
      for (std::uint64_t i = 0; i < frame_count; ++i) {
        Raster frame = GetRaster(payload, &pos, static_cast<int>(width), static_cast<int>(height));
        CMIF_RETURN_IF_ERROR(video.Append(std::move(frame)));
      }
      return DataBlock::FromVideo(std::move(video));
    }
    case MediaType::kImage:
    case MediaType::kGraphic: {
      CMIF_ASSIGN_OR_RETURN(std::uint64_t width, GetVarint64(payload, &pos));
      CMIF_ASSIGN_OR_RETURN(std::uint64_t height, GetVarint64(payload, &pos));
      if (width > kMaxPixelDim || height > kMaxPixelDim) {
        return DataLossError(StrFormat("implausible image geometry %llux%llu",
                                       static_cast<unsigned long long>(width),
                                       static_cast<unsigned long long>(height)));
      }
      if (payload.size() - pos != width * height * 3) {
        return DataLossError(StrFormat("image of %llux%llu truncated at offset %zu",
                                       static_cast<unsigned long long>(width),
                                       static_cast<unsigned long long>(height), pos));
      }
      Raster image = GetRaster(payload, &pos, static_cast<int>(width), static_cast<int>(height));
      return DataBlock::FromImage(std::move(image), medium);
    }
  }
  return DataLossError("unknown media type");
}

}  // namespace cmif
