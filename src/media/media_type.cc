#include "src/media/media_type.h"

namespace cmif {

std::string_view MediaTypeName(MediaType type) {
  switch (type) {
    case MediaType::kText:
      return "text";
    case MediaType::kAudio:
      return "audio";
    case MediaType::kVideo:
      return "video";
    case MediaType::kImage:
      return "image";
    case MediaType::kGraphic:
      return "graphic";
  }
  return "?";
}

StatusOr<MediaType> ParseMediaType(std::string_view name) {
  if (name == "text") {
    return MediaType::kText;
  }
  if (name == "audio") {
    return MediaType::kAudio;
  }
  if (name == "video") {
    return MediaType::kVideo;
  }
  if (name == "image") {
    return MediaType::kImage;
  }
  if (name == "graphic") {
    return MediaType::kGraphic;
  }
  return InvalidArgumentError("unknown media type '" + std::string(name) + "'");
}

std::string_view MediaUnitName(MediaUnit unit) {
  switch (unit) {
    case MediaUnit::kSeconds:
      return "seconds";
    case MediaUnit::kFrames:
      return "frames";
    case MediaUnit::kSamples:
      return "samples";
    case MediaUnit::kBytes:
      return "bytes";
    case MediaUnit::kCharacters:
      return "characters";
  }
  return "?";
}

StatusOr<MediaUnit> ParseMediaUnit(std::string_view name) {
  if (name == "seconds") {
    return MediaUnit::kSeconds;
  }
  if (name == "frames") {
    return MediaUnit::kFrames;
  }
  if (name == "samples") {
    return MediaUnit::kSamples;
  }
  if (name == "bytes") {
    return MediaUnit::kBytes;
  }
  if (name == "characters") {
    return MediaUnit::kCharacters;
  }
  return InvalidArgumentError("unknown media unit '" + std::string(name) + "'");
}

MediaUnit DefaultUnitFor(MediaType type) {
  switch (type) {
    case MediaType::kText:
      return MediaUnit::kCharacters;
    case MediaType::kAudio:
      return MediaUnit::kSamples;
    case MediaType::kVideo:
      return MediaUnit::kFrames;
    case MediaType::kImage:
    case MediaType::kGraphic:
      return MediaUnit::kSeconds;
  }
  return MediaUnit::kSeconds;
}

}  // namespace cmif
