// Canonical binary encoding of a data block payload — the bytes streamed
// delivery (src/net/stream.h) and the v4 blob blocks field actually carry.
// Deterministic: equal blocks encode to equal bytes, so byte comparison is
// block comparison — the property the streamed-vs-blob differential harness
// (src/check/stream.h) is built on. Unlike the persist layer's textual
// inline payloads, this codec covers every medium including video.
#ifndef SRC_MEDIA_BLOCK_CODEC_H_
#define SRC_MEDIA_BLOCK_CODEC_H_

#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/media/data_block.h"

namespace cmif {

std::string EncodeBlockPayload(const DataBlock& block);

// Inverse; corrupt payloads (bad medium, implausible geometry, truncation)
// are structured kDataLoss with byte offsets, never a crash or an unbounded
// allocation.
StatusOr<DataBlock> DecodeBlockPayload(std::string_view payload);

}  // namespace cmif

#endif  // SRC_MEDIA_BLOCK_CODEC_H_
