#include "src/media/data_block.h"

#include <cstdlib>

#include "src/base/string_util.h"

namespace cmif {

DataBlock DataBlock::FromText(TextBlock text) {
  DataBlock b;
  b.medium_ = MediaType::kText;
  b.payload_ = std::move(text);
  return b;
}

DataBlock DataBlock::FromAudio(AudioBuffer audio) {
  DataBlock b;
  b.medium_ = MediaType::kAudio;
  b.payload_ = std::move(audio);
  return b;
}

DataBlock DataBlock::FromVideo(VideoSegment video) {
  DataBlock b;
  b.medium_ = MediaType::kVideo;
  b.payload_ = std::move(video);
  return b;
}

DataBlock DataBlock::FromImage(Raster image, MediaType medium) {
  DataBlock b;
  b.medium_ = medium == MediaType::kGraphic ? MediaType::kGraphic : MediaType::kImage;
  b.payload_ = std::move(image);
  return b;
}

DataBlock DataBlock::FromGenerator(MediaType medium, GeneratorSpec spec) {
  DataBlock b;
  b.medium_ = medium;
  b.payload_ = std::move(spec);
  return b;
}

StatusOr<TextBlock> DataBlock::AsText() const {
  if (const auto* t = std::get_if<TextBlock>(&payload_)) {
    return *t;
  }
  return FailedPreconditionError("data block is not text");
}

StatusOr<AudioBuffer> DataBlock::AsAudio() const {
  if (const auto* a = std::get_if<AudioBuffer>(&payload_)) {
    return *a;
  }
  return FailedPreconditionError("data block is not audio");
}

StatusOr<VideoSegment> DataBlock::AsVideo() const {
  if (const auto* v = std::get_if<VideoSegment>(&payload_)) {
    return *v;
  }
  return FailedPreconditionError("data block is not video");
}

StatusOr<Raster> DataBlock::AsImage() const {
  if (const auto* r = std::get_if<Raster>(&payload_)) {
    return *r;
  }
  return FailedPreconditionError("data block is not an image");
}

MediaTime DataBlock::IntrinsicDuration() const {
  if (const auto* t = std::get_if<TextBlock>(&payload_)) {
    return t->ReadingDuration();
  }
  if (const auto* a = std::get_if<AudioBuffer>(&payload_)) {
    return a->Duration();
  }
  if (const auto* v = std::get_if<VideoSegment>(&payload_)) {
    return v->Duration();
  }
  if (const auto* g = std::get_if<GeneratorSpec>(&payload_)) {
    return g->duration;
  }
  return MediaTime();  // stills have no intrinsic length
}

std::size_t DataBlock::ByteSize() const {
  if (const auto* t = std::get_if<TextBlock>(&payload_)) {
    return t->byte_size();
  }
  if (const auto* a = std::get_if<AudioBuffer>(&payload_)) {
    return a->byte_size();
  }
  if (const auto* v = std::get_if<VideoSegment>(&payload_)) {
    return v->byte_size();
  }
  if (const auto* r = std::get_if<Raster>(&payload_)) {
    return r->byte_size();
  }
  if (const auto* g = std::get_if<GeneratorSpec>(&payload_)) {
    return g->approx_bytes;
  }
  return 0;
}

namespace {

// Parses "key=value,key=value" generator parameter strings.
std::int64_t ParamInt(const std::string& params, std::string_view key, std::int64_t fallback) {
  for (const std::string& pair : SplitString(params, ',')) {
    std::vector<std::string> kv = SplitString(pair, '=');
    if (kv.size() == 2 && TrimString(kv[0]) == key) {
      return std::strtoll(std::string(TrimString(kv[1])).c_str(), nullptr, 10);
    }
  }
  return fallback;
}

double ParamDouble(const std::string& params, std::string_view key, double fallback) {
  for (const std::string& pair : SplitString(params, ',')) {
    std::vector<std::string> kv = SplitString(pair, '=');
    if (kv.size() == 2 && TrimString(kv[0]) == key) {
      return std::strtod(std::string(TrimString(kv[1])).c_str(), nullptr);
    }
  }
  return fallback;
}

void RegisterBuiltins(GeneratorRegistry& registry) {
  (void)registry.Register("flying_bird", [](const GeneratorSpec& spec) -> StatusOr<DataBlock> {
    int w = static_cast<int>(ParamInt(spec.params, "width", 64));
    int h = static_cast<int>(ParamInt(spec.params, "height", 48));
    int fps = static_cast<int>(ParamInt(spec.params, "fps", 25));
    return DataBlock::FromVideo(MakeFlyingBirdSegment(w, h, fps, spec.duration));
  });
  (void)registry.Register("talking_head", [](const GeneratorSpec& spec) -> StatusOr<DataBlock> {
    int w = static_cast<int>(ParamInt(spec.params, "width", 64));
    int h = static_cast<int>(ParamInt(spec.params, "height", 48));
    int fps = static_cast<int>(ParamInt(spec.params, "fps", 25));
    std::uint64_t seed = static_cast<std::uint64_t>(ParamInt(spec.params, "seed", 1));
    return DataBlock::FromVideo(MakeTalkingHeadSegment(w, h, fps, spec.duration, seed));
  });
  (void)registry.Register("test_card", [](const GeneratorSpec& spec) -> StatusOr<DataBlock> {
    int w = static_cast<int>(ParamInt(spec.params, "width", 64));
    int h = static_cast<int>(ParamInt(spec.params, "height", 48));
    std::uint32_t seed = static_cast<std::uint32_t>(ParamInt(spec.params, "seed", 1));
    return DataBlock::FromImage(MakeTestCard(w, h, seed), MediaType::kGraphic);
  });
  (void)registry.Register("tone", [](const GeneratorSpec& spec) -> StatusOr<DataBlock> {
    int rate = static_cast<int>(ParamInt(spec.params, "rate", 8000));
    double hz = ParamDouble(spec.params, "hz", 440);
    double amp = ParamDouble(spec.params, "amplitude", 0.5);
    return DataBlock::FromAudio(MakeTone(rate, spec.duration, hz, amp));
  });
  (void)registry.Register("speech", [](const GeneratorSpec& spec) -> StatusOr<DataBlock> {
    int rate = static_cast<int>(ParamInt(spec.params, "rate", 8000));
    std::uint64_t seed = static_cast<std::uint64_t>(ParamInt(spec.params, "seed", 1));
    return DataBlock::FromAudio(MakeSpeechLike(rate, spec.duration, seed));
  });
}

}  // namespace

GeneratorRegistry& GeneratorRegistry::Global() {
  static GeneratorRegistry* const kGlobal = [] {
    auto* r = new GeneratorRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *kGlobal;
}

Status GeneratorRegistry::Register(std::string name, GeneratorFn fn) {
  for (const auto& [existing, unused] : generators_) {
    (void)unused;
    if (existing == name) {
      return AlreadyExistsError("generator '" + name + "' already registered");
    }
  }
  generators_.emplace_back(std::move(name), std::move(fn));
  return Status::Ok();
}

StatusOr<DataBlock> GeneratorRegistry::Run(const GeneratorSpec& spec) const {
  for (const auto& [name, fn] : generators_) {
    if (name == spec.generator) {
      return fn(spec);
    }
  }
  return NotFoundError("generator '" + spec.generator + "' not registered");
}

}  // namespace cmif
