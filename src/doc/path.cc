#include "src/doc/path.h"

#include "src/base/string_util.h"

namespace cmif {

StatusOr<NodePath> NodePath::Parse(std::string_view text) {
  NodePath path;
  if (text.empty() || text == ".") {
    return path;
  }
  std::string_view rest = text;
  if (rest[0] == '/') {
    path.absolute_ = true;
    rest.remove_prefix(1);
    if (rest.empty()) {
      return path;  // "/" = the root itself
    }
  }
  for (const std::string& segment : SplitString(rest, '/')) {
    if (segment == ".") {
      continue;
    }
    if (segment != ".." && !IsValidId(segment)) {
      return InvalidArgumentError("path segment '" + segment + "' is not a valid node name");
    }
    path.segments_.push_back(segment);
  }
  return path;
}

NodePath NodePath::Relative(std::vector<std::string> segments) {
  NodePath path;
  path.segments_ = std::move(segments);
  return path;
}

NodePath NodePath::Absolute(std::vector<std::string> segments) {
  NodePath path;
  path.absolute_ = true;
  path.segments_ = std::move(segments);
  return path;
}

std::string NodePath::ToString() const {
  std::string out = absolute_ ? "/" : "";
  out += JoinStrings(segments_, "/");
  if (out.empty()) {
    out = ".";
  }
  return out;
}

}  // namespace cmif
