// A fluent builder for CMIF documents — the programmatic face of the
// paper's Document Structure Mapping Tool (section 2). A cursor walks the
// tree as it grows: Seq/Par descend into the new composite node, Ext/Imm
// position on the new leaf so attributes and arcs can be attached, and
// adding a sibling while positioned on a leaf pops back automatically.
//
//   DocBuilder b;
//   b.DefineChannel("video", MediaType::kVideo)
//    .Par("story1")
//      .Ext("head", "desc-talking-head").OnChannel("video")
//      .Ext("voice", "desc-speech").OnChannel("audio")
//    .Up();
//   CMIF_ASSIGN_OR_RETURN(Document doc, b.Build());
#ifndef SRC_DOC_BUILDER_H_
#define SRC_DOC_BUILDER_H_

#include <string>

#include "src/base/status.h"
#include "src/doc/document.h"

namespace cmif {

// Builds one document. The first error sticks and is reported by Build();
// intermediate calls keep chaining so construction code stays linear.
class DocBuilder {
 public:
  explicit DocBuilder(NodeKind root_kind = NodeKind::kSeq);

  // -- Root dictionaries ----------------------------------------------------
  DocBuilder& DefineChannel(std::string name, MediaType medium, AttrList extra = AttrList());
  DocBuilder& DefineStyle(std::string name, AttrList body);

  // -- Structure ------------------------------------------------------------
  // Adds a sequential/parallel child and descends into it.
  DocBuilder& Seq(std::string name = "");
  DocBuilder& Par(std::string name = "");
  // Adds an external leaf referencing data descriptor `descriptor_id` (the
  // file attribute) and positions on it. Pass "" to rely on an inherited
  // file attribute.
  DocBuilder& Ext(std::string name, std::string descriptor_id);
  // Adds an immediate text leaf and positions on it.
  DocBuilder& ImmText(std::string name, std::string text);
  // Adds an immediate leaf holding an arbitrary block and positions on it.
  DocBuilder& Imm(std::string name, DataBlock data);
  // Ascends to the parent composite node.
  DocBuilder& Up();
  // Ascends to the root.
  DocBuilder& ToRoot();

  // -- Attributes and arcs on the current node -------------------------------
  DocBuilder& Attr(std::string name, AttrValue value);
  DocBuilder& OnChannel(std::string channel);
  DocBuilder& WithDuration(MediaTime duration);
  DocBuilder& WithStyle(std::string style);
  DocBuilder& Arc(SyncArc arc);

  // The node the cursor is on (for advanced tweaks mid-build).
  Node& current() { return *cursor_; }

  // Returns the finished document, or the first construction error. The
  // builder is consumed.
  StatusOr<Document> Build();

 private:
  Node& Attach(NodeKind kind, const std::string& name, bool descend);
  void Fail(Status status);

  Document document_;
  Node* cursor_;
  Status first_error_;
  bool built_ = false;
};

}  // namespace cmif

#endif  // SRC_DOC_BUILDER_H_
