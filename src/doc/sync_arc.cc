#include "src/doc/sync_arc.h"

#include <sstream>

namespace cmif {

std::string_view ArcEdgeName(ArcEdge edge) {
  return edge == ArcEdge::kBegin ? "begin" : "end";
}

std::string_view ArcRigorName(ArcRigor rigor) {
  return rigor == ArcRigor::kMust ? "must" : "may";
}

StatusOr<ArcEdge> ParseArcEdge(std::string_view name) {
  if (name == "begin") {
    return ArcEdge::kBegin;
  }
  if (name == "end") {
    return ArcEdge::kEnd;
  }
  return InvalidArgumentError("unknown arc edge '" + std::string(name) + "'");
}

StatusOr<ArcRigor> ParseArcRigor(std::string_view name) {
  if (name == "must") {
    return ArcRigor::kMust;
  }
  if (name == "may") {
    return ArcRigor::kMay;
  }
  return InvalidArgumentError("unknown arc rigor '" + std::string(name) + "'");
}

Status SyncArc::CheckShape() const {
  if (offset.is_negative()) {
    return InvalidArgumentError("arc offset must be non-negative, got " + offset.ToString());
  }
  if (min_delay.is_positive()) {
    return InvalidArgumentError("a positive min_delay has no meaning (got " +
                                min_delay.ToString() + ")");
  }
  if (max_delay.has_value() && max_delay->is_negative()) {
    return InvalidArgumentError("a negative max_delay has no meaning (got " +
                                max_delay->ToString() + ")");
  }
  if (max_delay.has_value() && *max_delay < min_delay) {
    return InvalidArgumentError("max_delay " + max_delay->ToString() + " below min_delay " +
                                min_delay.ToString());
  }
  return Status::Ok();
}

std::string SyncArc::ToString() const {
  std::ostringstream os;
  os << ArcEdgeName(source_edge) << "-" << ArcRigorName(rigor) << " " << source.ToString() << " "
     << offset.ToString() << " " << ArcEdgeName(dest_edge) << ":" << dest.ToString() << " "
     << min_delay.ToString() << " " << (max_delay.has_value() ? max_delay->ToString() : "inf");
  return os.str();
}

SyncArc HardArc(NodePath source, ArcEdge source_edge, NodePath dest, ArcEdge dest_edge,
                MediaTime offset, ArcRigor rigor) {
  SyncArc arc;
  arc.source = std::move(source);
  arc.source_edge = source_edge;
  arc.dest = std::move(dest);
  arc.dest_edge = dest_edge;
  arc.offset = offset;
  arc.rigor = rigor;
  arc.min_delay = MediaTime();
  arc.max_delay = MediaTime();
  return arc;
}

SyncArc WindowArc(NodePath source, ArcEdge source_edge, NodePath dest, ArcEdge dest_edge,
                  MediaTime offset, MediaTime min_delay, std::optional<MediaTime> max_delay,
                  ArcRigor rigor) {
  SyncArc arc;
  arc.source = std::move(source);
  arc.source_edge = source_edge;
  arc.dest = std::move(dest);
  arc.dest_edge = dest_edge;
  arc.offset = offset;
  arc.min_delay = min_delay;
  arc.max_delay = max_delay;
  arc.rigor = rigor;
  return arc;
}

}  // namespace cmif
