// CMIF tree nodes (section 5.1). "Each node in the tree can be one of four
// types": Sequential (children execute left-to-right), Parallel (children
// execute together), External (a leaf pointing to a data descriptor), and
// Immediate (a leaf containing data directly).
#ifndef SRC_DOC_NODE_H_
#define SRC_DOC_NODE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/attr/attr_list.h"
#include "src/base/status.h"
#include "src/doc/path.h"
#include "src/doc/sync_arc.h"
#include "src/media/data_block.h"

namespace cmif {

enum class NodeKind {
  kSeq = 0,
  kPar,
  kExt,
  kImm,
};

std::string_view NodeKindName(NodeKind kind);
StatusOr<NodeKind> ParseNodeKind(std::string_view name);

// One node of the document tree. Nodes own their children; the parent link
// is maintained automatically. Not copyable (use Clone), movable only via
// the owning unique_ptr.
class Node {
 public:
  explicit Node(NodeKind kind) : kind_(kind) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  bool is_leaf() const { return kind_ == NodeKind::kExt || kind_ == NodeKind::kImm; }
  bool is_composite() const { return !is_leaf(); }

  const AttrList& attrs() const { return attrs_; }
  AttrList& attrs() { return attrs_; }

  // The node's name attribute, or "" when unnamed. "Names are optional, and
  // relative to their parent: no two (direct) children of the same parent
  // may have the same name" (Figure 7) — enforced by the validator.
  std::string name() const;
  void set_name(std::string name);

  Node* parent() { return parent_; }
  const Node* parent() const { return parent_; }
  bool is_root() const { return parent_ == nullptr; }

  // -- Children (composite nodes) ------------------------------------------
  const std::vector<std::unique_ptr<Node>>& children() const { return children_; }
  std::size_t child_count() const { return children_.size(); }
  Node& ChildAt(std::size_t i) { return *children_[i]; }
  const Node& ChildAt(std::size_t i) const { return *children_[i]; }
  // The child with the given name attribute, or nullptr.
  Node* FindChild(std::string_view name);
  const Node* FindChild(std::string_view name) const;

  // Appends a child; FailedPrecondition on leaf nodes. Returns the child.
  StatusOr<Node*> AddChild(std::unique_ptr<Node> child);
  // Convenience: appends a fresh node of `kind`.
  StatusOr<Node*> AddChild(NodeKind kind);
  // Detaches and returns the child at `index` (parent link cleared).
  StatusOr<std::unique_ptr<Node>> TakeChild(std::size_t index);
  // Inserts a child at `index` (clamped to the child count).
  StatusOr<Node*> InsertChild(std::size_t index, std::unique_ptr<Node> child);

  // -- Immediate data (imm leaves) -----------------------------------------
  const DataBlock& immediate_data() const { return immediate_data_; }
  void set_immediate_data(DataBlock data) { immediate_data_ = std::move(data); }

  // -- Synchronization arcs written on this node ---------------------------
  const std::vector<SyncArc>& arcs() const { return arcs_; }
  std::vector<SyncArc>& arcs() { return arcs_; }
  void AddArc(SyncArc arc) { arcs_.push_back(std::move(arc)); }

  // -- Tree queries ---------------------------------------------------------
  // Nodes from the root (front) down to this node (back).
  std::vector<const Node*> PathFromRoot() const;
  // Attribute lists along PathFromRoot, for the inheritance resolver.
  std::vector<const AttrList*> AttrChainFromRoot() const;
  // A diagnostic path such as "/story1/video" (unnamed nodes appear as #i).
  std::string DisplayPath() const;
  // Distance from the root (root = 0).
  int Depth() const;
  // Number of nodes in this subtree including this node.
  std::size_t SubtreeSize() const;

  // Resolves `path` relative to this node (absolute paths restart from the
  // root). ".." ascends; names descend. NotFound with the display path on
  // failure.
  StatusOr<Node*> Resolve(const NodePath& path);
  StatusOr<const Node*> Resolve(const NodePath& path) const;

  // The relative path from this node to `target` (ancestor hops as "..").
  // Both nodes must live in the same tree.
  StatusOr<NodePath> PathTo(const Node& target) const;

  // Pre-order traversal of the subtree.
  void Visit(const std::function<void(const Node&)>& fn) const;
  void VisitMutable(const std::function<void(Node&)>& fn);

  // Deep copy (children, attributes, arcs, immediate data).
  std::unique_ptr<Node> Clone() const;

 private:
  NodeKind kind_;
  Node* parent_ = nullptr;
  AttrList attrs_;
  std::vector<std::unique_ptr<Node>> children_;
  DataBlock immediate_data_;
  std::vector<SyncArc> arcs_;
};

}  // namespace cmif

#endif  // SRC_DOC_NODE_H_
