#include "src/doc/edit.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "src/base/string_util.h"

namespace cmif {
namespace {

// An arc with its endpoints resolved to node pointers, taken before surgery.
struct ArcSnapshot {
  Node* owner;
  std::size_t index;
  const Node* source;  // nullptr = unresolvable before the edit (left alone)
  const Node* dest;
};

std::vector<ArcSnapshot> SnapshotArcs(Document& document) {
  std::vector<ArcSnapshot> snapshots;
  document.root().VisitMutable([&snapshots](Node& node) {
    for (std::size_t i = 0; i < node.arcs().size(); ++i) {
      const SyncArc& arc = node.arcs()[i];
      auto source = node.Resolve(arc.source);
      auto dest = node.Resolve(arc.dest);
      snapshots.push_back(ArcSnapshot{&node, i, source.ok() ? *source : nullptr,
                                      dest.ok() ? *dest : nullptr});
    }
  });
  return snapshots;
}

std::unordered_set<const Node*> AliveNodes(const Document& document) {
  std::unordered_set<const Node*> alive;
  document.root().Visit([&alive](const Node& node) { alive.insert(&node); });
  return alive;
}

// Re-anchors every snapshotted arc after surgery. Arcs whose owner vanished
// disappear silently with their subtree; arcs whose endpoints vanished or
// can no longer be addressed are removed from their owner and reported.
EditReport ReanchorArcs(Document& document, const std::vector<ArcSnapshot>& snapshots) {
  EditReport report;
  std::unordered_set<const Node*> alive = AliveNodes(document);
  // Removals per owner, applied back-to-front so indexes stay valid.
  std::map<Node*, std::vector<std::pair<std::size_t, std::string>>> removals;

  for (const ArcSnapshot& snapshot : snapshots) {
    if (!alive.contains(snapshot.owner)) {
      continue;  // the arc went away with its subtree
    }
    if (snapshot.source == nullptr || snapshot.dest == nullptr) {
      continue;  // was already dangling before the edit; validator territory
    }
    SyncArc& arc = snapshot.owner->arcs()[snapshot.index];
    if (!alive.contains(snapshot.source) || !alive.contains(snapshot.dest)) {
      removals[snapshot.owner].emplace_back(snapshot.index,
                                            "endpoint was deleted by the edit");
      continue;
    }
    auto source_path = snapshot.owner->PathTo(*snapshot.source);
    auto dest_path = snapshot.owner->PathTo(*snapshot.dest);
    if (!source_path.ok() || !dest_path.ok()) {
      removals[snapshot.owner].emplace_back(
          snapshot.index, "endpoint is no longer addressable by a named path");
      continue;
    }
    if (arc.source != *source_path || arc.dest != *dest_path) {
      arc.source = *source_path;
      arc.dest = *dest_path;
      ++report.rewritten_arcs;
    }
  }

  for (auto& [owner, indexed] : removals) {
    std::sort(indexed.begin(), indexed.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [index, reason] : indexed) {
      report.dropped_arcs.push_back(
          DroppedArc{owner->DisplayPath(), owner->arcs()[index], reason});
      owner->arcs().erase(owner->arcs().begin() + static_cast<std::ptrdiff_t>(index));
    }
  }
  return report;
}

Status CheckSiblingName(const Node& parent, const Node* self, const std::string& name) {
  for (const auto& child : parent.children()) {
    if (child.get() != self && child->name() == name) {
      return AlreadyExistsError("a sibling named '" + name + "' already exists under " +
                                parent.DisplayPath());
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<EditReport> RenameNode(Document& document, Node& node, const std::string& new_name) {
  if (!IsValidId(new_name)) {
    return InvalidArgumentError("'" + new_name + "' is not a valid node name");
  }
  if (node.parent() != nullptr) {
    CMIF_RETURN_IF_ERROR(CheckSiblingName(*node.parent(), &node, new_name));
  }
  std::vector<ArcSnapshot> snapshots = SnapshotArcs(document);
  node.set_name(new_name);
  return ReanchorArcs(document, snapshots);
}

StatusOr<EditReport> DeleteSubtree(Document& document, Node& node) {
  Node* parent = node.parent();
  if (parent == nullptr) {
    return FailedPreconditionError("the root node cannot be deleted");
  }
  std::vector<ArcSnapshot> snapshots = SnapshotArcs(document);
  for (std::size_t i = 0; i < parent->children().size(); ++i) {
    if (&parent->ChildAt(i) == &node) {
      CMIF_RETURN_IF_ERROR(parent->TakeChild(i).status());  // dropped on return
      return ReanchorArcs(document, snapshots);
    }
  }
  return InternalError("node not found under its own parent");
}

StatusOr<EditReport> MoveSubtree(Document& document, Node& node, Node& new_parent,
                                 std::size_t index) {
  Node* parent = node.parent();
  if (parent == nullptr) {
    return FailedPreconditionError("the root node cannot be moved");
  }
  if (!new_parent.is_composite()) {
    return FailedPreconditionError("the destination must be a seq or par node");
  }
  for (const Node* cursor = &new_parent; cursor != nullptr; cursor = cursor->parent()) {
    if (cursor == &node) {
      return InvalidArgumentError("cannot move a node into its own subtree");
    }
  }
  std::string name = node.name();
  if (!name.empty()) {
    CMIF_RETURN_IF_ERROR(CheckSiblingName(new_parent, &node, name));
  }
  std::vector<ArcSnapshot> snapshots = SnapshotArcs(document);
  for (std::size_t i = 0; i < parent->children().size(); ++i) {
    if (&parent->ChildAt(i) == &node) {
      CMIF_ASSIGN_OR_RETURN(std::unique_ptr<Node> detached, parent->TakeChild(i));
      CMIF_RETURN_IF_ERROR(new_parent.InsertChild(index, std::move(detached)).status());
      return ReanchorArcs(document, snapshots);
    }
  }
  return InternalError("node not found under its own parent");
}

}  // namespace cmif
