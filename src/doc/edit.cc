#include "src/doc/edit.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "src/attr/registry.h"
#include "src/attr/value.h"
#include "src/base/media_time.h"
#include "src/base/string_util.h"

namespace cmif {
namespace {

// An arc with its endpoints resolved to node pointers, taken before surgery.
struct ArcSnapshot {
  Node* owner;
  std::size_t index;
  const Node* source;  // nullptr = unresolvable before the edit (left alone)
  const Node* dest;
};

std::vector<ArcSnapshot> SnapshotArcs(Document& document) {
  std::vector<ArcSnapshot> snapshots;
  document.root().VisitMutable([&snapshots](Node& node) {
    for (std::size_t i = 0; i < node.arcs().size(); ++i) {
      const SyncArc& arc = node.arcs()[i];
      auto source = node.Resolve(arc.source);
      auto dest = node.Resolve(arc.dest);
      snapshots.push_back(ArcSnapshot{&node, i, source.ok() ? *source : nullptr,
                                      dest.ok() ? *dest : nullptr});
    }
  });
  return snapshots;
}

std::unordered_set<const Node*> AliveNodes(const Document& document) {
  std::unordered_set<const Node*> alive;
  document.root().Visit([&alive](const Node& node) { alive.insert(&node); });
  return alive;
}

// Re-anchors every snapshotted arc after surgery. Arcs whose owner vanished
// disappear silently with their subtree; arcs whose endpoints vanished or
// can no longer be addressed are removed from their owner and reported.
EditReport ReanchorArcs(Document& document, const std::vector<ArcSnapshot>& snapshots) {
  EditReport report;
  std::unordered_set<const Node*> alive = AliveNodes(document);
  // Removals per owner, applied back-to-front so indexes stay valid.
  std::map<Node*, std::vector<std::pair<std::size_t, std::string>>> removals;

  for (const ArcSnapshot& snapshot : snapshots) {
    if (!alive.contains(snapshot.owner)) {
      continue;  // the arc went away with its subtree
    }
    if (snapshot.source == nullptr || snapshot.dest == nullptr) {
      continue;  // was already dangling before the edit; validator territory
    }
    SyncArc& arc = snapshot.owner->arcs()[snapshot.index];
    if (!alive.contains(snapshot.source) || !alive.contains(snapshot.dest)) {
      removals[snapshot.owner].emplace_back(snapshot.index,
                                            "endpoint was deleted by the edit");
      continue;
    }
    auto source_path = snapshot.owner->PathTo(*snapshot.source);
    auto dest_path = snapshot.owner->PathTo(*snapshot.dest);
    if (!source_path.ok() || !dest_path.ok()) {
      removals[snapshot.owner].emplace_back(
          snapshot.index, "endpoint is no longer addressable by a named path");
      continue;
    }
    if (arc.source != *source_path || arc.dest != *dest_path) {
      arc.source = *source_path;
      arc.dest = *dest_path;
      ++report.rewritten_arcs;
    }
  }

  for (auto& [owner, indexed] : removals) {
    std::sort(indexed.begin(), indexed.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [index, reason] : indexed) {
      report.dropped_arcs.push_back(
          DroppedArc{owner->DisplayPath(), owner->arcs()[index], reason});
      owner->arcs().erase(owner->arcs().begin() + static_cast<std::ptrdiff_t>(index));
    }
  }
  return report;
}

Status CheckSiblingName(const Node& parent, const Node* self, const std::string& name) {
  for (const auto& child : parent.children()) {
    if (child.get() != self && child->name() == name) {
      return AlreadyExistsError("a sibling named '" + name + "' already exists under " +
                                parent.DisplayPath());
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<EditReport> RenameNode(Document& document, Node& node, const std::string& new_name) {
  if (!IsValidId(new_name)) {
    return InvalidArgumentError("'" + new_name + "' is not a valid node name");
  }
  if (node.parent() != nullptr) {
    CMIF_RETURN_IF_ERROR(CheckSiblingName(*node.parent(), &node, new_name));
  }
  std::vector<ArcSnapshot> snapshots = SnapshotArcs(document);
  node.set_name(new_name);
  return ReanchorArcs(document, snapshots);
}

StatusOr<EditReport> DeleteSubtree(Document& document, Node& node) {
  Node* parent = node.parent();
  if (parent == nullptr) {
    return FailedPreconditionError("the root node cannot be deleted");
  }
  std::vector<ArcSnapshot> snapshots = SnapshotArcs(document);
  for (std::size_t i = 0; i < parent->children().size(); ++i) {
    if (&parent->ChildAt(i) == &node) {
      CMIF_RETURN_IF_ERROR(parent->TakeChild(i).status());  // dropped on return
      return ReanchorArcs(document, snapshots);
    }
  }
  return InternalError("node not found under its own parent");
}

StatusOr<EditReport> MoveSubtree(Document& document, Node& node, Node& new_parent,
                                 std::size_t index) {
  Node* parent = node.parent();
  if (parent == nullptr) {
    return FailedPreconditionError("the root node cannot be moved");
  }
  if (!new_parent.is_composite()) {
    return FailedPreconditionError("the destination must be a seq or par node");
  }
  for (const Node* cursor = &new_parent; cursor != nullptr; cursor = cursor->parent()) {
    if (cursor == &node) {
      return InvalidArgumentError("cannot move a node into its own subtree");
    }
  }
  std::string name = node.name();
  if (!name.empty()) {
    CMIF_RETURN_IF_ERROR(CheckSiblingName(new_parent, &node, name));
  }
  std::vector<ArcSnapshot> snapshots = SnapshotArcs(document);
  for (std::size_t i = 0; i < parent->children().size(); ++i) {
    if (&parent->ChildAt(i) == &node) {
      CMIF_ASSIGN_OR_RETURN(std::unique_ptr<Node> detached, parent->TakeChild(i));
      CMIF_RETURN_IF_ERROR(new_parent.InsertChild(index, std::move(detached)).status());
      return ReanchorArcs(document, snapshots);
    }
  }
  return InternalError("node not found under its own parent");
}

std::string_view EditOpKindName(EditOpKind kind) {
  switch (kind) {
    case EditOpKind::kAddNode:
      return "add-node";
    case EditOpKind::kRemoveNode:
      return "remove-node";
    case EditOpKind::kAddArc:
      return "add-arc";
    case EditOpKind::kRemoveArc:
      return "remove-arc";
    case EditOpKind::kRetuneArc:
      return "retune-arc";
  }
  return "?";
}

namespace {

std::string TimeToken(const std::optional<MediaTime>& t) {
  return t.has_value() ? t->ToString() : "inf";
}

StatusOr<std::optional<MediaTime>> ParseTimeToken(const std::string& token) {
  if (token == "inf") {
    return std::optional<MediaTime>();
  }
  CMIF_ASSIGN_OR_RETURN(MediaTime t, ParseMediaTime(token));
  return std::optional<MediaTime>(t);
}

// Resolves an absolute op path from the root ("/" = the root itself).
StatusOr<Node*> ResolveOpPath(Document& document, const std::string& path) {
  CMIF_ASSIGN_OR_RETURN(NodePath parsed, NodePath::Parse(path));
  if (!parsed.is_absolute()) {
    return InvalidArgumentError("edit-op path '" + path + "' must be absolute");
  }
  return document.root().Resolve(parsed);
}

}  // namespace

std::string FormatEditOp(const EditOp& op) {
  std::string out(EditOpKindName(op.kind));
  out += ' ';
  out += op.path;
  switch (op.kind) {
    case EditOpKind::kAddNode:
      out += ' ' + op.name + ' ' + std::string(NodeKindName(op.node_kind));
      if (!op.channel.empty()) {
        out += ' ' + op.channel;
      }
      break;
    case EditOpKind::kRemoveNode:
      break;
    case EditOpKind::kAddArc:
      out += ' ' + op.arc.source.ToString() + ' ' + std::string(ArcEdgeName(op.arc.source_edge));
      out += ' ' + op.arc.dest.ToString() + ' ' + std::string(ArcEdgeName(op.arc.dest_edge));
      out += ' ' + std::string(ArcRigorName(op.arc.rigor));
      out += ' ' + op.arc.offset.ToString() + ' ' + op.arc.min_delay.ToString() + ' ' +
             TimeToken(op.arc.max_delay);
      break;
    case EditOpKind::kRemoveArc:
      out += StrFormat(" %d", op.arc_index);
      break;
    case EditOpKind::kRetuneArc:
      out += StrFormat(" %d ", op.arc_index) + op.arc.offset.ToString() + ' ' +
             op.arc.min_delay.ToString() + ' ' + TimeToken(op.arc.max_delay);
      break;
  }
  return out;
}

StatusOr<EditOp> ParseEditOp(const std::string& line) {
  std::vector<std::string> tokens;
  for (const std::string& token : SplitString(TrimString(line), ' ')) {
    if (!token.empty()) {
      tokens.push_back(token);
    }
  }
  if (tokens.empty()) {
    return InvalidArgumentError("empty edit op");
  }
  auto want = [&tokens](std::size_t lo, std::size_t hi) -> Status {
    if (tokens.size() < lo || tokens.size() > hi) {
      return InvalidArgumentError("edit op '" + tokens[0] + "': wrong argument count");
    }
    return Status::Ok();
  };
  auto parse_index = [](const std::string& token) -> StatusOr<int> {
    if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
      return InvalidArgumentError("arc index '" + token + "' is not a non-negative integer");
    }
    return static_cast<int>(std::stol(token));
  };
  EditOp op;
  if (tokens[0] == "add-node") {
    CMIF_RETURN_IF_ERROR(want(4, 5));
    op.kind = EditOpKind::kAddNode;
    op.path = tokens[1];
    op.name = tokens[2];
    CMIF_ASSIGN_OR_RETURN(op.node_kind, ParseNodeKind(tokens[3]));
    if (tokens.size() == 5) {
      op.channel = tokens[4];
    }
  } else if (tokens[0] == "remove-node") {
    CMIF_RETURN_IF_ERROR(want(2, 2));
    op.kind = EditOpKind::kRemoveNode;
    op.path = tokens[1];
  } else if (tokens[0] == "add-arc") {
    CMIF_RETURN_IF_ERROR(want(10, 10));
    op.kind = EditOpKind::kAddArc;
    op.path = tokens[1];
    CMIF_ASSIGN_OR_RETURN(op.arc.source, NodePath::Parse(tokens[2]));
    CMIF_ASSIGN_OR_RETURN(op.arc.source_edge, ParseArcEdge(tokens[3]));
    CMIF_ASSIGN_OR_RETURN(op.arc.dest, NodePath::Parse(tokens[4]));
    CMIF_ASSIGN_OR_RETURN(op.arc.dest_edge, ParseArcEdge(tokens[5]));
    CMIF_ASSIGN_OR_RETURN(op.arc.rigor, ParseArcRigor(tokens[6]));
    CMIF_ASSIGN_OR_RETURN(op.arc.offset, ParseMediaTime(tokens[7]));
    CMIF_ASSIGN_OR_RETURN(op.arc.min_delay, ParseMediaTime(tokens[8]));
    CMIF_ASSIGN_OR_RETURN(op.arc.max_delay, ParseTimeToken(tokens[9]));
  } else if (tokens[0] == "remove-arc") {
    CMIF_RETURN_IF_ERROR(want(3, 3));
    op.kind = EditOpKind::kRemoveArc;
    op.path = tokens[1];
    CMIF_ASSIGN_OR_RETURN(op.arc_index, parse_index(tokens[2]));
  } else if (tokens[0] == "retune-arc") {
    CMIF_RETURN_IF_ERROR(want(6, 6));
    op.kind = EditOpKind::kRetuneArc;
    op.path = tokens[1];
    CMIF_ASSIGN_OR_RETURN(op.arc_index, parse_index(tokens[2]));
    CMIF_ASSIGN_OR_RETURN(op.arc.offset, ParseMediaTime(tokens[3]));
    CMIF_ASSIGN_OR_RETURN(op.arc.min_delay, ParseMediaTime(tokens[4]));
    CMIF_ASSIGN_OR_RETURN(op.arc.max_delay, ParseTimeToken(tokens[5]));
  } else {
    return InvalidArgumentError("unknown edit op '" + tokens[0] + "'");
  }
  return op;
}

StatusOr<EditReport> ApplyEdit(Document& document, const EditOp& op) {
  CMIF_ASSIGN_OR_RETURN(Node * target, ResolveOpPath(document, op.path));
  EditReport report;
  switch (op.kind) {
    case EditOpKind::kAddNode: {
      if (!IsValidId(op.name)) {
        return InvalidArgumentError("'" + op.name + "' is not a valid node name");
      }
      if (target->FindChild(op.name) != nullptr) {
        return InvalidArgumentError("node '" + op.name + "' already exists under " +
                                    target->DisplayPath());
      }
      auto child = std::make_unique<Node>(op.node_kind);
      child->set_name(op.name);
      if (!op.channel.empty()) {
        child->attrs().Set(std::string(kAttrChannel), AttrValue::Id(op.channel));
      }
      CMIF_RETURN_IF_ERROR(target->AddChild(std::move(child)).status());
      return report;
    }
    case EditOpKind::kRemoveNode:
      return DeleteSubtree(document, *target);
    case EditOpKind::kAddArc: {
      CMIF_RETURN_IF_ERROR(op.arc.CheckShape());
      CMIF_RETURN_IF_ERROR(target->Resolve(op.arc.source).status());
      CMIF_RETURN_IF_ERROR(target->Resolve(op.arc.dest).status());
      target->AddArc(op.arc);
      return report;
    }
    case EditOpKind::kRemoveArc: {
      if (op.arc_index < 0 || static_cast<std::size_t>(op.arc_index) >= target->arcs().size()) {
        return OutOfRangeError(StrFormat("no arc #%d on ", op.arc_index) + target->DisplayPath());
      }
      report.dropped_arcs.push_back(DroppedArc{
          target->DisplayPath(), target->arcs()[static_cast<std::size_t>(op.arc_index)],
          "removed by edit"});
      target->arcs().erase(target->arcs().begin() + op.arc_index);
      return report;
    }
    case EditOpKind::kRetuneArc: {
      if (op.arc_index < 0 || static_cast<std::size_t>(op.arc_index) >= target->arcs().size()) {
        return OutOfRangeError(StrFormat("no arc #%d on ", op.arc_index) + target->DisplayPath());
      }
      SyncArc updated = target->arcs()[static_cast<std::size_t>(op.arc_index)];
      updated.offset = op.arc.offset;
      updated.min_delay = op.arc.min_delay;
      updated.max_delay = op.arc.max_delay;
      CMIF_RETURN_IF_ERROR(updated.CheckShape());
      target->arcs()[static_cast<std::size_t>(op.arc_index)] = std::move(updated);
      return report;
    }
  }
  return InvalidArgumentError("unknown edit op kind");
}

}  // namespace cmif
