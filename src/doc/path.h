// Relative node path names. Synchronization arcs reference their source and
// destination "by using named nodes" with "a relative path name in the tree";
// "the empty name specifies the current node itself" (section 5.3.2).
//
// Concrete syntax: segments joined by '/'. A leading '/' makes the path
// absolute (from the root). ".." ascends to the parent; every other segment
// descends into the child with that name. The empty string is the current
// node.
#ifndef SRC_DOC_PATH_H_
#define SRC_DOC_PATH_H_

#include <string>
#include <vector>

#include "src/base/status.h"

namespace cmif {

// A parsed path. Value-semantic.
class NodePath {
 public:
  // The empty (self) path.
  NodePath() = default;

  // Parses the syntax above. Segment names must be valid IDs or "..".
  static StatusOr<NodePath> Parse(std::string_view text);
  // A path of the given segments, relative.
  static NodePath Relative(std::vector<std::string> segments);
  // An absolute path of the given segments.
  static NodePath Absolute(std::vector<std::string> segments);

  bool is_absolute() const { return absolute_; }
  bool is_self() const { return !absolute_ && segments_.empty(); }
  const std::vector<std::string>& segments() const { return segments_; }

  std::string ToString() const;

  bool operator==(const NodePath& other) const = default;

 private:
  bool absolute_ = false;
  std::vector<std::string> segments_;
};

}  // namespace cmif

#endif  // SRC_DOC_PATH_H_
