// The CMIF document: a tree of nodes plus the root-level channel and style
// dictionaries. "At the root of the tree is a general node that describes
// the summary structure of a document ... a place where various directory
// attributes are found and ... an implied timing reference point for all
// other nodes" (section 5.1).
#ifndef SRC_DOC_DOCUMENT_H_
#define SRC_DOC_DOCUMENT_H_

#include <memory>
#include <optional>
#include <string>

#include "src/attr/inherit.h"
#include "src/attr/registry.h"
#include "src/attr/style.h"
#include "src/doc/channel.h"
#include "src/doc/node.h"

namespace cmif {

// Owns the node tree and the root dictionaries. Movable, clonable, not
// copyable.
class Document {
 public:
  // A fresh document whose root is a composite node of `root_kind`.
  explicit Document(NodeKind root_kind = NodeKind::kSeq);
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  Node& root() { return *root_; }
  const Node& root() const { return *root_; }

  ChannelDictionary& channels() { return channels_; }
  const ChannelDictionary& channels() const { return channels_; }
  StyleDictionary& styles() { return styles_; }
  const StyleDictionary& styles() const { return styles_; }

  // The attribute registry used for inheritance and validation (the
  // standard Figure-7 registry).
  const AttrRegistry& registry() const { return AttrRegistry::Standard(); }

  // Effective value of one attribute at `node`, honoring styles and
  // inheritance. nullopt when unset.
  StatusOr<std::optional<AttrValue>> ResolveAttr(const Node& node, std::string_view name) const;
  // The node's complete effective attribute list.
  StatusOr<AttrList> EffectiveAttrs(const Node& node) const;
  // The channel the node's data is directed to (the effective "channel"
  // attribute); NotFound when unset.
  StatusOr<std::string> ChannelOf(const Node& node) const;

  // Writes the dictionaries into the root node's style_dict / channel_dict
  // attributes (done automatically by the serializer).
  void StoreDictionariesOnRoot();
  // Rebuilds the dictionaries from the root attributes (done automatically
  // by the parser). Existing dictionary contents are replaced.
  Status LoadDictionariesFromRoot();

  // Deep copy.
  Document Clone() const;

 private:
  std::unique_ptr<Node> root_;
  ChannelDictionary channels_;
  StyleDictionary styles_;
};

}  // namespace cmif

#endif  // SRC_DOC_DOCUMENT_H_
