#include "src/doc/document.h"

namespace cmif {

Document::Document(NodeKind root_kind)
    : root_(std::make_unique<Node>(root_kind == NodeKind::kPar ? NodeKind::kPar
                                                               : NodeKind::kSeq)) {}

StatusOr<std::optional<AttrValue>> Document::ResolveAttr(const Node& node,
                                                         std::string_view name) const {
  std::vector<const AttrList*> chain = node.AttrChainFromRoot();
  return ResolveAttribute(chain, name, registry(), styles_);
}

StatusOr<AttrList> Document::EffectiveAttrs(const Node& node) const {
  std::vector<const AttrList*> chain = node.AttrChainFromRoot();
  return cmif::EffectiveAttrs(chain, registry(), styles_);
}

StatusOr<std::string> Document::ChannelOf(const Node& node) const {
  CMIF_ASSIGN_OR_RETURN(std::optional<AttrValue> value, ResolveAttr(node, kAttrChannel));
  if (!value.has_value()) {
    return NotFoundError("node " + node.DisplayPath() + " has no channel attribute");
  }
  return value->AsId();
}

void Document::StoreDictionariesOnRoot() {
  if (styles_.size() > 0) {
    root_->attrs().Set(std::string(kAttrStyleDict), styles_.ToAttrValue());
  } else {
    root_->attrs().Remove(kAttrStyleDict);
  }
  if (!channels_.empty()) {
    root_->attrs().Set(std::string(kAttrChannelDict), channels_.ToAttrValue());
  } else {
    root_->attrs().Remove(kAttrChannelDict);
  }
}

Status Document::LoadDictionariesFromRoot() {
  if (const AttrValue* styles = root_->attrs().Find(kAttrStyleDict)) {
    CMIF_ASSIGN_OR_RETURN(styles_, StyleDictionary::FromAttrValue(*styles));
  } else {
    styles_ = StyleDictionary();
  }
  if (const AttrValue* channels = root_->attrs().Find(kAttrChannelDict)) {
    CMIF_ASSIGN_OR_RETURN(channels_, ChannelDictionary::FromAttrValue(*channels));
  } else {
    channels_ = ChannelDictionary();
  }
  return Status::Ok();
}

Document Document::Clone() const {
  Document copy(root_->kind());
  copy.root_ = root_->Clone();
  copy.channels_ = channels_;
  copy.styles_ = styles_;
  return copy;
}

}  // namespace cmif
