#include "src/doc/channel.h"

#include "src/base/string_util.h"

namespace cmif {

Status ChannelDictionary::Define(std::string name, MediaType medium, AttrList extra) {
  if (!IsValidId(name)) {
    return InvalidArgumentError("channel name '" + name + "' is not a valid ID");
  }
  if (Has(name)) {
    return AlreadyExistsError("channel '" + name + "' already defined");
  }
  channels_.push_back(ChannelDef{std::move(name), medium, std::move(extra)});
  return Status::Ok();
}

const ChannelDef* ChannelDictionary::Find(std::string_view name) const {
  for (const ChannelDef& channel : channels_) {
    if (channel.name == name) {
      return &channel;
    }
  }
  return nullptr;
}

AttrValue ChannelDictionary::ToAttrValue() const {
  std::vector<Attr> entries;
  entries.reserve(channels_.size());
  for (const ChannelDef& channel : channels_) {
    std::vector<Attr> body;
    body.push_back(Attr{"medium", AttrValue::Id(std::string(MediaTypeName(channel.medium)))});
    for (const Attr& extra : channel.extra.attrs()) {
      body.push_back(extra);
    }
    entries.push_back(Attr{channel.name, AttrValue::List(std::move(body))});
  }
  return AttrValue::List(std::move(entries));
}

StatusOr<ChannelDictionary> ChannelDictionary::FromAttrValue(const AttrValue& value) {
  if (!value.is_list()) {
    return InvalidArgumentError("channel_dict must be a LIST value");
  }
  ChannelDictionary dict;
  for (const Attr& entry : value.list()) {
    if (!entry.value.is_list()) {
      return InvalidArgumentError("channel definition '" + entry.name + "' must be a LIST");
    }
    AttrList body = AttrList::FromAttrs(entry.value.list());
    CMIF_ASSIGN_OR_RETURN(std::string medium_name, body.GetId("medium"));
    CMIF_ASSIGN_OR_RETURN(MediaType medium, ParseMediaType(medium_name));
    body.Remove("medium");
    CMIF_RETURN_IF_ERROR(dict.Define(entry.name, medium, std::move(body)));
  }
  return dict;
}

}  // namespace cmif
