// Structure editing with synchronization-arc consistency. The pipeline's
// reading tools may "edit a document" (section 2); because arcs reference
// nodes by relative path, naive tree surgery silently breaks them. These
// operations re-anchor every affected arc (or drop arcs that can no longer
// bind, reporting them).
#ifndef SRC_DOC_EDIT_H_
#define SRC_DOC_EDIT_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/doc/document.h"

namespace cmif {

// Arcs removed by an edit, with the reason.
struct DroppedArc {
  std::string owner_path;  // display path of the node the arc was written on
  SyncArc arc;
  std::string reason;
};

// The outcome of one editing operation.
struct EditReport {
  std::vector<DroppedArc> dropped_arcs;
  std::size_t rewritten_arcs = 0;  // arcs whose paths were re-anchored
};

// Renames `node` (a valid ID, unique among its siblings) and rewrites every
// arc path in the document that traverses it.
StatusOr<EditReport> RenameNode(Document& document, Node& node, const std::string& new_name);

// Deletes the subtree rooted at `node` (not the root). Arcs with an endpoint
// inside the subtree are dropped and reported; arcs elsewhere are preserved.
StatusOr<EditReport> DeleteSubtree(Document& document, Node& node);

// Moves the subtree rooted at `node` under `new_parent` at `index`
// (clamped). The subtree must not contain `new_parent`; the parent must be
// composite. Arcs between the moved subtree and the rest of the document
// are re-anchored; arcs that cannot be expressed afterwards (an unnamed
// node on the new path) are dropped and reported.
StatusOr<EditReport> MoveSubtree(Document& document, Node& node, Node& new_parent,
                                 std::size_t index);

}  // namespace cmif

#endif  // SRC_DOC_EDIT_H_
