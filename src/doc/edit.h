// Structure editing with synchronization-arc consistency. The pipeline's
// reading tools may "edit a document" (section 2); because arcs reference
// nodes by relative path, naive tree surgery silently breaks them. These
// operations re-anchor every affected arc (or drop arcs that can no longer
// bind, reporting them).
#ifndef SRC_DOC_EDIT_H_
#define SRC_DOC_EDIT_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/doc/document.h"

namespace cmif {

// Arcs removed by an edit, with the reason.
struct DroppedArc {
  std::string owner_path;  // display path of the node the arc was written on
  SyncArc arc;
  std::string reason;
};

// The outcome of one editing operation.
struct EditReport {
  std::vector<DroppedArc> dropped_arcs;
  std::size_t rewritten_arcs = 0;  // arcs whose paths were re-anchored
};

// Renames `node` (a valid ID, unique among its siblings) and rewrites every
// arc path in the document that traverses it.
StatusOr<EditReport> RenameNode(Document& document, Node& node, const std::string& new_name);

// Deletes the subtree rooted at `node` (not the root). Arcs with an endpoint
// inside the subtree are dropped and reported; arcs elsewhere are preserved.
StatusOr<EditReport> DeleteSubtree(Document& document, Node& node);

// Moves the subtree rooted at `node` under `new_parent` at `index`
// (clamped). The subtree must not contain `new_parent`; the parent must be
// composite. Arcs between the moved subtree and the rest of the document
// are re-anchored; arcs that cannot be expressed afterwards (an unnamed
// node on the new path) are dropped and reported.
StatusOr<EditReport> MoveSubtree(Document& document, Node& node, Node& new_parent,
                                 std::size_t index);

// -- Edit operations (the authoring/edit-session op language) ---------------
// One atomic document edit, addressable by stable node paths so a sequence
// of ops can be recorded, replayed, shrunk, and differentially tested. The
// textual form (one op per line) is what `cmif_tool edit` scripts, the
// conformance harness's edit traces, and corpus reproducers use:
//
//   add-node <parent-path> <name> <seq|par|ext|imm> [<channel>]
//   remove-node <path>
//   add-arc <owner-path> <src> <src-edge> <dst> <dst-edge> <must|may>
//           <offset> <min-delay> <max-delay|inf>
//   remove-arc <owner-path> <arc-index>
//   retune-arc <owner-path> <arc-index> <offset> <min-delay> <max-delay|inf>
//
// Node paths are absolute ("/story1/video"); arc endpoint paths are relative
// to the owning node, "." meaning the owner itself. Times use the
// ParseMediaTime syntax ("3", "1/25", "0.5"); "inf" is an unbounded
// max-delay.

enum class EditOpKind {
  kAddNode = 0,
  kRemoveNode,
  kAddArc,
  kRemoveArc,
  kRetuneArc,
};

std::string_view EditOpKindName(EditOpKind kind);

struct EditOp {
  EditOpKind kind = EditOpKind::kRetuneArc;
  // Absolute path of the op's anchor: the parent for kAddNode, the doomed
  // node for kRemoveNode, the arc's owning node for the arc ops.
  std::string path;
  // kAddNode payload.
  std::string name;
  NodeKind node_kind = NodeKind::kImm;
  std::string channel;  // "" = no channel attribute
  // kRemoveArc / kRetuneArc: index into the owner's arc list.
  int arc_index = -1;
  // kAddArc payload; kRetuneArc reads only offset/min_delay/max_delay.
  SyncArc arc;
};

// The one-line textual form above; FormatEditOp(ParseEditOp(x)) is x up to
// time normalization.
std::string FormatEditOp(const EditOp& op);
StatusOr<EditOp> ParseEditOp(const std::string& line);

// Applies one op to the tree. Arc endpoints are validated before anything
// mutates; kRemoveNode reports arcs dropped with the subtree.
StatusOr<EditReport> ApplyEdit(Document& document, const EditOp& op);

}  // namespace cmif

#endif  // SRC_DOC_EDIT_H_
