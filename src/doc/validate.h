// Document validation: the "global consistency rules" of section 5.2 plus
// structural checks needed before scheduling. Validation never mutates the
// document; it reports issues so that authoring tools can "signal problems,
// allowing other mechanisms to provide solutions" (section 5.3.3).
#ifndef SRC_DOC_VALIDATE_H_
#define SRC_DOC_VALIDATE_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/doc/document.h"

namespace cmif {

enum class IssueSeverity { kWarning = 0, kError };

// One finding, anchored to a node's display path.
struct ValidationIssue {
  IssueSeverity severity = IssueSeverity::kError;
  std::string node_path;
  std::string message;
};

// The full set of findings from one validation pass.
struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const;
  std::size_t error_count() const;
  std::size_t warning_count() const;
  // One line per issue: "ERROR /story1/video: ...".
  std::string ToString() const;
  // OK, or FailedPrecondition summarizing the first error.
  Status ToStatus() const;
};

// Checks, in document order:
//  - node names are valid IDs and unique among direct siblings (Figure 7);
//  - standard attributes appear only on permitted node kinds with the
//    registered value kind; root-only dictionaries stay on the root;
//  - style references exist and style definitions are acyclic;
//  - channel references name defined channels; leaves have a channel
//    (warning when the channel is missing entirely);
//  - external nodes carry (or inherit) a file attribute; when `store` is
//    given, the referenced descriptor must exist and its medium must match
//    the channel's medium;
//  - immediate nodes carry data whose medium matches the medium attribute;
//  - slice/crop/clip attributes are well-formed lists on the right media;
//  - sync arcs satisfy the sign conventions (offset >= 0, min_delay <= 0,
//    max_delay >= 0) and both endpoint paths resolve to nodes.
ValidationReport ValidateDocument(const Document& document,
                                  const DescriptorStore* store = nullptr);

}  // namespace cmif

#endif  // SRC_DOC_VALIDATE_H_
