#include "src/doc/event.h"

namespace cmif {
namespace {

// Fills the event's duration window from, in order of preference:
// an explicit duration attribute (rigid), the block/descriptor intrinsic
// length (rigid for continuous media, a stretchable minimum for discrete).
void FillDuration(EventDescriptor& event, const DataDescriptor* descriptor,
                  const Node& node) {
  if (const AttrValue* explicit_duration = event.effective_attrs.Find(kAttrDuration)) {
    auto t = explicit_duration->AsTime();
    if (t.ok()) {
      event.min_duration = *t;
      event.max_duration = *t;
      return;
    }
  }
  MediaTime intrinsic;
  if (node.kind() == NodeKind::kImm) {
    intrinsic = node.immediate_data().IntrinsicDuration();
  } else if (descriptor != nullptr) {
    intrinsic = descriptor->DeclaredDuration();
  }
  bool continuous = event.medium == MediaType::kAudio || event.medium == MediaType::kVideo;
  event.min_duration = intrinsic;
  if (continuous && !intrinsic.is_zero()) {
    event.max_duration = intrinsic;  // rigid
  } else {
    event.max_duration = std::nullopt;  // stretchable
  }
}

}  // namespace

StatusOr<std::vector<EventDescriptor>> CollectEvents(const Document& document,
                                                     const DescriptorStore* store) {
  std::vector<EventDescriptor> events;
  Status failure;
  document.root().Visit([&](const Node& node) {
    if (!failure.ok() || !node.is_leaf()) {
      return;
    }
    EventDescriptor event;
    event.node = &node;

    auto attrs = document.EffectiveAttrs(node);
    if (!attrs.ok()) {
      failure = attrs.status();
      return;
    }
    event.effective_attrs = std::move(attrs).value();

    const AttrValue* channel_attr = event.effective_attrs.Find(kAttrChannel);
    if (channel_attr == nullptr || !channel_attr->is_id()) {
      failure = FailedPreconditionError("leaf " + node.DisplayPath() +
                                        " has no channel attribute");
      return;
    }
    event.channel = channel_attr->id();
    const ChannelDef* channel = document.channels().Find(event.channel);
    if (channel == nullptr) {
      failure = NotFoundError("leaf " + node.DisplayPath() + " uses undefined channel '" +
                              event.channel + "'");
      return;
    }
    event.medium = channel->medium;

    const DataDescriptor* descriptor = nullptr;
    if (node.kind() == NodeKind::kExt) {
      const AttrValue* file_attr = event.effective_attrs.Find(kAttrFile);
      if (file_attr == nullptr || !file_attr->is_string()) {
        failure = FailedPreconditionError("external node " + node.DisplayPath() +
                                          " has no file attribute");
        return;
      }
      event.descriptor_id = file_attr->string();
      if (store != nullptr) {
        descriptor = store->Get(event.descriptor_id);
      }
    }
    FillDuration(event, descriptor, node);
    events.push_back(std::move(event));
  });
  if (!failure.ok()) {
    return failure;
  }
  return events;
}

namespace {

// Reads a two-field (begin/length) sub-selection list.
StatusOr<std::pair<std::int64_t, std::int64_t>> ReadRange(const AttrValue& value,
                                                          std::string_view attr) {
  if (!value.is_list()) {
    return InvalidArgumentError(std::string(attr) + " must be a LIST");
  }
  AttrList fields = AttrList::FromAttrs(value.list());
  CMIF_ASSIGN_OR_RETURN(std::int64_t begin, fields.GetNumber("begin"));
  CMIF_ASSIGN_OR_RETURN(std::int64_t length, fields.GetNumber("length"));
  return std::make_pair(begin, length);
}

}  // namespace

StatusOr<DataBlock> MaterializeEvent(const EventDescriptor& event, const DescriptorStore& store,
                                     const BlockStore& blocks) {
  DataBlock block;
  if (event.node->kind() == NodeKind::kImm) {
    block = event.node->immediate_data();
  } else {
    const DataDescriptor* descriptor = store.Get(event.descriptor_id);
    if (descriptor == nullptr) {
      return NotFoundError("descriptor '" + event.descriptor_id + "' not stored");
    }
    CMIF_ASSIGN_OR_RETURN(block, ResolveContent(*descriptor, blocks));
  }

  if (const AttrValue* clip = event.effective_attrs.Find(kAttrClip)) {
    CMIF_ASSIGN_OR_RETURN(auto range, ReadRange(*clip, kAttrClip));
    CMIF_ASSIGN_OR_RETURN(AudioBuffer audio, block.AsAudio());
    CMIF_ASSIGN_OR_RETURN(AudioBuffer clipped,
                          audio.Clip(static_cast<std::size_t>(range.first),
                                     static_cast<std::size_t>(range.second)));
    block = DataBlock::FromAudio(std::move(clipped));
  }
  if (const AttrValue* slice = event.effective_attrs.Find(kAttrSlice)) {
    CMIF_ASSIGN_OR_RETURN(auto range, ReadRange(*slice, kAttrSlice));
    CMIF_ASSIGN_OR_RETURN(VideoSegment video, block.AsVideo());
    CMIF_ASSIGN_OR_RETURN(VideoSegment sliced,
                          video.Slice(static_cast<std::size_t>(range.first),
                                      static_cast<std::size_t>(range.second)));
    block = DataBlock::FromVideo(std::move(sliced));
  }
  if (const AttrValue* crop = event.effective_attrs.Find(kAttrCrop)) {
    if (!crop->is_list()) {
      return InvalidArgumentError("crop must be a LIST");
    }
    AttrList fields = AttrList::FromAttrs(crop->list());
    CMIF_ASSIGN_OR_RETURN(std::int64_t x, fields.GetNumber("x"));
    CMIF_ASSIGN_OR_RETURN(std::int64_t y, fields.GetNumber("y"));
    CMIF_ASSIGN_OR_RETURN(std::int64_t w, fields.GetNumber("w"));
    CMIF_ASSIGN_OR_RETURN(std::int64_t h, fields.GetNumber("h"));
    CMIF_ASSIGN_OR_RETURN(Raster image, block.AsImage());
    CMIF_ASSIGN_OR_RETURN(Raster cropped,
                          image.Crop(static_cast<int>(x), static_cast<int>(y),
                                     static_cast<int>(w), static_cast<int>(h)));
    block = DataBlock::FromImage(std::move(cropped), block.medium());
  }
  return block;
}

std::vector<const EventDescriptor*> EventsOnChannel(const std::vector<EventDescriptor>& events,
                                                    std::string_view channel) {
  std::vector<const EventDescriptor*> out;
  for (const EventDescriptor& event : events) {
    if (event.channel == channel) {
      out.push_back(&event);
    }
  }
  return out;
}

}  // namespace cmif
