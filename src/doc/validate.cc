#include "src/doc/validate.h"

#include <set>

#include "src/base/string_util.h"

namespace cmif {

bool ValidationReport::ok() const { return error_count() == 0; }

std::size_t ValidationReport::error_count() const {
  std::size_t n = 0;
  for (const ValidationIssue& issue : issues) {
    if (issue.severity == IssueSeverity::kError) {
      ++n;
    }
  }
  return n;
}

std::size_t ValidationReport::warning_count() const { return issues.size() - error_count(); }

std::string ValidationReport::ToString() const {
  std::string out;
  for (const ValidationIssue& issue : issues) {
    out += issue.severity == IssueSeverity::kError ? "ERROR " : "WARN  ";
    out += issue.node_path;
    out += ": ";
    out += issue.message;
    out += '\n';
  }
  return out;
}

Status ValidationReport::ToStatus() const {
  for (const ValidationIssue& issue : issues) {
    if (issue.severity == IssueSeverity::kError) {
      return FailedPreconditionError(StrFormat("%zu validation error(s); first: %s: %s",
                                               error_count(), issue.node_path.c_str(),
                                               issue.message.c_str()));
    }
  }
  return Status::Ok();
}

namespace {

class Validator {
 public:
  Validator(const Document& document, const DescriptorStore* store)
      : document_(document), store_(store) {}

  ValidationReport Run() {
    CheckStyles();
    CheckNode(document_.root());
    return std::move(report_);
  }

 private:
  void Error(const Node& node, std::string message) {
    report_.issues.push_back(
        ValidationIssue{IssueSeverity::kError, node.DisplayPath(), std::move(message)});
  }
  void Warn(const Node& node, std::string message) {
    report_.issues.push_back(
        ValidationIssue{IssueSeverity::kWarning, node.DisplayPath(), std::move(message)});
  }

  void CheckStyles() {
    Status status = document_.styles().Validate();
    if (!status.ok()) {
      Error(document_.root(), "style dictionary invalid: " + status.message());
    }
  }

  static unsigned PlacementBit(const Node& node) {
    if (node.is_root()) {
      return kOnRoot;
    }
    switch (node.kind()) {
      case NodeKind::kSeq:
        return kOnSeq;
      case NodeKind::kPar:
        return kOnPar;
      case NodeKind::kExt:
        return kOnExt;
      case NodeKind::kImm:
        return kOnImm;
    }
    return 0;
  }

  void CheckAttrs(const Node& node) {
    unsigned placement = PlacementBit(node);
    for (const Attr& attr : node.attrs().attrs()) {
      const AttrSpec* spec = document_.registry().Find(attr.name);
      if (spec == nullptr) {
        continue;  // arbitrary attributes pass through uninterpreted
      }
      if ((spec->placement & placement) == 0) {
        Error(node, StrFormat("attribute '%s' is not allowed on a %s%s node", attr.name.c_str(),
                              node.is_root() ? "root " : "",
                              std::string(NodeKindName(node.kind())).c_str()));
      }
      if (spec->kind.has_value() && attr.value.kind() != *spec->kind &&
          !(*spec->kind == AttrKind::kTime && attr.value.is_number())) {
        Error(node, StrFormat("attribute '%s' must be %s, got %s", attr.name.c_str(),
                              std::string(AttrKindName(*spec->kind)).c_str(),
                              std::string(AttrKindName(attr.value.kind())).c_str()));
      }
    }
    if (const AttrValue* name = node.attrs().Find(kAttrName)) {
      if (!name->is_id() || !IsValidId(name->id())) {
        Error(node, "name attribute must be a valid ID");
      }
    }
    if (const AttrValue* style = node.attrs().Find(kAttrStyle)) {
      auto expanded = document_.styles().ExpandStyleValue(*style);
      if (!expanded.ok()) {
        Error(node, "style reference invalid: " + expanded.status().message());
      }
    }
  }

  void CheckSiblingNames(const Node& node) {
    std::set<std::string> seen;
    for (const auto& child : node.children()) {
      std::string name = child->name();
      if (name.empty()) {
        continue;
      }
      if (!seen.insert(name).second) {
        Error(*child, "duplicate sibling name '" + name + "'");
      }
    }
  }

  void CheckLeafMedia(const Node& node) {
    // Resolve the channel; a leaf without one cannot be presented.
    auto channel_name = document_.ChannelOf(node);
    const ChannelDef* channel = nullptr;
    if (!channel_name.ok()) {
      Warn(node, "leaf has no channel attribute; it will never be presented");
    } else {
      channel = document_.channels().Find(*channel_name);
      if (channel == nullptr) {
        Error(node, "channel '" + *channel_name + "' is not defined on the root");
      }
    }

    if (node.kind() == NodeKind::kExt) {
      auto file = document_.ResolveAttr(node, kAttrFile);
      if (!file.ok() || !file->has_value()) {
        Error(node, "external node has no file attribute (own or inherited)");
      } else if (!(*file)->is_string()) {
        Error(node, "file attribute must be a STRING");
      } else if (store_ != nullptr) {
        const DataDescriptor* descriptor = store_->Get((*file)->string());
        if (descriptor == nullptr) {
          Error(node, "data descriptor '" + (*file)->string() + "' not found in the database");
        } else if (channel != nullptr && descriptor->Medium() != channel->medium) {
          Error(node, StrFormat("descriptor medium %s does not match channel medium %s",
                                std::string(MediaTypeName(descriptor->Medium())).c_str(),
                                std::string(MediaTypeName(channel->medium)).c_str()));
        }
      }
    }

    if (node.kind() == NodeKind::kImm) {
      std::string declared = node.attrs().GetIdOr(std::string(kAttrMedium), "text");
      auto medium = ParseMediaType(declared);
      if (!medium.ok()) {
        Error(node, "medium attribute invalid: " + medium.status().message());
      } else if (node.immediate_data().medium() != *medium) {
        Error(node, StrFormat("immediate data is %s but the medium attribute says %s",
                              std::string(MediaTypeName(node.immediate_data().medium())).c_str(),
                              declared.c_str()));
      }
      if (channel != nullptr && node.immediate_data().medium() != channel->medium) {
        Error(node, StrFormat("immediate data medium %s does not match channel medium %s",
                              std::string(MediaTypeName(node.immediate_data().medium())).c_str(),
                              std::string(MediaTypeName(channel->medium)).c_str()));
      }
    }
  }

  // slice/crop/clip are LISTs of NUMBERs with fixed field names.
  void CheckRegionAttrs(const Node& node) {
    static constexpr struct {
      std::string_view attr;
      std::string_view fields[4];
      std::size_t field_count;
    } kShapes[] = {
        {kAttrSlice, {"begin", "length", "", ""}, 2},
        {kAttrClip, {"begin", "length", "", ""}, 2},
        {kAttrCrop, {"x", "y", "w", "h"}, 4},
    };
    for (const auto& shape : kShapes) {
      const AttrValue* v = node.attrs().Find(shape.attr);
      if (v == nullptr) {
        continue;
      }
      if (!v->is_list()) {
        Error(node, std::string(shape.attr) + " must be a LIST");
        continue;
      }
      AttrList fields = AttrList::FromAttrs(v->list());
      for (std::size_t i = 0; i < shape.field_count; ++i) {
        auto n = fields.GetNumber(shape.fields[i]);
        if (!n.ok()) {
          Error(node, StrFormat("%s needs NUMBER field '%s'", std::string(shape.attr).c_str(),
                                std::string(shape.fields[i]).c_str()));
        } else if (*n < 0) {
          Error(node, StrFormat("%s field '%s' must be non-negative",
                                std::string(shape.attr).c_str(),
                                std::string(shape.fields[i]).c_str()));
        }
      }
    }
  }

  void CheckArcs(const Node& node) {
    for (const SyncArc& arc : node.arcs()) {
      Status shape = arc.CheckShape();
      if (!shape.ok()) {
        Error(node, "sync arc invalid: " + shape.message());
        continue;
      }
      auto source = node.Resolve(arc.source);
      if (!source.ok()) {
        Error(node, "arc source does not resolve: " + source.status().message());
      }
      auto dest = node.Resolve(arc.dest);
      if (!dest.ok()) {
        Error(node, "arc destination does not resolve: " + dest.status().message());
      }
      if (source.ok() && dest.ok() && *source == *dest && arc.source_edge == arc.dest_edge) {
        Error(node, "arc connects a node edge to itself");
      }
    }
  }

  void CheckNode(const Node& node) {
    CheckAttrs(node);
    CheckArcs(node);
    if (node.is_composite()) {
      CheckSiblingNames(node);
      if (node.children().empty() && !node.is_root()) {
        Warn(node, std::string(NodeKindName(node.kind())) + " node has no children");
      }
      for (const auto& child : node.children()) {
        CheckNode(*child);
      }
    } else {
      CheckLeafMedia(node);
      CheckRegionAttrs(node);
    }
  }

  const Document& document_;
  const DescriptorStore* store_;
  ValidationReport report_;
};

}  // namespace

ValidationReport ValidateDocument(const Document& document, const DescriptorStore* store) {
  return Validator(document, store).Run();
}

}  // namespace cmif
