#include "src/doc/stats.h"

#include <set>
#include <sstream>

#include "src/base/string_util.h"

namespace cmif {
namespace {

// Rough serialized footprint of an attribute value.
std::size_t ValueBytes(const AttrValue& value) {
  switch (value.kind()) {
    case AttrKind::kId:
      return value.id().size();
    case AttrKind::kNumber:
    case AttrKind::kTime:
      return 8;
    case AttrKind::kString:
      return value.string().size() + 2;
    case AttrKind::kList: {
      std::size_t total = 2;
      for (const Attr& attr : value.list()) {
        total += attr.name.size() + 1 + ValueBytes(attr.value);
      }
      return total;
    }
  }
  return 0;
}

}  // namespace

DocumentStats ComputeStats(const Document& document, const DescriptorStore* store) {
  DocumentStats stats;
  stats.channel_count = document.channels().size();
  stats.style_count = document.styles().size();
  std::set<std::string> descriptors;

  document.root().Visit([&](const Node& node) {
    ++stats.total_nodes;
    switch (node.kind()) {
      case NodeKind::kSeq:
        ++stats.seq_nodes;
        break;
      case NodeKind::kPar:
        ++stats.par_nodes;
        break;
      case NodeKind::kExt:
        ++stats.ext_nodes;
        break;
      case NodeKind::kImm:
        ++stats.imm_nodes;
        break;
    }
    stats.max_depth = std::max(stats.max_depth, node.Depth());
    stats.arc_count += node.arcs().size();
    for (const SyncArc& arc : node.arcs()) {
      if (arc.rigor == ArcRigor::kMust) {
        ++stats.must_arcs;
      } else {
        ++stats.may_arcs;
      }
    }
    stats.attr_count += node.attrs().size();
    stats.structure_bytes += 8;  // node framing
    for (const Attr& attr : node.attrs().attrs()) {
      stats.structure_bytes += attr.name.size() + 1 + ValueBytes(attr.value);
    }

    if (node.is_leaf()) {
      auto channel = document.ChannelOf(node);
      ++stats.events_per_channel[channel.ok() ? *channel : std::string()];
      if (node.kind() == NodeKind::kExt) {
        auto file = document.ResolveAttr(node, kAttrFile);
        if (file.ok() && file->has_value() && (*file)->is_string()) {
          descriptors.insert((*file)->string());
        }
      }
    }
  });

  stats.distinct_descriptors = descriptors.size();
  if (store != nullptr) {
    for (const std::string& id : descriptors) {
      if (const DataDescriptor* d = store->Get(id)) {
        stats.referenced_bytes += static_cast<std::size_t>(d->DeclaredBytes());
      }
    }
  }
  return stats;
}

std::string StatsToString(const DocumentStats& stats) {
  std::ostringstream os;
  os << "nodes: " << stats.total_nodes << " (seq " << stats.seq_nodes << ", par "
     << stats.par_nodes << ", ext " << stats.ext_nodes << ", imm " << stats.imm_nodes << ")\n";
  os << "depth: " << stats.max_depth << "\n";
  os << "arcs: " << stats.arc_count << " (must " << stats.must_arcs << ", may " << stats.may_arcs
     << ")\n";
  os << "attributes: " << stats.attr_count << "\n";
  os << "channels: " << stats.channel_count << ", styles: " << stats.style_count << "\n";
  os << "events per channel:\n";
  for (const auto& [channel, count] : stats.events_per_channel) {
    os << "  " << (channel.empty() ? "(unassigned)" : channel) << ": " << count << "\n";
  }
  os << "descriptors referenced: " << stats.distinct_descriptors << "\n";
  os << StrFormat("structure bytes: %zu vs media bytes: %zu (ratio 1:%.1f)\n",
                  stats.structure_bytes, stats.referenced_bytes,
                  stats.structure_bytes == 0
                      ? 0.0
                      : static_cast<double>(stats.referenced_bytes) /
                            static_cast<double>(stats.structure_bytes));
  return os.str();
}

}  // namespace cmif
