// Synchronization channels (section 3.1): "each channel describes how data
// of a single medium is manipulated in the document. ... Events that are
// placed on a single channel are synchronized in linear time order ... Two
// events that are placed on separate channels may be executed in parallel."
// The channel dictionary lives on the root node (Figure 7).
#ifndef SRC_DOC_CHANNEL_H_
#define SRC_DOC_CHANNEL_H_

#include <string>
#include <vector>

#include "src/attr/attr_list.h"
#include "src/base/status.h"
#include "src/media/media_type.h"

namespace cmif {

// One channel definition: a name, the single medium it carries, and
// free-form extra attributes (presentation preferences etc.).
struct ChannelDef {
  std::string name;
  MediaType medium = MediaType::kText;
  AttrList extra;
  bool operator==(const ChannelDef& other) const {
    return name == other.name && medium == other.medium && extra == other.extra;
  }
};

// The ordered set of channels of a document. "It is possible to have several
// channels of the same medium type."
class ChannelDictionary {
 public:
  ChannelDictionary() = default;

  // Defines a channel; error on duplicate or invalid names.
  Status Define(std::string name, MediaType medium, AttrList extra = AttrList());

  const ChannelDef* Find(std::string_view name) const;
  bool Has(std::string_view name) const { return Find(name) != nullptr; }
  std::size_t size() const { return channels_.size(); }
  bool empty() const { return channels_.empty(); }
  const std::vector<ChannelDef>& channels() const { return channels_; }

  // Conversion to/from the root node's channel_dict attribute value: a LIST
  // of (channel_name -> LIST(medium <id> ...extras)) entries.
  AttrValue ToAttrValue() const;
  static StatusOr<ChannelDictionary> FromAttrValue(const AttrValue& value);

 private:
  std::vector<ChannelDef> channels_;
};

}  // namespace cmif

#endif  // SRC_DOC_CHANNEL_H_
