// Document statistics: the document structure's "internal table-of-contents
// function" (section 2). Everything here is computed from the structure and
// the descriptor attributes alone — never from media payloads — which is the
// paper's core efficiency argument (section 6).
#ifndef SRC_DOC_STATS_H_
#define SRC_DOC_STATS_H_

#include <map>
#include <string>

#include "src/base/media_time.h"
#include "src/ddbms/store.h"
#include "src/doc/document.h"

namespace cmif {

struct DocumentStats {
  std::size_t total_nodes = 0;
  std::size_t seq_nodes = 0;
  std::size_t par_nodes = 0;
  std::size_t ext_nodes = 0;
  std::size_t imm_nodes = 0;
  int max_depth = 0;
  std::size_t arc_count = 0;
  std::size_t must_arcs = 0;
  std::size_t may_arcs = 0;
  std::size_t attr_count = 0;  // attributes across all nodes
  std::size_t channel_count = 0;
  std::size_t style_count = 0;
  // Leaf events per channel name (channel "" collects unassigned leaves).
  std::map<std::string, std::size_t> events_per_channel;
  // Distinct data descriptors referenced by external nodes.
  std::size_t distinct_descriptors = 0;
  // Total declared payload bytes behind those descriptors (from their
  // attributes, not from the data). 0 when no store is supplied.
  std::size_t referenced_bytes = 0;
  // Size of the structural description itself (nodes + attrs, estimated).
  std::size_t structure_bytes = 0;
};

// Walks the tree once. `store` is optional and only feeds referenced_bytes /
// missing-descriptor detection.
DocumentStats ComputeStats(const Document& document, const DescriptorStore* store = nullptr);

// A human-readable table-of-contents rendering.
std::string StatsToString(const DocumentStats& stats);

}  // namespace cmif

#endif  // SRC_DOC_STATS_H_
