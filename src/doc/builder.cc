#include "src/doc/builder.h"

namespace cmif {

DocBuilder::DocBuilder(NodeKind root_kind) : document_(root_kind), cursor_(&document_.root()) {}

void DocBuilder::Fail(Status status) {
  if (first_error_.ok() && !status.ok()) {
    first_error_ = std::move(status);
  }
}

DocBuilder& DocBuilder::DefineChannel(std::string name, MediaType medium, AttrList extra) {
  Fail(document_.channels().Define(std::move(name), medium, std::move(extra)));
  return *this;
}

DocBuilder& DocBuilder::DefineStyle(std::string name, AttrList body) {
  Fail(document_.styles().Define(std::move(name), std::move(body)));
  return *this;
}

Node& DocBuilder::Attach(NodeKind kind, const std::string& name, bool descend) {
  if (cursor_->is_leaf()) {
    // Adding a sibling after a leaf: pop to the enclosing composite first.
    cursor_ = cursor_->parent();
  }
  auto added = cursor_->AddChild(kind);
  if (!added.ok()) {
    Fail(added.status());
    return *cursor_;
  }
  Node* node = *added;
  if (!name.empty()) {
    node->set_name(name);
  }
  if (descend || node->is_leaf()) {
    cursor_ = node;
  }
  return *node;
}

DocBuilder& DocBuilder::Seq(std::string name) {
  Attach(NodeKind::kSeq, name, /*descend=*/true);
  return *this;
}

DocBuilder& DocBuilder::Par(std::string name) {
  Attach(NodeKind::kPar, name, /*descend=*/true);
  return *this;
}

DocBuilder& DocBuilder::Ext(std::string name, std::string descriptor_id) {
  Node& node = Attach(NodeKind::kExt, name, /*descend=*/false);
  if (!descriptor_id.empty()) {
    node.attrs().Set(std::string(kAttrFile), AttrValue::String(std::move(descriptor_id)));
  }
  return *this;
}

DocBuilder& DocBuilder::ImmText(std::string name, std::string text) {
  Node& node = Attach(NodeKind::kImm, name, /*descend=*/false);
  node.set_immediate_data(DataBlock::FromText(TextBlock(std::move(text), TextFormatting{})));
  return *this;
}

DocBuilder& DocBuilder::Imm(std::string name, DataBlock data) {
  Node& node = Attach(NodeKind::kImm, name, /*descend=*/false);
  if (data.medium() != MediaType::kText) {
    node.attrs().Set(std::string(kAttrMedium),
                     AttrValue::Id(std::string(MediaTypeName(data.medium()))));
  }
  node.set_immediate_data(std::move(data));
  return *this;
}

DocBuilder& DocBuilder::Up() {
  // From a leaf, Up means "leave the enclosing composite": pop twice.
  if (cursor_->is_leaf() && cursor_->parent() != nullptr) {
    cursor_ = cursor_->parent();
  }
  if (cursor_->parent() == nullptr) {
    Fail(FailedPreconditionError("Up() called at the root"));
    return *this;
  }
  cursor_ = cursor_->parent();
  return *this;
}

DocBuilder& DocBuilder::ToRoot() {
  cursor_ = &document_.root();
  return *this;
}

DocBuilder& DocBuilder::Attr(std::string name, AttrValue value) {
  cursor_->attrs().Set(std::move(name), std::move(value));
  return *this;
}

DocBuilder& DocBuilder::OnChannel(std::string channel) {
  return Attr(std::string(kAttrChannel), AttrValue::Id(std::move(channel)));
}

DocBuilder& DocBuilder::WithDuration(MediaTime duration) {
  return Attr(std::string(kAttrDuration), AttrValue::Time(duration));
}

DocBuilder& DocBuilder::WithStyle(std::string style) {
  return Attr(std::string(kAttrStyle), AttrValue::Id(std::move(style)));
}

DocBuilder& DocBuilder::Arc(SyncArc arc) {
  Status shape = arc.CheckShape();
  if (!shape.ok()) {
    Fail(std::move(shape));
    return *this;
  }
  cursor_->AddArc(std::move(arc));
  return *this;
}

StatusOr<Document> DocBuilder::Build() {
  if (built_) {
    return FailedPreconditionError("Build() called twice on the same DocBuilder");
  }
  built_ = true;
  if (!first_error_.ok()) {
    return first_error_;
  }
  return std::move(document_);
}

}  // namespace cmif
