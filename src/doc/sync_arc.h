// Synchronization arcs (Figure 9): "type source offset destination
// min_delay max_delay". An arc is a directed connection from the controlling
// event to the controlled event. The general synchronization equation
// (section 5.3.1) is
//
//     t_ref + delta <= t_actual <= t_ref + epsilon
//
// where t_ref is the source edge's time plus the offset, delta (min_delay)
// is <= 0 ("a negative delay represents the ability to start the target node
// sooner"; a positive minimum "has no meaning"), and epsilon (max_delay) is
// >= 0 and possibly infinite.
#ifndef SRC_DOC_SYNC_ARC_H_
#define SRC_DOC_SYNC_ARC_H_

#include <optional>
#include <string>

#include "src/base/media_time.h"
#include "src/base/status.h"
#include "src/doc/path.h"

namespace cmif {

// Which edge of an event an arc endpoint attaches to. "Synchronization arcs
// can be placed at the beginning of an event or at the end" (section 3.1).
enum class ArcEdge { kBegin = 0, kEnd };

// Must/may hardness. "May synchronization is ... desirable but not
// essential. Must ... tells the implementation environment that it should do
// all it can, even at the expense of overall system performance" (5.3.2).
enum class ArcRigor { kMust = 0, kMay };

std::string_view ArcEdgeName(ArcEdge edge);
std::string_view ArcRigorName(ArcRigor rigor);
StatusOr<ArcEdge> ParseArcEdge(std::string_view name);
StatusOr<ArcRigor> ParseArcRigor(std::string_view name);

// One synchronization arc, owned by the node it is written on; source and
// destination paths are relative to that node ("the empty name specifies the
// current node itself").
struct SyncArc {
  // The paper's "type" field: the source edge plus the rigor. We also carry
  // the destination edge (default begin) so end-to-end joins ("a new video
  // sequence may not start until the caption text is over") are first-class.
  ArcEdge source_edge = ArcEdge::kBegin;
  ArcEdge dest_edge = ArcEdge::kBegin;
  ArcRigor rigor = ArcRigor::kMust;
  NodePath source;  // controlling node
  NodePath dest;    // controlled node
  // Non-negative offset from the source edge, in document time (media-
  // dependent units are converted by the authoring layer).
  MediaTime offset;
  // delta <= 0: how much earlier than the reference the target may start.
  MediaTime min_delay;
  // epsilon >= 0: how much later; nullopt = unbounded ("possibly infinite").
  std::optional<MediaTime> max_delay = MediaTime();

  // Checks the sign conventions above; the paths are validated against the
  // tree by the document validator.
  Status CheckShape() const;

  // The Figure-9 tabular rendering.
  std::string ToString() const;

  bool operator==(const SyncArc& other) const = default;
};

// A hard (0, 0) window: source edge (+offset) and destination edge coincide.
SyncArc HardArc(NodePath source, ArcEdge source_edge, NodePath dest, ArcEdge dest_edge,
                MediaTime offset = MediaTime(), ArcRigor rigor = ArcRigor::kMust);
// A relaxed window [min_delay, max_delay] around the reference.
SyncArc WindowArc(NodePath source, ArcEdge source_edge, NodePath dest, ArcEdge dest_edge,
                  MediaTime offset, MediaTime min_delay, std::optional<MediaTime> max_delay,
                  ArcRigor rigor = ArcRigor::kMust);

}  // namespace cmif

#endif  // SRC_DOC_SYNC_ARC_H_
