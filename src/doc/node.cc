#include "src/doc/node.h"

#include <algorithm>

#include "src/attr/registry.h"
#include "src/base/string_util.h"

namespace cmif {

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSeq:
      return "seq";
    case NodeKind::kPar:
      return "par";
    case NodeKind::kExt:
      return "ext";
    case NodeKind::kImm:
      return "imm";
  }
  return "?";
}

StatusOr<NodeKind> ParseNodeKind(std::string_view name) {
  if (name == "seq") {
    return NodeKind::kSeq;
  }
  if (name == "par") {
    return NodeKind::kPar;
  }
  if (name == "ext") {
    return NodeKind::kExt;
  }
  if (name == "imm") {
    return NodeKind::kImm;
  }
  return InvalidArgumentError("unknown node kind '" + std::string(name) + "'");
}

std::string Node::name() const { return attrs_.GetIdOr(std::string(kAttrName), ""); }

void Node::set_name(std::string name) {
  attrs_.Set(std::string(kAttrName), AttrValue::Id(std::move(name)));
}

Node* Node::FindChild(std::string_view name) {
  for (const auto& child : children_) {
    if (child->name() == name) {
      return child.get();
    }
  }
  return nullptr;
}

const Node* Node::FindChild(std::string_view name) const {
  return const_cast<Node*>(this)->FindChild(name);
}

StatusOr<Node*> Node::AddChild(std::unique_ptr<Node> child) {
  if (is_leaf()) {
    return FailedPreconditionError(std::string(NodeKindName(kind_)) +
                                   " nodes are leaves and cannot have children");
  }
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

StatusOr<Node*> Node::AddChild(NodeKind kind) { return AddChild(std::make_unique<Node>(kind)); }

StatusOr<Node*> Node::InsertChild(std::size_t index, std::unique_ptr<Node> child) {
  if (is_leaf()) {
    return FailedPreconditionError(std::string(NodeKindName(kind_)) +
                                   " nodes are leaves and cannot have children");
  }
  index = std::min(index, children_.size());
  child->parent_ = this;
  Node* raw = child.get();
  children_.insert(children_.begin() + static_cast<std::ptrdiff_t>(index), std::move(child));
  return raw;
}

StatusOr<std::unique_ptr<Node>> Node::TakeChild(std::size_t index) {
  if (index >= children_.size()) {
    return OutOfRangeError(StrFormat("no child at index %zu (have %zu)", index,
                                     children_.size()));
  }
  std::unique_ptr<Node> child = std::move(children_[index]);
  children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(index));
  child->parent_ = nullptr;
  return child;
}

std::vector<const Node*> Node::PathFromRoot() const {
  std::vector<const Node*> path;
  for (const Node* n = this; n != nullptr; n = n->parent_) {
    path.push_back(n);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<const AttrList*> Node::AttrChainFromRoot() const {
  std::vector<const AttrList*> chain;
  for (const Node* n : PathFromRoot()) {
    chain.push_back(&n->attrs());
  }
  return chain;
}

std::string Node::DisplayPath() const {
  if (parent_ == nullptr) {
    return "/";
  }
  std::string out;
  std::vector<const Node*> path = PathFromRoot();
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Node* n = path[i];
    std::string name = n->name();
    if (name.empty()) {
      // Positional fallback for unnamed nodes.
      const Node* p = path[i - 1];
      for (std::size_t j = 0; j < p->children_.size(); ++j) {
        if (p->children_[j].get() == n) {
          name = StrFormat("#%zu", j);
          break;
        }
      }
    }
    out += '/';
    out += name;
  }
  return out;
}

int Node::Depth() const {
  int depth = 0;
  for (const Node* n = parent_; n != nullptr; n = n->parent_) {
    ++depth;
  }
  return depth;
}

std::size_t Node::SubtreeSize() const {
  std::size_t total = 1;
  for (const auto& child : children_) {
    total += child->SubtreeSize();
  }
  return total;
}

StatusOr<Node*> Node::Resolve(const NodePath& path) {
  Node* current = this;
  if (path.is_absolute()) {
    while (current->parent_ != nullptr) {
      current = current->parent_;
    }
  }
  for (const std::string& segment : path.segments()) {
    if (segment == "..") {
      if (current->parent_ == nullptr) {
        return NotFoundError("path '" + path.ToString() + "' ascends above the root");
      }
      current = current->parent_;
      continue;
    }
    Node* child = current->FindChild(segment);
    if (child == nullptr) {
      return NotFoundError("no child named '" + segment + "' under " + current->DisplayPath() +
                           " (resolving '" + path.ToString() + "')");
    }
    current = child;
  }
  return current;
}

StatusOr<const Node*> Node::Resolve(const NodePath& path) const {
  CMIF_ASSIGN_OR_RETURN(Node * node, const_cast<Node*>(this)->Resolve(path));
  return static_cast<const Node*>(node);
}

StatusOr<NodePath> Node::PathTo(const Node& target) const {
  std::vector<const Node*> mine = PathFromRoot();
  std::vector<const Node*> theirs = target.PathFromRoot();
  if (mine.front() != theirs.front()) {
    return InvalidArgumentError("nodes live in different trees");
  }
  std::size_t common = 0;
  while (common < mine.size() && common < theirs.size() && mine[common] == theirs[common]) {
    ++common;
  }
  std::vector<std::string> segments;
  for (std::size_t i = common; i < mine.size(); ++i) {
    segments.emplace_back("..");
  }
  for (std::size_t i = common; i < theirs.size(); ++i) {
    std::string name = theirs[i]->name();
    if (name.empty()) {
      return FailedPreconditionError("node " + theirs[i]->DisplayPath() +
                                     " is unnamed and cannot appear in a path");
    }
    segments.push_back(std::move(name));
  }
  return NodePath::Relative(std::move(segments));
}

void Node::Visit(const std::function<void(const Node&)>& fn) const {
  fn(*this);
  for (const auto& child : children_) {
    child->Visit(fn);
  }
}

void Node::VisitMutable(const std::function<void(Node&)>& fn) {
  fn(*this);
  for (const auto& child : children_) {
    child->VisitMutable(fn);
  }
}

std::unique_ptr<Node> Node::Clone() const {
  auto copy = std::make_unique<Node>(kind_);
  copy->attrs_ = attrs_;
  copy->immediate_data_ = immediate_data_;
  copy->arcs_ = arcs_;
  for (const auto& child : children_) {
    std::unique_ptr<Node> child_copy = child->Clone();
    child_copy->parent_ = copy.get();
    copy->children_.push_back(std::move(child_copy));
  }
  return copy;
}

}  // namespace cmif
