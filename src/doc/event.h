// Event descriptors: "a collection of attributes that describe how a single
// instance of a data block is integrated into a multimedia document"
// (section 3.1). Where a data descriptor describes the block itself, the
// event descriptor describes one use of it: which channel it plays on, with
// what effective attributes, and for how long. "The event descriptor can be
// used to define multiple uses of a single data descriptor."
#ifndef SRC_DOC_EVENT_H_
#define SRC_DOC_EVENT_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/doc/document.h"

namespace cmif {

// One scheduled use of a data block (one leaf node of the document).
struct EventDescriptor {
  // The leaf (external or immediate) node this event realizes.
  const Node* node = nullptr;
  // Resolved channel name (effective "channel" attribute).
  std::string channel;
  // The channel's medium.
  MediaType medium = MediaType::kText;
  // For external nodes: the data descriptor id (effective "file" attribute).
  // Empty for immediate nodes.
  std::string descriptor_id;
  // Duration window. Continuous media (audio, video) are rigid:
  // min == max == the intrinsic length. Discrete media (text, stills) are
  // stretchable: [min_duration, unbounded), letting the scheduler implement
  // the paper's "stretch" on one channel while another catches up. An
  // explicit duration attribute pins the window to that exact value.
  MediaTime min_duration;
  std::optional<MediaTime> max_duration;
  // Styles expanded and inherited attributes folded in.
  AttrList effective_attrs;

  bool is_rigid() const { return max_duration.has_value() && *max_duration == min_duration; }
};

// Collects the events of `document` in document order (pre-order over
// leaves). `store` supplies declared durations for external nodes; it may be
// null, in which case external durations come only from duration attributes
// (absent ones yield stretchable zero-minimum events).
//
// Errors: a leaf without a resolvable channel, a channel not in the
// dictionary, or an external node without a file attribute.
StatusOr<std::vector<EventDescriptor>> CollectEvents(const Document& document,
                                                     const DescriptorStore* store);

// The events of one channel, in document order.
std::vector<const EventDescriptor*> EventsOnChannel(const std::vector<EventDescriptor>& events,
                                                    std::string_view channel);

// Materializes the event's payload: immediate data or the resolved
// descriptor content, with the paper's sub-selection attributes applied —
// Clip ("part of a sound fragment", fields begin/length in samples), Slice
// ("subsection of the file", begin/length in frames for video), and Crop
// ("subimage of an image", x/y/w/h). A sub-selection attribute on the wrong
// medium is a FailedPrecondition; out-of-range selections propagate the
// media layer's OutOfRange.
StatusOr<DataBlock> MaterializeEvent(const EventDescriptor& event, const DescriptorStore& store,
                                     const BlockStore& blocks);

}  // namespace cmif

#endif  // SRC_DOC_EVENT_H_
