#include "src/pipeline/pipeline.h"

#include <chrono>
#include <sstream>
#include <variant>

#include "src/base/string_util.h"
#include "src/doc/event.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/present/virtual_env.h"

namespace cmif {
namespace {

// The per-stage histograms, resolved once per process: the compile hot path
// must not pay a registry lookup (mutex + map) or a name concatenation per
// stage per run. Instrument references are stable forever, so caching them
// is the sanctioned pattern (src/obs/metrics.h).
struct StageHistograms {
  obs::Histogram& validate = obs::GetHistogram("pipeline.validate_ms");
  obs::Histogram& present_map = obs::GetHistogram("pipeline.present-map_ms");
  obs::Histogram& filter_plan = obs::GetHistogram("pipeline.filter-plan_ms");
  obs::Histogram& recover = obs::GetHistogram("pipeline.recover_ms");
  obs::Histogram& filter_apply = obs::GetHistogram("pipeline.filter-apply_ms");
  obs::Histogram& collect_events = obs::GetHistogram("pipeline.collect-events_ms");
  obs::Histogram& schedule = obs::GetHistogram("pipeline.schedule_ms");
  obs::Histogram& play = obs::GetHistogram("pipeline.play_ms");
};

StageHistograms& GetStageHistograms() {
  static StageHistograms* const kHistograms = new StageHistograms();
  return *kHistograms;
}

class StageTimer {
 public:
  explicit StageTimer(std::vector<StageTiming>& stages) : stages_(stages) {}

  template <typename Fn>
  auto Time(std::string_view stage, obs::Histogram& histogram, Fn&& fn) {
    auto start = std::chrono::steady_clock::now();
    auto result = fn();
    auto end = std::chrono::steady_clock::now();
    double millis = std::chrono::duration<double, std::milli>(end - start).count();
    if (obs::Enabled()) {
      histogram.Record(millis);
    }
    stages_.push_back(StageTiming{std::string(stage), millis});
    return result;
  }

 private:
  std::vector<StageTiming>& stages_;
};

// The filtered descriptor store a compile materialized, when it did — the
// playback stage must read the same payloads the filter stage produced.
struct CompileArtifacts {
  DescriptorStore filtered;
  bool use_filtered = false;
};

}  // namespace

double CompileReport::TotalMillis() const {
  double total = 0;
  for (const StageTiming& stage : stages) {
    total += stage.millis;
  }
  return total;
}

double CompileReport::DescriptorOnlyMillis() const {
  double total = 0;
  for (const StageTiming& stage : stages) {
    if (stage.stage != "filter-apply" && stage.stage != "recover") {
      total += stage.millis;
    }
  }
  return total;
}

std::string CompileReport::Summary() const {
  std::ostringstream os;
  for (const StageTiming& stage : stages) {
    os << StrFormat("  %-18s %10.3f ms\n", stage.stage.c_str(), stage.millis);
  }
  os << StrFormat("  total %.3f ms (descriptor-only %.3f ms)\n", TotalMillis(),
                  DescriptorOnlyMillis());
  os << StrFormat("  schedule: %s, %zu dropped may-arcs\n",
                  schedule.feasible ? "feasible" : "INFEASIBLE", schedule.dropped_arcs.size());
  return os.str();
}

std::string PipelineReport::Summary() const {
  std::string out = CompileReport::Summary();
  out += StrFormat("  playback: %zu freezes\n", playback.trace.FreezeCount());
  return out;
}

namespace {

// The root "pipeline" span is owned by the public entry points, not by
// CompileInto, so a play stage can nest under the same span as the compile
// stages.
void AnnotatePipelineSpan(obs::Span& span, const PipelineOptions& options) {
  // Sparse args: descriptor-only runs are the hot nominal path (the obs
  // overhead budget in bench/fig1_pipeline); the root span carries its run
  // configuration only when the data-touching mode is on.
  if (options.apply_filters) {
    span.Annotate("apply_filters", options.apply_filters);
    span.Annotate("profile", options.profile.name);
  }
  if (obs::Enabled()) {
    static obs::Counter& runs = obs::GetCounter("pipeline.runs");
    runs.Add();
  }
}

Status CompileInto(const Document& document, const DescriptorStore& store,
                   const BlockStore& blocks, const PipelineOptions& options,
                   CompileReport& report, CompileArtifacts& artifacts) {
  StageTimer timer(report.stages);
  StageHistograms& h = GetStageHistograms();

  // Stage 1: structure validation (the Document Structure Mapping Tool's
  // output check).
  {
    obs::Span span("validate");
    report.validation =
        timer.Time("validate", h.validate, [&] { return ValidateDocument(document, &store); });
    // Sparse args: a clean validation annotates nothing — the stage histogram
    // already carries the nominal timing, and diagnostics belong to the
    // anomalous path only (the obs overhead budget in bench/fig1_pipeline).
    if (report.validation.error_count() > 0 || report.validation.warning_count() > 0) {
      span.Annotate("nodes", document.root().SubtreeSize());
      span.Annotate("errors", report.validation.error_count());
      span.Annotate("warnings", report.validation.warning_count());
    }
  }
  CMIF_RETURN_IF_ERROR(report.validation.ToStatus());

  // Stage 2: presentation mapping into the virtual environment.
  VirtualEnvironment env =
      VirtualEnvironment::NewsLayout(options.canvas_width, options.canvas_height);
  {
    obs::Span span("present-map");
    auto mapped = timer.Time("present-map", h.present_map,
                             [&] { return PresentationMap::AutoMap(document.channels(), env); });
    CMIF_RETURN_IF_ERROR(mapped.status());
    report.presentation_map = std::move(mapped).value();
  }
  CMIF_RETURN_IF_ERROR(report.presentation_map.Validate(document.channels(), env));

  // Stage 3a: constraint-filter planning (descriptor attributes only).
  {
    obs::Span span("filter-plan");
    auto plan = timer.Time("filter-plan", h.filter_plan,
                           [&] { return PlanDocumentFilter(document, store, options.profile); });
    CMIF_RETURN_IF_ERROR(plan.status());
    report.filter = std::move(plan).value();
    // The plan's byte figures only matter when the plan will be applied;
    // descriptor-only runs keep the span bare.
    if (options.apply_filters) {
      span.Annotate("descriptors", report.filter.plans.size());
      span.Annotate("bytes_before", report.filter.total_bytes_before);
      span.Annotate("bytes_after", report.filter.total_bytes_after);
    }
  }

  // Stage 3a.5 (optional): recovery — materialize every store-backed payload
  // up front, retrying transient fetch failures and substituting synthesized
  // placeholder blocks for unrecoverable ones, so the data-touching stages
  // below cannot fail on block loss.
  DescriptorStore recovered;
  const DescriptorStore* filter_source = &store;
  if (options.apply_filters && options.enable_degradation) {
    obs::Span span("recover");
    Status recover_status = timer.Time("recover", h.recover, [&]() -> Status {
      for (const DataDescriptor& descriptor : store.descriptors()) {
        DataDescriptor copy = descriptor;
        if (std::holds_alternative<std::string>(descriptor.content())) {
          CMIF_ASSIGN_OR_RETURN(ResolvedContent resolved,
                                ResolveContentWithRecovery(descriptor, blocks, options.retry));
          copy.set_content(std::move(resolved.block));
          if (resolved.outcome == ResolveOutcome::kRecovered) {
            ++report.degradation.blocks_recovered;
          } else if (resolved.outcome == ResolveOutcome::kPlaceholder) {
            ++report.degradation.blocks_placeholder;
            report.degradation.placeholder_ids.push_back(descriptor.id());
          }
        }
        recovered.Upsert(std::move(copy));
      }
      return Status::Ok();
    });
    CMIF_RETURN_IF_ERROR(recover_status);
    filter_source = &recovered;
    span.Annotate("recovered", report.degradation.blocks_recovered);
    span.Annotate("placeholders", report.degradation.blocks_placeholder);
    if (obs::Enabled() && report.degradation.blocks_placeholder > 0) {
      static obs::Counter& placeholders = obs::GetCounter("pipeline.placeholder_blocks");
      placeholders.Add(static_cast<std::int64_t>(report.degradation.blocks_placeholder));
    }
  }

  // Stage 3b: optional filter application (touches the media payloads).
  const DescriptorStore* playback_store = &store;
  if (options.apply_filters) {
    obs::Span span("filter-apply");
    auto applied = timer.Time("filter-apply", h.filter_apply, [&] {
      return ApplyDocumentFilter(*filter_source, blocks, report.filter);
    });
    CMIF_RETURN_IF_ERROR(applied.status());
    artifacts.filtered = std::move(applied).value();
    artifacts.use_filtered = true;
    playback_store = &artifacts.filtered;
    span.Annotate("bytes_touched", report.filter.total_bytes_before);
    span.Annotate("descriptors", artifacts.filtered.size());
  }

  // Stage 4: scheduling with capability constraints from the profile.
  StatusOr<std::vector<EventDescriptor>> events = [&] {
    obs::Span span("collect-events");
    auto collected = timer.Time("collect-events", h.collect_events,
                                [&] { return CollectEvents(document, playback_store); });
    return collected;
  }();
  CMIF_RETURN_IF_ERROR(events.status());
  {
    obs::Span span("schedule");
    auto scheduled = timer.Time("schedule", h.schedule, [&]() -> StatusOr<ScheduleResult> {
      ScheduleOptions schedule_options;
      CMIF_ASSIGN_OR_RETURN(TimeGraph graph,
                            TimeGraph::Build(document, *events, schedule_options.graph));
      CMIF_RETURN_IF_ERROR(
          InjectCapabilityConstraints(graph, document, *events, options.profile));
      return SolveSchedule(graph, *events, schedule_options);
    });
    CMIF_RETURN_IF_ERROR(scheduled.status());
    report.schedule = std::move(scheduled).value();
    if (!report.schedule.feasible || !report.schedule.dropped_arcs.empty()) {
      span.Annotate("feasible", report.schedule.feasible);
      span.Annotate("dropped_arcs", report.schedule.dropped_arcs.size());
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<CompileReport> CompilePresentation(const Document& document,
                                            const DescriptorStore& store,
                                            const BlockStore& blocks,
                                            const PipelineOptions& options) {
  CompileReport report;
  CompileArtifacts artifacts;
  obs::Span pipeline_span("pipeline");
  AnnotatePipelineSpan(pipeline_span, options);
  CMIF_RETURN_IF_ERROR(CompileInto(document, store, blocks, options, report, artifacts));
  return report;
}

StatusOr<PipelineReport> RunPipeline(const Document& document, const DescriptorStore& store,
                                     const BlockStore& blocks, const PipelineOptions& options) {
  PipelineReport report;
  CompileArtifacts artifacts;
  obs::Span pipeline_span("pipeline");
  AnnotatePipelineSpan(pipeline_span, options);
  CMIF_RETURN_IF_ERROR(CompileInto(document, store, blocks, options, report, artifacts));
  if (!report.schedule.feasible) {
    return report;  // conflicts are in the report; nothing to play
  }
  if (options.mode == PipelineMode::kCompileOnly) {
    return report;  // compile-only: the caller plays (or serves) later
  }

  // Stage 5: viewing.
  const DescriptorStore* playback_store = artifacts.use_filtered ? &artifacts.filtered : &store;
  StageTimer timer(report.stages);
  StageHistograms& h = GetStageHistograms();
  PlayerOptions player = options.player;
  player.profile = options.profile;
  {
    obs::Span span("play");
    auto played = timer.Time("play", h.play, [&] {
      return Play(document, report.schedule.schedule, playback_store, player);
    });
    CMIF_RETURN_IF_ERROR(played.status());
    report.playback = std::move(played).value();
    if (report.playback.trace.FreezeCount() > 0) {
      span.Annotate("presentations", report.playback.trace.size());
      span.Annotate("freezes", report.playback.trace.FreezeCount());
    }
  }
  return report;
}

}  // namespace cmif
