// The CWI/Multimedia Pipeline (Figure 1), end to end: document structure in,
// validated + presentation-mapped + constraint-filtered + scheduled + played
// out. Each stage is timed separately so the Figure-1 bench can contrast the
// descriptor-only stages (validation, mapping, planning, scheduling) with
// the data-touching stage (filter application) — the paper's section-6
// efficiency argument.
#ifndef SRC_PIPELINE_PIPELINE_H_
#define SRC_PIPELINE_PIPELINE_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/doc/validate.h"
#include "src/fault/retry.h"
#include "src/player/engine.h"
#include "src/present/filter.h"
#include "src/present/presentation_map.h"
#include "src/sched/conflict.h"

namespace cmif {

// Wall time of one stage.
struct StageTiming {
  std::string stage;
  double millis = 0;
};

// How far the pipeline runs. kCompileOnly stops after a feasible schedule —
// the serving layer compiles presentations server-side and playback happens
// at the client; kCompileAndPlay is the full Figure-1 run, viewing included.
enum class PipelineMode {
  kCompileOnly = 0,
  kCompileAndPlay,
};

struct PipelineOptions {
  SystemProfile profile = WorkstationProfile();
  // Canvas for the virtual presentation environment.
  int canvas_width = 640;
  int canvas_height = 480;
  // When true the filter stage materializes and reduces actual payloads
  // (requires blocks/generators); when false the pipeline stays
  // descriptor-only throughout.
  bool apply_filters = false;
  PipelineMode mode = PipelineMode::kCompileAndPlay;
  PlayerOptions player;
  // Graceful degradation of the data-touching path (off by default; the
  // fault-free pipeline is byte-identical with it off). When on and
  // apply_filters is set, a "recover" stage materializes every store-backed
  // payload up front — retrying transient (kUnavailable) fetch failures
  // under `retry` and substituting MakePlaceholderBlock for unrecoverable
  // ones — so the filter/playback stages never fail on block loss.
  bool enable_degradation = false;
  fault::RetryPolicy retry;
};

// What the recover stage had to do (empty on healthy runs).
struct DegradationReport {
  std::size_t blocks_recovered = 0;    // real payload fetched after retries
  std::size_t blocks_placeholder = 0;  // placeholder substituted
  std::vector<std::string> placeholder_ids;  // descriptor ids degraded

  bool degraded() const { return blocks_placeholder > 0; }
};

// Everything the compile stages (validate through schedule) produced. This
// is the whole result of a kCompileOnly run — no playback fields to leave
// empty — and what the serving layer caches and ships over the wire.
struct CompileReport {
  std::vector<StageTiming> stages;
  ValidationReport validation;
  PresentationMap presentation_map;
  FilterReport filter;
  ScheduleResult schedule;
  DegradationReport degradation;

  double TotalMillis() const;
  // Milliseconds spent in stages that never touch media payloads.
  double DescriptorOnlyMillis() const;
  std::string Summary() const;
};

// A full run's products: the compile plus the viewing stage.
struct PipelineReport : CompileReport {
  PlaybackResult playback;

  // CompileReport::Summary plus the playback line.
  std::string Summary() const;
};

// Runs structure -> presentation mapping -> constraint filtering ->
// scheduling, never playback (PipelineOptions::mode is ignored).
// Fails fast on validation errors; an infeasible schedule is returned in the
// report, conflicts attached.
StatusOr<CompileReport> CompilePresentation(const Document& document,
                                            const DescriptorStore& store,
                                            const BlockStore& blocks,
                                            const PipelineOptions& options = {});

// CompilePresentation plus, in kCompileAndPlay mode (the default), the
// viewing stage. An infeasible schedule (after may-arc relaxation) skips
// playback and comes back in the report, conflicts attached.
StatusOr<PipelineReport> RunPipeline(const Document& document, const DescriptorStore& store,
                                     const BlockStore& blocks,
                                     const PipelineOptions& options = {});

}  // namespace cmif

#endif  // SRC_PIPELINE_PIPELINE_H_
