// Media Block Capture Tools (section 2): "a set of tools that allow the user
// to iteratively capture the atomic pieces of information that will be
// included in a composite document ... our focus is on providing descriptive
// tools", i.e. compiling descriptors. Here capture is synthetic (see
// DESIGN.md): each Capture* call registers a data descriptor — with derived
// attributes — whose content is either a generator spec (descriptor-only
// mode) or a materialized block in the BlockStore.
#ifndef SRC_PIPELINE_CAPTURE_H_
#define SRC_PIPELINE_CAPTURE_H_

#include <string>

#include "src/base/status.h"
#include "src/ddbms/store.h"

namespace cmif {

// Captures into one descriptor store + block store pair.
class CaptureSession {
 public:
  // When materialize is false, descriptors carry generator specs and no
  // media bytes exist anywhere — the paper's "descriptor without data"
  // transport mode. When true, payloads are generated into `blocks`.
  CaptureSession(DescriptorStore& store, BlockStore& blocks, bool materialize)
      : store_(store), blocks_(blocks), materialize_(materialize) {}

  // Each call registers descriptor `id` and returns it. `keywords` feeds the
  // search-key attribute (section 6).
  Status CaptureSpeech(const std::string& id, MediaTime duration, std::uint64_t seed,
                       int rate = 8000, const std::string& keywords = "");
  Status CaptureTone(const std::string& id, MediaTime duration, double hz,
                     const std::string& keywords = "");
  Status CaptureTalkingHead(const std::string& id, MediaTime duration, std::uint64_t seed,
                            int width = 64, int height = 48, int fps = 25,
                            const std::string& keywords = "");
  Status CaptureFlyingBird(const std::string& id, MediaTime duration, int width = 64,
                           int height = 48, int fps = 25, const std::string& keywords = "");
  Status CaptureGraphic(const std::string& id, std::uint64_t seed, int width = 64,
                        int height = 48, const std::string& keywords = "");
  // Text is always materialized (it is its own descriptor-sized payload).
  Status CaptureText(const std::string& id, const std::string& text,
                     const std::string& keywords = "");

 private:
  Status Register(const std::string& id, MediaType medium, GeneratorSpec spec,
                  const std::string& keywords);

  DescriptorStore& store_;
  BlockStore& blocks_;
  bool materialize_;
};

}  // namespace cmif

#endif  // SRC_PIPELINE_CAPTURE_H_
