#include "src/pipeline/capture.h"

#include "src/base/string_util.h"

namespace cmif {

Status CaptureSession::Register(const std::string& id, MediaType medium, GeneratorSpec spec,
                                const std::string& keywords) {
  DataDescriptor descriptor(id, AttrList());
  if (materialize_) {
    CMIF_ASSIGN_OR_RETURN(DataBlock block, GeneratorRegistry::Global().Run(spec));
    descriptor.DeriveAttrsFrom(block);
    CMIF_RETURN_IF_ERROR(blocks_.Put(id, std::move(block)));
    descriptor.set_content(id);  // store key
  } else {
    // Derive attributes from the spec alone — no media bytes are produced.
    DataBlock placeholder = DataBlock::FromGenerator(medium, spec);
    descriptor.DeriveAttrsFrom(placeholder);
    // Parse the media parameters back out of the generator spec so that
    // constraint filters can plan from attributes alone.
    for (const std::string& pair : SplitString(spec.params, ',')) {
      std::vector<std::string> kv = SplitString(pair, '=');
      if (kv.size() != 2) {
        continue;
      }
      std::string key(TrimString(kv[0]));
      if (key == "rate" || key == "fps" || key == "width" || key == "height") {
        std::int64_t value = std::strtoll(std::string(TrimString(kv[1])).c_str(), nullptr, 10);
        descriptor.mutable_attrs().Set(key == "fps" ? std::string(kDescRate) : key,
                                       AttrValue::Number(value));
      }
    }
    if (medium == MediaType::kVideo || medium == MediaType::kImage ||
        medium == MediaType::kGraphic) {
      descriptor.mutable_attrs().Set(std::string(kDescColorBits), AttrValue::Number(8));
      descriptor.mutable_attrs().Set(std::string(kDescFormat), AttrValue::String("raw-rgb8"));
    } else if (medium == MediaType::kAudio) {
      descriptor.mutable_attrs().Set(std::string(kDescFormat), AttrValue::String("pcm16"));
    }
    descriptor.set_content(std::move(spec));
  }
  if (!keywords.empty()) {
    descriptor.mutable_attrs().Set(std::string(kDescKeywords), AttrValue::String(keywords));
  }
  return store_.Add(std::move(descriptor));
}

namespace {

// Attribute-only byte estimates so descriptor-only capture still reports
// realistic sizes (used by transfer-time modelling and Figure-1 ratios).
std::size_t AudioBytes(MediaTime duration, int rate) {
  return static_cast<std::size_t>(std::max<std::int64_t>(duration.ToUnits(rate), 0)) * 2;
}

std::size_t VideoBytes(MediaTime duration, int width, int height, int fps) {
  return static_cast<std::size_t>(std::max<std::int64_t>(duration.ToUnits(fps), 0)) *
         static_cast<std::size_t>(width) * static_cast<std::size_t>(height) * 3;
}

}  // namespace

Status CaptureSession::CaptureSpeech(const std::string& id, MediaTime duration,
                                     std::uint64_t seed, int rate,
                                     const std::string& keywords) {
  GeneratorSpec spec;
  spec.generator = "speech";
  spec.params = StrFormat("rate=%d,seed=%llu", rate, static_cast<unsigned long long>(seed));
  spec.duration = duration;
  spec.approx_bytes = AudioBytes(duration, rate);
  return Register(id, MediaType::kAudio, std::move(spec), keywords);
}

Status CaptureSession::CaptureTone(const std::string& id, MediaTime duration, double hz,
                                   const std::string& keywords) {
  GeneratorSpec spec;
  spec.generator = "tone";
  spec.params = StrFormat("rate=8000,hz=%.1f", hz);
  spec.duration = duration;
  spec.approx_bytes = AudioBytes(duration, 8000);
  return Register(id, MediaType::kAudio, std::move(spec), keywords);
}

Status CaptureSession::CaptureTalkingHead(const std::string& id, MediaTime duration,
                                          std::uint64_t seed, int width, int height, int fps,
                                          const std::string& keywords) {
  GeneratorSpec spec;
  spec.generator = "talking_head";
  spec.params = StrFormat("width=%d,height=%d,fps=%d,seed=%llu", width, height, fps,
                          static_cast<unsigned long long>(seed));
  spec.duration = duration;
  spec.approx_bytes = VideoBytes(duration, width, height, fps);
  return Register(id, MediaType::kVideo, std::move(spec), keywords);
}

Status CaptureSession::CaptureFlyingBird(const std::string& id, MediaTime duration, int width,
                                         int height, int fps, const std::string& keywords) {
  GeneratorSpec spec;
  spec.generator = "flying_bird";
  spec.params = StrFormat("width=%d,height=%d,fps=%d", width, height, fps);
  spec.duration = duration;
  spec.approx_bytes = VideoBytes(duration, width, height, fps);
  return Register(id, MediaType::kVideo, std::move(spec), keywords);
}

Status CaptureSession::CaptureGraphic(const std::string& id, std::uint64_t seed, int width,
                                      int height, const std::string& keywords) {
  GeneratorSpec spec;
  spec.generator = "test_card";
  spec.params = StrFormat("width=%d,height=%d,seed=%llu", width, height,
                          static_cast<unsigned long long>(seed));
  spec.duration = MediaTime();
  spec.approx_bytes = static_cast<std::size_t>(width) * static_cast<std::size_t>(height) * 3;
  return Register(id, MediaType::kGraphic, std::move(spec), keywords);
}

Status CaptureSession::CaptureText(const std::string& id, const std::string& text,
                                   const std::string& keywords) {
  DataDescriptor descriptor(id, AttrList());
  DataBlock block = DataBlock::FromText(TextBlock(text, TextFormatting{}));
  descriptor.DeriveAttrsFrom(block);
  if (!keywords.empty()) {
    descriptor.mutable_attrs().Set(std::string(kDescKeywords), AttrValue::String(keywords));
  }
  descriptor.set_content(std::move(block));  // inline: text is tiny
  return store_.Add(std::move(descriptor));
}

}  // namespace cmif
