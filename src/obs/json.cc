#include "src/obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/base/string_util.h"

namespace cmif {
namespace obs {

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  // Integers small enough to be exact render without a fraction.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return JsonNumber(static_cast<std::int64_t>(value));
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc()) {
    return "null";
  }
  return std::string(buf, ptr);
}

std::string JsonNumber(std::int64_t value) { return std::to_string(value); }

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

std::string JsonValue::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return boolean_ ? "true" : "false";
    case Kind::kNumber:
      return JsonNumber(number_);
    case Kind::kString:
      return JsonQuote(string_);
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        out += array_[i].ToString();
      }
      out.push_back(']');
      return out;
    }
    case Kind::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        out += JsonQuote(members_[i].first);
        out.push_back(':');
        out += members_[i].second.ToString();
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.boolean_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    CMIF_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) {
    return DataLossError(StrFormat("JSON error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    StatusOr<JsonValue> result = [&]() -> StatusOr<JsonValue> {
      char c = text_[pos_];
      if (c == '{') {
        return ParseObject();
      }
      if (c == '[') {
        return ParseArray();
      }
      if (c == '"') {
        auto s = ParseString();
        if (!s.ok()) {
          return s.status();
        }
        return JsonValue::String(*std::move(s));
      }
      if (ConsumeWord("true")) {
        return JsonValue::Bool(true);
      }
      if (ConsumeWord("false")) {
        return JsonValue::Bool(false);
      }
      if (ConsumeWord("null")) {
        return JsonValue::Null();
      }
      return ParseNumber();
    }();
    --depth_;
    return result;
  }

  StatusOr<JsonValue> ParseObject() {
    Consume('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue::Object(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      CMIF_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' in object");
      }
      CMIF_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return JsonValue::Object(std::move(members));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    Consume('[');
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue::Array(std::move(items));
    }
    while (true) {
      CMIF_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return JsonValue::Array(std::move(items));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected a value");
    }
    double value = 0;
    auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return Error("malformed number");
    }
    return JsonValue::Number(value);
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) { return JsonParser(text).Parse(); }

}  // namespace obs
}  // namespace cmif
