// Cross-process trace context: a (trace id, parent span id, sampling bit)
// triple that travels inside PresentRequest wire frames so one trace id
// stitches client and server spans into a single timeline. The context is
// thread-local; Span (src/obs/obs.h) reads it to tag records with the trace
// id, to link the thread's root span under the remote parent, and to skip
// recording entirely — no allocation — when the trace is unsampled.
//
// Sampling is head-based and deterministic: the keep/drop decision is a pure
// function of the trace id and the rate, so every process along the request
// path agrees without coordination. Anomalies (errors, degraded compiles,
// breaker opens, retries) override the head decision: RecordAnomaly flips
// the current trace to sampled from that point on and dumps the flight
// recorder (src/obs/flight_recorder.h) for the events leading up to it.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string_view>

namespace cmif {
namespace obs {

// The context carried on the wire. trace_id 0 means "no trace": spans record
// normally (process-local profiling) and nothing propagates.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  bool sampled = false;

  bool valid() const { return trace_id != 0; }
};

// Deterministic head sampling: true iff `trace_id` falls in the keep slice
// for `rate` (<= 0 never samples, >= 1 always). Pure, coordination-free.
bool SampleTrace(std::uint64_t trace_id, double rate);

// A fresh root context with a nonzero id and the head-sampling decision for
// `rate` applied.
TraceContext NewTrace(double rate);

// The calling thread's current context; invalid() when none is installed.
const TraceContext& CurrentTrace();

// RAII install/restore of the thread's current context. Install an invalid
// context to suspend tracing for a scope.
class ScopedTrace {
 public:
  explicit ScopedTrace(const TraceContext& context);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceContext previous_;
};

// The always-sample-on-anomaly rule. Counts obs.anomalies, force-samples the
// thread's current trace (subsequent spans record even if head sampling said
// drop), and — when the flight recorder is enabled — dumps the retained
// event history into the span buffer for the postmortem. Cheap enough for
// error paths; never call it per healthy request.
void RecordAnomaly(std::string_view reason);

// Total RecordAnomaly calls since process start. Monotonic; counted even
// when obs is disabled (the obs.anomalies counter only ticks when enabled).
std::uint64_t AnomalyCount();

}  // namespace obs
}  // namespace cmif

#endif  // SRC_OBS_TRACE_H_
