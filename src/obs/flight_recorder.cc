#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>

#include "src/obs/json.h"
#include "src/obs/obs.h"

namespace cmif {
namespace obs {
namespace {

std::atomic<bool> g_flight_enabled{false};

constexpr std::size_t kNameWords = FlightRecorder::kNameBytes / 8;  // 3
// kind+tid, trace_id, span_id, time_us, then the name words.
constexpr std::size_t kPayloadWords = 4 + kNameWords;

// One event slot, seqlock-published: `seq` is even when the payload is
// stable, odd while the owning thread is writing. Every word is an atomic
// accessed relaxed, so a racing reader sees garbage at worst — which the
// seq re-check discards — never a data race.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> words[kPayloadWords];
};

struct Ring {
  Slot slots[FlightRecorder::kCapacity];
  // Next write index, monotonic; advisory for readers (each slot is
  // validated by its own seq).
  std::atomic<std::uint64_t> head{0};
  int tid = 0;
};

struct RingRegistry {
  std::mutex mu;
  std::vector<Ring*> rings;  // leaked; threads may outlive snapshots
};

RingRegistry& GetRingRegistry() {
  static RingRegistry* const kRegistry = new RingRegistry();
  return *kRegistry;
}

Ring& ThreadRing() {
  thread_local Ring* const ring = [] {
    Ring* fresh = new Ring();
    fresh->tid = detail::CurrentTid();
    RingRegistry& registry = GetRingRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.rings.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

std::uint64_t PackKindTid(FlightRecorder::EventKind kind, int tid) {
  return static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tid)) << 8);
}

// Copies one slot if it is stable across the read. Returns false (and leaves
// *event alone) when the writer got there first.
bool ReadSlot(const Slot& slot, FlightRecorder::Event* event) {
  const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
  if (before == 0 || (before & 1) != 0) {
    return false;  // never written, or mid-write
  }
  std::uint64_t words[kPayloadWords];
  for (std::size_t i = 0; i < kPayloadWords; ++i) {
    words[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != before) {
    return false;  // overwritten mid-copy
  }
  event->kind = static_cast<FlightRecorder::EventKind>(words[0] & 0xff);
  event->tid = static_cast<int>(static_cast<std::uint32_t>(words[0] >> 8));
  event->trace_id = words[1];
  event->span_id = words[2];
  event->time_us = words[3];
  char name[FlightRecorder::kNameBytes];
  std::memcpy(name, &words[4], FlightRecorder::kNameBytes);
  std::memcpy(event->name, name, FlightRecorder::kNameBytes);
  event->name[FlightRecorder::kNameBytes] = '\0';
  return true;
}

}  // namespace

bool FlightRecorder::Enabled() { return g_flight_enabled.load(std::memory_order_relaxed); }

void FlightRecorder::SetEnabled(bool on) {
  g_flight_enabled.store(on, std::memory_order_relaxed);
}

void FlightRecorder::Record(EventKind kind, std::uint64_t trace_id, std::uint64_t span_id,
                            std::string_view name) {
  if (!Enabled()) {
    return;
  }
  Ring& ring = ThreadRing();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[head % kCapacity];
  const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);  // odd: mid-write
  std::atomic_thread_fence(std::memory_order_release);
  slot.words[0].store(PackKindTid(kind, ring.tid), std::memory_order_relaxed);
  slot.words[1].store(trace_id, std::memory_order_relaxed);
  slot.words[2].store(span_id, std::memory_order_relaxed);
  slot.words[3].store(static_cast<std::uint64_t>(detail::NowMicros()),
                      std::memory_order_relaxed);
  char name_bytes[kNameBytes] = {};
  std::memcpy(name_bytes, name.data(), std::min(name.size(), kNameBytes));
  for (std::size_t i = 0; i < kNameWords; ++i) {
    std::uint64_t word;
    std::memcpy(&word, name_bytes + i * 8, 8);
    slot.words[4 + i].store(word, std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);  // even: stable
  ring.head.store(head + 1, std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::Snapshot() {
  std::vector<Event> out;
  RingRegistry& registry = GetRingRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (Ring* ring : registry.rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(head, kCapacity);
    for (std::uint64_t i = head - count; i < head; ++i) {
      Event event;
      if (ReadSlot(ring->slots[i % kCapacity], &event)) {
        out.push_back(event);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.time_us < b.time_us;
  });
  return out;
}

std::size_t FlightRecorder::DumpToSpans(std::string_view reason) {
  std::vector<Event> events = Snapshot();
  const std::string reason_json = JsonQuote(reason);
  for (const Event& event : events) {
    SpanRecord record;
    record.name = event.name[0] != '\0' ? std::string(event.name) : std::string("(span-end)");
    record.args.emplace_back("flight", JsonQuote(FlightEventKindName(event.kind)));
    record.args.emplace_back("reason", reason_json);
    record.start_us = static_cast<double>(event.time_us);
    record.duration_us = 0;
    record.id = event.span_id;
    record.trace_id = event.trace_id;
    record.pid = kFlightPid;
    record.tid = event.tid;
    detail::AppendSpan(std::move(record));
  }
  return events.size();
}

void FlightRecorder::Reset() {
  RingRegistry& registry = GetRingRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (Ring* ring : registry.rings) {
    // Mark every slot never-written. A racing owner thread may repopulate
    // (or resurrect a slot it was mid-writing) after this returns — Reset
    // only guarantees a quiesced recorder comes back empty.
    for (Slot& slot : ring->slots) {
      slot.seq.store(0, std::memory_order_release);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

std::string_view FlightEventKindName(FlightRecorder::EventKind kind) {
  switch (kind) {
    case FlightRecorder::EventKind::kSpanBegin:
      return "begin";
    case FlightRecorder::EventKind::kSpanEnd:
      return "end";
    case FlightRecorder::EventKind::kAnnotation:
      return "annotation";
  }
  return "unknown";
}

}  // namespace obs
}  // namespace cmif
