#include "src/obs/export.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "src/base/string_util.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace obs {
namespace {

void AppendMetadataEvent(std::ostringstream& os, const char* name, int pid, int tid,
                         const std::string& value, bool& first) {
  if (!first) {
    os << ",\n";
  }
  first = false;
  os << "{\"name\":" << JsonQuote(name) << ",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":" << JsonQuote(value) << "}}";
}

Status WriteStringToFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return FailedPreconditionError("cannot write '" + path + "'");
  }
  out << contents;
  out.flush();
  if (!out) {
    return FailedPreconditionError("failed writing '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace

std::string ChromeTraceJsonFor(const std::vector<SpanRecord>& spans,
                               const std::vector<std::pair<int, std::string>>& processes,
                               const std::vector<std::pair<int, std::string>>& tracks) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [pid, name] : processes) {
    AppendMetadataEvent(os, "process_name", pid, 0, name, first);
  }
  for (const auto& [tid, name] : tracks) {
    AppendMetadataEvent(os, "thread_name", kTimelinePid, tid, name, first);
  }
  for (const SpanRecord& span : spans) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "{\"name\":" << JsonQuote(span.name) << ",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":"
       << JsonNumber(span.start_us) << ",\"dur\":" << JsonNumber(span.duration_us)
       << ",\"pid\":" << span.pid << ",\"tid\":" << span.tid;
    os << ",\"args\":{\"span_id\":" << JsonNumber(static_cast<std::int64_t>(span.id))
       << ",\"parent_id\":" << JsonNumber(static_cast<std::int64_t>(span.parent_id));
    if (span.trace_id != 0) {
      os << ",\"trace_id\":" << JsonQuote(StrFormat("%016llx", static_cast<unsigned long long>(
                                                                   span.trace_id)));
    }
    for (const auto& [key, value] : span.args) {
      os << "," << JsonQuote(key) << ":" << value;
    }
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

std::string ChromeTraceJson() {
  return ChromeTraceJsonFor(SnapshotSpans(),
                            {{kProcessPid, "cmif"},
                             {kTimelinePid, "media timeline"},
                             {kFlightPid, "flight recorder"}},
                            SnapshotTracks());
}

Status WriteChromeTrace(const std::string& path) {
  return WriteStringToFile(path, ChromeTraceJson());
}

std::string MetricsJsonl() {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  std::ostringstream os;
  registry.VisitCounters([&](const std::string& name, const Counter& counter) {
    os << "{\"type\":\"counter\",\"name\":" << JsonQuote(name)
       << ",\"value\":" << JsonNumber(counter.value()) << "}\n";
  });
  registry.VisitGauges([&](const std::string& name, const Gauge& gauge) {
    os << "{\"type\":\"gauge\",\"name\":" << JsonQuote(name)
       << ",\"value\":" << JsonNumber(gauge.value()) << "}\n";
  });
  registry.VisitHistograms([&](const std::string& name, const Histogram& histogram) {
    os << "{\"type\":\"histogram\",\"name\":" << JsonQuote(name)
       << ",\"count\":" << JsonNumber(static_cast<std::int64_t>(histogram.count()))
       << ",\"sum\":" << JsonNumber(histogram.sum())
       << ",\"mean\":" << JsonNumber(histogram.mean())
       << ",\"min\":" << JsonNumber(histogram.min())
       << ",\"max\":" << JsonNumber(histogram.max())
       << ",\"p50\":" << JsonNumber(histogram.Percentile(50))
       << ",\"p95\":" << JsonNumber(histogram.Percentile(95))
       << ",\"p99\":" << JsonNumber(histogram.Percentile(99)) << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      std::uint64_t n = histogram.BucketCountAt(i);
      if (n == 0) {
        continue;
      }
      if (!first) {
        os << ",";
      }
      first = false;
      // "le" follows the Prometheus convention: the bucket's upper bound.
      double upper = Histogram::BucketUpperBound(i);
      os << "{\"le\":" << (std::isinf(upper) ? std::string("\"inf\"") : JsonNumber(upper))
         << ",\"n\":" << JsonNumber(static_cast<std::int64_t>(n)) << "}";
    }
    os << "]}\n";
  });
  return os.str();
}

Status WriteMetricsJsonl(const std::string& path) {
  return WriteStringToFile(path, MetricsJsonl());
}

std::string TextReport() {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  std::ostringstream os;
  os << "== observability report ==\n";
  bool any = false;
  registry.VisitCounters([&](const std::string& name, const Counter& counter) {
    if (counter.value() != 0) {
      os << StrFormat("  counter  %-40s %12lld\n", name.c_str(),
                      static_cast<long long>(counter.value()));
      any = true;
    }
  });
  registry.VisitGauges([&](const std::string& name, const Gauge& gauge) {
    if (gauge.value() != 0) {
      os << StrFormat("  gauge    %-40s %12lld\n", name.c_str(),
                      static_cast<long long>(gauge.value()));
      any = true;
    }
  });
  registry.VisitHistograms([&](const std::string& name, const Histogram& histogram) {
    if (histogram.count() != 0) {
      os << StrFormat(
          "  histo    %-40s n=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
          name.c_str(), static_cast<unsigned long long>(histogram.count()), histogram.mean(),
          histogram.Percentile(50), histogram.Percentile(95), histogram.Percentile(99),
          histogram.max());
      any = true;
    }
  });
  std::size_t span_count = SnapshotSpans().size();
  os << StrFormat("  spans    %zu recorded\n", span_count);
  if (!any && span_count == 0) {
    os << "  (nothing recorded; is observability enabled?)\n";
  }
  return os.str();
}

void JsonlLogSink::Write(LogLevel level, const char* file, int line,
                         const std::string& message) {
  std::string_view path(file);
  std::size_t slash = path.rfind('/');
  if (slash != std::string_view::npos) {
    path.remove_prefix(slash + 1);
  }
  // One self-contained line; streams may interleave between lines only.
  std::ostringstream os;
  os << "{\"type\":\"log\",\"level\":" << JsonQuote(LogLevelTag(level))
     << ",\"file\":" << JsonQuote(path) << ",\"line\":" << JsonNumber(static_cast<std::int64_t>(line))
     << ",\"message\":" << JsonQuote(message) << "}\n";
  out_ << os.str();
}

}  // namespace obs
}  // namespace cmif
