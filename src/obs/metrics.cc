#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/obs.h"

namespace cmif {
namespace obs {
namespace {

void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Histogram::BucketFor(double value) {
  if (!(value >= 0.001)) {  // also catches NaN and negatives
    return 0;
  }
  int exponent = std::ilogb(value * 1000.0);
  std::size_t bucket = static_cast<std::size_t>(exponent) + 1;
  return std::min(bucket, kBucketCount - 1);
}

double Histogram::BucketLowerBound(std::size_t i) {
  return i == 0 ? 0.0 : std::ldexp(0.001, static_cast<int>(i) - 1);
}

double Histogram::BucketUpperBound(std::size_t i) {
  return i + 1 >= kBucketCount ? std::numeric_limits<double>::infinity()
                               : std::ldexp(0.001, static_cast<int>(i));
}

void Histogram::Record(double value) {
  if (std::isnan(value)) {
    return;
  }
  value = std::max(value, 0.0);
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double Histogram::mean() const {
  std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  double value = min_.load(std::memory_order_relaxed);
  return std::isinf(value) ? 0.0 : value;
}

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Percentile(double p) const {
  std::array<std::uint64_t, kBucketCount> snapshot;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  if (total == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(total);
  double cumulative = 0;
  std::size_t bucket = kBucketCount - 1;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (cumulative + static_cast<double>(snapshot[i]) >= rank && snapshot[i] > 0) {
      bucket = i;
      break;
    }
    cumulative += static_cast<double>(snapshot[i]);
  }
  double lower = BucketLowerBound(bucket);
  double upper = std::isinf(BucketUpperBound(bucket)) ? max() : BucketUpperBound(bucket);
  double inside = snapshot[bucket] == 0
                      ? 0.0
                      : (rank - cumulative) / static_cast<double>(snapshot[bucket]);
  double value = lower + std::clamp(inside, 0.0, 1.0) * (upper - lower);
  // Interpolation cannot leave the observed range.
  return std::clamp(value, min(), max());
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* const kInstance = new MetricsRegistry();
  return *kInstance;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    fn(name, *counter);
  }
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, gauge] : gauges_) {
    fn(name, *gauge);
  }
}

void MetricsRegistry::VisitHistograms(
    const std::function<void(const std::string&, const Histogram&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, histogram] : histograms_) {
    fn(name, *histogram);
  }
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

Counter& GetCounter(std::string_view name) { return MetricsRegistry::Instance().GetCounter(name); }

Gauge& GetGauge(std::string_view name) { return MetricsRegistry::Instance().GetGauge(name); }

Histogram& GetHistogram(std::string_view name) {
  return MetricsRegistry::Instance().GetHistogram(name);
}

ScopedLatency::ScopedLatency(std::string_view histogram_name) {
  if (Enabled()) {
    histogram_ = &GetHistogram(histogram_name);
    start_ = std::chrono::steady_clock::now();
  }
}

ScopedLatency::ScopedLatency(Histogram& histogram) {
  if (Enabled()) {
    histogram_ = &histogram;
    start_ = std::chrono::steady_clock::now();
  }
}

ScopedLatency::~ScopedLatency() {
  if (histogram_ != nullptr) {
    histogram_->Record(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }
}

}  // namespace obs
}  // namespace cmif
