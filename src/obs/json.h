// Minimal JSON support for the observability exporters: escaping/formatting
// helpers used by the writers, and a small recursive-descent parser so tests
// (and future tooling) can round-trip exported traces and reports without an
// external dependency.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace cmif {
namespace obs {

// RFC 8259 string escaping, including the surrounding quotes.
std::string JsonQuote(std::string_view s);

// Shortest round-trippable rendering of a finite double ("null" for NaN/inf,
// which JSON cannot represent).
std::string JsonNumber(double value);
std::string JsonNumber(std::int64_t value);

// A parsed JSON value. Objects preserve member order.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool boolean() const { return boolean_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return members_; }

  // First member with this key, or nullptr.
  const JsonValue* Find(std::string_view key) const;

  // Serializes back to compact JSON.
  std::string ToString() const;

  static JsonValue Null();
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool boolean_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses one JSON document (trailing whitespace allowed, nothing else).
// Errors are kDataLoss with an offset hint.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace obs
}  // namespace cmif

#endif  // SRC_OBS_JSON_H_
