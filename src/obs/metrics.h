// The metrics registry: named counters, gauges, and fixed-bucket latency
// histograms with percentile extraction. All instruments are thread-safe and
// have stable addresses for the lifetime of the process, so instrumented
// code may cache references (the static-local pattern). Values are reset for
// tests; the objects themselves are never destroyed.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cmif {
namespace obs {

// A monotonically increasing event count.
class Counter {
 public:
  void Add(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// A last-writer-wins instantaneous value.
class Gauge {
 public:
  void Set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// A fixed-bucket histogram over non-negative values (canonically latency in
// milliseconds). Buckets are log-scaled: bucket 0 holds [0, 1µs), bucket i
// holds [2^(i-1), 2^i) µs-equivalents, the last bucket holds the overflow.
// Recording is lock-free; percentile reads interpolate inside the bucket and
// clamp to the exactly-tracked min/max, so a single-valued histogram reports
// that value exactly.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 40;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  // Smallest / largest recorded value; 0 when empty.
  double min() const;
  double max() const;
  // The value at percentile `p` in [0, 100]; 0 when empty.
  double Percentile(double p) const;

  // Lower/upper bound of bucket `i` in recorded-value units.
  static double BucketLowerBound(std::size_t i);
  static double BucketUpperBound(std::size_t i);
  std::uint64_t BucketCountAt(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  static std::size_t BucketFor(double value);

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  // +infinity while empty, so concurrent first records cannot lose a minimum.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0};
};

// The process-wide registry of named instruments.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  // Finds or creates. The returned reference is valid forever.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // Visits every instrument in name order (all counters, then gauges, then
  // histograms). The callbacks run with the registry lock held: do not
  // re-enter the registry from them.
  void VisitCounters(const std::function<void(const std::string&, const Counter&)>& fn) const;
  void VisitGauges(const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void VisitHistograms(const std::function<void(const std::string&, const Histogram&)>& fn) const;

  // Zeroes every instrument's value. Objects (and cached references to them)
  // stay valid.
  void ResetValues();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Registry accessors (shorthand for MetricsRegistry::Instance().Get*).
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name);

// RAII: when observability is enabled at construction, records the elapsed
// wall-clock milliseconds into the named histogram on destruction.
class ScopedLatency {
 public:
  explicit ScopedLatency(std::string_view histogram_name);
  // Hot-path form: the caller cached the histogram (static-local pattern),
  // so construction does no registry lookup and no string work.
  explicit ScopedLatency(Histogram& histogram);
  ~ScopedLatency();
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace cmif

#endif  // SRC_OBS_METRICS_H_
