// The flight recorder: a fixed-size, lock-free, per-thread ring of compact
// span/annotation events, written on every span begin/end while enabled —
// including spans an unsampled trace suppressed — and dumped on anomaly for
// postmortems. This is the escape hatch behind head sampling: the sampling
// decision is made before anything goes wrong, so when something does, the
// last N events per thread are still here.
//
// Writers are wait-free and allocation-free: each thread owns its ring and
// publishes slots seqlock-style (an odd sequence marks a slot mid-write; a
// reader that sees the sequence change mid-copy discards the slot). All slot
// words are relaxed atomics, so concurrent dump/record is data-race-free
// under TSan without any lock on the record path.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace cmif {
namespace obs {

class FlightRecorder {
 public:
  // Events retained per thread. Oldest are overwritten silently.
  static constexpr std::size_t kCapacity = 256;
  // Name bytes kept per event (longer names truncate).
  static constexpr std::size_t kNameBytes = 24;

  enum class EventKind : std::uint8_t {
    kSpanBegin = 1,
    kSpanEnd = 2,
    kAnnotation = 3,
  };

  struct Event {
    EventKind kind = EventKind::kSpanBegin;
    int tid = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t time_us = 0;  // wall microseconds since process start
    char name[kNameBytes + 1] = {};
  };

  // Off by default; one relaxed load per probe when off.
  static bool Enabled();
  static void SetEnabled(bool on);

  // Appends one event to the calling thread's ring. Wait-free, no
  // allocation after the thread's first call. No-op while disabled.
  static void Record(EventKind kind, std::uint64_t trace_id, std::uint64_t span_id,
                     std::string_view name);

  // Copies every thread's retained events, oldest first (sorted by time).
  // Slots being overwritten mid-copy are skipped, so a snapshot taken under
  // writer fire returns at most kCapacity valid events per thread.
  static std::vector<Event> Snapshot();

  // The postmortem dump: converts Snapshot() into zero-duration SpanRecords
  // under kFlightPid (annotated with `reason`) and appends them to the span
  // buffer. Returns the number of events dumped.
  static std::size_t DumpToSpans(std::string_view reason);

  // Clears every thread's ring (test helper).
  static void Reset();
};

std::string_view FlightEventKindName(FlightRecorder::EventKind kind);

}  // namespace obs
}  // namespace cmif

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
