// Exporters for the instrumentation buffers: Chrome trace_event JSON
// (loadable in about:tracing / https://ui.perfetto.dev), a JSONL structured
// event stream, and a compact text report. All exporters snapshot under the
// recorder locks and may run while instrumentation is still being recorded.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/base/logging.h"
#include "src/base/status.h"
#include "src/obs/obs.h"

namespace cmif {
namespace obs {

// The full span buffer as one Chrome trace JSON object:
//   {"displayTimeUnit":"ms","traceEvents":[...]}
// Wall-clock spans appear under pid 1 ("cmif"), synthetic media-timeline
// events under pid 2 ("media timeline") with one named thread per track.
// Spans tagged with a trace id carry it as a hex "trace_id" arg.
std::string ChromeTraceJson();
Status WriteChromeTrace(const std::string& path);

// Renders an explicit span list (rather than the live buffer) with the given
// (pid, name) process labels and (tid, name) timeline tracks. The merged
// cross-process export: cmif_tool request --trace feeds it the local spans
// plus the spans the server harvested for the same trace id (re-tagged
// kRemotePid), producing one timeline in one file.
std::string ChromeTraceJsonFor(const std::vector<SpanRecord>& spans,
                               const std::vector<std::pair<int, std::string>>& processes,
                               const std::vector<std::pair<int, std::string>>& tracks = {});

// Every registered metric as one JSON object per line:
//   {"type":"counter","name":...,"value":...}
//   {"type":"gauge","name":...,"value":...}
//   {"type":"histogram","name":...,"count":...,"mean":...,"p50":...,
//    "p95":...,"p99":...,"min":...,"max":...,"buckets":[{"le":...,"n":...}]}
std::string MetricsJsonl();
Status WriteMetricsJsonl(const std::string& path);

// Human-readable metric + span totals, for terminal output.
std::string TextReport();

// A LogSink that renders every log line as one JSONL structured event
//   {"type":"log","level":"W","file":...,"line":...,"message":...}
// on the given stream — the bridge from src/base logging into the same
// machine-readable stream as the metrics.
class JsonlLogSink : public LogSink {
 public:
  explicit JsonlLogSink(std::ostream& out) : out_(out) {}
  void Write(LogLevel level, const char* file, int line, const std::string& message) override;

 private:
  std::ostream& out_;
};

}  // namespace obs
}  // namespace cmif

#endif  // SRC_OBS_EXPORT_H_
