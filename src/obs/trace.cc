#include "src/obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace obs {
namespace {

// splitmix64: the id generator needs decent bit dispersion, not security.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TraceContext& CurrentTraceMutable() {
  thread_local TraceContext current;
  return current;
}

std::atomic<std::uint64_t> g_anomalies{0};

}  // namespace

bool SampleTrace(std::uint64_t trace_id, double rate) {
  if (rate <= 0) {
    return false;
  }
  if (rate >= 1) {
    return true;
  }
  // Remix before comparing: the keep slice must not correlate with whatever
  // structure the id generator has.
  const double unit = static_cast<double>(Mix64(trace_id)) /
                      static_cast<double>(std::numeric_limits<std::uint64_t>::max());
  return unit < rate;
}

TraceContext NewTrace(double rate) {
  // Distinct across processes and threads: a global counter mixed with the
  // process start time and this thread's stack address.
  static std::atomic<std::uint64_t> g_next{1};
  static const std::uint64_t kProcessSalt = Mix64(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  thread_local const std::uint64_t kThreadSalt =
      Mix64(reinterpret_cast<std::uintptr_t>(&g_next) ^
            reinterpret_cast<std::uintptr_t>(&kThreadSalt));
  TraceContext context;
  do {
    context.trace_id = Mix64(g_next.fetch_add(1, std::memory_order_relaxed) ^ kProcessSalt ^
                             kThreadSalt);
  } while (context.trace_id == 0);
  context.sampled = SampleTrace(context.trace_id, rate);
  return context;
}

const TraceContext& CurrentTrace() { return CurrentTraceMutable(); }

ScopedTrace::ScopedTrace(const TraceContext& context) : previous_(CurrentTraceMutable()) {
  CurrentTraceMutable() = context;
}

ScopedTrace::~ScopedTrace() { CurrentTraceMutable() = previous_; }

void RecordAnomaly(std::string_view reason) {
  g_anomalies.fetch_add(1, std::memory_order_relaxed);
  if (Enabled()) {
    static Counter& anomalies = GetCounter("obs.anomalies");
    anomalies.Add();
  }
  TraceContext& current = CurrentTraceMutable();
  if (current.valid() && !current.sampled) {
    current.sampled = true;  // the rest of this request records
  }
  if (FlightRecorder::Enabled()) {
    FlightRecorder::DumpToSpans(reason);
  }
}

std::uint64_t AnomalyCount() { return g_anomalies.load(std::memory_order_relaxed); }

}  // namespace obs
}  // namespace cmif
