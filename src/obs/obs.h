// Cross-layer instrumentation: hierarchical wall-clock spans, synthetic
// media-timeline events, and the runtime/compile-time enable switches. The
// overhead contract: with CMIF_OBS_DISABLED defined every call here compiles
// to nothing; in a normal build, instrumentation that is not enabled at run
// time costs one relaxed atomic load per probe (see bench/fig1_pipeline).
//
// Spans nest per thread: the innermost live Span on the constructing thread
// becomes the parent. Finished spans accumulate in a process-wide buffer
// that src/obs/export.h renders as Chrome trace_event JSON (open in
// about:tracing or https://ui.perfetto.dev), JSONL, or a text report.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace cmif {
namespace obs {

// Wall-clock spans record under this Chrome-trace pid; synthetic
// media-timeline events under kTimelinePid (so Perfetto shows the pipeline
// and the presentation as two process tracks). Flight-recorder postmortem
// dumps land under kFlightPid; spans harvested from a remote server and
// merged into a local trace under kRemotePid.
inline constexpr int kProcessPid = 1;
inline constexpr int kTimelinePid = 2;
inline constexpr int kFlightPid = 3;
inline constexpr int kRemotePid = 4;

#ifdef CMIF_OBS_DISABLED
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// True when instrumentation is recording. Default: off.
inline bool Enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on);
#endif

// RAII enable/restore, for tests and tools.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : previous_(Enabled()) { SetEnabled(on); }
  ~ScopedEnable() { SetEnabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

// One finished span (or synthetic timeline event).
struct SpanRecord {
  std::string name;
  // Pre-rendered JSON values keyed by annotation name.
  std::vector<std::pair<std::string, std::string>> args;
  double start_us = 0;  // since process start (wall spans) or media time 0
  double duration_us = 0;
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = no parent
  // The cross-process trace this span belongs to (src/obs/trace.h);
  // 0 = process-local.
  std::uint64_t trace_id = 0;
  int pid = kProcessPid;
  int tid = 0;  // small per-thread id, or timeline track id
};

// A scoped wall-clock timer. Construction is a no-op unless Enabled(); the
// record is appended at destruction to a per-thread buffer (one uncontended
// lock, no cross-thread traffic on the hot path). When the thread carries an
// unsampled TraceContext the span allocates nothing and records nothing
// beyond its flight-recorder breadcrumb.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches key=value context shown in the trace viewer.
  void Annotate(std::string_view key, std::string_view value);
  void Annotate(std::string_view key, const char* value) {
    Annotate(key, std::string_view(value));
  }
  void Annotate(std::string_view key, double value);
  template <typename T>
    requires std::is_integral_v<T>
  void Annotate(std::string_view key, T value) {
    AnnotateInt(key, static_cast<std::int64_t>(value));
  }

  bool active() const { return active_; }
  std::uint64_t id() const { return record_.id; }

 private:
  void AnnotateInt(std::string_view key, std::int64_t value);
  void ReserveArgs();

  bool active_ = false;        // records a SpanRecord at destruction
  bool flight_only_ = false;   // suppressed by sampling; breadcrumbs only
  SpanRecord record_;
  std::chrono::steady_clock::time_point start_;
};

// Appends an already-timed wall-clock span — for intervals known only after
// the fact, like time spent waiting in a scheduler queue (measured at
// dequeue, long after it started). `start_us` is microseconds since process
// start on the span clock: detail::NowMicros() minus the elapsed wait.
// Follows the same rules as Span: parents under the calling thread's
// innermost live Span, tags with the current TraceContext, and records
// nothing for unsampled traces. Returns the span id (0 when suppressed).
std::uint64_t EmitSpan(std::string_view name, double start_us, double duration_us,
                       std::vector<std::pair<std::string, std::string>> args = {});

// Finds or registers a named synthetic-timeline track (a Chrome-trace thread
// under kTimelinePid, e.g. one per playback channel). Returns its tid.
int TimelineTrack(std::string_view name);

// Appends a synthetic complete event on a timeline track. Times are in
// microseconds of media time, not wall time. No-op unless Enabled().
void EmitTimelineEvent(int track, std::string_view name, double start_us, double duration_us,
                       std::vector<std::pair<std::string, std::string>> args = {});

// Batches synthetic timeline events so a playback loop pays one id
// reservation and one buffer append per run instead of one lock, one atomic
// and one allocation per presented event. Stage() hands back the staged
// record for in-place args (pre-rendered JSON values, as in SpanRecord);
// Flush() — or destruction — publishes the whole batch.
class TimelineBatch {
 public:
  TimelineBatch() = default;
  ~TimelineBatch() { Flush(); }
  TimelineBatch(const TimelineBatch&) = delete;
  TimelineBatch& operator=(const TimelineBatch&) = delete;

  // Stages a complete event on `track`; returns the staged record so the
  // caller can emplace args directly. The pointer is valid until the next
  // Stage()/Flush(). Returns nullptr (and stages nothing) unless Enabled().
  SpanRecord* Stage(int track, std::string_view name, double start_us, double duration_us);

  // Publishes every staged event to the calling thread's span buffer in one
  // append. Safe to call repeatedly; retains capacity across rounds.
  void Flush();

 private:
  std::vector<SpanRecord> staged_;
};

// Snapshot of all finished spans/events across every thread's buffer,
// ordered by start time.
std::vector<SpanRecord> SnapshotSpans();
// Registered timeline tracks as (tid, name).
std::vector<std::pair<int, std::string>> SnapshotTracks();

// Extracts (removes and returns) every finished span tagged with `trace_id`.
// The server's per-request harvest: sampled requests hand their spans back
// on the wire and leave nothing behind, so a long-lived server's span memory
// is bounded by its in-flight traces.
std::vector<SpanRecord> TakeTraceSpans(std::uint64_t trace_id);

// Clears the span buffers (not the metric values).
void ResetSpans();
// Clears spans and zeroes every registered metric.
void ResetAll();

namespace detail {
// Microseconds since process start on the span clock (shared with the
// flight recorder so dumped breadcrumbs align with spans).
double NowMicros();
// Appends a finished record to the calling thread's span buffer.
void AppendSpan(SpanRecord record);
// The calling thread's small stable tid.
int CurrentTid();
}  // namespace detail

}  // namespace obs
}  // namespace cmif

#endif  // SRC_OBS_OBS_H_
