// Cross-layer instrumentation: hierarchical wall-clock spans, synthetic
// media-timeline events, and the runtime/compile-time enable switches. The
// overhead contract: with CMIF_OBS_DISABLED defined every call here compiles
// to nothing; in a normal build, instrumentation that is not enabled at run
// time costs one relaxed atomic load per probe (see bench/fig1_pipeline).
//
// Spans nest per thread: the innermost live Span on the constructing thread
// becomes the parent. Finished spans accumulate in a process-wide buffer
// that src/obs/export.h renders as Chrome trace_event JSON (open in
// about:tracing or https://ui.perfetto.dev), JSONL, or a text report.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace cmif {
namespace obs {

// Wall-clock spans record under this Chrome-trace pid; synthetic
// media-timeline events under kTimelinePid (so Perfetto shows the pipeline
// and the presentation as two process tracks).
inline constexpr int kProcessPid = 1;
inline constexpr int kTimelinePid = 2;

#ifdef CMIF_OBS_DISABLED
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// True when instrumentation is recording. Default: off.
inline bool Enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on);
#endif

// RAII enable/restore, for tests and tools.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : previous_(Enabled()) { SetEnabled(on); }
  ~ScopedEnable() { SetEnabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

// One finished span (or synthetic timeline event).
struct SpanRecord {
  std::string name;
  // Pre-rendered JSON values keyed by annotation name.
  std::vector<std::pair<std::string, std::string>> args;
  double start_us = 0;  // since process start (wall spans) or media time 0
  double duration_us = 0;
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = no parent
  int pid = kProcessPid;
  int tid = 0;  // small per-thread id, or timeline track id
};

// A scoped wall-clock timer. Construction is a no-op unless Enabled(); the
// record is appended at destruction.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches key=value context shown in the trace viewer.
  void Annotate(std::string_view key, std::string_view value);
  void Annotate(std::string_view key, const char* value) {
    Annotate(key, std::string_view(value));
  }
  void Annotate(std::string_view key, double value);
  template <typename T>
    requires std::is_integral_v<T>
  void Annotate(std::string_view key, T value) {
    AnnotateInt(key, static_cast<std::int64_t>(value));
  }

  bool active() const { return active_; }
  std::uint64_t id() const { return record_.id; }

 private:
  void AnnotateInt(std::string_view key, std::int64_t value);

  bool active_ = false;
  SpanRecord record_;
  std::chrono::steady_clock::time_point start_;
};

// Finds or registers a named synthetic-timeline track (a Chrome-trace thread
// under kTimelinePid, e.g. one per playback channel). Returns its tid.
int TimelineTrack(std::string_view name);

// Appends a synthetic complete event on a timeline track. Times are in
// microseconds of media time, not wall time. No-op unless Enabled().
void EmitTimelineEvent(int track, std::string_view name, double start_us, double duration_us,
                       std::vector<std::pair<std::string, std::string>> args = {});

// Snapshot of all finished spans/events, in completion order.
std::vector<SpanRecord> SnapshotSpans();
// Registered timeline tracks as (tid, name).
std::vector<std::pair<int, std::string>> SnapshotTracks();

// Clears the span buffer (not the metric values).
void ResetSpans();
// Clears spans and zeroes every registered metric.
void ResetAll();

}  // namespace obs
}  // namespace cmif

#endif  // SRC_OBS_OBS_H_
