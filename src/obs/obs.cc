#include "src/obs/obs.h"

#include <map>
#include <mutex>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace cmif {
namespace obs {

#ifndef CMIF_OBS_DISABLED
namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void SetEnabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }
#endif

namespace {

// The process-wide recorder. Leaked singletons: instrumented destructors may
// run at exit.
struct Recorder {
  std::mutex mu;
  std::vector<SpanRecord> spans;
  std::map<std::string, int, std::less<>> tracks;
  int next_track_tid = 1;
};

Recorder& GetRecorder() {
  static Recorder* const kRecorder = new Recorder();
  return *kRecorder;
}

std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<int> g_next_thread_id{1};

// Per-thread state: a small stable id and the stack of open span ids.
struct ThreadState {
  int tid = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::uint64_t> open_spans;
};

ThreadState& GetThreadState() {
  thread_local ThreadState state;
  return state;
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point kStart = std::chrono::steady_clock::now();
  return kStart;
}

double MicrosSinceStart(std::chrono::steady_clock::time_point at) {
  return std::chrono::duration<double, std::micro>(at - ProcessStart()).count();
}

}  // namespace

Span::Span(std::string_view name) {
  if (!Enabled()) {
    return;
  }
  active_ = true;
  ThreadState& state = GetThreadState();
  record_.name = std::string(name);
  record_.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  record_.parent_id = state.open_spans.empty() ? 0 : state.open_spans.back();
  record_.tid = state.tid;
  state.open_spans.push_back(record_.id);
  start_ = std::chrono::steady_clock::now();
  record_.start_us = MicrosSinceStart(start_);
}

Span::~Span() {
  if (!active_) {
    return;
  }
  record_.duration_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
          .count();
  ThreadState& state = GetThreadState();
  if (!state.open_spans.empty() && state.open_spans.back() == record_.id) {
    state.open_spans.pop_back();
  }
  Recorder& recorder = GetRecorder();
  std::lock_guard<std::mutex> lock(recorder.mu);
  recorder.spans.push_back(std::move(record_));
}

void Span::Annotate(std::string_view key, std::string_view value) {
  if (active_) {
    record_.args.emplace_back(std::string(key), JsonQuote(value));
  }
}

void Span::Annotate(std::string_view key, double value) {
  if (active_) {
    record_.args.emplace_back(std::string(key), JsonNumber(value));
  }
}

void Span::AnnotateInt(std::string_view key, std::int64_t value) {
  if (active_) {
    record_.args.emplace_back(std::string(key), JsonNumber(value));
  }
}

int TimelineTrack(std::string_view name) {
  Recorder& recorder = GetRecorder();
  std::lock_guard<std::mutex> lock(recorder.mu);
  auto it = recorder.tracks.find(name);
  if (it == recorder.tracks.end()) {
    it = recorder.tracks.emplace(std::string(name), recorder.next_track_tid++).first;
  }
  return it->second;
}

void EmitTimelineEvent(int track, std::string_view name, double start_us, double duration_us,
                       std::vector<std::pair<std::string, std::string>> args) {
  if (!Enabled()) {
    return;
  }
  SpanRecord record;
  record.name = std::string(name);
  record.args = std::move(args);
  record.start_us = start_us;
  record.duration_us = duration_us;
  record.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  record.pid = kTimelinePid;
  record.tid = track;
  Recorder& recorder = GetRecorder();
  std::lock_guard<std::mutex> lock(recorder.mu);
  recorder.spans.push_back(std::move(record));
}

std::vector<SpanRecord> SnapshotSpans() {
  Recorder& recorder = GetRecorder();
  std::lock_guard<std::mutex> lock(recorder.mu);
  return recorder.spans;
}

std::vector<std::pair<int, std::string>> SnapshotTracks() {
  Recorder& recorder = GetRecorder();
  std::lock_guard<std::mutex> lock(recorder.mu);
  std::vector<std::pair<int, std::string>> out;
  out.reserve(recorder.tracks.size());
  for (const auto& [name, tid] : recorder.tracks) {
    out.emplace_back(tid, name);
  }
  return out;
}

void ResetSpans() {
  Recorder& recorder = GetRecorder();
  std::lock_guard<std::mutex> lock(recorder.mu);
  recorder.spans.clear();
}

void ResetAll() {
  ResetSpans();
  MetricsRegistry::Instance().ResetValues();
}

}  // namespace obs
}  // namespace cmif
