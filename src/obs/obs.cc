#include "src/obs/obs.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cmif {
namespace obs {

#ifndef CMIF_OBS_DISABLED
namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void SetEnabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }
#endif

namespace {

// Finished spans land in a per-thread buffer: the hot path takes one
// uncontended per-thread lock (snapshot/harvest are the only other lockers)
// instead of serializing every thread through a process-wide mutex. Buffers
// are owned jointly by the thread (thread_local shared_ptr) and the registry
// (so snapshots still see spans from exited threads). Leaked deliberately:
// instrumented destructors may run at exit.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanRecord> spans;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& GetBufferRegistry() {
  static BufferRegistry* const kRegistry = new BufferRegistry();
  return *kRegistry;
}

// Timeline tracks keep the old process-wide table — track registration is
// not a hot path.
struct TrackTable {
  std::mutex mu;
  std::map<std::string, int, std::less<>> tracks;
  int next_track_tid = 1;
};

TrackTable& GetTrackTable() {
  static TrackTable* const kTracks = new TrackTable();
  return *kTracks;
}

std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<int> g_next_thread_id{1};

// Per-thread state: a small stable id, the stack of open span ids, and this
// thread's share of the span buffer.
struct ThreadState {
  int tid = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::uint64_t> open_spans;
  std::shared_ptr<ThreadBuffer> buffer = std::make_shared<ThreadBuffer>();

  ThreadState() {
    BufferRegistry& registry = GetBufferRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.buffers.push_back(buffer);
  }
};

ThreadState& GetThreadState() {
  thread_local ThreadState state;
  return state;
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point kStart = std::chrono::steady_clock::now();
  return kStart;
}

double MicrosSinceStart(std::chrono::steady_clock::time_point at) {
  return std::chrono::duration<double, std::micro>(at - ProcessStart()).count();
}

}  // namespace

namespace detail {

double NowMicros() { return MicrosSinceStart(std::chrono::steady_clock::now()); }

int CurrentTid() { return GetThreadState().tid; }

void AppendSpan(SpanRecord record) {
  ThreadBuffer& buffer = *GetThreadState().buffer;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.spans.push_back(std::move(record));
}

}  // namespace detail

Span::Span(std::string_view name) {
  if (!Enabled()) {
    return;
  }
  const TraceContext& context = CurrentTrace();
  const bool record = !context.valid() || context.sampled;
  const bool flight = FlightRecorder::Enabled();
  if (!record && !flight) {
    return;  // unsampled and no flight recorder: zero work, zero allocation
  }
  ThreadState& state = GetThreadState();
  record_.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  record_.trace_id = context.trace_id;
  record_.parent_id =
      state.open_spans.empty() ? context.parent_span_id : state.open_spans.back();
  record_.tid = state.tid;
  if (record) {
    active_ = true;
    record_.name = std::string(name);
    state.open_spans.push_back(record_.id);
  } else {
    flight_only_ = true;
  }
  start_ = std::chrono::steady_clock::now();
  record_.start_us = MicrosSinceStart(start_);
  if (flight) {
    FlightRecorder::Record(FlightRecorder::EventKind::kSpanBegin, context.trace_id,
                           record_.id, name);
  }
}

void Span::ReserveArgs() {
  // Annotated spans typically carry a handful of args; one up-front
  // reservation replaces the doubling reallocations of organic growth.
  if (record_.args.capacity() == 0) {
    record_.args.reserve(8);
  }
}

Span::~Span() {
  if (!active_ && !flight_only_) {
    return;
  }
  record_.duration_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
          .count();
  if (FlightRecorder::Enabled()) {
    FlightRecorder::Record(FlightRecorder::EventKind::kSpanEnd, record_.trace_id,
                           record_.id, record_.name);
  }
  if (!active_) {
    return;
  }
  ThreadState& state = GetThreadState();
  if (!state.open_spans.empty() && state.open_spans.back() == record_.id) {
    state.open_spans.pop_back();
  }
  ThreadBuffer& buffer = *state.buffer;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.spans.push_back(std::move(record_));
}

void Span::Annotate(std::string_view key, std::string_view value) {
  if (active_) {
    ReserveArgs();
    record_.args.emplace_back(std::string(key), JsonQuote(value));
  }
  if ((active_ || flight_only_) && FlightRecorder::Enabled()) {
    FlightRecorder::Record(FlightRecorder::EventKind::kAnnotation, record_.trace_id,
                           record_.id, key);
  }
}

void Span::Annotate(std::string_view key, double value) {
  if (active_) {
    ReserveArgs();
    record_.args.emplace_back(std::string(key), JsonNumber(value));
  }
  if ((active_ || flight_only_) && FlightRecorder::Enabled()) {
    FlightRecorder::Record(FlightRecorder::EventKind::kAnnotation, record_.trace_id,
                           record_.id, key);
  }
}

void Span::AnnotateInt(std::string_view key, std::int64_t value) {
  if (active_) {
    ReserveArgs();
    record_.args.emplace_back(std::string(key), JsonNumber(value));
  }
  if ((active_ || flight_only_) && FlightRecorder::Enabled()) {
    FlightRecorder::Record(FlightRecorder::EventKind::kAnnotation, record_.trace_id,
                           record_.id, key);
  }
}

std::uint64_t EmitSpan(std::string_view name, double start_us, double duration_us,
                       std::vector<std::pair<std::string, std::string>> args) {
  if (!Enabled()) {
    return 0;
  }
  const TraceContext& context = CurrentTrace();
  if (context.valid() && !context.sampled) {
    return 0;
  }
  ThreadState& state = GetThreadState();
  SpanRecord record;
  record.name = std::string(name);
  record.args = std::move(args);
  record.start_us = start_us;
  record.duration_us = duration_us;
  record.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  record.parent_id =
      state.open_spans.empty() ? context.parent_span_id : state.open_spans.back();
  record.trace_id = context.trace_id;
  record.tid = state.tid;
  const std::uint64_t id = record.id;
  detail::AppendSpan(std::move(record));
  return id;
}

int TimelineTrack(std::string_view name) {
  TrackTable& table = GetTrackTable();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.tracks.find(name);
  if (it == table.tracks.end()) {
    it = table.tracks.emplace(std::string(name), table.next_track_tid++).first;
  }
  return it->second;
}

void EmitTimelineEvent(int track, std::string_view name, double start_us, double duration_us,
                       std::vector<std::pair<std::string, std::string>> args) {
  if (!Enabled()) {
    return;
  }
  SpanRecord record;
  record.name = std::string(name);
  record.args = std::move(args);
  record.start_us = start_us;
  record.duration_us = duration_us;
  record.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  record.pid = kTimelinePid;
  record.tid = track;
  detail::AppendSpan(std::move(record));
}

SpanRecord* TimelineBatch::Stage(int track, std::string_view name, double start_us,
                                 double duration_us) {
  if (!Enabled()) {
    return nullptr;
  }
  if (staged_.capacity() == 0) {
    // One up-front reservation instead of doubling through the first runs of
    // a playback loop; a longer run still grows organically past this.
    staged_.reserve(64);
  }
  SpanRecord& record = staged_.emplace_back();
  record.name = std::string(name);
  record.start_us = start_us;
  record.duration_us = duration_us;
  record.pid = kTimelinePid;
  record.tid = track;
  return &record;
}

void TimelineBatch::Flush() {
  if (staged_.empty()) {
    return;
  }
  // One id reservation and one buffer lock for the whole batch.
  std::uint64_t first_id =
      g_next_span_id.fetch_add(staged_.size(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    staged_[i].id = first_id + i;
  }
  ThreadBuffer& buffer = *GetThreadState().buffer;
  {
    std::lock_guard<std::mutex> lock(buffer.mu);
    buffer.spans.insert(buffer.spans.end(), std::make_move_iterator(staged_.begin()),
                        std::make_move_iterator(staged_.end()));
  }
  staged_.clear();
}

std::vector<SpanRecord> SnapshotSpans() {
  std::vector<SpanRecord> out;
  BufferRegistry& registry = GetBufferRegistry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const std::shared_ptr<ThreadBuffer>& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.start_us < b.start_us;
  });
  return out;
}

std::vector<SpanRecord> TakeTraceSpans(std::uint64_t trace_id) {
  std::vector<SpanRecord> out;
  if (trace_id == 0) {
    return out;
  }
  BufferRegistry& registry = GetBufferRegistry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const std::shared_ptr<ThreadBuffer>& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    auto split = std::stable_partition(
        buffer->spans.begin(), buffer->spans.end(),
        [trace_id](const SpanRecord& span) { return span.trace_id != trace_id; });
    for (auto it = split; it != buffer->spans.end(); ++it) {
      out.push_back(std::move(*it));
    }
    buffer->spans.erase(split, buffer->spans.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.start_us < b.start_us;
  });
  return out;
}

std::vector<std::pair<int, std::string>> SnapshotTracks() {
  TrackTable& table = GetTrackTable();
  std::lock_guard<std::mutex> lock(table.mu);
  std::vector<std::pair<int, std::string>> out;
  out.reserve(table.tracks.size());
  for (const auto& [name, tid] : table.tracks) {
    out.emplace_back(tid, name);
  }
  return out;
}

void ResetSpans() {
  BufferRegistry& registry = GetBufferRegistry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const std::shared_ptr<ThreadBuffer>& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->spans.clear();
  }
}

void ResetAll() {
  ResetSpans();
  FlightRecorder::Reset();
  MetricsRegistry::Instance().ResetValues();
}

}  // namespace obs
}  // namespace cmif
