#include "src/gen/editgen.h"

#include <string>
#include <utility>

#include "src/base/random.h"
#include "src/base/string_util.h"

namespace cmif {
namespace {

// A node addressable through a fully named path, with that path.
struct Addressable {
  Node* node;
  std::vector<std::string> segments;  // empty = root
};

void CollectAddressable(Node& node, std::vector<std::string>& prefix,
                        std::vector<Addressable>& out) {
  out.push_back(Addressable{&node, prefix});
  for (std::size_t i = 0; i < node.child_count(); ++i) {
    Node& child = node.ChildAt(i);
    std::string name = child.name();
    if (name.empty()) {
      continue;  // unnamed subtree: ops cannot address it stably
    }
    prefix.push_back(std::move(name));
    CollectAddressable(child, prefix, out);
    prefix.pop_back();
  }
}

std::string AbsolutePath(const std::vector<std::string>& segments) {
  if (segments.empty()) {
    return "/";
  }
  return "/" + JoinStrings(segments, "/");
}

class TraceGenerator {
 public:
  TraceGenerator(const Document& document, const EditGenOptions& options)
      : options_(options), mirror_(document.Clone()), rng_(options.seed) {}

  StatusOr<std::vector<EditOp>> Run() {
    std::vector<EditOp> trace;
    int stuck = 0;
    while (static_cast<int>(trace.size()) < options_.count && stuck < 8) {
      StatusOr<EditOp> op = DrawOp();
      if (!op.ok()) {
        ++stuck;  // category ran dry for the current document; redraw
        continue;
      }
      CMIF_RETURN_IF_ERROR(ApplyEdit(mirror_, *op).status());
      trace.push_back(std::move(*op));
      stuck = 0;
    }
    return trace;
  }

 private:
  StatusOr<EditOp> DrawOp() {
    double roll = rng_.NextDouble();
    if (roll < options_.add_arc_fraction) {
      return DrawAddArc();
    }
    roll -= options_.add_arc_fraction;
    if (roll < options_.remove_arc_fraction) {
      return DrawRemoveArc();
    }
    roll -= options_.remove_arc_fraction;
    if (roll < options_.add_node_fraction) {
      return DrawAddNode();
    }
    roll -= options_.add_node_fraction;
    if (roll < options_.remove_node_fraction) {
      return DrawRemoveNode();
    }
    return DrawRetune();
  }

  // Arc owners with at least one arc, as (addressable index, arc index).
  std::vector<std::pair<std::size_t, int>> ArcSlots(const std::vector<Addressable>& nodes) {
    std::vector<std::pair<std::size_t, int>> slots;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t a = 0; a < nodes[i].node->arcs().size(); ++a) {
        slots.emplace_back(i, static_cast<int>(a));
      }
    }
    return slots;
  }

  std::vector<Addressable> Snapshot() {
    std::vector<Addressable> nodes;
    std::vector<std::string> prefix;
    CollectAddressable(mirror_.root(), prefix, nodes);
    return nodes;
  }

  MediaTime DrawTime() {
    // Quarter-second granularity keeps the solver's tick LCM small.
    return MediaTime::Rational(
        static_cast<std::int64_t>(rng_.NextBelow(static_cast<std::uint64_t>(
            4 * options_.max_seconds + 1))),
        4);
  }

  void DrawBounds(SyncArc& arc) {
    arc.offset = DrawTime();
    arc.min_delay = MediaTime() - DrawTime();
    if (rng_.NextBool(options_.tight_fraction)) {
      arc.max_delay = DrawTime();
    } else {
      arc.max_delay.reset();
    }
  }

  StatusOr<EditOp> DrawRetune() {
    std::vector<Addressable> nodes = Snapshot();
    auto slots = ArcSlots(nodes);
    if (slots.empty()) {
      return NotFoundError("no arcs to retune");
    }
    auto [owner, index] = slots[rng_.NextBelow(slots.size())];
    EditOp op;
    op.kind = EditOpKind::kRetuneArc;
    op.path = AbsolutePath(nodes[owner].segments);
    op.arc_index = index;
    const SyncArc& current = nodes[owner].node->arcs()[static_cast<std::size_t>(index)];
    DrawBounds(op.arc);
    // Mostly preserve the window's finiteness: finiteness flips force the
    // edit session down the full-rebuild path, which we want represented but
    // not dominant.
    if (rng_.NextBool(0.8)) {
      if (current.max_delay.has_value() && !op.arc.max_delay.has_value()) {
        op.arc.max_delay = DrawTime();
      } else if (!current.max_delay.has_value()) {
        op.arc.max_delay.reset();
      }
    }
    return op;
  }

  StatusOr<EditOp> DrawAddArc() {
    std::vector<Addressable> nodes = Snapshot();
    // Endpoints: named non-root nodes, connected forward in collection
    // (roughly document) order, written on the root.
    if (nodes.size() < 3) {
      return NotFoundError("not enough nodes for an arc");
    }
    std::size_t i = 1 + rng_.NextBelow(nodes.size() - 2);
    std::size_t j = i + 1 + rng_.NextBelow(nodes.size() - i - 1);
    EditOp op;
    op.kind = EditOpKind::kAddArc;
    op.path = "/";
    op.arc.source = NodePath::Relative(nodes[i].segments);
    op.arc.dest = NodePath::Relative(nodes[j].segments);
    op.arc.source_edge = rng_.NextBool() ? ArcEdge::kBegin : ArcEdge::kEnd;
    op.arc.dest_edge = ArcEdge::kBegin;
    op.arc.rigor = rng_.NextBool(options_.may_fraction) ? ArcRigor::kMay : ArcRigor::kMust;
    DrawBounds(op.arc);
    return op;
  }

  StatusOr<EditOp> DrawRemoveArc() {
    std::vector<Addressable> nodes = Snapshot();
    auto slots = ArcSlots(nodes);
    if (slots.empty()) {
      return NotFoundError("no arcs to remove");
    }
    auto [owner, index] = slots[rng_.NextBelow(slots.size())];
    EditOp op;
    op.kind = EditOpKind::kRemoveArc;
    op.path = AbsolutePath(nodes[owner].segments);
    op.arc_index = index;
    return op;
  }

  StatusOr<EditOp> DrawAddNode() {
    std::vector<Addressable> nodes = Snapshot();
    std::vector<std::size_t> composites;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].node->is_composite()) {
        composites.push_back(i);
      }
    }
    if (composites.empty()) {
      return NotFoundError("no composite to extend");
    }
    const Addressable& parent = nodes[composites[rng_.NextBelow(composites.size())]];
    EditOp op;
    op.kind = EditOpKind::kAddNode;
    op.path = AbsolutePath(parent.segments);
    do {
      op.name = StrFormat("e%d", name_counter_++);
    } while (parent.node->FindChild(op.name) != nullptr);
    const auto& channels = mirror_.channels().channels();
    if (channels.empty()) {
      // No channel to direct a leaf at: grow the structure instead.
      op.node_kind = rng_.NextBool() ? NodeKind::kPar : NodeKind::kSeq;
    } else {
      op.node_kind = NodeKind::kImm;
      op.channel = channels[rng_.NextBelow(channels.size())].name;
    }
    return op;
  }

  StatusOr<EditOp> DrawRemoveNode() {
    std::vector<Addressable> nodes = Snapshot();
    // Only leaves whose parent keeps at least one other child, so the tree
    // never degenerates to empty composites.
    std::vector<std::size_t> victims;
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      Node* n = nodes[i].node;
      if (n->child_count() == 0 && n->parent() != nullptr && n->parent()->child_count() > 1) {
        victims.push_back(i);
      }
    }
    if (victims.empty()) {
      return NotFoundError("no removable leaf");
    }
    EditOp op;
    op.kind = EditOpKind::kRemoveNode;
    op.path = AbsolutePath(nodes[victims[rng_.NextBelow(victims.size())]].segments);
    return op;
  }

  EditGenOptions options_;
  Document mirror_;
  Rng rng_;
  int name_counter_ = 0;
};

}  // namespace

StatusOr<std::vector<EditOp>> GenerateEditTrace(const Document& document,
                                                const EditGenOptions& options) {
  return TraceGenerator(document, options).Run();
}

}  // namespace cmif
