#include "src/gen/docgen.h"

#include "src/base/random.h"
#include "src/base/string_util.h"
#include "src/doc/builder.h"

namespace cmif {
namespace {

constexpr MediaType kChannelMedia[] = {MediaType::kText, MediaType::kAudio, MediaType::kVideo,
                                       MediaType::kGraphic};

class Generator {
 public:
  explicit Generator(const GenOptions& options) : options_(options), rng_(options.seed) {}

  StatusOr<GenWorkload> Run() {
    GenWorkload workload;
    DocBuilder builder(NodeKind::kSeq);
    builder.ToRoot().Attr(std::string(kAttrName), AttrValue::Id("generated"));
    for (int c = 0; c < options_.channels; ++c) {
      builder.DefineChannel(ChannelName(c), kChannelMedia[c % 4]);
    }
    if (options_.with_styles) {
      AttrList body;
      body.Set(std::string(kAttrTFormatting),
               AttrValue::List({Attr{"font", AttrValue::Id("fixed")},
                                Attr{"size", AttrValue::Number(10)}}));
      builder.DefineStyle("gen_text", std::move(body));
      AttrList derived;
      derived.Set(std::string(kAttrStyle), AttrValue::Id("gen_text"));
      derived.Set("emphasis", AttrValue::Number(1));
      builder.DefineStyle("gen_text_emph", std::move(derived));
    }
    // A random branching process can die out early; keep appending top-level
    // sections until the leaf target is met.
    while (leaves_ < options_.target_leaves) {
      builder.ToRoot();
      CMIF_RETURN_IF_ERROR(Grow(builder, workload.store, 0));
    }
    CMIF_ASSIGN_OR_RETURN(workload.document, builder.Build());
    return workload;
  }

 private:
  std::string ChannelName(int c) { return StrFormat("ch%d", c); }

  // Adds children to the composite the builder cursor is on.
  Status Grow(DocBuilder& builder, DescriptorStore& store, int depth) {
    Node& owner = builder.current();  // arcs attach to this composite
    int fanout = static_cast<int>(rng_.NextInRange(2, options_.max_fanout));
    std::vector<std::string> names;
    for (int i = 0; i < fanout && leaves_ < options_.target_leaves; ++i) {
      std::string name = StrFormat("n%d", name_counter_++);
      names.push_back(name);
      bool make_leaf = depth >= options_.max_depth || rng_.NextBool(0.55);
      if (make_leaf) {
        CMIF_RETURN_IF_ERROR(AddLeaf(builder, store, name));
      } else {
        if (rng_.NextBool(options_.par_probability)) {
          builder.Par(name);
        } else {
          builder.Seq(name);
        }
        CMIF_RETURN_IF_ERROR(Grow(builder, store, depth + 1));
        builder.Up();
      }
    }
    // Forward arcs between the named children of this composite.
    if (names.size() >= 2) {
      int arcs = rng_.NextBool(options_.arcs_per_composite) ? 1 : 0;
      if (rng_.NextDouble() < options_.arcs_per_composite - 1) {
        ++arcs;  // allow > 1 arc per composite at high settings
      }
      for (int a = 0; a < arcs; ++a) {
        std::size_t i = static_cast<std::size_t>(
            rng_.NextBelow(static_cast<std::uint64_t>(names.size() - 1)));
        std::size_t j = i + 1 + static_cast<std::size_t>(rng_.NextBelow(
                                    static_cast<std::uint64_t>(names.size() - i - 1)));
        SyncArc arc;
        arc.source_edge = rng_.NextBool() ? ArcEdge::kBegin : ArcEdge::kEnd;
        arc.dest_edge = ArcEdge::kBegin;
        arc.rigor = rng_.NextBool(options_.may_fraction) ? ArcRigor::kMay : ArcRigor::kMust;
        auto source = NodePath::Parse(names[i]);
        auto dest = NodePath::Parse(names[j]);
        if (!source.ok() || !dest.ok()) {
          return source.ok() ? dest.status() : source.status();
        }
        arc.source = *source;
        arc.dest = *dest;
        arc.offset = MediaTime::Millis(rng_.NextInRange(0, 500));
        arc.min_delay = MediaTime();
        if (options_.tight_windows) {
          arc.max_delay = MediaTime::Millis(rng_.NextInRange(0, 300));
        } else {
          arc.max_delay = std::nullopt;
        }
        CMIF_RETURN_IF_ERROR(arc.CheckShape());
        owner.AddArc(std::move(arc));
      }
    }
    return Status::Ok();
  }

  Status AddLeaf(DocBuilder& builder, DescriptorStore& store, const std::string& name) {
    ++leaves_;
    int channel = static_cast<int>(rng_.NextBelow(static_cast<std::uint64_t>(
        options_.channels > 0 ? options_.channels : 1)));
    MediaType medium = kChannelMedia[channel % 4];
    MediaTime duration = MediaTime::Millis(rng_.NextInRange(500, 4000));
    if (medium == MediaType::kText && rng_.NextBool(0.6)) {
      builder.ImmText(name, StrFormat("generated text %d", leaves_))
          .OnChannel(ChannelName(channel))
          .WithDuration(duration);
      if (options_.with_styles && rng_.NextBool(0.3)) {
        builder.WithStyle(rng_.NextBool() ? "gen_text" : "gen_text_emph");
      }
      return Status::Ok();
    }
    // External leaf: register a generator descriptor.
    std::string id = StrFormat("gen-desc-%d", leaves_);
    DataDescriptor descriptor(id, AttrList());
    descriptor.mutable_attrs().Set(std::string(kDescMedium),
                                   AttrValue::Id(std::string(MediaTypeName(medium))));
    descriptor.mutable_attrs().Set(std::string(kDescDuration), AttrValue::Time(duration));
    GeneratorSpec spec;
    spec.duration = duration;
    switch (medium) {
      case MediaType::kAudio:
        spec.generator = "tone";
        spec.params = StrFormat("rate=8000,hz=%d", static_cast<int>(rng_.NextInRange(100, 999)));
        spec.approx_bytes = static_cast<std::size_t>(duration.ToUnits(8000)) * 2;
        descriptor.mutable_attrs().Set(std::string(kDescRate), AttrValue::Number(8000));
        break;
      case MediaType::kVideo:
        spec.generator = "flying_bird";
        spec.params = "width=32,height=24,fps=25";
        spec.approx_bytes = static_cast<std::size_t>(duration.ToUnits(25)) * 32 * 24 * 3;
        descriptor.mutable_attrs().Set(std::string(kDescRate), AttrValue::Number(25));
        descriptor.mutable_attrs().Set(std::string(kDescWidth), AttrValue::Number(32));
        descriptor.mutable_attrs().Set(std::string(kDescHeight), AttrValue::Number(24));
        descriptor.mutable_attrs().Set(std::string(kDescColorBits), AttrValue::Number(8));
        break;
      case MediaType::kGraphic:
      case MediaType::kImage:
        spec.generator = "test_card";
        spec.params = StrFormat("width=32,height=24,seed=%d", leaves_);
        spec.approx_bytes = 32 * 24 * 3;
        descriptor.mutable_attrs().Set(std::string(kDescWidth), AttrValue::Number(32));
        descriptor.mutable_attrs().Set(std::string(kDescHeight), AttrValue::Number(24));
        descriptor.mutable_attrs().Set(std::string(kDescColorBits), AttrValue::Number(8));
        break;
      case MediaType::kText:
        spec.generator = "test_card";  // unused; text ext leaves carry text descriptors
        break;
    }
    descriptor.mutable_attrs().Set(std::string(kDescBytes),
                                   AttrValue::Number(static_cast<std::int64_t>(spec.approx_bytes)));
    if (medium == MediaType::kText) {
      DataBlock block =
          DataBlock::FromText(TextBlock(StrFormat("external text %d", leaves_), {}));
      descriptor.set_content(std::move(block));
    } else {
      descriptor.set_content(std::move(spec));
    }
    CMIF_RETURN_IF_ERROR(store.Add(std::move(descriptor)));
    builder.Ext(name, id).OnChannel(ChannelName(channel)).WithDuration(duration);
    return Status::Ok();
  }

  const GenOptions& options_;
  Rng rng_;
  int leaves_ = 0;
  int name_counter_ = 0;
};

}  // namespace

StatusOr<GenWorkload> GenerateRandomDocument(const GenOptions& options) {
  return Generator(options).Run();
}

}  // namespace cmif
