#include "src/gen/docgen.h"

#include "src/base/random.h"
#include "src/base/string_util.h"
#include "src/doc/builder.h"

namespace cmif {
namespace {

constexpr MediaType kChannelMedia[] = {MediaType::kText, MediaType::kAudio, MediaType::kVideo,
                                       MediaType::kGraphic};

class Generator {
 public:
  explicit Generator(const GenOptions& options) : options_(options), rng_(options.seed) {}

  StatusOr<GenWorkload> Run() {
    GenWorkload workload;
    DocBuilder builder(NodeKind::kSeq);
    builder.ToRoot().Attr(std::string(kAttrName), AttrValue::Id("generated"));
    if (options_.record_seed) {
      builder.Attr("gen_seed", AttrValue::String(StrFormat(
                                   "0x%016llx", static_cast<unsigned long long>(options_.seed))));
    }
    for (int c = 0; c < options_.channels; ++c) {
      builder.DefineChannel(ChannelName(c), kChannelMedia[c % 4]);
    }
    if (options_.with_styles) {
      AttrList body;
      body.Set(std::string(kAttrTFormatting),
               AttrValue::List({Attr{"font", AttrValue::Id("fixed")},
                                Attr{"size", AttrValue::Number(10)}}));
      builder.DefineStyle("gen_text", std::move(body));
      AttrList derived;
      derived.Set(std::string(kAttrStyle), AttrValue::Id("gen_text"));
      derived.Set("emphasis", AttrValue::Number(1));
      builder.DefineStyle("gen_text_emph", std::move(derived));
    }
    // A random branching process can die out early; keep appending top-level
    // sections until the leaf target is met.
    while (leaves_ < options_.target_leaves) {
      builder.ToRoot();
      CMIF_RETURN_IF_ERROR(Grow(builder, workload.store, 0, {}));
    }
    CMIF_RETURN_IF_ERROR(AddCrossArcs(builder));
    CMIF_ASSIGN_OR_RETURN(workload.document, builder.Build());
    return workload;
  }

 private:
  std::string ChannelName(int c) { return StrFormat("ch%d", c); }

  // Draws one arc offset, honouring the zero-offset pathology dial. The
  // dial guards are short-circuit so a zero dial consumes no rng draws and
  // the legacy stream for a seed is unchanged.
  MediaTime DrawOffset() {
    if (options_.zero_offset_fraction > 0 && rng_.NextBool(options_.zero_offset_fraction)) {
      return MediaTime();
    }
    return MediaTime::Millis(rng_.NextInRange(0, 500));
  }

  // Draws one arc min_delay (always <= 0).
  MediaTime DrawMinDelay() {
    if (options_.negative_delay_fraction > 0 &&
        rng_.NextBool(options_.negative_delay_fraction)) {
      return MediaTime() - MediaTime::Millis(rng_.NextInRange(0, 250));
    }
    return MediaTime();
  }

  // Adds children to the composite the builder cursor is on. `prefix` is the
  // root-relative path of that composite, used to record every named node
  // for the cross-subtree arc pass.
  Status Grow(DocBuilder& builder, DescriptorStore& store, int depth,
              std::vector<std::string> prefix) {
    Node& owner = builder.current();  // arcs attach to this composite
    int fanout = static_cast<int>(rng_.NextInRange(2, options_.max_fanout));
    std::vector<std::string> names;
    for (int i = 0; i < fanout && leaves_ < options_.target_leaves; ++i) {
      std::string name = StrFormat("n%d", name_counter_++);
      names.push_back(name);
      std::vector<std::string> child_path = prefix;
      child_path.push_back(name);
      node_paths_.push_back(child_path);
      bool make_leaf = depth >= options_.max_depth || rng_.NextBool(0.55);
      if (make_leaf) {
        CMIF_RETURN_IF_ERROR(AddLeaf(builder, store, name));
      } else {
        if (rng_.NextBool(options_.par_probability)) {
          builder.Par(name);
        } else {
          builder.Seq(name);
        }
        CMIF_RETURN_IF_ERROR(Grow(builder, store, depth + 1, std::move(child_path)));
        builder.Up();
      }
    }
    // Forward arcs between the named children of this composite.
    if (names.size() >= 2) {
      int arcs = rng_.NextBool(options_.arcs_per_composite) ? 1 : 0;
      if (rng_.NextDouble() < options_.arcs_per_composite - 1) {
        ++arcs;  // allow > 1 arc per composite at high settings
      }
      for (int a = 0; a < arcs; ++a) {
        std::size_t i = static_cast<std::size_t>(
            rng_.NextBelow(static_cast<std::uint64_t>(names.size() - 1)));
        std::size_t j = i + 1 + static_cast<std::size_t>(rng_.NextBelow(
                                    static_cast<std::uint64_t>(names.size() - i - 1)));
        SyncArc arc;
        arc.source_edge = rng_.NextBool() ? ArcEdge::kBegin : ArcEdge::kEnd;
        arc.dest_edge = ArcEdge::kBegin;
        arc.rigor = rng_.NextBool(options_.may_fraction) ? ArcRigor::kMay : ArcRigor::kMust;
        auto source = NodePath::Parse(names[i]);
        auto dest = NodePath::Parse(names[j]);
        if (!source.ok() || !dest.ok()) {
          return source.ok() ? dest.status() : source.status();
        }
        arc.source = *source;
        arc.dest = *dest;
        arc.offset = DrawOffset();
        arc.min_delay = DrawMinDelay();
        if (options_.tight_windows) {
          arc.max_delay = MediaTime::Millis(rng_.NextInRange(0, 300));
        } else {
          arc.max_delay = std::nullopt;
        }
        CMIF_RETURN_IF_ERROR(arc.CheckShape());
        owner.AddArc(std::move(arc));
      }
    }
    return Status::Ok();
  }

  // Writes cross-subtree arcs on the root, between named nodes anywhere in
  // the tree. Forward arcs pick i < j in creation (document) order; the
  // backward fraction swaps them, which together with structural sequencing
  // is the classic over-constraint pathology.
  Status AddCrossArcs(DocBuilder& builder) {
    if (options_.cross_arc_rate <= 0 || node_paths_.size() < 2) {
      return Status::Ok();
    }
    double expected = options_.cross_arc_rate * leaves_;
    int count = static_cast<int>(expected);
    double fraction = expected - count;
    if (fraction > 0 && rng_.NextBool(fraction)) {
      ++count;
    }
    builder.ToRoot();
    Node& root = builder.current();
    for (int a = 0; a < count; ++a) {
      std::size_t i = static_cast<std::size_t>(
          rng_.NextBelow(static_cast<std::uint64_t>(node_paths_.size() - 1)));
      std::size_t j = i + 1 + static_cast<std::size_t>(rng_.NextBelow(
                                  static_cast<std::uint64_t>(node_paths_.size() - i - 1)));
      if (options_.backward_arc_fraction > 0 &&
          rng_.NextBool(options_.backward_arc_fraction)) {
        std::swap(i, j);
      }
      SyncArc arc;
      arc.source_edge = rng_.NextBool() ? ArcEdge::kBegin : ArcEdge::kEnd;
      arc.dest_edge = ArcEdge::kBegin;
      arc.rigor = rng_.NextBool(options_.may_fraction) ? ArcRigor::kMay : ArcRigor::kMust;
      arc.source = NodePath::Relative(node_paths_[i]);
      arc.dest = NodePath::Relative(node_paths_[j]);
      arc.offset = DrawOffset();
      arc.min_delay = DrawMinDelay();
      if (options_.tight_windows && rng_.NextBool(0.7)) {
        arc.max_delay = MediaTime::Millis(rng_.NextInRange(0, 300));
      } else {
        arc.max_delay = std::nullopt;
      }
      CMIF_RETURN_IF_ERROR(arc.CheckShape());
      root.AddArc(std::move(arc));
    }
    return Status::Ok();
  }

  Status AddLeaf(DocBuilder& builder, DescriptorStore& store, const std::string& name) {
    ++leaves_;
    int channel = static_cast<int>(rng_.NextBelow(static_cast<std::uint64_t>(
        options_.channels > 0 ? options_.channels : 1)));
    MediaType medium = kChannelMedia[channel % 4];
    MediaTime duration = MediaTime::Millis(rng_.NextInRange(500, 4000));
    if (medium == MediaType::kText && rng_.NextBool(0.6)) {
      builder.ImmText(name, StrFormat("generated text %d", leaves_))
          .OnChannel(ChannelName(channel))
          .WithDuration(duration);
      if (options_.with_styles && rng_.NextBool(0.3)) {
        builder.WithStyle(rng_.NextBool() ? "gen_text" : "gen_text_emph");
      }
      return Status::Ok();
    }
    // External leaf: register a generator descriptor.
    std::string id = StrFormat("gen-desc-%d", leaves_);
    DataDescriptor descriptor(id, AttrList());
    descriptor.mutable_attrs().Set(std::string(kDescMedium),
                                   AttrValue::Id(std::string(MediaTypeName(medium))));
    descriptor.mutable_attrs().Set(std::string(kDescDuration), AttrValue::Time(duration));
    GeneratorSpec spec;
    spec.duration = duration;
    switch (medium) {
      case MediaType::kAudio:
        spec.generator = "tone";
        spec.params = StrFormat("rate=8000,hz=%d", static_cast<int>(rng_.NextInRange(100, 999)));
        spec.approx_bytes = static_cast<std::size_t>(duration.ToUnits(8000)) * 2;
        descriptor.mutable_attrs().Set(std::string(kDescRate), AttrValue::Number(8000));
        break;
      case MediaType::kVideo:
        spec.generator = "flying_bird";
        spec.params = "width=32,height=24,fps=25";
        spec.approx_bytes = static_cast<std::size_t>(duration.ToUnits(25)) * 32 * 24 * 3;
        descriptor.mutable_attrs().Set(std::string(kDescRate), AttrValue::Number(25));
        descriptor.mutable_attrs().Set(std::string(kDescWidth), AttrValue::Number(32));
        descriptor.mutable_attrs().Set(std::string(kDescHeight), AttrValue::Number(24));
        descriptor.mutable_attrs().Set(std::string(kDescColorBits), AttrValue::Number(8));
        break;
      case MediaType::kGraphic:
      case MediaType::kImage:
        spec.generator = "test_card";
        spec.params = StrFormat("width=32,height=24,seed=%d", leaves_);
        spec.approx_bytes = 32 * 24 * 3;
        descriptor.mutable_attrs().Set(std::string(kDescWidth), AttrValue::Number(32));
        descriptor.mutable_attrs().Set(std::string(kDescHeight), AttrValue::Number(24));
        descriptor.mutable_attrs().Set(std::string(kDescColorBits), AttrValue::Number(8));
        break;
      case MediaType::kText:
        spec.generator = "test_card";  // unused; text ext leaves carry text descriptors
        break;
    }
    descriptor.mutable_attrs().Set(std::string(kDescBytes),
                                   AttrValue::Number(static_cast<std::int64_t>(spec.approx_bytes)));
    if (medium == MediaType::kText) {
      DataBlock block =
          DataBlock::FromText(TextBlock(StrFormat("external text %d", leaves_), {}));
      descriptor.set_content(std::move(block));
    } else {
      descriptor.set_content(std::move(spec));
    }
    CMIF_RETURN_IF_ERROR(store.Add(std::move(descriptor)));
    builder.Ext(name, id).OnChannel(ChannelName(channel)).WithDuration(duration);
    return Status::Ok();
  }

  const GenOptions& options_;
  Rng rng_;
  int leaves_ = 0;
  int name_counter_ = 0;
  // Root-relative path of every named node, in creation (document) order.
  std::vector<std::vector<std::string>> node_paths_;
};

}  // namespace

StatusOr<GenWorkload> GenerateRandomDocument(const GenOptions& options) {
  StatusOr<GenWorkload> workload = Generator(options).Run();
  if (!workload.ok()) {
    // Every failure path names the seed, so a report line alone reproduces.
    return Status(workload.status().code(),
                  StrFormat("docgen seed=0x%016llx: %s",
                            static_cast<unsigned long long>(options.seed),
                            workload.status().message().c_str()));
  }
  return workload;
}

}  // namespace cmif
