// Random edit-trace generation: deterministic sequences of EditOps that are
// valid against a given document, for the edit-session differential harness
// and the fig17 edit bench. Like docgen, generation is deterministic in the
// seed so divergences reproduce exactly.
#ifndef SRC_GEN_EDITGEN_H_
#define SRC_GEN_EDITGEN_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/doc/document.h"
#include "src/doc/edit.h"

namespace cmif {

// Shape parameters for one edit trace. The op mix draws add-arc, remove-arc,
// add-node, and remove-node by their fractions; retune-arc takes the
// remainder (the common case: an author nudging timing).
struct EditGenOptions {
  int count = 16;
  std::uint64_t seed = 1;
  double add_arc_fraction = 0.2;
  double remove_arc_fraction = 0.1;
  double add_node_fraction = 0.05;
  double remove_node_fraction = 0.05;
  // Fraction of generated arcs that are "may" rather than "must".
  double may_fraction = 0.5;
  // Fraction of retunes/new arcs given a finite max_delay window.
  double tight_fraction = 0.3;
  // Upper bound (seconds) for drawn offsets and delays.
  int max_seconds = 8;
};

// Generates a trace of `options.count` ops, each valid against the document
// produced by applying the ops before it (the generator replays its own ops
// on a private clone). Ops only address nodes reachable through fully named
// paths. Returns fewer ops than requested only when the document runs out of
// editable material.
StatusOr<std::vector<EditOp>> GenerateEditTrace(const Document& document,
                                                const EditGenOptions& options);

}  // namespace cmif

#endif  // SRC_GEN_EDITGEN_H_
