// Random CMIF workload generation: parameterized documents for property
// tests and the parameter-sweep benches. Generation is deterministic in the
// seed, so failures reproduce exactly.
#ifndef SRC_GEN_DOCGEN_H_
#define SRC_GEN_DOCGEN_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/doc/document.h"

namespace cmif {

// Shape parameters for one random document.
struct GenOptions {
  // Approximate number of leaf events.
  int target_leaves = 50;
  // Maximum composite nesting below the root.
  int max_depth = 4;
  // Children per composite node, drawn in [2, max_fanout].
  int max_fanout = 4;
  // Number of channels; media cycle through text/audio/video/graphic.
  int channels = 4;
  // Probability that a composite node is parallel (else sequential).
  double par_probability = 0.4;
  // Expected explicit arcs per composite node. Generated arcs always point
  // forward in document order.
  double arcs_per_composite = 0.5;
  // Fraction of generated arcs that are "may" rather than "must".
  double may_fraction = 0.5;
  // When true, arcs get finite max_delay windows, which can over-constrain
  // the document (for conflict tests/benches); when false, arcs are
  // lower-bound-only and the document is always feasible.
  bool tight_windows = false;
  // Attach a style dictionary and style references.
  bool with_styles = true;
  std::uint64_t seed = 1;
};

// A generated workload: the document plus descriptors for its ext leaves.
struct GenWorkload {
  Document document{NodeKind::kSeq};
  DescriptorStore store;
};

// Builds one random document. The result always passes ValidateDocument;
// with tight_windows=false it is also always schedulable.
StatusOr<GenWorkload> GenerateRandomDocument(const GenOptions& options);

}  // namespace cmif

#endif  // SRC_GEN_DOCGEN_H_
