// Random CMIF workload generation: parameterized documents for property
// tests and the parameter-sweep benches. Generation is deterministic in the
// seed, so failures reproduce exactly.
#ifndef SRC_GEN_DOCGEN_H_
#define SRC_GEN_DOCGEN_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/doc/document.h"

namespace cmif {

// Shape parameters for one random document.
struct GenOptions {
  // Approximate number of leaf events.
  int target_leaves = 50;
  // Maximum composite nesting below the root.
  int max_depth = 4;
  // Children per composite node, drawn in [2, max_fanout].
  int max_fanout = 4;
  // Number of channels; media cycle through text/audio/video/graphic.
  int channels = 4;
  // Probability that a composite node is parallel (else sequential).
  double par_probability = 0.4;
  // Expected explicit arcs per composite node. Generated arcs always point
  // forward in document order.
  double arcs_per_composite = 0.5;
  // Fraction of generated arcs that are "may" rather than "must".
  double may_fraction = 0.5;
  // When true, arcs get finite max_delay windows, which can over-constrain
  // the document (for conflict tests/benches); when false, arcs are
  // lower-bound-only and the document is always feasible.
  bool tight_windows = false;
  // Attach a style dictionary and style references.
  bool with_styles = true;
  std::uint64_t seed = 1;

  // -- Pathology dials (the src/check conformance harness) ------------------
  // All default to off, which preserves the legacy generation stream for a
  // given seed exactly.
  // Expected cross-subtree arcs per generated leaf, written on the root
  // between named nodes anywhere in the tree (the local arcs above only ever
  // connect siblings).
  double cross_arc_rate = 0.0;
  // Fraction of cross-subtree arcs that point backward in document order —
  // the over-constrained case that exercises conflict cycles.
  double backward_arc_fraction = 0.0;
  // Fraction of arcs whose offset is forced to exactly zero.
  double zero_offset_fraction = 0.0;
  // Fraction of arcs given a negative min_delay ("the ability to start the
  // target node sooner", section 5.3.2).
  double negative_delay_fraction = 0.0;
  // Stamp the seed on the root as a gen_seed attribute, so every generated
  // artifact carries its own reproduction recipe.
  bool record_seed = true;
};

// A generated workload: the document plus descriptors for its ext leaves.
struct GenWorkload {
  Document document{NodeKind::kSeq};
  DescriptorStore store;
};

// Builds one random document. The result always passes ValidateDocument;
// with tight_windows=false it is also always schedulable.
StatusOr<GenWorkload> GenerateRandomDocument(const GenOptions& options);

}  // namespace cmif

#endif  // SRC_GEN_DOCGEN_H_
