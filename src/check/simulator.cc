#include "src/check/simulator.h"

#include <algorithm>
#include <map>
#include <optional>

namespace cmif {
namespace check {
namespace {

// One channel's device, reduced to the timing state the model needs.
struct SimDevice {
  DeviceTiming timing;
  MediaTime free_at;

  // When a presentation requested at `requested` can start: the device is
  // released at free_at, spends its setup time, transfers the payload (the
  // transfer may prefetch ahead of the requested time but not before the
  // device is ready), then adds its output latency.
  MediaTime EarliestStart(MediaTime requested, std::size_t bytes) const {
    MediaTime ready = free_at + timing.setup;
    MediaTime transfer;
    if (timing.bandwidth_bytes_per_s > 0 && bytes > 0) {
      transfer = MediaTime::Bytes(static_cast<std::int64_t>(bytes), timing.bandwidth_bytes_per_s);
    }
    MediaTime start = std::max(ready, requested - transfer - timing.latency);
    return start + transfer + timing.latency;
  }
};

// Declared payload bytes of one event, from immediate data or the catalog.
std::size_t EventBytes(const EventDescriptor& event, const DescriptorStore* store) {
  if (event.node->kind() == NodeKind::kImm) {
    return event.node->immediate_data().ByteSize();
  }
  if (store != nullptr) {
    if (const DataDescriptor* descriptor = store->Get(event.descriptor_id)) {
      return static_cast<std::size_t>(descriptor->DeclaredBytes());
    }
  }
  return 0;
}

// Per-node tolerance: the tightest finite max_delay among explicit must arcs
// whose destination is the node's begin edge, else the default. One upfront
// walk over every arc in the document.
std::map<const Node*, MediaTime> ToleranceTable(const Document& document,
                                                MediaTime default_tolerance) {
  std::map<const Node*, std::optional<MediaTime>> tightest;
  document.root().Visit([&](const Node& node) {
    for (const SyncArc& arc : node.arcs()) {
      if (arc.rigor != ArcRigor::kMust || arc.dest_edge != ArcEdge::kBegin ||
          !arc.max_delay.has_value()) {
        continue;
      }
      auto dest = node.Resolve(arc.dest);
      if (!dest.ok()) {
        continue;
      }
      std::optional<MediaTime>& slot = tightest[*dest];
      if (!slot.has_value() || *arc.max_delay < *slot) {
        slot = *arc.max_delay;
      }
    }
  });
  std::map<const Node*, MediaTime> table;
  for (const auto& [node, window] : tightest) {
    table[node] = window.value_or(default_tolerance);
  }
  return table;
}

}  // namespace

StatusOr<SimResult> SimulatePlayback(const Document& document, const Schedule& schedule,
                                     const DescriptorStore* store,
                                     const SimulatorOptions& options) {
  SimResult result;
  std::map<std::string, SimDevice> devices;
  for (const ChannelDef& channel : document.channels().channels()) {
    devices.emplace(channel.name, SimDevice{options.profile.TimingFor(channel.medium), {}});
  }
  std::map<const Node*, MediaTime> tolerance =
      ToleranceTable(document, options.default_tolerance);

  std::vector<const ScheduledEvent*> ordered;
  ordered.reserve(schedule.events().size());
  for (const ScheduledEvent& event : schedule.events()) {
    ordered.push_back(&event);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ScheduledEvent* a, const ScheduledEvent* b) {
                     return a->begin < b->begin;
                   });

  MediaTime shift;  // accumulated freeze time
  for (const ScheduledEvent* scheduled : ordered) {
    if (scheduled->end <= options.start_at && scheduled->begin < options.start_at) {
      ++result.events_skipped;
      continue;
    }
    auto device_it = devices.find(scheduled->event.channel);
    if (device_it == devices.end()) {
      return FailedPreconditionError("simulated event " + scheduled->event.node->DisplayPath() +
                                     " plays on unknown channel '" + scheduled->event.channel +
                                     "'");
    }
    SimDevice& device = device_it->second;

    SimEntry entry;
    entry.label = scheduled->event.node->name().empty() ? scheduled->event.node->DisplayPath()
                                                        : scheduled->event.node->name();
    entry.channel = scheduled->event.channel;
    entry.scheduled_begin = scheduled->begin;

    MediaTime target = scheduled->begin + shift;
    std::size_t bytes = EventBytes(scheduled->event, store);
    MediaTime actual = std::max(target, device.EarliestStart(target, bytes));
    MediaTime lateness = actual - target;
    if (lateness.is_positive()) {
      auto window = tolerance.find(scheduled->event.node);
      MediaTime allowed =
          window == tolerance.end() ? options.default_tolerance : window->second;
      if (lateness > allowed) {
        if (options.enable_freeze) {
          entry.caused_freeze = true;
          entry.freeze_amount = lateness;
          result.total_freeze += lateness;
          result.frozen_total += lateness;
          result.presentation_time += lateness;
          shift += lateness;
          target = scheduled->begin + shift;
          actual = target;
          lateness = MediaTime();
        } else {
          ++result.sync_violations;
        }
      }
    }
    entry.target_begin = target;
    entry.lateness = lateness;
    entry.actual_begin = actual;
    entry.actual_end = actual + (scheduled->end - scheduled->begin);
    device.free_at = entry.actual_end;

    // The document clock tracks the scheduled (not actual) end; the
    // presentation clock scales by the playback rate.
    if (scheduled->end > result.document_time) {
      MediaTime delta = scheduled->end - result.document_time;
      result.document_time = scheduled->end;
      result.presentation_time += delta.MulRational(options.rate_den, options.rate_num);
    }
    result.entries.push_back(std::move(entry));
  }
  return result;
}

}  // namespace check
}  // namespace cmif
