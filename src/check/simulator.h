// The reference player: an event-by-event virtual-clock simulator of the
// production playback engine (src/player/engine.cc), written for obviousness.
// It walks the schedule in begin order, models each channel's device as
// three numbers (free-at, setup, latency) plus a bandwidth division, applies
// the freeze-or-violate rule per event, and advances a scalar clock — no
// observability, no fault hooks, no degradation ladder. The differential
// driver replays every generated document through both implementations and
// asserts the traces are identical entry by entry.
#ifndef SRC_CHECK_SIMULATOR_H_
#define SRC_CHECK_SIMULATOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/doc/document.h"
#include "src/present/capability.h"
#include "src/sched/schedule.h"

namespace cmif {
namespace check {

// Mirror of the PlayerOptions fields the simulator models. Degradation and
// fault knobs are deliberately absent: the simulator defines fault-free
// semantics only.
struct SimulatorOptions {
  SystemProfile profile = WorkstationProfile();
  std::int64_t rate_num = 1;
  std::int64_t rate_den = 1;
  MediaTime default_tolerance = MediaTime::Millis(50);
  bool enable_freeze = true;
  MediaTime start_at;
};

// One simulated presentation.
struct SimEntry {
  std::string label;
  std::string channel;
  MediaTime scheduled_begin;  // the schedule's position
  MediaTime target_begin;     // scheduled_begin plus accumulated freezes
  MediaTime actual_begin;
  MediaTime actual_end;
  MediaTime lateness;  // actual - target after any freeze absorbed it
  bool caused_freeze = false;
  MediaTime freeze_amount;
};

// The simulated run.
struct SimResult {
  std::vector<SimEntry> entries;
  std::size_t events_skipped = 0;
  std::size_t sync_violations = 0;
  MediaTime total_freeze;
  // Final clock state, mirroring VirtualClock under the configured rate.
  MediaTime document_time;
  MediaTime presentation_time;
  MediaTime frozen_total;
};

// Simulates `schedule` (computed for `document`). `store` supplies declared
// payload sizes for external events and may be null.
StatusOr<SimResult> SimulatePlayback(const Document& document, const Schedule& schedule,
                                     const DescriptorStore* store,
                                     const SimulatorOptions& options = {});

}  // namespace check
}  // namespace cmif

#endif  // SRC_CHECK_SIMULATOR_H_
