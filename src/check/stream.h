// The streamed-vs-blob differential harness. Chunked delivery (wire v4,
// src/net/stream.h) must be *invisible* to the presentation: whatever a
// client would have played from a one-shot blob response, it must play
// byte-identically from the chunk stream, and when the link keeps up with
// the schedule's demand the event timeline must not shift by a single tick.
//
// For each seed the driver generates one pathology-biased document
// (src/gen), compiles it, builds the prefetch plan both delivery paths
// share, and replays delivery on a virtual-clock bandwidth-constrained
// link:
//
//   bytes      the plan carved through the real chunk codecs and the
//              StreamReassembler must equal the blob carve, block for
//              block, byte for byte — and every payload must decode as a
//              canonical block encoding.
//   resume     cutting the stream at every chunk boundary (capped on long
//              streams) and resuming with the held prefix must reproduce
//              the uninterrupted bytes exactly.
//   playback   the engine run with a block-arrival hook (arrival of byte n
//              at n / bandwidth) vs the classic all-local run: when every
//              block arrives by its first need the streamed run stalls
//              zero times and the traces are identical; a stall-free run
//              is identical regardless; a stalling run still presents the
//              same events in the same order and keeps must-sync intact.
//
// On divergence the shrinker bisects the document down to a minimal
// reproducer and writes a corpus file whose "%% stream" trailer pins the
// link parameters, so `cmif_tool check --corpus` replays it forever.
#ifndef SRC_CHECK_STREAM_H_
#define SRC_CHECK_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/check/differential.h"
#include "src/present/capability.h"

namespace cmif {
namespace check {

// Controls one streamed-delivery driver run.
struct StreamCheckOptions {
  // First document seed; document i uses a seed derived from base_seed + i.
  std::uint64_t base_seed = 1;
  // Number of generated documents.
  int count = 200;
  // Explicit seed list; when non-empty it replaces base_seed/count.
  std::vector<std::uint64_t> seeds;
  // Size of each generated document.
  int target_leaves = 12;
  // Simulated link bandwidth, bytes per second; 0 = infinite (every block
  // arrives at t=0, the degenerate blob-equivalent link).
  std::int64_t bandwidth_bytes_per_s = 64 << 10;
  // Chunk payload size for the simulated stream. Small by default so
  // ordinary generated documents span several chunks (and therefore several
  // resume boundaries); clamped into [kMinChunkBytes, kMaxChunkBytes].
  std::uint64_t chunk_bytes = 1 << 10;
  // Shrink failures to minimal reproducers.
  bool shrink = true;
  // Directory minimized reproducers are written into ("" = current dir).
  std::string reproducer_dir;
  // Device model for compilation and playback.
  SystemProfile profile = WorkstationProfile();
};

// Runs the streamed-vs-blob differential on one document. With a null
// `store` an empty catalog stands in (corpus replay; generated corpus
// leaves pin their durations, and missing descriptors simply leave the
// plan empty). The first divergence comes back as FailedPrecondition with
// `tag` in the message. Infeasible documents check that the plan is empty
// and stop there.
Status CheckStreamDocument(const Document& document, const DescriptorStore* store,
                           const std::string& tag, const SystemProfile& profile,
                           std::int64_t bandwidth_bytes_per_s, std::uint64_t chunk_bytes,
                           CheckCounters* counters = nullptr);

// The driver: generate, check, shrink-on-failure. Reuses CheckReport;
// `feasible` counts documents whose stream actually carried blocks.
StatusOr<CheckReport> RunStreamCheck(const StreamCheckOptions& options);

// Shrinks a document failing CheckStreamDocument (greedy subtree deletion,
// then arc deletion) and returns a parseable corpus file: the serialized
// document followed by a "%% stream bandwidth=<B> chunk=<C>" trailer that
// pins the link parameters the failure needs.
StatusOr<std::string> ShrinkStreamReproducer(const Document& document,
                                             const DescriptorStore* store,
                                             const SystemProfile& profile,
                                             std::int64_t bandwidth_bytes_per_s,
                                             std::uint64_t chunk_bytes);

}  // namespace check
}  // namespace cmif

#endif  // SRC_CHECK_STREAM_H_
