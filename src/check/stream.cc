#include "src/check/stream.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "src/base/string_util.h"
#include "src/doc/edit.h"
#include "src/fmt/writer.h"
#include "src/media/block_codec.h"
#include "src/net/presentation_wire.h"
#include "src/net/stream.h"
#include "src/pipeline/pipeline.h"
#include "src/player/engine.h"
#include "src/serve/prefetch.h"

namespace cmif {
namespace check {
namespace {

// SplitMix64 finalizer (the same derivation RunDifferentialCheck uses, so a
// seed reported by either driver regenerates the same document).
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Status Diverged(const std::string& tag, const std::string& check, const std::string& detail) {
  return FailedPreconditionError(
      StrFormat("[%s] %s differential diverged: %s", tag.c_str(), check.c_str(), detail.c_str()));
}

// Carves the plan's logical byte string the way the server's v4 blob path
// does: one WireBlock per manifest entry, delivery order.
std::vector<net::WireBlock> CarveBlob(const StreamPlan& plan) {
  std::vector<net::WireBlock> blocks;
  blocks.reserve(plan.blocks.size());
  for (const PrefetchBlock& block : plan.blocks) {
    blocks.push_back(net::WireBlock{
        block.descriptor_id,
        plan.bytes.substr(static_cast<std::size_t>(block.offset),
                          static_cast<std::size_t>(block.bytes))});
  }
  return blocks;
}

Status CompareBlocks(const std::string& tag, const std::string& check,
                     const std::vector<net::WireBlock>& streamed,
                     const std::vector<net::WireBlock>& blob) {
  if (streamed.size() != blob.size()) {
    return Diverged(tag, check,
                    StrFormat("stream delivered %zu blocks, blob %zu", streamed.size(),
                              blob.size()));
  }
  for (std::size_t i = 0; i < blob.size(); ++i) {
    if (streamed[i].descriptor_id != blob[i].descriptor_id) {
      return Diverged(tag, check,
                      StrFormat("block %zu is '%s' on the stream but '%s' in the blob", i,
                                streamed[i].descriptor_id.c_str(),
                                blob[i].descriptor_id.c_str()));
    }
    if (streamed[i].payload != blob[i].payload) {
      return Diverged(tag, check,
                      StrFormat("block %zu ('%s') payload bytes differ between stream and blob",
                                i, streamed[i].descriptor_id.c_str()));
    }
  }
  return Status::Ok();
}

// Entry-by-entry trace equality, the ComparePlayback discipline.
Status CompareTraces(const std::string& tag, const std::string& check,
                     const PlaybackResult& streamed, const PlaybackResult& blob) {
  if (streamed.trace.size() != blob.trace.size()) {
    return Diverged(tag, check,
                    StrFormat("streamed run presented %zu events, blob run %zu",
                              streamed.trace.size(), blob.trace.size()));
  }
  for (std::size_t i = 0; i < blob.trace.size(); ++i) {
    const TraceEntry& s = streamed.trace.entries()[i];
    const TraceEntry& b = blob.trace.entries()[i];
    if (s.label != b.label || s.channel != b.channel || s.scheduled_begin != b.scheduled_begin ||
        s.target_begin != b.target_begin || s.actual_begin != b.actual_begin ||
        s.actual_end != b.actual_end || s.lateness != b.lateness ||
        s.caused_freeze != b.caused_freeze || s.freeze_amount != b.freeze_amount) {
      return Diverged(tag, check,
                      StrFormat("entry %zu ('%s') differs between streamed and blob delivery", i,
                                b.label.c_str()));
    }
  }
  if (streamed.sync_violations != blob.sync_violations) {
    return Diverged(tag, check, "sync-violation counts differ between delivery paths");
  }
  if (streamed.clock.document_time() != blob.clock.document_time() ||
      streamed.clock.presentation_time() != blob.clock.presentation_time() ||
      streamed.clock.frozen_total() != blob.clock.frozen_total()) {
    return Diverged(tag, check, "final clock state differs between delivery paths");
  }
  return Status::Ok();
}

// The resume boundaries worth replaying: every one on short streams, the
// edges plus the middle on long ones (each replay re-feeds the tail).
std::vector<std::uint64_t> ResumeCuts(std::uint64_t total_chunks) {
  std::vector<std::uint64_t> cuts;
  if (total_chunks < 2) {
    return cuts;
  }
  if (total_chunks <= 8) {
    for (std::uint64_t k = 1; k < total_chunks; ++k) {
      cuts.push_back(k);
    }
    return cuts;
  }
  cuts = {1, total_chunks / 2, total_chunks - 1};
  return cuts;
}

}  // namespace

Status CheckStreamDocument(const Document& document, const DescriptorStore* store,
                           const std::string& tag, const SystemProfile& profile,
                           std::int64_t bandwidth_bytes_per_s, std::uint64_t chunk_bytes,
                           CheckCounters* counters) {
  const std::string check = "stream";
  chunk_bytes = std::clamp(chunk_bytes, net::kMinChunkBytes, net::kMaxChunkBytes);
  DescriptorStore empty;
  const DescriptorStore& catalog = store != nullptr ? *store : empty;
  BlockStore blocks;

  PipelineOptions options;
  options.profile = profile;
  options.mode = PipelineMode::kCompileOnly;
  CMIF_ASSIGN_OR_RETURN(CompileReport report,
                        CompilePresentation(document, catalog, blocks, options));
  CompiledPresentation compiled{report.presentation_map, report.filter, report.schedule};
  CMIF_ASSIGN_OR_RETURN(StreamPlan plan, BuildStreamPlan(compiled, catalog, blocks, profile));

  if (!compiled.schedule.feasible) {
    if (!plan.blocks.empty() || !plan.bytes.empty()) {
      return Diverged(tag, check, "infeasible schedule produced a non-empty delivery plan");
    }
    if (counters != nullptr) {
      ++counters->infeasible;
    }
    return Status::Ok();
  }
  if (counters != nullptr) {
    if (plan.blocks.empty()) {
      ++counters->relaxed;  // feasible but nothing to stream (immediate-only)
    } else {
      ++counters->feasible;
    }
  }

  // Plan invariants both delivery paths rely on: contiguous offsets, the
  // advertised hash, and delivery order sorted by must-start time.
  std::uint64_t expected_offset = 0;
  for (std::size_t i = 0; i < plan.blocks.size(); ++i) {
    const PrefetchBlock& block = plan.blocks[i];
    if (block.offset != expected_offset) {
      return Diverged(tag, check,
                      StrFormat("block %zu ('%s') offset %llu, expected %llu (plan not "
                                "contiguous)",
                                i, block.descriptor_id.c_str(),
                                static_cast<unsigned long long>(block.offset),
                                static_cast<unsigned long long>(expected_offset)));
    }
    expected_offset += block.bytes;
    if (i > 0 && plan.blocks[i - 1].must_start_by > block.must_start_by) {
      return Diverged(tag, check, "plan is not sorted by must-start time");
    }
  }
  if (expected_offset != plan.total_bytes()) {
    return Diverged(tag, check, "manifest byte total disagrees with the plan payload");
  }
  if (plan.payload_hash != Fnv1a64(plan.bytes)) {
    return Diverged(tag, check, "plan payload hash is not Fnv1a64 of the payload");
  }

  // ---- bytes: plan -> chunk codecs -> reassembler vs the blob carve ------
  const std::vector<net::WireBlock> blob = CarveBlob(plan);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    if (StatusOr<DataBlock> decoded = DecodeBlockPayload(blob[i].payload); !decoded.ok()) {
      return Diverged(tag, check,
                      StrFormat("block %zu ('%s') is not a canonical payload encoding: %s", i,
                                blob[i].descriptor_id.c_str(),
                                decoded.status().message().c_str()));
    }
  }

  net::StreamBegin begin;
  begin.prefix.outcome = ServeOutcome::kHealthy;
  begin.prefix.presentation = net::SerializePresentation(compiled);
  begin.prefix.presentation_hash = net::PresentationHash(compiled);
  begin.chunk_bytes = chunk_bytes;
  begin.total_chunks = net::StreamChunkCount(plan.total_bytes(), chunk_bytes);
  begin.payload_hash = plan.payload_hash;
  begin.stream_id =
      net::DeriveStreamId(begin.prefix.presentation_hash, plan.payload_hash, chunk_bytes);
  begin.manifest.reserve(plan.blocks.size());
  for (const PrefetchBlock& block : plan.blocks) {
    begin.manifest.push_back(net::StreamBlockInfo{block.descriptor_id, block.bytes,
                                                  block.first_need});
  }

  StatusOr<net::StreamBegin> begin_rt = net::DecodeStreamBegin(net::EncodeStreamBegin(begin));
  if (!begin_rt.ok()) {
    return Diverged(tag, check,
                    "StreamBegin does not survive its own codec: " + begin_rt.status().message());
  }

  std::vector<net::StreamChunk> chunks;
  chunks.reserve(static_cast<std::size_t>(begin.total_chunks));
  for (std::uint64_t i = 0; i < begin.total_chunks; ++i) {
    net::StreamChunk chunk;
    chunk.stream_id = begin.stream_id;
    chunk.chunk_index = i;
    chunk.payload = plan.bytes.substr(static_cast<std::size_t>(i * chunk_bytes),
                                      static_cast<std::size_t>(chunk_bytes));
    const bool last = i + 1 == begin.total_chunks;
    if (!last && chunk.payload.size() != chunk_bytes) {
      return Diverged(tag, check, StrFormat("non-final chunk %llu is not exactly chunk-sized",
                                            static_cast<unsigned long long>(i)));
    }
    StatusOr<net::StreamChunk> rt = net::DecodeStreamChunk(net::EncodeStreamChunk(chunk));
    if (!rt.ok()) {
      return Diverged(tag, check,
                      StrFormat("chunk %llu does not survive its own codec: %s",
                                static_cast<unsigned long long>(i),
                                rt.status().message().c_str()));
    }
    if (rt->payload != chunk.payload || rt->chunk_index != i || rt->stream_id != begin.stream_id) {
      return Diverged(tag, check, StrFormat("chunk %llu changed in its codec round trip",
                                            static_cast<unsigned long long>(i)));
    }
    chunks.push_back(std::move(*rt));
  }

  net::StreamEnd end;
  end.stream_id = begin.stream_id;
  end.total_chunks = begin.total_chunks;
  end.payload_hash = begin.payload_hash;
  StatusOr<net::StreamEnd> end_rt = net::DecodeStreamEnd(net::EncodeStreamEnd(end));
  if (!end_rt.ok()) {
    return Diverged(tag, check,
                    "StreamEnd does not survive its own codec: " + end_rt.status().message());
  }

  net::StreamReassembler reassembler;
  if (Status s = reassembler.Begin(*begin_rt); !s.ok()) {
    return Diverged(tag, check, "reassembler rejected a well-formed StreamBegin: " + s.message());
  }
  for (const net::StreamChunk& chunk : chunks) {
    if (Status s = reassembler.Feed(chunk); !s.ok()) {
      return Diverged(tag, check,
                      StrFormat("reassembler rejected in-order chunk %llu: %s",
                                static_cast<unsigned long long>(chunk.chunk_index),
                                s.message().c_str()));
    }
  }
  if (!reassembler.complete()) {
    return Diverged(tag, check, "reassembler not complete after every chunk");
  }
  StatusOr<std::vector<net::WireBlock>> streamed = reassembler.Finish(*end_rt);
  if (!streamed.ok()) {
    return Diverged(tag, check, "finish failed on an intact stream: " +
                                    streamed.status().message());
  }
  CMIF_RETURN_IF_ERROR(CompareBlocks(tag, check, *streamed, blob));

  // ---- resume: cut the stream at chunk boundaries and re-deliver ---------
  for (std::uint64_t cut : ResumeCuts(begin.total_chunks)) {
    net::StreamReassembler first;
    if (Status s = first.Begin(*begin_rt); !s.ok()) {
      return Diverged(tag, check, "resume-first Begin failed: " + s.message());
    }
    for (std::uint64_t i = 0; i < cut; ++i) {
      if (Status s = first.Feed(chunks[static_cast<std::size_t>(i)]); !s.ok()) {
        return Diverged(tag, check, "resume-first Feed failed: " + s.message());
      }
    }
    if (first.chunks_received() != cut) {
      return Diverged(tag, check,
                      StrFormat("held %llu contiguous chunks after feeding %llu",
                                static_cast<unsigned long long>(first.chunks_received()),
                                static_cast<unsigned long long>(cut)));
    }
    net::StreamBegin resumed = *begin_rt;
    resumed.resumed_from = cut;
    net::StreamReassembler second;
    if (Status s = second.Begin(resumed, std::string(first.bytes())); !s.ok()) {
      return Diverged(tag, check,
                      StrFormat("resume at chunk %llu rejected: %s",
                                static_cast<unsigned long long>(cut), s.message().c_str()));
    }
    for (std::uint64_t i = cut; i < begin.total_chunks; ++i) {
      if (Status s = second.Feed(chunks[static_cast<std::size_t>(i)]); !s.ok()) {
        return Diverged(tag, check,
                        StrFormat("resumed stream rejected chunk %llu: %s",
                                  static_cast<unsigned long long>(i), s.message().c_str()));
      }
    }
    StatusOr<std::vector<net::WireBlock>> resumed_blocks = second.Finish(*end_rt);
    if (!resumed_blocks.ok()) {
      return Diverged(tag, check,
                      StrFormat("resumed stream (cut %llu) failed finish: %s",
                                static_cast<unsigned long long>(cut),
                                resumed_blocks.status().message().c_str()));
    }
    CMIF_RETURN_IF_ERROR(CompareBlocks(
        tag, StrFormat("%s(resume@%llu)", check.c_str(), static_cast<unsigned long long>(cut)),
        *resumed_blocks, blob));
  }

  // ---- playback: streamed arrivals vs everything-local -------------------
  PlayerOptions blob_options;
  blob_options.profile = profile;
  blob_options.enable_freeze = true;
  CMIF_ASSIGN_OR_RETURN(PlaybackResult blob_run,
                        Play(document, compiled.schedule.schedule, store, blob_options));

  // Virtual link: byte n of the logical stream arrives at n / bandwidth, so
  // a block is playable once its last byte has arrived.
  std::map<std::string, MediaTime> arrival;
  bool on_time = true;
  for (const PrefetchBlock& block : plan.blocks) {
    MediaTime at = bandwidth_bytes_per_s > 0
                       ? MediaTime::Bytes(static_cast<std::int64_t>(block.offset + block.bytes),
                                          bandwidth_bytes_per_s)
                       : MediaTime();
    if (at > block.first_need) {
      on_time = false;
    }
    arrival.emplace(block.descriptor_id, at);
  }
  PlayerOptions stream_options = blob_options;
  stream_options.block_arrival = [&arrival](const EventDescriptor& event) {
    auto it = arrival.find(event.descriptor_id);
    return it == arrival.end() ? MediaTime() : it->second;
  };
  CMIF_ASSIGN_OR_RETURN(PlaybackResult stream_run,
                        Play(document, compiled.schedule.schedule, store, stream_options));

  if (on_time && stream_run.stalls != 0) {
    return Diverged(tag, check,
                    StrFormat("link meets every first-need yet the streamed run stalled %zu "
                              "times (total %s)",
                              stream_run.stalls, stream_run.stall_total.ToString().c_str()));
  }
  if (stream_run.stalls == 0) {
    // A stall-free stream must be indistinguishable from the blob: same
    // trace, tick for tick.
    CMIF_RETURN_IF_ERROR(CompareTraces(tag, check, stream_run, blob_run));
  } else {
    // The link fell behind: stalls are allowed, silent divergence is not.
    // The streamed run still presents every event, in order, with must-sync
    // intact (freezing absorbs the lateness).
    if (stream_run.trace.size() != blob_run.trace.size()) {
      return Diverged(tag, check, "stalling stream dropped or duplicated events");
    }
    for (std::size_t i = 0; i < blob_run.trace.size(); ++i) {
      const TraceEntry& s = stream_run.trace.entries()[i];
      const TraceEntry& b = blob_run.trace.entries()[i];
      if (s.label != b.label || s.channel != b.channel ||
          s.scheduled_begin != b.scheduled_begin) {
        return Diverged(tag, check,
                        StrFormat("stalling stream reordered entry %zu ('%s')", i,
                                  b.label.c_str()));
      }
    }
    if (stream_run.sync_violations != 0) {
      return Diverged(tag, check,
                      "stream stalls leaked through freezing as sync violations");
    }
    if (!stream_run.stall_total.is_positive()) {
      return Diverged(tag, check, "stalls counted but zero total stall time");
    }
    if (Status s = stream_run.trace.Verify(); !s.ok()) {
      return Diverged(tag, check, "stalling stream trace fails Verify: " + s.message());
    }
  }
  return Status::Ok();
}

StatusOr<CheckReport> RunStreamCheck(const StreamCheckOptions& options) {
  CheckReport report;
  CheckCounters counters;
  std::vector<std::uint64_t> seeds = options.seeds;
  if (seeds.empty()) {
    seeds.reserve(static_cast<std::size_t>(std::max(options.count, 0)));
    for (int i = 0; i < options.count; ++i) {
      seeds.push_back(MixSeed(options.base_seed + static_cast<std::uint64_t>(i)));
    }
  }
  for (std::uint64_t seed : seeds) {
    std::string tag = StrFormat("seed=0x%016llx", static_cast<unsigned long long>(seed));
    GenOptions gen = PathologicalGenOptions(seed, options.target_leaves);
    StatusOr<GenWorkload> workload = GenerateRandomDocument(gen);
    if (!workload.ok()) {
      report.failures.push_back(
          CheckFailure{seed, "generator failed: " + workload.status().message(), ""});
      continue;
    }
    ++report.documents;
    Status verdict =
        CheckStreamDocument(workload->document, &workload->store, tag, options.profile,
                            options.bandwidth_bytes_per_s, options.chunk_bytes, &counters);
    if (verdict.ok()) {
      continue;
    }
    CheckFailure failure;
    failure.seed = seed;
    failure.detail = verdict.message();
    if (options.shrink) {
      StatusOr<std::string> minimized =
          ShrinkStreamReproducer(workload->document, &workload->store, options.profile,
                                 options.bandwidth_bytes_per_s, options.chunk_bytes);
      if (minimized.ok()) {
        std::filesystem::path dir =
            options.reproducer_dir.empty() ? "." : options.reproducer_dir;
        std::filesystem::path path =
            dir / StrFormat("repro-stream-%016llx.cmif", static_cast<unsigned long long>(seed));
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        std::ofstream out(path);
        if (out) {
          out << *minimized;
          failure.reproducer_path = path.string();
        }
      }
    }
    report.failures.push_back(std::move(failure));
  }
  report.feasible = counters.feasible;
  report.relaxed = counters.relaxed;
  report.infeasible = counters.infeasible;
  report.oracle_passes = counters.oracle_passes;
  return report;
}

namespace {

// Child-index path helpers, mirroring the shrinker in differential.cc.
std::vector<std::size_t> IndexPath(const Node& node) {
  std::vector<std::size_t> path;
  const Node* current = &node;
  while (current->parent() != nullptr) {
    const Node* parent = current->parent();
    for (std::size_t i = 0; i < parent->child_count(); ++i) {
      if (&parent->ChildAt(i) == current) {
        path.push_back(i);
        break;
      }
    }
    current = parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Node* NodeAtIndexPath(Document& document, const std::vector<std::size_t>& path) {
  Node* node = &document.root();
  for (std::size_t index : path) {
    if (index >= node->child_count()) {
      return nullptr;
    }
    node = &node->ChildAt(index);
  }
  return node;
}

}  // namespace

StatusOr<std::string> ShrinkStreamReproducer(const Document& document,
                                             const DescriptorStore* store,
                                             const SystemProfile& profile,
                                             std::int64_t bandwidth_bytes_per_s,
                                             std::uint64_t chunk_bytes) {
  auto fails = [&](const Document& candidate) {
    return !CheckStreamDocument(candidate, store, "shrink", profile, bandwidth_bytes_per_s,
                                chunk_bytes)
                .ok();
  };
  if (!fails(document)) {
    return FailedPreconditionError("document passes the stream check; nothing to shrink");
  }
  Document current = document.Clone();
  bool progress = true;
  while (progress) {
    progress = false;
    // Pass 1: delete whole subtrees (pre-order, so large subtrees go first).
    std::vector<std::vector<std::size_t>> victims;
    current.root().Visit([&](const Node& node) {
      if (node.parent() != nullptr) {
        victims.push_back(IndexPath(node));
      }
    });
    for (const auto& path : victims) {
      Document trial = current.Clone();
      Node* victim = NodeAtIndexPath(trial, path);
      if (victim == nullptr) {
        continue;
      }
      if (!DeleteSubtree(trial, *victim).ok()) {
        continue;
      }
      if (fails(trial)) {
        current = std::move(trial);
        progress = true;
        break;
      }
    }
    if (progress) {
      continue;
    }
    // Pass 2: delete individual arcs.
    std::vector<std::pair<std::vector<std::size_t>, std::size_t>> arcs;
    current.root().Visit([&](const Node& node) {
      for (std::size_t i = 0; i < node.arcs().size(); ++i) {
        arcs.emplace_back(IndexPath(node), i);
      }
    });
    for (const auto& [path, index] : arcs) {
      Document trial = current.Clone();
      Node* owner = NodeAtIndexPath(trial, path);
      if (owner == nullptr || index >= owner->arcs().size()) {
        continue;
      }
      owner->arcs().erase(owner->arcs().begin() + static_cast<std::ptrdiff_t>(index));
      if (fails(trial)) {
        current = std::move(trial);
        progress = true;
        break;
      }
    }
  }
  CMIF_ASSIGN_OR_RETURN(std::string out, WriteDocument(current));
  if (out.empty() || out.back() != '\n') {
    out += '\n';
  }
  out += StrFormat("%%%% stream bandwidth=%lld chunk=%llu\n",
                   static_cast<long long>(bandwidth_bytes_per_s),
                   static_cast<unsigned long long>(chunk_bytes));
  return out;
}

}  // namespace check
}  // namespace cmif
