#include "src/check/oracle.h"

#include <algorithm>

namespace cmif {
namespace check {
namespace {

// One chaotic-iteration solve. `ignore_capability` drops kCapability
// constraints from consideration (for conflict classification).
OracleResult Iterate(const TimeGraph& graph, bool ignore_capability) {
  OracleResult result;
  const std::size_t n = graph.point_count();
  result.times.assign(n, MediaTime());
  if (n == 0) {
    result.feasible = true;
    return result;
  }
  // A feasible network converges within point_count + 1 full sweeps: the
  // sweeps are Bellman-Ford passes over the longest-path graph seeded from
  // every point at once, and any simple propagation chain has at most
  // point_count - 1 hops. Progress past the bound proves a positive cycle.
  const std::size_t max_passes = n + 1;
  bool changed = true;
  while (changed && result.passes <= max_passes) {
    changed = false;
    ++result.passes;
    for (std::size_t i = 0; i < graph.constraints().size(); ++i) {
      if (graph.IsDisabled(i)) {
        continue;
      }
      const Constraint& c = graph.constraints()[i];
      if (ignore_capability && c.origin == ConstraintOrigin::kCapability) {
        continue;
      }
      MediaTime& from = result.times[static_cast<std::size_t>(c.from)];
      MediaTime& to = result.times[static_cast<std::size_t>(c.to)];
      if (to < from + c.lo) {
        to = from + c.lo;
        changed = true;
      }
      if (c.hi.has_value() && to - *c.hi > from) {
        from = to - *c.hi;
        changed = true;
      }
    }
  }
  result.feasible = !changed;
  if (!result.feasible) {
    result.times.clear();
    return result;
  }
  // Normalize to the production solver's frame: point 0 (the root's begin)
  // is the zero of document time. The sweep can have lifted point 0 when an
  // upper bound chained back into it; subtracting re-anchors without
  // changing any difference.
  MediaTime origin = result.times[0];
  if (!origin.is_zero()) {
    for (MediaTime& t : result.times) {
      t -= origin;
    }
  }
  return result;
}

}  // namespace

OracleResult OracleSolve(const TimeGraph& graph) { return Iterate(graph, false); }

bool OracleBlamesCapability(const TimeGraph& graph) {
  if (Iterate(graph, false).feasible) {
    return false;  // nothing to blame
  }
  return Iterate(graph, true).feasible;
}

}  // namespace check
}  // namespace cmif
