// The differential conformance driver. For each seed it generates one
// pathology-biased document (src/gen), then asserts that the production
// stack and the deliberately naive reference implementations agree:
//
//   solver     SolveStn (SPFA and Bellman-Ford) vs the fixed-point oracle —
//              same feasibility verdict, identical exact earliest times,
//              and after may-arc relaxation the same final assignment; on
//              rejection, consistent conflict classification.
//   round trip compile -> serialize -> parse -> compile is a fixed point of
//              the FNV-1a PresentationHash, and compile -> wire-encode ->
//              decode returns the identical canonical presentation.
//   player     the production engine vs the event-by-event simulator —
//              identical traces, zero sync violations with freezing on,
//              identical violation counts with freezing off.
//
// On divergence the shrinker bisects the document (subtree deletion, then
// arc deletion) down to a minimal reproducer and writes it as a parseable
// corpus file whose root carries the generating seed.
#ifndef SRC_CHECK_DIFFERENTIAL_H_
#define SRC_CHECK_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/doc/edit.h"
#include "src/gen/docgen.h"
#include "src/present/capability.h"

namespace cmif {
namespace check {

// Controls one driver run.
struct CheckOptions {
  // First document seed; document i uses a seed derived from base_seed + i.
  std::uint64_t base_seed = 1;
  // Number of generated documents.
  int count = 200;
  // Explicit seed list; when non-empty it replaces base_seed/count (the CI
  // nightly job replays a fixed list).
  std::vector<std::uint64_t> seeds;
  // Size of each generated document.
  int target_leaves = 12;
  // Shrink failures to minimal reproducers.
  bool shrink = true;
  // Directory minimized reproducers are written into ("" = current dir).
  std::string reproducer_dir;
  // Device model for the capability-injected differential and the player.
  SystemProfile profile = WorkstationProfile();
  // Edits per document (0 = off): a seeded edit trace (src/gen/editgen) is
  // replayed through api::EditSession with incremental recompiles, and every
  // revision is differentially tested against a from-scratch compile and the
  // fixed-point oracle.
  int edits = 0;
};

// One divergence.
struct CheckFailure {
  std::uint64_t seed = 0;
  std::string detail;           // which check diverged and how
  std::string reproducer_path;  // minimized corpus file, when shrinking ran
};

// The outcome of a driver run.
struct CheckReport {
  std::size_t documents = 0;
  std::size_t feasible = 0;    // schedulable as authored
  std::size_t relaxed = 0;     // schedulable after dropping may arcs
  std::size_t infeasible = 0;  // rejected by production and oracle alike
  std::size_t oracle_passes = 0;  // total oracle sweeps, for the bench ratio
  std::vector<CheckFailure> failures;

  bool ok() const { return failures.empty(); }
  // Human-readable outcome; failure lines always include the seed.
  std::string Summary() const;
};

// Per-document verdict counters, shared by the driver and corpus replay.
struct CheckCounters {
  std::size_t feasible = 0;
  std::size_t relaxed = 0;
  std::size_t infeasible = 0;
  std::size_t oracle_passes = 0;
};

// Derives the document shape for one seed, sweeping the paper's pathology
// space: deep par/seq nesting, cross-subtree arcs, zero/negative offsets,
// infeasible tolerance windows, and channel starvation (channels == 1).
GenOptions PathologicalGenOptions(std::uint64_t seed, int target_leaves);

// Runs every differential check on one document. With a non-null `store`
// the full set runs (solver, pipeline-hash and wire round trips, player
// replay); a null store runs the store-independent subset, which is what
// corpus replay uses. The first divergence comes back as FailedPrecondition
// with `tag` in the message.
Status CheckDocument(const Document& document, const DescriptorStore* store,
                     const std::string& tag, const SystemProfile& profile,
                     CheckCounters* counters = nullptr);

// Replays `trace` through an api::EditSession on `document` and, after every
// op, compares the session's (warm-started, SCC-condensed) recompile against
// a from-scratch compile of an identically edited mirror and against the
// fixed-point oracle: same feasibility, identical exact earliest times,
// identical relaxation drops, and on rejection the same conflict class and
// cycle. Ops that fail to apply identically on both sides are skipped (the
// shrinker relies on that); asymmetric apply failures are divergences.
Status CheckEditTrace(const Document& document, const DescriptorStore* store,
                      const std::vector<EditOp>& trace, const std::string& tag,
                      CheckCounters* counters = nullptr);

// The driver: generate, check, shrink-on-failure.
StatusOr<CheckReport> RunDifferentialCheck(const CheckOptions& options);

// Shrinks a failing edit trace (greedy op deletion) against a fixed
// document, and returns a corpus file: the serialized document followed by a
// "%% edits" section holding the minimal trace, one op per line.
StatusOr<std::string> ShrinkEditReproducer(const Document& document, const DescriptorStore* store,
                                           const std::vector<EditOp>& trace);

// Shrinks a failing document to a minimal one that still fails
// CheckDocument, and returns its serialized text (a parseable corpus file).
StatusOr<std::string> ShrinkReproducer(const Document& document, const DescriptorStore* store,
                                       const SystemProfile& profile);

// Replays one corpus file: parse, then run the store-independent checks.
Status ReplayCorpusText(const std::string& text, const std::string& tag);

// Replays every *.cmif file under `dir` (sorted by name); returns the
// number of files replayed, or the first file's divergence.
StatusOr<int> ReplayCorpusDir(const std::string& dir);

}  // namespace check
}  // namespace cmif

#endif  // SRC_CHECK_DIFFERENTIAL_H_
