// The reference scheduling oracle: a deliberately naive fixed-point solver
// for the compiled time graph. Where src/sched/solver.cc runs SPFA over a
// distance graph with an integer-tick fast path, the oracle does the obvious
// thing — repeatedly sweep every difference constraint, raising times until
// nothing changes — so its correctness is checkable by eye. The differential
// driver (src/check/differential.h) asserts that the production solver and
// this oracle agree on feasibility and, when feasible, on the exact earliest
// assignment, for thousands of generated documents.
#ifndef SRC_CHECK_ORACLE_H_
#define SRC_CHECK_ORACLE_H_

#include <cstddef>
#include <vector>

#include "src/base/media_time.h"
#include "src/sched/timegraph.h"

namespace cmif {
namespace check {

// The oracle's verdict on one network.
struct OracleResult {
  bool feasible = false;
  // Least solution with times[0] == 0 (the root's begin), populated only
  // when feasible. Exact rational arithmetic, like the production solver.
  std::vector<MediaTime> times;
  // Full sweeps performed before convergence (or the divergence cutoff).
  std::size_t passes = 0;
};

// Solves `graph` by chaotic iteration: start every point at zero and apply
//
//   t[to]   := max(t[to],   t[from] + lo)        (lower bound)
//   t[from] := max(t[from], t[to]   - hi)        (upper bound, when finite)
//
// until a full sweep changes nothing. The least fixed point of these rules
// is the earliest schedule; if sweeps still make progress after
// point_count() + 1 passes a positive cycle exists (Bellman-Ford bound) and
// the network is infeasible. O(passes * constraints) — quadratic in the
// worst case, which is the point: no queues, no tick conversion, no early
// exits to get wrong. Disabled constraints are skipped, so the oracle can
// re-judge a graph after may-arc relaxation disabled some arcs.
OracleResult OracleSolve(const TimeGraph& graph);

// Classifies an infeasible graph the way section 5.3.3 separates case 1
// from case 2: true when ignoring every kCapability constraint makes the
// network feasible (the device model, not the author, over-constrained it).
bool OracleBlamesCapability(const TimeGraph& graph);

}  // namespace check
}  // namespace cmif

#endif  // SRC_CHECK_ORACLE_H_
