#include "src/check/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/api/edit_session.h"
#include "src/base/string_util.h"
#include "src/check/oracle.h"
#include "src/check/simulator.h"
#include "src/check/stream.h"
#include "src/doc/edit.h"
#include "src/gen/editgen.h"
#include "src/doc/event.h"
#include "src/fmt/parser.h"
#include "src/fmt/writer.h"
#include "src/net/presentation_wire.h"
#include "src/net/protocol.h"
#include "src/net/wire.h"
#include "src/pipeline/pipeline.h"
#include "src/player/engine.h"
#include "src/present/filter.h"
#include "src/sched/conflict.h"
#include "src/sched/solver.h"
#include "src/serve/mapping_cache.h"

namespace cmif {
namespace check {
namespace {

// SplitMix64 finalizer: decorrelates consecutive document indexes so every
// generated document explores an independent region of the pathology space.
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Status Diverged(const std::string& tag, const std::string& check, const std::string& detail) {
  return FailedPreconditionError(
      StrFormat("[%s] %s differential diverged: %s", tag.c_str(), check.c_str(), detail.c_str()));
}

// Exact comparison of two earliest-time vectors.
Status CompareTimes(const std::string& tag, const std::string& check,
                    const std::vector<MediaTime>& a, const std::string& a_name,
                    const std::vector<MediaTime>& b, const std::string& b_name) {
  if (a.size() != b.size()) {
    return Diverged(tag, check,
                    StrFormat("%s has %zu points, %s has %zu", a_name.c_str(), a.size(),
                              b_name.c_str(), b.size()));
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return Diverged(tag, check,
                      StrFormat("point %zu: %s=%s, %s=%s", i, a_name.c_str(),
                                a[i].ToString().c_str(), b_name.c_str(),
                                b[i].ToString().c_str()));
    }
  }
  return Status::Ok();
}

// Solver differential on one (already built) graph. Compares SPFA, naive
// Bellman-Ford, and the oracle on the pristine graph, then runs may-arc
// relaxation and re-judges the relaxed graph with the oracle.
Status CheckSolver(TimeGraph& graph, const std::vector<EventDescriptor>& events,
                   const std::string& tag, const std::string& check, bool expect_capability_free,
                   ScheduleResult* production, CheckCounters* counters) {
  OracleResult oracle = OracleSolve(graph);
  if (counters != nullptr) {
    counters->oracle_passes += oracle.passes;
  }
  SolveResult spfa = SolveStn(graph, SolverAlgorithm::kSpfa);
  SolveResult naive = SolveStn(graph, SolverAlgorithm::kNaiveBellmanFord);
  if (spfa.feasible != oracle.feasible) {
    return Diverged(tag, check,
                    StrFormat("SPFA says %s, oracle says %s",
                              spfa.feasible ? "feasible" : "infeasible",
                              oracle.feasible ? "feasible" : "infeasible"));
  }
  if (spfa.feasible != naive.feasible) {
    return Diverged(tag, check, "SPFA and naive Bellman-Ford disagree on feasibility");
  }
  if (oracle.feasible) {
    CMIF_RETURN_IF_ERROR(CompareTimes(tag, check, spfa.earliest, "spfa", oracle.times, "oracle"));
    CMIF_RETURN_IF_ERROR(CompareTimes(tag, check, spfa.earliest, "spfa", naive.earliest, "bf"));
    if (Status s = VerifySolution(graph, oracle.times); !s.ok()) {
      return Diverged(tag, check, "oracle times violate a constraint: " + s.message());
    }
  }

  // Relaxation: the production scheduler may drop may-arcs; the oracle must
  // agree with whatever graph it settled on.
  CMIF_ASSIGN_OR_RETURN(ScheduleResult sched, SolveSchedule(graph, events));
  if (sched.conflicts.empty() != oracle.feasible) {
    return Diverged(tag, check,
                    StrFormat("production %s conflicts but pristine graph is %s",
                              sched.conflicts.empty() ? "saw no" : "recorded",
                              oracle.feasible ? "feasible" : "infeasible"));
  }
  OracleResult relaxed = OracleSolve(graph);  // sees the disabled arcs
  if (sched.feasible != relaxed.feasible) {
    return Diverged(tag, check,
                    StrFormat("after relaxation production says %s, oracle says %s",
                              sched.feasible ? "feasible" : "infeasible",
                              relaxed.feasible ? "feasible" : "infeasible"));
  }
  if (sched.feasible) {
    CMIF_RETURN_IF_ERROR(
        CompareTimes(tag, check, sched.solve.earliest, "production", relaxed.times, "oracle"));
    // The schedule's event times must be exactly the earliest assignment.
    for (const ScheduledEvent& event : sched.schedule.events()) {
      CMIF_ASSIGN_OR_RETURN(int begin, graph.PointOf(*event.event.node, PointKind::kBegin));
      CMIF_ASSIGN_OR_RETURN(int end, graph.PointOf(*event.event.node, PointKind::kEnd));
      if (event.begin != relaxed.times[static_cast<std::size_t>(begin)] ||
          event.end != relaxed.times[static_cast<std::size_t>(end)]) {
        return Diverged(tag, check,
                        "scheduled event " + event.event.node->DisplayPath() +
                            " does not sit at the oracle's earliest times");
      }
    }
  } else {
    if (sched.conflicts.empty()) {
      return Diverged(tag, check, "infeasible production schedule carries no conflict");
    }
    // Classification: when ignoring capability constraints makes the network
    // feasible, every unbreakable cycle runs through a capability constraint
    // and production must have said so. (The converse is not required: a
    // mixed cycle can legitimately be reported as kCapability while a pure
    // authoring cycle also exists.)
    ConflictClass cls = sched.conflicts.back().cls;
    bool capability_blamed = OracleBlamesCapability(graph);
    if (capability_blamed && cls != ConflictClass::kCapability) {
      return Diverged(tag, check,
                      "oracle blames the device model but production classified the conflict as " +
                          std::string(ConflictClassName(cls)));
    }
    if (expect_capability_free && cls != ConflictClass::kAuthoring) {
      return Diverged(tag, check,
                      "graph has no capability constraints but conflict classified as " +
                          std::string(ConflictClassName(cls)));
    }
  }
  if (production != nullptr) {
    *production = std::move(sched);
  }
  return Status::Ok();
}

// Compares the production playback engine against the simulator, entry by
// entry, under one freeze setting.
Status ComparePlayback(const Document& document, const Schedule& schedule,
                       const DescriptorStore* store, const SystemProfile& profile,
                       bool enable_freeze, const std::string& tag) {
  const std::string check = enable_freeze ? "player(freeze)" : "player(no-freeze)";
  PlayerOptions player_options;
  player_options.profile = profile;
  player_options.enable_freeze = enable_freeze;
  CMIF_ASSIGN_OR_RETURN(PlaybackResult played, Play(document, schedule, store, player_options));
  SimulatorOptions sim_options;
  sim_options.profile = profile;
  sim_options.enable_freeze = enable_freeze;
  CMIF_ASSIGN_OR_RETURN(SimResult simulated,
                        SimulatePlayback(document, schedule, store, sim_options));
  if (played.trace.size() != simulated.entries.size()) {
    return Diverged(tag, check,
                    StrFormat("engine presented %zu events, simulator %zu", played.trace.size(),
                              simulated.entries.size()));
  }
  for (std::size_t i = 0; i < simulated.entries.size(); ++i) {
    const TraceEntry& real = played.trace.entries()[i];
    const SimEntry& sim = simulated.entries[i];
    if (real.label != sim.label || real.channel != sim.channel ||
        real.scheduled_begin != sim.scheduled_begin || real.target_begin != sim.target_begin ||
        real.actual_begin != sim.actual_begin || real.actual_end != sim.actual_end ||
        real.lateness != sim.lateness || real.caused_freeze != sim.caused_freeze ||
        real.freeze_amount != sim.freeze_amount) {
      return Diverged(tag, check,
                      StrFormat("entry %zu ('%s') differs between engine and simulator", i,
                                real.label.c_str()));
    }
  }
  if (played.sync_violations != simulated.sync_violations) {
    return Diverged(tag, check,
                    StrFormat("engine counted %zu sync violations, simulator %zu",
                              played.sync_violations, simulated.sync_violations));
  }
  if (enable_freeze && played.sync_violations != 0) {
    return Diverged(tag, check, "sync violations with freezing enabled");
  }
  if (played.trace.TotalFreeze() != simulated.total_freeze) {
    return Diverged(tag, check, "total freeze time differs");
  }
  if (played.clock.document_time() != simulated.document_time ||
      played.clock.presentation_time() != simulated.presentation_time ||
      played.clock.frozen_total() != simulated.frozen_total) {
    return Diverged(tag, check, "final clock state differs");
  }
  if (Status s = played.trace.Verify(); !s.ok()) {
    return Diverged(tag, check, "engine trace fails Verify: " + s.message());
  }
  return Status::Ok();
}

// Serialize -> parse -> serialize must be byte-identical, and the reparsed
// document must schedule exactly like the original.
Status CheckDocumentRoundTrip(const Document& document, const DescriptorStore* store,
                              const ScheduleResult& original, const std::string& tag,
                              Document* reparsed_out) {
  CMIF_ASSIGN_OR_RETURN(std::string text, WriteDocument(document));
  StatusOr<Document> reparsed = ParseDocument(text);
  if (!reparsed.ok()) {
    return Diverged(tag, "serialize/parse", "serialized document does not parse: " +
                                                reparsed.status().message());
  }
  CMIF_ASSIGN_OR_RETURN(std::string text2, WriteDocument(*reparsed));
  if (text != text2) {
    return Diverged(tag, "serialize/parse", "second serialization is not a fixed point");
  }
  CMIF_ASSIGN_OR_RETURN(std::vector<EventDescriptor> events, CollectEvents(*reparsed, store));
  CMIF_ASSIGN_OR_RETURN(ScheduleResult resched, ComputeSchedule(*reparsed, events));
  if (resched.feasible != original.feasible) {
    return Diverged(tag, "serialize/parse", "reparsed document's feasibility changed");
  }
  if (resched.feasible) {
    const auto& a = original.schedule.events();
    const auto& b = resched.schedule.events();
    if (a.size() != b.size()) {
      return Diverged(tag, "serialize/parse", "reparsed schedule has a different event count");
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].begin != b[i].begin || a[i].end != b[i].end ||
          a[i].event.channel != b[i].event.channel ||
          a[i].event.node->DisplayPath() != b[i].event.node->DisplayPath()) {
        return Diverged(tag, "serialize/parse",
                        "reparsed schedule shifted event " + a[i].event.node->DisplayPath());
      }
    }
  }
  if (reparsed_out != nullptr) {
    *reparsed_out = std::move(*reparsed);
  }
  return Status::Ok();
}

// compile -> serialize -> parse -> compile must be a PresentationHash fixed
// point, and compile -> wire-encode -> decode must return the identical
// canonical presentation.
Status CheckPipelineRoundTrips(const Document& document, const Document& reparsed,
                               const DescriptorStore& store, const SystemProfile& profile,
                               const std::string& tag) {
  BlockStore blocks;
  PipelineOptions options;
  options.profile = profile;
  options.mode = PipelineMode::kCompileOnly;
  CMIF_ASSIGN_OR_RETURN(CompileReport first, CompilePresentation(document, store, blocks, options));
  CMIF_ASSIGN_OR_RETURN(CompileReport second,
                        CompilePresentation(reparsed, store, blocks, options));
  CompiledPresentation cp1{first.presentation_map, first.filter, first.schedule};
  CompiledPresentation cp2{second.presentation_map, second.filter, second.schedule};
  std::uint64_t h1 = net::PresentationHash(cp1);
  std::uint64_t h2 = net::PresentationHash(cp2);
  if (h1 != h2) {
    return Diverged(tag, "compile/serialize/parse/compile",
                    StrFormat("PresentationHash %016llx != %016llx",
                              static_cast<unsigned long long>(h1),
                              static_cast<unsigned long long>(h2)));
  }

  // Wire round trip: response -> frame -> decode -> response.
  std::string body = net::SerializePresentation(cp1);
  net::PresentResponse response;
  response.outcome = ServeOutcome::kHealthy;
  response.presentation = body;
  response.presentation_hash = h1;
  std::string frame_bytes = net::EncodeFrame(net::FrameType::kResponse,
                                             net::EncodeResponse(response));
  std::size_t consumed = 0;
  StatusOr<net::Frame> frame = net::DecodeFrame(frame_bytes, &consumed);
  if (!frame.ok()) {
    return Diverged(tag, "compile/wire/decode", "frame decode failed: " + frame.status().message());
  }
  if (consumed != frame_bytes.size() || frame->type != net::FrameType::kResponse) {
    return Diverged(tag, "compile/wire/decode", "frame shape changed in transit");
  }
  StatusOr<net::PresentResponse> decoded = net::DecodeResponse(frame->payload);
  if (!decoded.ok()) {
    return Diverged(tag, "compile/wire/decode",
                    "response decode failed: " + decoded.status().message());
  }
  if (decoded->presentation != body || decoded->presentation_hash != h1 ||
      Fnv1a64(decoded->presentation) != h1) {
    return Diverged(tag, "compile/wire/decode",
                    "decoded presentation is not the canonical serialization");
  }
  return Status::Ok();
}

}  // namespace

Status CheckEditTrace(const Document& document, const DescriptorStore* store,
                      const std::vector<EditOp>& trace, const std::string& tag,
                      CheckCounters* counters) {
  DescriptorStore empty;
  const DescriptorStore& catalog = store != nullptr ? *store : empty;
  const std::string check = "edit-session";

  // Baseline: the session's opening compile must agree with from-scratch.
  CMIF_ASSIGN_OR_RETURN(std::vector<EventDescriptor> events, CollectEvents(document, store));
  CMIF_ASSIGN_OR_RETURN(ScheduleResult base, ComputeSchedule(document, events));
  StatusOr<std::unique_ptr<api::EditSession>> session = api::EditSession::Open(document, catalog);
  if (!session.ok()) {
    if (base.feasible) {
      return Diverged(tag, check,
                      "session failed to open on a schedulable document: " +
                          session.status().message());
    }
    StatusOr<Conflict> conflict = ConflictFromStatus(session.status());
    if (!conflict.ok()) {
      return Diverged(tag, check, "open conflict is not the canonical encoding: " +
                                      session.status().message());
    }
    if (base.conflicts.empty() || conflict->cls != base.conflicts.back().cls) {
      return Diverged(tag, check, "open conflict class differs from the from-scratch compile");
    }
    return Status::Ok();  // unschedulable document: nothing incremental to drive
  }

  Document mirror = document.Clone();
  std::uint64_t last_generation = (*session)->generation();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const EditOp& op = trace[i];
    const std::string step = StrFormat("%s op[%zu] '%s'", check.c_str(), i,
                                       FormatEditOp(op).c_str());
    StatusOr<EditReport> mirror_report = ApplyEdit(mirror, op);
    StatusOr<EditReport> session_report = (*session)->Apply(op);
    if (mirror_report.ok() != session_report.ok()) {
      return Diverged(tag, step,
                      StrFormat("op applied to %s but not %s",
                                mirror_report.ok() ? "the mirror" : "the session",
                                mirror_report.ok() ? "the session" : "the mirror"));
    }
    if (!mirror_report.ok()) {
      continue;  // identically inapplicable (a shrunk trace); both unchanged
    }
    if (mirror_report->dropped_arcs.size() != session_report->dropped_arcs.size()) {
      return Diverged(tag, step, "edit dropped a different number of arcs on each side");
    }

    // From-scratch compile of the identically edited mirror, plus the oracle
    // re-judging the graph relaxation settled on.
    CMIF_ASSIGN_OR_RETURN(std::vector<EventDescriptor> mirror_events,
                          CollectEvents(mirror, store));
    CMIF_ASSIGN_OR_RETURN(TimeGraph graph, TimeGraph::Build(mirror, mirror_events));
    CMIF_ASSIGN_OR_RETURN(ScheduleResult scratch, SolveSchedule(graph, mirror_events));
    OracleResult oracle = OracleSolve(graph);
    if (counters != nullptr) {
      counters->oracle_passes += oracle.passes;
    }
    if (scratch.feasible != oracle.feasible) {
      return Diverged(tag, step, "from-scratch compile and oracle disagree on feasibility");
    }

    StatusOr<api::EditDelta> delta = (*session)->Recompile();
    if (delta.ok() != scratch.feasible) {
      return Diverged(tag, step,
                      StrFormat("session recompile says %s, from-scratch says %s",
                                delta.ok() ? "feasible" : "infeasible",
                                scratch.feasible ? "feasible" : "infeasible"));
    }
    if (!delta.ok()) {
      if (delta.status().code() != StatusCode::kFailedPrecondition) {
        return delta.status();
      }
      StatusOr<Conflict> conflict = ConflictFromStatus(delta.status());
      if (!conflict.ok()) {
        return Diverged(tag, step, "recompile conflict is not the canonical encoding: " +
                                       delta.status().message());
      }
      if (scratch.conflicts.empty()) {
        return Diverged(tag, step, "session reports a conflict, from-scratch reports none");
      }
      const Conflict& expected = scratch.conflicts.back();
      if (conflict->cls != expected.cls) {
        return Diverged(tag, step,
                        "conflict class: session says " +
                            std::string(ConflictClassName(conflict->cls)) +
                            ", from-scratch says " +
                            std::string(ConflictClassName(expected.cls)));
      }
      if (conflict->cycle != expected.cycle) {
        return Diverged(tag, step, "conflict cycles differ between session and from-scratch");
      }
      continue;  // the session keeps its last-good schedule; later ops may fix it
    }
    if (delta->generation != last_generation + 1) {
      return Diverged(tag, step,
                      StrFormat("generation went %llu -> %llu instead of bumping by one",
                                static_cast<unsigned long long>(last_generation),
                                static_cast<unsigned long long>(delta->generation)));
    }
    last_generation = delta->generation;
    CMIF_RETURN_IF_ERROR(CompareTimes(tag, step, (*session)->solve().earliest, "session",
                                      scratch.solve.earliest, "scratch"));
    CMIF_RETURN_IF_ERROR(
        CompareTimes(tag, step, (*session)->solve().earliest, "session", oracle.times, "oracle"));
    if (delta->dropped_arcs != scratch.dropped_arcs) {
      return Diverged(tag, step, "relaxation dropped different may arcs on each side");
    }
  }
  return Status::Ok();
}

GenOptions PathologicalGenOptions(std::uint64_t seed, int target_leaves) {
  std::uint64_t h = MixSeed(seed);
  GenOptions gen;
  gen.seed = seed;
  gen.target_leaves = target_leaves;
  gen.max_depth = 2 + static_cast<int>(h % 5);  // shallow fanout to deep nests
  gen.max_fanout = 2 + static_cast<int>((h >> 3) % 4);
  gen.channels = 1 + static_cast<int>((h >> 5) % 4);  // 1 = channel starvation
  gen.par_probability = 0.2 + 0.15 * static_cast<double>((h >> 7) % 5);
  gen.arcs_per_composite = 0.4 + 0.3 * static_cast<double>((h >> 10) % 4);
  gen.may_fraction = 0.25 * static_cast<double>((h >> 12) % 4);
  gen.tight_windows = ((h >> 14) & 3) != 0;  // 3 in 4: finite (maybe infeasible) windows
  gen.cross_arc_rate = 0.25 * static_cast<double>((h >> 16) % 3);
  gen.backward_arc_fraction = ((h >> 18) & 1) != 0 ? 0.3 : 0.0;
  gen.zero_offset_fraction = ((h >> 19) & 1) != 0 ? 0.5 : 0.0;
  gen.negative_delay_fraction = ((h >> 20) & 1) != 0 ? 0.5 : 0.0;
  gen.with_styles = ((h >> 21) & 1) != 0;
  return gen;
}

Status CheckDocument(const Document& document, const DescriptorStore* store,
                     const std::string& tag, const SystemProfile& profile,
                     CheckCounters* counters) {
  CMIF_ASSIGN_OR_RETURN(std::vector<EventDescriptor> events, CollectEvents(document, store));

  // 1. Solver differential on the authored constraints alone. The graph has
  // no capability constraints, so any conflict must classify as authoring.
  CMIF_ASSIGN_OR_RETURN(TimeGraph graph, TimeGraph::Build(document, events));
  ScheduleResult production;
  CMIF_RETURN_IF_ERROR(CheckSolver(graph, events, tag, "solver", /*expect_capability_free=*/true,
                                   &production, counters));
  if (counters != nullptr) {
    if (!production.feasible) {
      ++counters->infeasible;
    } else if (production.conflicts.empty()) {
      ++counters->feasible;
    } else {
      ++counters->relaxed;
    }
  }

  // 2. Solver differential with the device model injected — the class-2
  // conflict path of section 5.3.3.
  CMIF_ASSIGN_OR_RETURN(TimeGraph capability_graph, TimeGraph::Build(document, events));
  CMIF_RETURN_IF_ERROR(
      InjectCapabilityConstraints(capability_graph, document, events, profile));
  CMIF_RETURN_IF_ERROR(CheckSolver(capability_graph, events, tag, "solver+capability",
                                   /*expect_capability_free=*/false, nullptr, counters));

  // 3. Serialize/parse fixed point and schedule stability.
  Document reparsed;
  CMIF_RETURN_IF_ERROR(CheckDocumentRoundTrip(document, store, production, tag, &reparsed));

  // 4. Pipeline-hash and wire round trips (need the descriptor catalog).
  if (store != nullptr) {
    CMIF_RETURN_IF_ERROR(CheckPipelineRoundTrips(document, reparsed, *store, profile, tag));
  }

  // 5. Player vs simulator on the production schedule, both freeze modes.
  if (production.feasible) {
    CMIF_RETURN_IF_ERROR(ComparePlayback(document, production.schedule, store, profile,
                                         /*enable_freeze=*/true, tag));
    CMIF_RETURN_IF_ERROR(ComparePlayback(document, production.schedule, store, profile,
                                         /*enable_freeze=*/false, tag));
  }
  return Status::Ok();
}

StatusOr<CheckReport> RunDifferentialCheck(const CheckOptions& options) {
  CheckReport report;
  CheckCounters counters;
  std::vector<std::uint64_t> seeds = options.seeds;
  if (seeds.empty()) {
    seeds.reserve(static_cast<std::size_t>(std::max(options.count, 0)));
    for (int i = 0; i < options.count; ++i) {
      seeds.push_back(MixSeed(options.base_seed + static_cast<std::uint64_t>(i)));
    }
  }
  for (std::uint64_t seed : seeds) {
    std::string tag = StrFormat("seed=0x%016llx", static_cast<unsigned long long>(seed));
    GenOptions gen = PathologicalGenOptions(seed, options.target_leaves);
    StatusOr<GenWorkload> workload = GenerateRandomDocument(gen);
    if (!workload.ok()) {
      report.failures.push_back(
          CheckFailure{seed, "generator failed: " + workload.status().message(), ""});
      continue;
    }
    ++report.documents;
    Status verdict =
        CheckDocument(workload->document, &workload->store, tag, options.profile, &counters);
    bool edit_failure = false;
    std::vector<EditOp> trace;
    if (verdict.ok() && options.edits > 0) {
      EditGenOptions egen;
      egen.count = options.edits;
      egen.seed = seed;
      StatusOr<std::vector<EditOp>> generated = GenerateEditTrace(workload->document, egen);
      if (!generated.ok()) {
        verdict = FailedPreconditionError("[" + tag + "] edit-trace generator failed: " +
                                          generated.status().message());
      } else {
        trace = std::move(*generated);
        verdict = CheckEditTrace(workload->document, &workload->store, trace, tag, &counters);
        edit_failure = !verdict.ok();
      }
    }
    if (verdict.ok()) {
      continue;
    }
    CheckFailure failure;
    failure.seed = seed;
    failure.detail = verdict.message();
    if (options.shrink) {
      StatusOr<std::string> minimized =
          edit_failure ? ShrinkEditReproducer(workload->document, &workload->store, trace)
                       : ShrinkReproducer(workload->document, &workload->store, options.profile);
      if (minimized.ok()) {
        std::filesystem::path dir =
            options.reproducer_dir.empty() ? "." : options.reproducer_dir;
        std::filesystem::path path =
            dir / StrFormat(edit_failure ? "repro-edit-%016llx.cmif" : "repro-%016llx.cmif",
                            static_cast<unsigned long long>(seed));
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        std::ofstream out(path);
        if (out) {
          out << *minimized;
          failure.reproducer_path = path.string();
        }
      }
    }
    report.failures.push_back(std::move(failure));
  }
  report.feasible = counters.feasible;
  report.relaxed = counters.relaxed;
  report.infeasible = counters.infeasible;
  report.oracle_passes = counters.oracle_passes;
  return report;
}

namespace {

// Child-index path of `node` from its root, for relocating the same node in
// a clone.
std::vector<std::size_t> IndexPath(const Node& node) {
  std::vector<std::size_t> path;
  const Node* current = &node;
  while (current->parent() != nullptr) {
    const Node* parent = current->parent();
    for (std::size_t i = 0; i < parent->child_count(); ++i) {
      if (&parent->ChildAt(i) == current) {
        path.push_back(i);
        break;
      }
    }
    current = parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Node* NodeAtIndexPath(Document& document, const std::vector<std::size_t>& path) {
  Node* node = &document.root();
  for (std::size_t index : path) {
    if (index >= node->child_count()) {
      return nullptr;
    }
    node = &node->ChildAt(index);
  }
  return node;
}

}  // namespace

StatusOr<std::string> ShrinkReproducer(const Document& document, const DescriptorStore* store,
                                       const SystemProfile& profile) {
  auto fails = [&](const Document& candidate) {
    return !CheckDocument(candidate, store, "shrink", profile).ok();
  };
  if (!fails(document)) {
    return FailedPreconditionError("document passes every check; nothing to shrink");
  }
  Document current = document.Clone();
  bool progress = true;
  while (progress) {
    progress = false;
    // Pass 1: delete whole subtrees (pre-order, so large subtrees go first).
    std::vector<std::vector<std::size_t>> victims;
    current.root().Visit([&](const Node& node) {
      if (node.parent() != nullptr) {
        victims.push_back(IndexPath(node));
      }
    });
    for (const auto& path : victims) {
      Document trial = current.Clone();
      Node* victim = NodeAtIndexPath(trial, path);
      if (victim == nullptr) {
        continue;
      }
      if (!DeleteSubtree(trial, *victim).ok()) {
        continue;
      }
      if (fails(trial)) {
        current = std::move(trial);
        progress = true;
        break;
      }
    }
    if (progress) {
      continue;
    }
    // Pass 2: delete individual arcs.
    std::vector<std::pair<std::vector<std::size_t>, std::size_t>> arcs;
    current.root().Visit([&](const Node& node) {
      for (std::size_t i = 0; i < node.arcs().size(); ++i) {
        arcs.emplace_back(IndexPath(node), i);
      }
    });
    for (const auto& [path, index] : arcs) {
      Document trial = current.Clone();
      Node* owner = NodeAtIndexPath(trial, path);
      if (owner == nullptr || index >= owner->arcs().size()) {
        continue;
      }
      owner->arcs().erase(owner->arcs().begin() + static_cast<std::ptrdiff_t>(index));
      if (fails(trial)) {
        current = std::move(trial);
        progress = true;
        break;
      }
    }
  }
  return WriteDocument(current);
}

namespace {

// The section separator between a corpus document and its edit trace.
constexpr std::string_view kEditsMarker = "%% edits";
// The trailer pinning a stream reproducer's link parameters
// ("%% stream bandwidth=<B> chunk=<C>").
constexpr std::string_view kStreamMarker = "%% stream";

}  // namespace

StatusOr<std::string> ShrinkEditReproducer(const Document& document, const DescriptorStore* store,
                                           const std::vector<EditOp>& trace) {
  auto fails = [&](const std::vector<EditOp>& candidate) {
    return !CheckEditTrace(document, store, candidate, "shrink").ok();
  };
  if (!fails(trace)) {
    return FailedPreconditionError("edit trace passes every check; nothing to shrink");
  }
  // Greedy op deletion; CheckEditTrace skips ops made identically
  // inapplicable by earlier deletions, so any subsequence is a valid trial.
  std::vector<EditOp> current = trace;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < current.size(); ++i) {
      std::vector<EditOp> candidate = current;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(candidate)) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  CMIF_ASSIGN_OR_RETURN(std::string out, WriteDocument(document));
  if (out.empty() || out.back() != '\n') {
    out += '\n';
  }
  out += std::string(kEditsMarker) + "\n";
  for (const EditOp& op : current) {
    out += FormatEditOp(op) + "\n";
  }
  return out;
}

Status ReplayCorpusText(const std::string& text, const std::string& tag) {
  // Split off the optional "%% edits" and "%% stream" sections before
  // parsing; the document is everything before the first marker.
  std::string document_text = text;
  std::vector<EditOp> trace;
  std::size_t edits_marker = text.find("\n" + std::string(kEditsMarker));
  std::size_t stream_marker = text.find("\n" + std::string(kStreamMarker));
  std::size_t first_marker = std::min(edits_marker, stream_marker);
  if (first_marker != std::string::npos) {
    document_text = text.substr(0, first_marker + 1);
  }
  if (edits_marker != std::string::npos) {
    std::vector<std::string> lines = SplitString(text.substr(edits_marker + 1), '\n');
    for (std::size_t i = 1; i < lines.size(); ++i) {  // lines[0] is the marker
      std::string line(TrimString(lines[i]));
      if (line.empty()) {
        continue;
      }
      if (line.rfind("%%", 0) == 0) {
        break;  // the next section begins
      }
      StatusOr<EditOp> op = ParseEditOp(line);
      if (!op.ok()) {
        return FailedPreconditionError("[" + tag + "] corpus edit op does not parse: " +
                                       op.status().message());
      }
      trace.push_back(std::move(*op));
    }
  }
  // The stream trailer carries its parameters on the marker line itself.
  bool has_stream = stream_marker != std::string::npos;
  std::int64_t stream_bandwidth = 64 << 10;
  std::uint64_t stream_chunk = 1 << 10;
  if (has_stream) {
    std::size_t line_begin = stream_marker + 1;
    std::size_t line_end = text.find('\n', line_begin);
    std::string line = text.substr(line_begin, line_end == std::string::npos
                                                   ? std::string::npos
                                                   : line_end - line_begin);
    for (const std::string& token : SplitString(line, ' ')) {
      auto value_of = [&](std::size_t prefix) {
        return std::strtoll(token.substr(prefix).c_str(), nullptr, 10);
      };
      if (token.rfind("bandwidth=", 0) == 0) {
        stream_bandwidth = static_cast<std::int64_t>(value_of(10));
      } else if (token.rfind("chunk=", 0) == 0) {
        long long chunk = value_of(6);
        if (chunk <= 0) {
          return FailedPreconditionError("[" + tag +
                                         "] corpus stream trailer chunk size does not parse");
        }
        stream_chunk = static_cast<std::uint64_t>(chunk);
      }
    }
  }
  StatusOr<Document> document = ParseDocument(document_text);
  if (!document.ok()) {
    return FailedPreconditionError("[" + tag + "] corpus file does not parse: " +
                                   document.status().message());
  }
  // Corpus files are self-contained: generated leaves pin their durations
  // with duration attributes, so no catalog is needed to re-judge them.
  CMIF_RETURN_IF_ERROR(CheckDocument(*document, /*store=*/nullptr, tag, WorkstationProfile()));
  if (!trace.empty()) {
    CMIF_RETURN_IF_ERROR(CheckEditTrace(*document, /*store=*/nullptr, trace, tag));
  }
  if (has_stream) {
    CMIF_RETURN_IF_ERROR(CheckStreamDocument(*document, /*store=*/nullptr, tag,
                                             WorkstationProfile(), stream_bandwidth,
                                             stream_chunk));
  }
  return Status::Ok();
}

StatusOr<int> ReplayCorpusDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return NotFoundError("cannot open corpus dir '" + dir + "': " + ec.message());
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".cmif") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) {
      return NotFoundError("cannot read corpus file '" + path.string() + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    CMIF_RETURN_IF_ERROR(ReplayCorpusText(buffer.str(), path.filename().string()));
  }
  return static_cast<int>(files.size());
}

std::string CheckReport::Summary() const {
  std::ostringstream os;
  os << "checked " << documents << " documents: " << feasible << " feasible, " << relaxed
     << " relaxed, " << infeasible << " infeasible (" << oracle_passes << " oracle sweeps)\n";
  for (const CheckFailure& failure : failures) {
    os << StrFormat("FAIL seed=0x%016llx: %s\n",
                    static_cast<unsigned long long>(failure.seed), failure.detail.c_str());
    if (!failure.reproducer_path.empty()) {
      os << "  minimized reproducer: " << failure.reproducer_path << "\n";
    }
  }
  if (failures.empty()) {
    os << "zero divergences\n";
  }
  return os.str();
}

}  // namespace check
}  // namespace cmif
