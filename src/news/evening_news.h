// The Evening News workload (sections 4 and 5.3.4, Figures 4 and 10): the
// paper's running example, built programmatically. Five synchronization
// channels — video, audio, graphic, caption, label — carry each story's
// talking-head/crime-scene video, the announcer's (Dutch) speech, stolen-
// painting stills, translated captions and identifying labels, tied together
// by the exact explicit arcs the paper walks through:
//
//   * the graphic sequence is start-synchronized with the story's audio;
//   * the second and third graphics are explicitly chained (the first two
//     are implicitly sequential);
//   * the captions are start-synchronized with the video, NOT the audio
//     ("this allows one story to be presented for local consumption and
//     another for global presentation");
//   * the end of the second caption triggers the second graphic, with an
//     offset;
//   * the end of the fourth caption blocks the next video block ("a new
//     video sequence may not start until the caption text is over" — the
//     freeze-frame case);
//   * the label channel carries may-synchronized titles ("if the label is a
//     little late, then there is no reason for panic").
#ifndef SRC_NEWS_EVENING_NEWS_H_
#define SRC_NEWS_EVENING_NEWS_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/doc/document.h"

namespace cmif {

// Workload parameters. Defaults produce the paper's three-segment story at
// laptop-friendly media sizes.
struct NewsOptions {
  // Number of stories in the broadcast (>= 1).
  int stories = 3;
  // Length of one story's audio report; video segments split it 1/3-1/2-1/6.
  MediaTime story_length = MediaTime::Seconds(12);
  // Media parameters for the synthetic capture tools.
  int video_width = 64;
  int video_height = 48;
  int video_fps = 25;
  int audio_rate = 8000;
  // Materialize payloads into the block store (true) or keep generator
  // descriptors only (false, the transport mode).
  bool materialize_media = false;
  std::uint64_t seed = 1;
};

// A built workload: the document plus its databases.
struct NewsWorkload {
  Document document{NodeKind::kSeq};
  DescriptorStore store;
  BlockStore blocks;
};

// Builds the full broadcast: capture (synthetic), descriptors, the document
// tree, channels, styles, and the explicit arcs above for every story.
StatusOr<NewsWorkload> BuildEveningNews(const NewsOptions& options = {});

// Channel names used by the workload.
inline constexpr std::string_view kNewsVideo = "video";
inline constexpr std::string_view kNewsAudio = "audio";
inline constexpr std::string_view kNewsGraphic = "graphic";
inline constexpr std::string_view kNewsCaption = "caption";
inline constexpr std::string_view kNewsLabel = "label";

}  // namespace cmif

#endif  // SRC_NEWS_EVENING_NEWS_H_
