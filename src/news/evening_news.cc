#include "src/news/evening_news.h"

#include "src/base/string_util.h"
#include "src/doc/builder.h"
#include "src/pipeline/capture.h"

namespace cmif {
namespace {

// The captions of the stolen-paintings story (Figure 10), reused (with the
// story number substituted) for every story.
constexpr const char* kCaptionTexts[] = {
    "Tonight: paintings worth ten million stolen from the municipal museum.",
    "The thieves entered through the roof shortly after closing time.",
    "Two early van Goghs are among the missing works.",
    "The museum's insurers have offered a substantial reward.",
};

AttrList RegionExtra(std::string_view region) {
  AttrList extra;
  extra.Set("region", AttrValue::Id(std::string(region)));
  return extra;
}

AttrList SpeakerExtra(std::string_view speaker) {
  AttrList extra;
  extra.Set("speaker", AttrValue::Id(std::string(speaker)));
  return extra;
}

}  // namespace

StatusOr<NewsWorkload> BuildEveningNews(const NewsOptions& options) {
  if (options.stories < 1) {
    return InvalidArgumentError("a broadcast needs at least one story");
  }
  NewsWorkload workload;
  CaptureSession capture(workload.store, workload.blocks, options.materialize_media);

  const MediaTime length = options.story_length;
  const MediaTime third = length.MulRational(1, 3);
  const MediaTime half = length.MulRational(1, 2);
  const MediaTime sixth = length.MulRational(1, 6);
  const MediaTime quarter_story = length.MulRational(1, 4);  // caption duration
  const MediaTime quarter_s = MediaTime::Rational(1, 4);     // sync window
  const MediaTime half_s = MediaTime::Rational(1, 2);

  // -- Capture (synthetic media blocks + descriptors) ------------------------
  CMIF_RETURN_IF_ERROR(capture.CaptureTone("opening-theme", MediaTime::Seconds(2), 660,
                                           "theme opening"));
  for (int i = 0; i < options.stories; ++i) {
    std::uint64_t seed = options.seed + static_cast<std::uint64_t>(i) * 101;
    std::string p = StrFormat("story%d-", i + 1);
    CMIF_RETURN_IF_ERROR(capture.CaptureTalkingHead(
        p + "head1", third, seed, options.video_width, options.video_height,
        options.video_fps, "announcer talking-head"));
    CMIF_RETURN_IF_ERROR(capture.CaptureFlyingBird(
        p + "scene", half, options.video_width, options.video_height, options.video_fps,
        "crime scene on-location"));
    CMIF_RETURN_IF_ERROR(capture.CaptureTalkingHead(
        p + "head2", sixth, seed + 1, options.video_width, options.video_height,
        options.video_fps, "announcer talking-head close"));
    CMIF_RETURN_IF_ERROR(capture.CaptureSpeech(p + "voice", length, seed + 2,
                                               options.audio_rate, "announcer dutch report"));
    for (int g = 1; g <= 3; ++g) {
      CMIF_RETURN_IF_ERROR(capture.CaptureGraphic(
          p + StrFormat("graphic%d", g), seed + 10 + static_cast<std::uint64_t>(g),
          options.video_width, options.video_height,
          g == 3 ? "insurance graph" : "stolen painting"));
    }
  }

  // -- Document structure -----------------------------------------------------
  DocBuilder builder(NodeKind::kSeq);
  builder.ToRoot().Attr(std::string(kAttrName), AttrValue::Id("news"));
  builder.DefineChannel(std::string(kNewsVideo), MediaType::kVideo, RegionExtra("main"))
      .DefineChannel(std::string(kNewsAudio), MediaType::kAudio, SpeakerExtra("center"))
      .DefineChannel(std::string(kNewsGraphic), MediaType::kGraphic, RegionExtra("inset"))
      .DefineChannel(std::string(kNewsCaption), MediaType::kText, RegionExtra("caption_strip"))
      .DefineChannel(std::string(kNewsLabel), MediaType::kText, RegionExtra("label_strip"));

  // Styles: caption and label text formatting (Figure 7 recommends styles
  // over raw T_Formatting attributes).
  AttrList caption_style;
  caption_style.Set(std::string(kAttrTFormatting),
                    AttrValue::List({Attr{"font", AttrValue::Id("helvetica")},
                                     Attr{"size", AttrValue::Number(18)},
                                     Attr{"indent", AttrValue::Number(2)},
                                     Attr{"vspace", AttrValue::Number(1)}}));
  AttrList label_style;
  label_style.Set(std::string(kAttrTFormatting),
                  AttrValue::List({Attr{"font", AttrValue::Id("helvetica-bold")},
                                   Attr{"size", AttrValue::Number(24)},
                                   Attr{"indent", AttrValue::Number(0)},
                                   Attr{"vspace", AttrValue::Number(0)}}));
  builder.DefineStyle("caption_text", std::move(caption_style));
  builder.DefineStyle("label_text", std::move(label_style));

  // Opening: theme + title card.
  builder.Par("opening")
      .Ext("theme", "opening-theme")
      .OnChannel(std::string(kNewsAudio))
      .ImmText("title", "The Evening News")
      .OnChannel(std::string(kNewsLabel))
      .WithStyle("label_text")
      .WithDuration(MediaTime::Seconds(2))
      .Up();

  auto path = [](std::string_view text) {
    auto parsed = NodePath::Parse(text);
    return parsed.ok() ? *parsed : NodePath();
  };

  for (int i = 0; i < options.stories; ++i) {
    std::string p = StrFormat("story%d-", i + 1);
    builder.Par(StrFormat("story%d", i + 1));

    // Video: talking head, on-location scene, talking head (Figure 4b).
    builder.Seq("video")
        .OnChannel(std::string(kNewsVideo))
        .Ext("v1", p + "head1")
        .Ext("v2", p + "scene")
        .Ext("v3", p + "head2")
        .Up();

    // Audio: the announcer's continuous report.
    builder.Ext("voice", p + "voice").OnChannel(std::string(kNewsAudio));

    // Graphics: two paintings and the insurance graph.
    builder.Seq("graphics").OnChannel(std::string(kNewsGraphic));
    for (int g = 1; g <= 3; ++g) {
      builder.Ext(StrFormat("g%d", g), p + StrFormat("graphic%d", g)).WithDuration(third);
    }
    builder.Up();

    // Captions: the translated text, fixed reading durations.
    builder.Seq("captions").OnChannel(std::string(kNewsCaption)).WithStyle("caption_text");
    for (int c = 0; c < 4; ++c) {
      builder.ImmText(StrFormat("c%d", c + 1), kCaptionTexts[c]).WithDuration(quarter_story);
    }
    builder.Up();

    // Labels: story, museum and announcer names.
    builder.Seq("labels").OnChannel(std::string(kNewsLabel)).WithStyle("label_text");
    builder.ImmText("l1", StrFormat("Story %d: Stolen van Goghs", i + 1))
        .WithDuration(quarter_story)
        .ImmText("l2", "Municipal Museum")
        .WithDuration(quarter_story)
        .ImmText("l3", "Anchor: A. Verhoeven")
        .WithDuration(quarter_story)
        .Up();

    // -- The explicit arcs of section 5.3.4, written on the story par --------
    // (a) The graphic channel is synchronized with the start of the audio.
    builder.Arc(WindowArc(path("voice"), ArcEdge::kBegin, path("graphics"), ArcEdge::kBegin,
                          MediaTime(), MediaTime(), quarter_s, ArcRigor::kMust));
    // (b) Explicit synchronization between the second and third graphics
    // (the first pair stays implicitly sequential).
    builder.Arc(WindowArc(path("graphics/g2"), ArcEdge::kEnd, path("graphics/g3"),
                          ArcEdge::kBegin, MediaTime(), MediaTime(), half_s, ArcRigor::kMust));
    // (c) The captioned text is start-synchronized with the video portion —
    // not the audio.
    builder.Arc(HardArc(path("video"), ArcEdge::kBegin, path("captions"), ArcEdge::kBegin));
    // (d) The end of the second caption triggers the second graphic at an
    // offset — "this illustrates the use of an offset within an arc".
    builder.Arc(HardArc(path("captions/c2"), ArcEdge::kEnd, path("graphics/g2"),
                        ArcEdge::kBegin, half_s));
    // (e) A new video sequence may not start until the caption text is over
    // — the freeze-frame arc.
    builder.Arc(WindowArc(path("captions/c4"), ArcEdge::kEnd, path("video/v3"),
                          ArcEdge::kBegin, MediaTime(), MediaTime(), std::nullopt,
                          ArcRigor::kMust));
    // (f) Labels are may-synchronized — "if the label is a little late, then
    // there is no reason for panic".
    builder.Arc(WindowArc(path("video"), ArcEdge::kBegin, path("labels/l1"), ArcEdge::kBegin,
                          MediaTime(), MediaTime(), quarter_s, ArcRigor::kMay));
    builder.Arc(WindowArc(path("graphics/g2"), ArcEdge::kBegin, path("labels/l2"),
                          ArcEdge::kBegin, MediaTime(), MediaTime(), quarter_s, ArcRigor::kMay));
    builder.Arc(WindowArc(path("video/v3"), ArcEdge::kBegin, path("labels/l3"),
                          ArcEdge::kBegin, MediaTime(), MediaTime(), quarter_s, ArcRigor::kMay));

    builder.Up();  // close the story par
  }

  CMIF_ASSIGN_OR_RETURN(workload.document, builder.Build());
  return workload;
}

}  // namespace cmif
