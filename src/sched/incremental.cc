#include "src/sched/incremental.h"

#include <algorithm>
#include <deque>
#include <numeric>

namespace cmif {
namespace {

// Same fast-path bounds as src/sched/solver.cc: weights rescale to 1/lcm
// second ticks only when the lcm stays small and path sums cannot overflow.
constexpr std::int64_t kMaxLcm = 1'000'000'000;
constexpr std::int64_t kMaxTicks = INT64_MAX >> 20;

std::vector<char> Closure(const std::vector<char>& seed,
                          const std::vector<std::vector<int>>& adj) {
  std::vector<char> visited = seed;
  std::vector<int> stack;
  for (std::size_t c = 0; c < seed.size(); ++c) {
    if (seed[c]) {
      stack.push_back(static_cast<int>(c));
    }
  }
  while (!stack.empty()) {
    int c = stack.back();
    stack.pop_back();
    for (int d : adj[static_cast<std::size_t>(c)]) {
      if (!visited[static_cast<std::size_t>(d)]) {
        visited[static_cast<std::size_t>(d)] = 1;
        stack.push_back(d);
      }
    }
  }
  return visited;
}

}  // namespace

SccCondensation SccCondensation::Build(const TimeGraph& graph) {
  SccCondensation scc;
  const std::size_t n = graph.point_count();
  scc.comp.assign(n, -1);
  if (n == 0) {
    return scc;
  }

  std::vector<std::vector<int>> adj(n);
  const std::vector<Constraint>& constraints = graph.constraints();
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    if (graph.IsDisabled(i)) {
      continue;
    }
    const Constraint& c = constraints[i];
    adj[static_cast<std::size_t>(c.from)].push_back(c.to);
    if (c.hi.has_value()) {
      adj[static_cast<std::size_t>(c.to)].push_back(c.from);
    }
  }

  // Iterative Tarjan (generated documents nest deep enough that recursion
  // is a stack-overflow hazard). Components are numbered in pop order, so
  // every cross-component edge u -> v satisfies comp[u] > comp[v].
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<int> stack;
  struct Frame {
    int v;
    std::size_t next;
  };
  std::vector<Frame> frames;
  int next_index = 0;
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != -1) {
      continue;
    }
    index[root] = low[root] = next_index++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = 1;
    frames.push_back(Frame{static_cast<int>(root), 0});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      std::size_t v = static_cast<std::size_t>(frame.v);
      if (frame.next < adj[v].size()) {
        std::size_t w = static_cast<std::size_t>(adj[v][frame.next++]);
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(static_cast<int>(w));
          on_stack[w] = 1;
          frames.push_back(Frame{static_cast<int>(w), 0});
        } else if (on_stack[w] && index[w] < low[v]) {
          low[v] = index[w];
        }
      } else {
        frames.pop_back();
        if (!frames.empty()) {
          std::size_t parent = static_cast<std::size_t>(frames.back().v);
          low[parent] = std::min(low[parent], low[v]);
        }
        if (low[v] == index[v]) {
          int c = static_cast<int>(scc.comp_count++);
          while (true) {
            std::size_t w = static_cast<std::size_t>(stack.back());
            stack.pop_back();
            on_stack[w] = 0;
            scc.comp[w] = c;
            if (w == v) {
              break;
            }
          }
        }
      }
    }
  }

  scc.members.assign(scc.comp_count, {});
  for (std::size_t i = 0; i < n; ++i) {
    scc.members[static_cast<std::size_t>(scc.comp[i])].push_back(static_cast<int>(i));
  }
  scc.out.assign(scc.comp_count, {});
  auto cross = [&scc](int u, int v) {
    int cu = scc.comp[static_cast<std::size_t>(u)];
    int cv = scc.comp[static_cast<std::size_t>(v)];
    if (cu != cv) {
      scc.out[static_cast<std::size_t>(cu)].push_back(cv);
    }
  };
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    if (graph.IsDisabled(i)) {
      continue;
    }
    const Constraint& c = constraints[i];
    cross(c.from, c.to);
    if (c.hi.has_value()) {
      cross(c.to, c.from);
    }
  }
  for (std::vector<int>& targets : scc.out) {
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  }
  return scc;
}

bool SccCondensation::SamePartition(const SccCondensation& other) const {
  if (comp.size() != other.comp.size() || comp_count != other.comp_count) {
    return false;
  }
  // A total map old -> new that is single-valued is automatically a
  // bijection here: equal component counts and non-empty components leave
  // no room for a merge without a matching orphan.
  std::vector<int> map(comp_count, -1);
  for (std::size_t i = 0; i < comp.size(); ++i) {
    int& slot = map[static_cast<std::size_t>(comp[i])];
    if (slot == -1) {
      slot = other.comp[i];
    } else if (slot != other.comp[i]) {
      return false;
    }
  }
  return true;
}

IncrementalSolver::IncrementalSolver(const TimeGraph& graph) : graph_(graph) {}

bool IncrementalSolver::TickOf(const MediaTime& t, std::int64_t* out) const {
  if (lcm_ <= 0 || lcm_ % t.den() != 0) {
    return false;
  }
  std::int64_t scale = lcm_ / t.den();
  if (t.num() > kMaxTicks / scale || t.num() < -(kMaxTicks / scale)) {
    return false;
  }
  *out = t.num() * scale;
  return true;
}

bool IncrementalSolver::BuildTickState() {
  const std::vector<Constraint>& constraints = graph_.constraints();
  const std::size_t n = graph_.point_count();
  std::int64_t lcm = 1;
  auto fold = [&lcm](const MediaTime& t) {
    std::int64_t den = t.den();
    std::int64_t g = std::gcd(lcm, den);
    if (lcm / g > kMaxLcm / den) {
      return false;
    }
    lcm = lcm / g * den;
    return lcm <= kMaxLcm;
  };
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    if (graph_.IsDisabled(i)) {
      continue;
    }
    if (!fold(constraints[i].lo) ||
        (constraints[i].hi.has_value() && !fold(*constraints[i].hi))) {
      return false;
    }
  }
  lcm_ = lcm;
  back_.clear();
  fwd_.clear();
  slots_.assign(constraints.size(), EdgeSlots{});
  back_out_.assign(n, {});
  back_in_.assign(n, {});
  fwd_out_.assign(n, {});
  fwd_in_.assign(n, {});
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    if (graph_.IsDisabled(i)) {
      continue;
    }
    if (!SyncConstraintEdges(i)) {
      return false;
    }
  }
  return true;
}

bool IncrementalSolver::SyncConstraintEdges(std::size_t index) {
  const Constraint& c = graph_.constraints()[index];
  EdgeSlots& slots = slots_[index];
  auto deactivate = [this](int back_id, int fwd_id) {
    if (back_id >= 0) {
      back_[static_cast<std::size_t>(back_id)].active = false;
    }
    if (fwd_id >= 0) {
      fwd_[static_cast<std::size_t>(fwd_id)].active = false;
    }
  };
  if (graph_.IsDisabled(index)) {
    deactivate(slots.back_lo, slots.fwd_lo);
    deactivate(slots.back_hi, slots.fwd_hi);
    return true;
  }
  auto place = [this, index](int* slot, std::vector<TickEdge>& edges,
                             std::vector<std::vector<int>>& out,
                             std::vector<std::vector<int>>& in, int tail, int head,
                             std::int64_t weight) {
    if (*slot >= 0) {
      TickEdge& edge = edges[static_cast<std::size_t>(*slot)];
      edge.weight = weight;
      edge.active = true;
      return;
    }
    *slot = static_cast<int>(edges.size());
    edges.push_back(TickEdge{tail, head, weight, index, true});
    out[static_cast<std::size_t>(tail)].push_back(*slot);
    in[static_cast<std::size_t>(head)].push_back(*slot);
  };
  std::int64_t lo_tick = 0;
  if (!TickOf(-c.lo, &lo_tick)) {
    return false;
  }
  // Backward orientation (earliest pass): lower bound from -> to at -lo,
  // finite upper bound to -> from at hi. Forward is the exact reverse.
  place(&slots.back_lo, back_, back_out_, back_in_, c.from, c.to, lo_tick);
  place(&slots.fwd_lo, fwd_, fwd_out_, fwd_in_, c.to, c.from, lo_tick);
  if (c.hi.has_value()) {
    std::int64_t hi_tick = 0;
    if (!TickOf(*c.hi, &hi_tick)) {
      return false;
    }
    place(&slots.back_hi, back_, back_out_, back_in_, c.to, c.from, hi_tick);
    place(&slots.fwd_hi, fwd_, fwd_out_, fwd_in_, c.from, c.to, hi_tick);
  } else {
    deactivate(slots.back_hi, slots.fwd_hi);
  }
  return true;
}

bool IncrementalSolver::SolvePass(bool backward, const std::vector<char>& in_cone,
                                  SolveStats& stats) {
  const std::vector<TickEdge>& edges = backward ? back_ : fwd_;
  const std::vector<std::vector<int>>& out = backward ? back_out_ : fwd_out_;
  const std::vector<std::vector<int>>& in = backward ? back_in_ : fwd_in_;
  std::vector<std::optional<std::int64_t>>& dist = backward ? back_dist_ : fwd_dist_;
  const std::size_t n = graph_.point_count();
  const bool all = in_cone.empty();
  if (all) {
    dist.assign(n, std::nullopt);
  } else {
    for (std::size_t c = 0; c < scc_.comp_count; ++c) {
      if (!in_cone[c]) {
        continue;
      }
      for (int p : scc_.members[c]) {
        dist[static_cast<std::size_t>(p)] = std::nullopt;
      }
    }
  }

  std::deque<int> queue;
  std::vector<char> in_queue(n, 0);
  std::vector<std::size_t> enqueues(n, 0);
  // Component order: backward-pass edges descend component ids, forward-pass
  // edges ascend, so each direction visits components topologically and a
  // component's cross predecessors are final before it is seeded.
  for (std::size_t k = 0; k < scc_.comp_count; ++k) {
    int c = backward ? static_cast<int>(scc_.comp_count - 1 - k) : static_cast<int>(k);
    if (!all && !in_cone[static_cast<std::size_t>(c)]) {
      continue;
    }
    const std::vector<int>& points = scc_.members[static_cast<std::size_t>(c)];
    auto push = [&](int p) {
      if (in_queue[static_cast<std::size_t>(p)]) {
        return true;
      }
      if (++enqueues[static_cast<std::size_t>(p)] > points.size() + 1) {
        return false;  // negative cycle inside this component
      }
      in_queue[static_cast<std::size_t>(p)] = 1;
      if (!queue.empty() &&
          *dist[static_cast<std::size_t>(p)] < *dist[static_cast<std::size_t>(queue.front())]) {
        queue.push_front(p);
      } else {
        queue.push_back(p);
      }
      return true;
    };

    // Seed: the source plus every cross edge whose tail lies outside this
    // component — either an earlier component of this pass (already final)
    // or an untouched label outside the cone (the warm start).
    for (int p : points) {
      std::optional<std::int64_t> best;
      if (p == 0) {
        best = 0;
      }
      for (int e : in[static_cast<std::size_t>(p)]) {
        const TickEdge& edge = edges[static_cast<std::size_t>(e)];
        if (!edge.active || scc_.comp[static_cast<std::size_t>(edge.tail)] == c) {
          continue;
        }
        const std::optional<std::int64_t>& from = dist[static_cast<std::size_t>(edge.tail)];
        if (!from.has_value()) {
          continue;
        }
        std::int64_t candidate = *from + edge.weight;
        if (!best.has_value() || candidate < *best) {
          best = candidate;
        }
      }
      if (best.has_value()) {
        dist[static_cast<std::size_t>(p)] = best;
        ++stats.propagations;
        (void)push(p);
      }
    }

    // Close the component: a bounded SPFA over its internal edges only.
    while (!queue.empty()) {
      int v = queue.front();
      queue.pop_front();
      ++stats.iterations;
      in_queue[static_cast<std::size_t>(v)] = 0;
      std::int64_t base = *dist[static_cast<std::size_t>(v)];
      for (int e : out[static_cast<std::size_t>(v)]) {
        const TickEdge& edge = edges[static_cast<std::size_t>(e)];
        if (!edge.active || scc_.comp[static_cast<std::size_t>(edge.head)] != c) {
          continue;
        }
        std::int64_t candidate = base + edge.weight;
        std::optional<std::int64_t>& to = dist[static_cast<std::size_t>(edge.head)];
        if (!to.has_value() || candidate < *to) {
          to = candidate;
          ++stats.propagations;
          if (!push(edge.head)) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

void IncrementalSolver::PublishResult(SolveStats stats) {
  const std::size_t n = graph_.point_count();
  result_.feasible = true;
  result_.conflict_cycle.clear();
  result_.stats = stats;
  result_.earliest.resize(n);
  result_.latest.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mirror SolveStn's conversions exactly: earliest = -dist (unreachable
    // means unconstrained, pinned to zero), latest unreachable = unbounded.
    result_.earliest[i] =
        back_dist_[i].has_value() ? MediaTime::Rational(-*back_dist_[i], lcm_) : MediaTime();
    result_.latest[i] = fwd_dist_[i].has_value()
                            ? std::optional<MediaTime>(MediaTime::Rational(*fwd_dist_[i], lcm_))
                            : std::nullopt;
  }
}

const SolveResult& IncrementalSolver::CanonicalFallback() {
  labels_valid_ = false;
  last_incremental_ = false;
  last_cone_points_ = graph_.point_count();
  result_ = SolveStn(graph_);
  return result_;
}

const SolveResult& IncrementalSolver::FullSolve() {
  last_incremental_ = false;
  last_cone_points_ = graph_.point_count();
  scc_ = SccCondensation::Build(graph_);
  if (!BuildTickState()) {
    lcm_ = 0;
    labels_valid_ = false;
    result_ = SolveStn(graph_);
    return result_;
  }
  if (graph_.point_count() == 0) {
    result_ = SolveResult{};
    result_.feasible = true;
    labels_valid_ = true;
    return result_;
  }
  SolveStats stats;
  std::vector<char> all;
  if (!SolvePass(true, all, stats)) {
    return CanonicalFallback();
  }
  (void)SolvePass(false, all, stats);  // same edge set, no cycle possible
  labels_valid_ = true;
  PublishResult(stats);
  return result_;
}

const SolveResult& IncrementalSolver::ResolveCone(const std::vector<std::size_t>& touched) {
  std::vector<char> dirty(scc_.comp_count, 0);
  for (std::size_t i : touched) {
    const Constraint& c = graph_.constraints()[i];
    dirty[static_cast<std::size_t>(scc_.comp[static_cast<std::size_t>(c.from)])] = 1;
    dirty[static_cast<std::size_t>(scc_.comp[static_cast<std::size_t>(c.to)])] = 1;
  }
  // Earliest pass: everything downstream of the touched components.
  std::vector<char> cone_back = Closure(dirty, scc_.out);
  // Latest pass: the forward graph is the reverse, so its downstream is the
  // condensation's upstream.
  std::vector<std::vector<int>> rev(scc_.comp_count);
  for (std::size_t c = 0; c < scc_.comp_count; ++c) {
    for (int d : scc_.out[c]) {
      rev[static_cast<std::size_t>(d)].push_back(static_cast<int>(c));
    }
  }
  std::vector<char> cone_fwd = Closure(dirty, rev);

  std::size_t cone_points = 0;
  for (std::size_t c = 0; c < scc_.comp_count; ++c) {
    if (cone_back[c]) {
      cone_points += scc_.members[c].size();
    }
  }
  SolveStats stats;
  if (!SolvePass(true, cone_back, stats)) {
    return CanonicalFallback();
  }
  if (!SolvePass(false, cone_fwd, stats)) {
    return CanonicalFallback();
  }
  last_incremental_ = true;
  last_cone_points_ = cone_points;
  PublishResult(stats);
  return result_;
}

const SolveResult& IncrementalSolver::ResolveRetuned(const std::vector<std::size_t>& constraints) {
  if (!labels_valid_ || lcm_ <= 0) {
    return FullSolve();
  }
  for (std::size_t i : constraints) {
    if (i >= slots_.size() || !SyncConstraintEdges(i)) {
      return FullSolve();  // new weight outside the cached tick basis
    }
  }
  return ResolveCone(constraints);
}

const SolveResult& IncrementalSolver::ResolveStructural(
    const std::vector<std::size_t>& constraints) {
  if (!labels_valid_ || lcm_ <= 0) {
    return FullSolve();
  }
  SccCondensation fresh = SccCondensation::Build(graph_);
  if (!fresh.SamePartition(scc_)) {
    return FullSolve();  // the condensation itself changed
  }
  scc_ = std::move(fresh);  // same partition, possibly rewired DAG edges
  slots_.resize(graph_.constraints().size());
  for (std::size_t i : constraints) {
    if (!SyncConstraintEdges(i)) {
      return FullSolve();
    }
  }
  return ResolveCone(constraints);
}

SolveResult Solve(const TimeGraph& graph, const SolveOptions& options) {
  if (options.strategy == SolveOptions::Strategy::kCondensed) {
    IncrementalSolver solver(graph);
    return solver.FullSolve();
  }
  return SolveStn(graph, options.algorithm);
}

}  // namespace cmif
