// Navigation analysis (section 5.3.3, case 3): "in navigating through a
// document, a reader may want to fast-forward to a document section that
// contains a number of relative synchronization constraints for which the
// source or destination are not active. ... the source of the arc must
// execute in order for a synchronization condition to be true; if this is
// not the case, all incoming synchronization arcs are considered invalid."
#ifndef SRC_SCHED_NAVIGATE_H_
#define SRC_SCHED_NAVIGATE_H_

#include <string>
#include <vector>

#include "src/sched/conflict.h"
#include "src/sched/schedule.h"

namespace cmif {

// An explicit arc that cannot bind after a seek.
struct InvalidatedArc {
  const Node* owner = nullptr;
  int arc_index = -1;
  std::string reason;
};

// The state of a document when playback (re)starts at `target`.
struct SeekAnalysis {
  MediaTime target;
  // Events in flight at the target time (begin <= target < end).
  std::vector<const ScheduledEvent*> active;
  // Events entirely before the target: skipped, they will not execute.
  std::vector<const ScheduledEvent*> skipped;
  // Events still entirely ahead.
  std::vector<const ScheduledEvent*> pending;
  // Explicit arcs whose source lies wholly in the skipped region while the
  // destination is active or pending — their sync conditions are invalid.
  std::vector<InvalidatedArc> invalidated;

  // Navigation conflicts (class kNavigation), one per invalidated arc.
  std::vector<Conflict> Conflicts() const;
};

// Classifies every event and explicit arc of `schedule` against a seek to
// `target`. Pointers borrow from `schedule` / the document.
SeekAnalysis AnalyzeSeek(const Document& document, const Schedule& schedule, MediaTime target);

// Recomputes the schedule for playback resuming at `target`: arcs whose
// sources were skipped are disabled ("all incoming synchronization arcs are
// considered to be invalid", section 5.3.3), and skipped events are pinned
// to their original times so the already-played prefix stays fixed. The
// remaining events may move earlier once dead arcs stop constraining them.
StatusOr<ScheduleResult> RescheduleFromSeek(const Document& document,
                                            const std::vector<EventDescriptor>& events,
                                            const Schedule& original, MediaTime target,
                                            const ScheduleOptions& options = {});

}  // namespace cmif

#endif  // SRC_SCHED_NAVIGATE_H_
