#include "src/sched/navigate.h"

#include "src/base/string_util.h"

namespace cmif {

std::vector<Conflict> SeekAnalysis::Conflicts() const {
  std::vector<Conflict> conflicts;
  for (const InvalidatedArc& arc : invalidated) {
    Conflict conflict;
    conflict.cls = ConflictClass::kNavigation;
    conflict.description = arc.reason;
    conflict.cycle.push_back("arc #" + std::to_string(arc.arc_index) + " on " +
                             arc.owner->DisplayPath());
    conflicts.push_back(std::move(conflict));
  }
  return conflicts;
}

SeekAnalysis AnalyzeSeek(const Document& document, const Schedule& schedule, MediaTime target) {
  SeekAnalysis analysis;
  analysis.target = target;
  for (const ScheduledEvent& event : schedule.events()) {
    // A zero-duration event exactly at the target counts as active, matching
    // the playback engine's resume rule.
    if (event.end <= target && event.begin < target) {
      analysis.skipped.push_back(&event);
    } else if (event.begin <= target) {
      analysis.active.push_back(&event);
    } else {
      analysis.pending.push_back(&event);
    }
  }

  document.root().Visit([&](const Node& node) {
    for (std::size_t i = 0; i < node.arcs().size(); ++i) {
      const SyncArc& arc = node.arcs()[i];
      auto source = node.Resolve(arc.source);
      auto dest = node.Resolve(arc.dest);
      if (!source.ok() || !dest.ok()) {
        continue;  // the validator reports unresolvable endpoints
      }
      auto source_begin = schedule.BeginOf(**source);
      auto source_end = schedule.EndOf(**source);
      auto dest_end = schedule.EndOf(**dest);
      if (!source_begin.ok() || !source_end.ok() || !dest_end.ok()) {
        continue;
      }
      // The source executed only if some part of it lies at/after the seek
      // point; a source wholly before the target is skipped, so arcs whose
      // destination still matters cannot bind.
      bool source_skipped = *source_end <= target && *source_begin < target;
      bool dest_still_matters = *dest_end > target;
      if (source_skipped && dest_still_matters) {
        analysis.invalidated.push_back(InvalidatedArc{
            &node, static_cast<int>(i),
            "seek to " + target.ToString() + "s skips arc source " +
                (*source)->DisplayPath() + "; incoming synchronization on " +
                (*dest)->DisplayPath() + " is invalid"});
      }
    }
  });
  return analysis;
}

StatusOr<ScheduleResult> RescheduleFromSeek(const Document& document,
                                            const std::vector<EventDescriptor>& events,
                                            const Schedule& original, MediaTime target,
                                            const ScheduleOptions& options) {
  SeekAnalysis analysis = AnalyzeSeek(document, original, target);
  CMIF_ASSIGN_OR_RETURN(TimeGraph graph, TimeGraph::Build(document, events, options.graph));

  // Disable the constraints of invalidated arcs.
  for (const InvalidatedArc& dead : analysis.invalidated) {
    const std::vector<Constraint>& constraints = graph.constraints();
    for (std::size_t i = 0; i < constraints.size(); ++i) {
      if (constraints[i].origin == ConstraintOrigin::kExplicitArc &&
          constraints[i].owner == dead.owner && constraints[i].arc_index == dead.arc_index) {
        graph.Disable(i);
      }
    }
  }

  // Pin already-played events to their original times so the prefix of the
  // timeline does not rewrite history.
  for (const ScheduledEvent* skipped : analysis.skipped) {
    CMIF_ASSIGN_OR_RETURN(int begin, graph.PointOf(*skipped->event.node, PointKind::kBegin));
    CMIF_ASSIGN_OR_RETURN(int end, graph.PointOf(*skipped->event.node, PointKind::kEnd));
    Constraint pin_begin;
    pin_begin.from = 0;
    pin_begin.to = begin;
    pin_begin.lo = skipped->begin;
    pin_begin.hi = skipped->begin;
    pin_begin.origin = ConstraintOrigin::kStructure;
    pin_begin.label =
        StrFormat("seek pin begin of %s", skipped->event.node->DisplayPath().c_str());
    CMIF_RETURN_IF_ERROR(graph.AddConstraint(std::move(pin_begin)));
    Constraint pin_end = Constraint{};
    pin_end.from = 0;
    pin_end.to = end;
    pin_end.lo = skipped->end;
    pin_end.hi = skipped->end;
    pin_end.origin = ConstraintOrigin::kStructure;
    pin_end.label = StrFormat("seek pin end of %s", skipped->event.node->DisplayPath().c_str());
    CMIF_RETURN_IF_ERROR(graph.AddConstraint(std::move(pin_end)));
  }
  return SolveSchedule(graph, events, options);
}

}  // namespace cmif
