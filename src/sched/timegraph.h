// The time graph: CMIF synchronization compiled into a Simple Temporal
// Network. Every node contributes a begin and an end time point; every
// default structural arc (section 5.3.1), duration window, channel ordering
// rule and explicit synchronization arc contributes a difference constraint
//
//     lo <= t_to - t_from <= hi        (hi possibly unbounded)
//
// which is exactly the paper's synchronization equation
// t_ref + delta <= t_actual <= t_ref + epsilon with t_ref = t_from + offset.
//
// Default arcs ("correspond to fork and join operations"):
//   seq S(c1..cn):  B(c1) >= B(S); B(c{k+1}) >= E(ck); E(S) == E(cn)
//   par P(c1..cn):  B(ck) >= B(P); E(P) >= E(ck) for every child
//   empty composite: E == B
// The "as soon as possible" / "when the slowest parallel node finishes"
// semantics fall out of the earliest solution of the network.
#ifndef SRC_SCHED_TIMEGRAPH_H_
#define SRC_SCHED_TIMEGRAPH_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"
#include "src/doc/document.h"
#include "src/doc/event.h"

namespace cmif {

// Which end of a node a time point represents.
enum class PointKind { kBegin = 0, kEnd };

// Where a constraint came from, for conflict reporting (section 5.3.3).
enum class ConstraintOrigin {
  kStructure = 0,  // default seq/par arc
  kDuration,       // event duration window
  kChannelOrder,   // linear time order on one channel (section 3.1)
  kExplicitArc,    // an authored synchronization arc
  kCapability,     // injected by a constraint filter / device model
};

std::string_view ConstraintOriginName(ConstraintOrigin origin);

// One difference constraint: lo <= t[to] - t[from] <= hi.
struct Constraint {
  int from = 0;
  int to = 0;
  MediaTime lo;
  std::optional<MediaTime> hi;  // nullopt = unbounded above
  ConstraintOrigin origin = ConstraintOrigin::kStructure;
  // For kExplicitArc: the node the arc is written on and the arc's index in
  // that node's arc list.
  const Node* owner = nullptr;
  int arc_index = -1;
  // Droppable when infeasible? Explicit "may" arcs are; everything else is
  // binding.
  ArcRigor rigor = ArcRigor::kMust;
  // Human-readable description for conflict reports.
  std::string label;
};

// Options controlling graph construction.
struct TimeGraphOptions {
  // Enforce "events placed on a single channel are synchronized in linear
  // time order" (section 3.1) between consecutive events of each channel.
  bool serialize_channels = true;
};

// The compiled network. Point 0 is always the root's begin — the "implied
// timing reference point for all other nodes" (section 5.1).
class TimeGraph {
 public:
  // Compiles `document`. `events` supplies leaf duration windows and channel
  // order (from CollectEvents). Errors: unresolvable arc endpoints.
  static StatusOr<TimeGraph> Build(const Document& document,
                                   const std::vector<EventDescriptor>& events,
                                   const TimeGraphOptions& options = {});

  std::size_t point_count() const { return point_count_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  // The time-point index of a node edge; the node must belong to the
  // document the graph was built from.
  StatusOr<int> PointOf(const Node& node, PointKind kind) const;
  // Reverse lookup for diagnostics: the node and edge of a point index.
  const Node* NodeOfPoint(int point) const;
  PointKind KindOfPoint(int point) const { return point % 2 == 0 ? PointKind::kBegin : PointKind::kEnd; }

  // Injects an additional constraint (capability filters, tests). Indexes
  // must be < point_count().
  Status AddConstraint(Constraint constraint);

  // Marks a constraint as removed (used by may-arc relaxation). Removed
  // constraints are skipped by the solver.
  void Disable(std::size_t constraint_index) { disabled_[constraint_index] = true; }
  bool IsDisabled(std::size_t constraint_index) const { return disabled_[constraint_index]; }

  // -- Edit-session support (src/api/edit_session.h) -------------------------
  // The constraint compiled from the arc at `arc_index` of `owner`, or
  // NotFound. Linear in the constraint count.
  StatusOr<std::size_t> ConstraintOfArc(const Node& owner, int arc_index) const;

  // Retunes a constraint's bounds (and label) in place, without rebuilding
  // the graph — the edit-session fast path. The upper bound's finiteness
  // class must not change (that is an edge-set change; rebuild instead).
  Status UpdateConstraintBounds(std::size_t index, MediaTime lo, std::optional<MediaTime> hi,
                                std::string label);

  // Disables the constraint of the arc at `arc_index` of `owner` and shifts
  // the arc_index bookkeeping of that owner's later constraints down by one,
  // mirroring an erase from the node's arc list.
  Status DisableArc(const Node& owner, int arc_index);

 private:
  TimeGraph() = default;

  std::size_t point_count_ = 0;
  std::vector<Constraint> constraints_;
  std::vector<bool> disabled_;
  std::unordered_map<const Node*, int> base_index_;  // node -> begin point
  std::vector<const Node*> node_of_base_;
};

}  // namespace cmif

#endif  // SRC_SCHED_TIMEGRAPH_H_
