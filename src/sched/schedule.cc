#include "src/sched/schedule.h"

#include <algorithm>

namespace cmif {

StatusOr<Schedule> Schedule::FromSolve(const TimeGraph& graph,
                                       const std::vector<EventDescriptor>& events,
                                       const SolveResult& solve) {
  if (!solve.feasible) {
    return FailedPreconditionError("cannot build a schedule from an infeasible solve");
  }
  Schedule schedule;
  for (std::size_t point = 0; point + 1 < graph.point_count(); point += 2) {
    const Node* node = graph.NodeOfPoint(static_cast<int>(point));
    if (node == nullptr) {
      continue;
    }
    schedule.node_times_.emplace(
        node, std::make_pair(solve.earliest[point], solve.earliest[point + 1]));
  }
  for (const EventDescriptor& event : events) {
    auto it = schedule.node_times_.find(event.node);
    if (it == schedule.node_times_.end()) {
      return InternalError("event node " + event.node->DisplayPath() + " missing from solve");
    }
    schedule.events_.push_back(ScheduledEvent{event, it->second.first, it->second.second});
  }
  return schedule;
}

Status Schedule::Retime(const TimeGraph& graph, const SolveResult& solve) {
  if (!solve.feasible) {
    return FailedPreconditionError("cannot retime a schedule from an infeasible solve");
  }
  for (std::size_t point = 0; point + 1 < graph.point_count(); point += 2) {
    const Node* node = graph.NodeOfPoint(static_cast<int>(point));
    if (node == nullptr) {
      continue;
    }
    auto it = node_times_.find(node);
    if (it == node_times_.end()) {
      return FailedPreconditionError("schedule was built from a different graph");
    }
    it->second = std::make_pair(solve.earliest[point], solve.earliest[point + 1]);
  }
  for (ScheduledEvent& event : events_) {
    auto it = node_times_.find(event.event.node);
    if (it == node_times_.end()) {
      return FailedPreconditionError("schedule was built from a different event list");
    }
    event.begin = it->second.first;
    event.end = it->second.second;
  }
  return Status::Ok();
}

Schedule Schedule::FromParts(
    std::vector<ScheduledEvent> events,
    std::unordered_map<const Node*, std::pair<MediaTime, MediaTime>> node_times) {
  Schedule schedule;
  schedule.events_ = std::move(events);
  schedule.node_times_ = std::move(node_times);
  return schedule;
}

StatusOr<MediaTime> Schedule::BeginOf(const Node& node) const {
  auto it = node_times_.find(&node);
  if (it == node_times_.end()) {
    return NotFoundError("node " + node.DisplayPath() + " is not in this schedule");
  }
  return it->second.first;
}

StatusOr<MediaTime> Schedule::EndOf(const Node& node) const {
  auto it = node_times_.find(&node);
  if (it == node_times_.end()) {
    return NotFoundError("node " + node.DisplayPath() + " is not in this schedule");
  }
  return it->second.second;
}

void Schedule::VisitNodeTimes(
    const std::function<void(const Node*, MediaTime, MediaTime)>& fn) const {
  for (const auto& [node, times] : node_times_) {
    fn(node, times.first, times.second);
  }
}

MediaTime Schedule::MakeSpan() const {
  MediaTime span;
  for (const auto& [node, times] : node_times_) {
    (void)node;
    span = std::max(span, times.second);
  }
  return span;
}

std::vector<TimelineRow> Schedule::ToTimelineRows(const Document& document) const {
  std::vector<TimelineRow> rows;
  for (const ChannelDef& channel : document.channels().channels()) {
    TimelineRow row;
    row.channel = channel.name;
    for (const ScheduledEvent& scheduled : events_) {
      if (scheduled.event.channel != channel.name) {
        continue;
      }
      std::string label = scheduled.event.node->name();
      if (label.empty()) {
        label = scheduled.event.node->DisplayPath();
      }
      row.spans.push_back(TimelineSpan{std::move(label), scheduled.begin, scheduled.end});
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace cmif
