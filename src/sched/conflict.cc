#include "src/sched/conflict.h"

#include <string_view>

#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {

std::string_view ConflictClassName(ConflictClass cls) {
  switch (cls) {
    case ConflictClass::kAuthoring:
      return "authoring";
    case ConflictClass::kCapability:
      return "capability";
    case ConflictClass::kNavigation:
      return "navigation";
  }
  return "?";
}

namespace {

Conflict DescribeCycle(const TimeGraph& graph, const std::vector<std::size_t>& cycle) {
  Conflict conflict;
  bool capability = false;
  for (std::size_t index : cycle) {
    const Constraint& c = graph.constraints()[index];
    conflict.cycle.push_back(std::string(ConstraintOriginName(c.origin)) + ": " + c.label);
    if (c.origin == ConstraintOrigin::kCapability) {
      capability = true;
    }
  }
  conflict.cls = capability ? ConflictClass::kCapability : ConflictClass::kAuthoring;
  conflict.description =
      std::string(capability
                      ? "device constraints make the requested synchronization unsatisfiable"
                      : "the document's synchronization constraints contradict each other");
  return conflict;
}

// The index of a droppable (explicit may) constraint in the cycle, or npos.
std::size_t FindMayArc(const TimeGraph& graph, const std::vector<std::size_t>& cycle) {
  for (std::size_t index : cycle) {
    const Constraint& c = graph.constraints()[index];
    if (c.origin == ConstraintOrigin::kExplicitArc && c.rigor == ArcRigor::kMay) {
      return index;
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

StatusOr<ScheduleResult> SolveSchedule(TimeGraph& graph,
                                       const std::vector<EventDescriptor>& events,
                                       const ScheduleOptions& options) {
  ScheduleResult result;
  obs::Span span("solve-schedule");
  if (obs::Enabled()) {
    static obs::Counter& schedules = obs::GetCounter("sched.schedules");
    schedules.Add();
  }
  std::size_t rounds = 0;
  for (std::size_t round = 0; round <= options.max_relaxations; ++round) {
    rounds = round + 1;
    result.solve = Solve(graph, options.solve);
    if (result.solve.feasible) {
      result.feasible = true;
      CMIF_ASSIGN_OR_RETURN(result.schedule, Schedule::FromSolve(graph, events, result.solve));
      if (obs::Enabled()) {
        // Every round beyond the first was an infeasibility backtrack that
        // dropped one may arc and re-solved.
        static obs::Counter& backtracks = obs::GetCounter("sched.backtracks");
        static obs::Counter& dropped = obs::GetCounter("sched.may_arcs_dropped");
        backtracks.Add(static_cast<std::int64_t>(rounds - 1));
        dropped.Add(static_cast<std::int64_t>(result.dropped_arcs.size()));
      }
      // Sparse args: a first-round feasible solve is the nominal case and its
      // figures are all in the counters above; only a backtracked solve
      // carries annotations.
      if (rounds > 1) {
        span.Annotate("rounds", rounds);
        span.Annotate("dropped_arcs", result.dropped_arcs.size());
        span.Annotate("feasible", true);
      }
      return result;
    }
    Conflict conflict = DescribeCycle(graph, result.solve.conflict_cycle);
    std::size_t droppable =
        options.relax_may_arcs ? FindMayArc(graph, result.solve.conflict_cycle)
                               : static_cast<std::size_t>(-1);
    result.conflicts.push_back(std::move(conflict));
    if (droppable == static_cast<std::size_t>(-1)) {
      result.feasible = false;
      if (obs::Enabled()) {
        static obs::Counter& backtracks = obs::GetCounter("sched.backtracks");
        static obs::Counter& infeasible = obs::GetCounter("sched.infeasible_documents");
        backtracks.Add(static_cast<std::int64_t>(rounds - 1));
        infeasible.Add();
      }
      span.Annotate("rounds", rounds);
      span.Annotate("feasible", false);
      return result;
    }
    const Constraint& dropped = graph.constraints()[droppable];
    CMIF_LOG(kInfo) << "relaxation: dropping may arc (" << dropped.label << ")";
    result.dropped_arcs.push_back(dropped.label);
    graph.Disable(droppable);
  }
  result.feasible = false;
  return result;
}

StatusOr<ScheduleResult> ComputeSchedule(const Document& document,
                                         const std::vector<EventDescriptor>& events,
                                         const ScheduleOptions& options) {
  CMIF_ASSIGN_OR_RETURN(TimeGraph graph, TimeGraph::Build(document, events, options.graph));
  return SolveSchedule(graph, events, options);
}

namespace {
constexpr std::string_view kConflictMarker = "constraint conflict [";
constexpr std::string_view kCyclePrefix = "  cycle[";
}  // namespace

Status ConflictToStatus(const Conflict& conflict) {
  std::string message(kConflictMarker);
  message += ConflictClassName(conflict.cls);
  message += "]: ";
  message += conflict.description;
  for (std::size_t i = 0; i < conflict.cycle.size(); ++i) {
    message += StrFormat("\n  cycle[%zu]: %s", i, conflict.cycle[i].c_str());
  }
  return FailedPreconditionError(message);
}

StatusOr<Conflict> ConflictFromStatus(const Status& status) {
  if (status.code() != StatusCode::kFailedPrecondition) {
    return InvalidArgumentError("not a constraint-conflict status");
  }
  std::string_view rest = status.message();
  if (!StartsWith(rest, kConflictMarker)) {
    return InvalidArgumentError("status does not carry the conflict encoding");
  }
  rest.remove_prefix(kConflictMarker.size());
  std::size_t close = rest.find("]: ");
  if (close == std::string_view::npos) {
    return InvalidArgumentError("malformed conflict class");
  }
  std::string_view cls_name = rest.substr(0, close);
  Conflict conflict;
  if (cls_name == ConflictClassName(ConflictClass::kAuthoring)) {
    conflict.cls = ConflictClass::kAuthoring;
  } else if (cls_name == ConflictClassName(ConflictClass::kCapability)) {
    conflict.cls = ConflictClass::kCapability;
  } else if (cls_name == ConflictClassName(ConflictClass::kNavigation)) {
    conflict.cls = ConflictClass::kNavigation;
  } else {
    return InvalidArgumentError("unknown conflict class '" + std::string(cls_name) + "'");
  }
  rest.remove_prefix(close + 3);
  std::size_t eol = rest.find('\n');
  conflict.description = std::string(rest.substr(0, eol));
  while (eol != std::string_view::npos) {
    rest.remove_prefix(eol + 1);
    eol = rest.find('\n');
    std::string_view line = rest.substr(0, eol);
    if (!StartsWith(line, kCyclePrefix)) {
      return InvalidArgumentError("malformed conflict cycle line");
    }
    std::size_t sep = line.find("]: ");
    if (sep == std::string_view::npos) {
      return InvalidArgumentError("malformed conflict cycle line");
    }
    conflict.cycle.push_back(std::string(line.substr(sep + 3)));
  }
  return conflict;
}

}  // namespace cmif
