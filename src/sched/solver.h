// The STN solver: feasibility (negative-cycle detection over the distance
// graph), earliest/latest time assignments, and slack. Arithmetic is exact
// (rational MediaTime), so feasibility decisions never suffer float drift.
#ifndef SRC_SCHED_SOLVER_H_
#define SRC_SCHED_SOLVER_H_

#include <optional>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"
#include "src/sched/timegraph.h"

namespace cmif {

// Work counters for one SolveStn call (both passes), for the observability
// metrics and the algorithm-comparison benches.
struct SolveStats {
  // Successful distance improvements (label propagations).
  std::size_t propagations = 0;
  // Queue pops (SPFA) or full edge-list passes (Bellman-Ford).
  std::size_t iterations = 0;
  // Negative cycles hit (0 or 1 per solve; counted across relaxation loops
  // by the scheduler as infeasibility backtracks).
  std::size_t negative_cycles = 0;
};

// The outcome of solving one network.
struct SolveResult {
  bool feasible = false;
  // Per time point, relative to point 0 (the root's begin). Populated only
  // when feasible.
  std::vector<MediaTime> earliest;
  // nullopt = unbounded above. Populated only when feasible.
  std::vector<std::optional<MediaTime>> latest;
  // When infeasible: indexes (into TimeGraph::constraints()) of the
  // constraints forming one negative cycle — the minimal inconsistent story
  // to show the author.
  std::vector<std::size_t> conflict_cycle;
  SolveStats stats;

  // Latest − earliest for a point; nullopt when unbounded.
  std::optional<MediaTime> Slack(std::size_t point) const;
};

// Shortest-path algorithm used by the solver.
enum class SolverAlgorithm {
  // Queue-based Bellman-Ford (SPFA): near-linear on the mostly-acyclic
  // networks CMIF structure produces. The default.
  kSpfa = 0,
  // Classic edge-list Bellman-Ford: O(V * E) always. Kept as the ablation
  // baseline (see bench/fig9_arcs).
  kNaiveBellmanFord,
};

// How Solve() runs. The one solver entry point front ends configure; tools
// and benches select a strategy here instead of plumbing SolveResult
// internals around.
struct SolveOptions {
  SolverAlgorithm algorithm = SolverAlgorithm::kSpfa;
  // kCondensed routes through the SCC-condensation engine
  // (src/sched/incremental.h): per-component solves in topological order.
  // Results are identical to kDirect; kCondensed is the full-solve form of
  // the engine the edit-session warm starts run on. kDirect is the classic
  // whole-graph pass.
  enum class Strategy { kDirect = 0, kCondensed };
  Strategy strategy = Strategy::kDirect;
};

// Solves the network per `options`. Points are as numbered by the TimeGraph;
// disabled constraints are skipped. Exact arithmetic throughout; on
// infeasibility the conflict cycle is canonical regardless of strategy.
// The preferred entry point — SolveStn below is the legacy direct form.
SolveResult Solve(const TimeGraph& graph, const SolveOptions& options = {});

// Deprecated in favor of Solve(graph, SolveOptions{...}); kept for existing
// callers. Equivalent to Solve with Strategy::kDirect.
SolveResult SolveStn(const TimeGraph& graph,
                     SolverAlgorithm algorithm = SolverAlgorithm::kSpfa);

// Checks that `times` satisfies every enabled constraint of `graph`; returns
// the first violation as FailedPrecondition. The property tests assert this
// on every earliest solution.
Status VerifySolution(const TimeGraph& graph, const std::vector<MediaTime>& times);

}  // namespace cmif

#endif  // SRC_SCHED_SOLVER_H_
