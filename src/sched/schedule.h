// Concrete schedules: the earliest-time assignment of every node and event,
// derived from a solved time graph. This is what the paper's presentation
// tools consume: per-channel lanes of (event, begin, end) spans.
#ifndef SRC_SCHED_SCHEDULE_H_
#define SRC_SCHED_SCHEDULE_H_

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/doc/event.h"
#include "src/fmt/tree_view.h"
#include "src/sched/solver.h"
#include "src/sched/timegraph.h"

namespace cmif {

// One scheduled event occurrence. The event descriptor is held by value so
// a Schedule stays valid after the CollectEvents vector it was built from
// goes away (schedules are passed across pipeline stages and sessions).
struct ScheduledEvent {
  EventDescriptor event;
  MediaTime begin;
  MediaTime end;

  MediaTime Duration() const { return end - begin; }
};

// The timed document. Events appear in document order.
class Schedule {
 public:
  Schedule() = default;

  // Extracts begin/end times for every node and event from a feasible solve.
  static StatusOr<Schedule> FromSolve(const TimeGraph& graph,
                                      const std::vector<EventDescriptor>& events,
                                      const SolveResult& solve);

  // Re-labels this schedule in place from a new feasible solve over the same
  // graph and event list it was built from — no event descriptors are
  // copied, which is what keeps the edit loop's incremental recompile cheap
  // (api::EditSession). Fails without touching semantics when the schedule
  // was built from a different graph; callers fall back to FromSolve.
  Status Retime(const TimeGraph& graph, const SolveResult& solve);

  // Reassembles a schedule from already-solved parts: scheduled events (full
  // descriptors plus begin/end) and the per-node time table. Used by the
  // on-disk compiled-presentation cache (src/serve/persistent_cache) to
  // rebuild a Schedule from its persisted form without re-solving; MakeSpan,
  // BeginOf/EndOf and ToTimelineRows behave exactly as on the original.
  static Schedule FromParts(
      std::vector<ScheduledEvent> events,
      std::unordered_map<const Node*, std::pair<MediaTime, MediaTime>> node_times);

  const std::vector<ScheduledEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Begin/end of any node (composite or leaf).
  StatusOr<MediaTime> BeginOf(const Node& node) const;
  StatusOr<MediaTime> EndOf(const Node& node) const;

  // Completion time of the whole document.
  MediaTime MakeSpan() const;

  // Visits every (node, begin, end) row of the node time table, in
  // unspecified order. The persistent cache serializer uses this to persist
  // the table; everything else should go through BeginOf/EndOf.
  void VisitNodeTimes(
      const std::function<void(const Node*, MediaTime, MediaTime)>& fn) const;

  // Channel lanes for the Figure 3/10 timeline renderers, in channel
  // definition order. Events are labelled with their node names.
  std::vector<TimelineRow> ToTimelineRows(const Document& document) const;

 private:
  std::vector<ScheduledEvent> events_;
  std::unordered_map<const Node*, std::pair<MediaTime, MediaTime>> node_times_;
};

}  // namespace cmif

#endif  // SRC_SCHED_SCHEDULE_H_
