// Incremental STN solving. The distance graph of a CMIF network is mostly a
// DAG: only finite synchronization windows (a constraint with both lo and a
// finite hi) create cycles, by pairing a forward edge with a backward one.
// Condensing the graph into strongly connected components therefore yields
// many small components — rigid clusters welded together by windows — hung on
// a large acyclic frame of lower-bound-only arcs (seq order, par fork/join,
// channel order).
//
// The solver exploits that twice:
//
//   FullSolve        solves per-SCC in topological order: each component is
//                    seeded from the already-final labels of its predecessors
//                    and closed with a queue pass bounded by the component
//                    size, so a label is settled O(1) times on the DAG frame
//                    instead of churning through a whole-graph SPFA.
//   ResolveRetuned / after an edit, only the *dirty cone* — the components
//   ResolveStructural reachable from the touched constraints' endpoints in
//                    the condensation DAG — is re-solved; every label outside
//                    the cone provably cannot change (no path from a touched
//                    edge reaches it) and is kept as-is, which is the
//                    warm start. Structural edits recondense first and fall
//                    back to a full solve when the partition itself changed.
//
// Arithmetic is the integer-tick fast path of src/sched/solver.cc (all
// weights rescaled to 1/lcm-second ticks once, then relaxed with plain
// int64). Networks whose weights do not fit a common denominator fall back
// to the classic solver on every resolve. Any infeasibility falls back to
// SolveStn so the reported conflict cycle is canonical — identical to what a
// from-scratch solve of the same graph reports, which the differential
// harness (src/check) relies on.
#ifndef SRC_SCHED_INCREMENTAL_H_
#define SRC_SCHED_INCREMENTAL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sched/solver.h"
#include "src/sched/timegraph.h"

namespace cmif {

// The strongly connected components of a time graph's distance-graph
// structure, in the backward (earliest-times) orientation: every enabled
// constraint contributes the edge from -> to; a finite upper bound adds
// to -> from. Deterministic for a given graph (Tarjan over points 0..n-1,
// adjacency in constraint order).
struct SccCondensation {
  // Point index -> component id. Component ids are reverse-topological:
  // every cross-component edge u -> v has comp[u] > comp[v], so descending
  // id order is a topological order of the condensation DAG.
  std::vector<int> comp;
  std::size_t comp_count = 0;
  // Component id -> member points, ascending.
  std::vector<std::vector<int>> members;
  // Deduplicated condensation adjacency (descending-id direction).
  std::vector<std::vector<int>> out;

  static SccCondensation Build(const TimeGraph& graph);

  // True when `other` groups the points identically, ignoring component
  // numbering. Adding or removing an arc can rewire the condensation DAG
  // without changing the partition; only a partition change forces the
  // incremental solver back to a full solve.
  bool SamePartition(const SccCondensation& other) const;
};

// Stateful solver bound to one TimeGraph. The graph may be mutated between
// calls (UpdateConstraintBounds, AddConstraint, Disable) as long as the
// matching Resolve* entry point is used; the solver re-reads the touched
// constraints and keeps everything else cached.
class IncrementalSolver {
 public:
  explicit IncrementalSolver(const TimeGraph& graph);

  // Solves from scratch: rebuild tick edges, recondense, run both passes
  // per-SCC in topological order. Always safe; primes the caches the
  // incremental entry points warm-start from.
  const SolveResult& FullSolve();

  // Re-solves after the listed constraints changed bounds in place (same
  // upper-bound finiteness, so the edge set and the condensation are
  // untouched). Only the dirty cone is recomputed.
  const SolveResult& ResolveRetuned(const std::vector<std::size_t>& constraints);

  // Re-solves after constraints were added (appended) or disabled.
  // Recondenses; when the partition is unchanged only the dirty cone is
  // recomputed, otherwise this degrades to FullSolve.
  const SolveResult& ResolveStructural(const std::vector<std::size_t>& constraints);

  const SolveResult& result() const { return result_; }
  const SccCondensation& condensation() const { return scc_; }
  // True when the last Resolve* call took the dirty-cone path (false after
  // FullSolve, a partition change, or an infeasibility fallback).
  bool last_incremental() const { return last_incremental_; }
  // False when the graph's weights exceed the integer fast path; every
  // resolve is then a plain SolveStn.
  bool tick_mode() const { return lcm_ > 0; }
  // Points re-labelled by the last incremental resolve (cone size); equals
  // point_count() after a full solve.
  std::size_t last_cone_points() const { return last_cone_points_; }

 private:
  struct TickEdge {
    int tail = 0;
    int head = 0;
    std::int64_t weight = 0;
    std::size_t constraint = 0;
    bool active = true;
  };
  // Where one constraint's edges live in the tick lists (-1 = absent).
  struct EdgeSlots {
    int back_lo = -1;
    int back_hi = -1;
    int fwd_lo = -1;
    int fwd_hi = -1;
  };

  bool BuildTickState();  // false when no common denominator exists
  bool TickOf(const MediaTime& t, std::int64_t* out) const;
  bool SyncConstraintEdges(std::size_t index);  // false on tick overflow
  // Runs one label pass over the components flagged in `in_cone` (empty =
  // every component). Returns false on a negative cycle.
  bool SolvePass(bool backward, const std::vector<char>& in_cone, SolveStats& stats);
  const SolveResult& ResolveCone(const std::vector<std::size_t>& touched);
  const SolveResult& CanonicalFallback();  // SolveStn, canonical conflict cycle
  void PublishResult(SolveStats stats);

  const TimeGraph& graph_;
  std::int64_t lcm_ = 0;
  std::vector<TickEdge> back_;
  std::vector<TickEdge> fwd_;
  std::vector<std::vector<int>> back_out_, back_in_;
  std::vector<std::vector<int>> fwd_out_, fwd_in_;
  std::vector<EdgeSlots> slots_;
  std::vector<std::optional<std::int64_t>> back_dist_;
  std::vector<std::optional<std::int64_t>> fwd_dist_;
  SccCondensation scc_;
  SolveResult result_;
  bool labels_valid_ = false;
  bool last_incremental_ = false;
  std::size_t last_cone_points_ = 0;
};

}  // namespace cmif

#endif  // SRC_SCHED_INCREMENTAL_H_
