#include "src/sched/solver.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// One edge of the distance graph: t[head] - t[tail] <= weight.
template <typename W>
struct Edge {
  int tail;
  int head;
  W weight;
  std::size_t constraint;  // provenance
};

// Queue-based Bellman-Ford (SPFA): near-linear on the mostly-acyclic
// networks CMIF structure produces. Fills dist/pred_edge from `source`;
// returns an edge on/into a negative cycle, or npos. A vertex enqueued more
// than V times proves a negative cycle.
template <typename W>
std::size_t Spfa(int source, std::size_t point_count, const std::vector<Edge<W>>& edges,
                 std::vector<std::optional<W>>& dist, std::vector<int>& pred_edge,
                 SolveStats& stats) {
  dist.assign(point_count, std::nullopt);
  pred_edge.assign(point_count, -1);

  std::vector<std::vector<int>> out_edges(point_count);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    out_edges[static_cast<std::size_t>(edges[e].tail)].push_back(static_cast<int>(e));
  }

  std::deque<int> queue;
  std::vector<char> in_queue(point_count, 0);
  std::vector<std::size_t> enqueues(point_count, 0);
  dist[static_cast<std::size_t>(source)] = W();
  queue.push_back(source);
  in_queue[static_cast<std::size_t>(source)] = 1;
  enqueues[static_cast<std::size_t>(source)] = 1;

  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    ++stats.iterations;
    in_queue[static_cast<std::size_t>(v)] = 0;
    W base = *dist[static_cast<std::size_t>(v)];
    for (int e : out_edges[static_cast<std::size_t>(v)]) {
      const Edge<W>& edge = edges[static_cast<std::size_t>(e)];
      W candidate = base + edge.weight;
      auto& to = dist[static_cast<std::size_t>(edge.head)];
      if (!to.has_value() || candidate < *to) {
        to = candidate;
        ++stats.propagations;
        pred_edge[static_cast<std::size_t>(edge.head)] = e;
        if (!in_queue[static_cast<std::size_t>(edge.head)]) {
          if (++enqueues[static_cast<std::size_t>(edge.head)] > point_count) {
            return static_cast<std::size_t>(e);  // negative cycle
          }
          in_queue[static_cast<std::size_t>(edge.head)] = 1;
          // Smallest-label-first: processing low labels first sharply cuts
          // re-relaxation on the near-acyclic graphs CMIF produces.
          if (!queue.empty() &&
              candidate < *dist[static_cast<std::size_t>(queue.front())]) {
            queue.push_front(edge.head);
          } else {
            queue.push_back(edge.head);
          }
        }
      }
    }
  }
  return kNone;
}

// Classic edge-list Bellman-Ford: the O(V * E) ablation baseline.
template <typename W>
std::size_t BellmanFord(int source, std::size_t point_count, const std::vector<Edge<W>>& edges,
                        std::vector<std::optional<W>>& dist, std::vector<int>& pred_edge,
                        SolveStats& stats) {
  dist.assign(point_count, std::nullopt);
  pred_edge.assign(point_count, -1);
  dist[static_cast<std::size_t>(source)] = W();
  bool changed = true;
  for (std::size_t pass = 0; pass + 1 < point_count && changed; ++pass) {
    ++stats.iterations;
    changed = false;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const Edge<W>& edge = edges[e];
      const auto& from = dist[static_cast<std::size_t>(edge.tail)];
      if (!from.has_value()) {
        continue;
      }
      W candidate = *from + edge.weight;
      auto& to = dist[static_cast<std::size_t>(edge.head)];
      if (!to.has_value() || candidate < *to) {
        to = candidate;
        pred_edge[static_cast<std::size_t>(edge.head)] = static_cast<int>(e);
        ++stats.propagations;
        changed = true;
      }
    }
  }
  if (!changed) {
    return kNone;
  }
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const Edge<W>& edge = edges[e];
    const auto& from = dist[static_cast<std::size_t>(edge.tail)];
    if (!from.has_value()) {
      continue;
    }
    W candidate = *from + edge.weight;
    const auto& to = dist[static_cast<std::size_t>(edge.head)];
    if (!to.has_value() || candidate < *to) {
      return e;
    }
  }
  return kNone;
}

// Walks predecessor edges from a vertex known to be affected by a negative
// cycle until the cycle is isolated; returns its constraint indexes.
template <typename W>
std::vector<std::size_t> ExtractCycle(int start_vertex, std::size_t point_count,
                                      const std::vector<Edge<W>>& edges,
                                      const std::vector<int>& pred_edge) {
  // Step back V times to guarantee we are inside the cycle.
  int v = start_vertex;
  for (std::size_t i = 0; i < point_count; ++i) {
    int e = pred_edge[static_cast<std::size_t>(v)];
    if (e < 0) {
      break;
    }
    v = edges[static_cast<std::size_t>(e)].tail;
  }
  std::vector<std::size_t> cycle;
  std::vector<bool> seen(point_count, false);
  int cursor = v;
  while (!seen[static_cast<std::size_t>(cursor)]) {
    seen[static_cast<std::size_t>(cursor)] = true;
    int e = pred_edge[static_cast<std::size_t>(cursor)];
    if (e < 0) {
      break;
    }
    cycle.push_back(edges[static_cast<std::size_t>(e)].constraint);
    cursor = edges[static_cast<std::size_t>(e)].tail;
    if (cursor == v) {
      break;
    }
  }
  std::reverse(cycle.begin(), cycle.end());
  std::vector<std::size_t> unique;
  for (std::size_t c : cycle) {
    if (std::find(unique.begin(), unique.end(), c) == unique.end()) {
      unique.push_back(c);
    }
  }
  return unique;
}

// The rational edge lists of a graph's distance graph.
struct RationalEdges {
  std::vector<Edge<MediaTime>> forward;
  std::vector<Edge<MediaTime>> backward;
};

RationalEdges BuildEdges(const TimeGraph& graph) {
  RationalEdges out;
  const std::vector<Constraint>& constraints = graph.constraints();
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    if (graph.IsDisabled(i)) {
      continue;
    }
    const Constraint& c = constraints[i];
    if (c.hi.has_value()) {
      out.forward.push_back(Edge<MediaTime>{c.from, c.to, *c.hi, i});
      out.backward.push_back(Edge<MediaTime>{c.to, c.from, *c.hi, i});
    }
    // Lower bound: t_from - t_to <= -lo.
    out.forward.push_back(Edge<MediaTime>{c.to, c.from, -c.lo, i});
    out.backward.push_back(Edge<MediaTime>{c.from, c.to, -c.lo, i});
  }
  return out;
}

// Rational weights pay a gcd on every relaxation. Nearly all real documents
// use a handful of timebases (ms, fps, sample rates), so the weights share a
// small common denominator L: rescale once to int64 "ticks" and relax with
// plain integer arithmetic. Returns 0 when no safe L exists (fall back to
// rational arithmetic).
std::int64_t CommonDenominator(const std::vector<Edge<MediaTime>>& edges) {
  constexpr std::int64_t kMaxLcm = 1'000'000'000;       // ticks per second cap
  constexpr std::int64_t kMaxTicks = INT64_MAX >> 20;   // headroom for path sums
  std::int64_t lcm = 1;
  for (const Edge<MediaTime>& edge : edges) {
    std::int64_t den = edge.weight.den();
    std::int64_t g = std::gcd(lcm, den);
    if (lcm / g > kMaxLcm / den) {
      return 0;
    }
    lcm = lcm / g * den;
    if (lcm > kMaxLcm) {
      return 0;
    }
  }
  for (const Edge<MediaTime>& edge : edges) {
    std::int64_t scale = lcm / edge.weight.den();
    std::int64_t num = edge.weight.num();
    if (num > kMaxTicks / scale || num < -(kMaxTicks / scale)) {
      return 0;
    }
  }
  return lcm;
}

std::vector<Edge<std::int64_t>> ToTicks(const std::vector<Edge<MediaTime>>& edges,
                                        std::int64_t lcm) {
  std::vector<Edge<std::int64_t>> out;
  out.reserve(edges.size());
  for (const Edge<MediaTime>& edge : edges) {
    out.push_back(Edge<std::int64_t>{edge.tail, edge.head,
                                     edge.weight.num() * (lcm / edge.weight.den()),
                                     edge.constraint});
  }
  return out;
}

}  // namespace

std::optional<MediaTime> SolveResult::Slack(std::size_t point) const {
  if (!feasible || point >= earliest.size() || !latest[point].has_value()) {
    return std::nullopt;
  }
  return *latest[point] - earliest[point];
}

Status VerifySolution(const TimeGraph& graph, const std::vector<MediaTime>& times) {
  if (times.size() != graph.point_count()) {
    return InvalidArgumentError("time vector size does not match the graph");
  }
  const std::vector<Constraint>& constraints = graph.constraints();
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    if (graph.IsDisabled(i)) {
      continue;
    }
    const Constraint& c = constraints[i];
    MediaTime gap = times[static_cast<std::size_t>(c.to)] - times[static_cast<std::size_t>(c.from)];
    if (gap < c.lo || (c.hi.has_value() && gap > *c.hi)) {
      return FailedPreconditionError("constraint violated: " + c.label + " (gap " +
                                     gap.ToString() + ")");
    }
  }
  return Status::Ok();
}

namespace {

// Runs both passes over one weight representation and fills the result.
// `to_time` converts a weight back to MediaTime.
template <typename W, typename ToTime>
void SolveWith(SolverAlgorithm algorithm, std::size_t n, const std::vector<Edge<W>>& forward,
               const std::vector<Edge<W>>& backward, const ToTime& to_time,
               SolveResult& result) {
  auto run = [algorithm, &result](int source, std::size_t points,
                                  const std::vector<Edge<W>>& edges,
                                  std::vector<std::optional<W>>& dist,
                                  std::vector<int>& pred_edge) {
    if (algorithm == SolverAlgorithm::kSpfa) {
      return Spfa(source, points, edges, dist, pred_edge, result.stats);
    }
    return BellmanFord(source, points, edges, dist, pred_edge, result.stats);
  };

  // Pass 1 (reversed graph): feasibility and earliest times.
  std::vector<std::optional<W>> dist;
  std::vector<int> pred;
  std::size_t bad_edge = run(0, n, backward, dist, pred);
  if (bad_edge != kNone) {
    result.feasible = false;
    ++result.stats.negative_cycles;
    result.conflict_cycle = ExtractCycle(backward[bad_edge].head, n, backward, pred);
    return;
  }
  result.feasible = true;
  result.earliest.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // dist[i] = shortest path i -> 0 in the distance graph; earliest = -dist.
    result.earliest[i] = dist[i].has_value() ? -to_time(*dist[i]) : MediaTime();
  }

  // Pass 2 (forward graph): latest times. No negative cycle can appear here
  // (same edge set).
  std::vector<std::optional<W>> fwd;
  (void)run(0, n, forward, fwd, pred);
  result.latest.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.latest[i] =
        fwd[i].has_value() ? std::optional<MediaTime>(to_time(*fwd[i])) : std::nullopt;
  }
}

}  // namespace

SolveResult SolveStn(const TimeGraph& graph, SolverAlgorithm algorithm) {
  SolveResult result;
  obs::Span span("solve-stn");
  static obs::Histogram& solve_ms = obs::GetHistogram("sched.solver.solve_ms");
  obs::ScopedLatency latency(solve_ms);
  std::size_t n = graph.point_count();
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  RationalEdges edges = BuildEdges(graph);
  std::int64_t lcm = CommonDenominator(edges.forward);
  if (lcm > 0) {
    // Integer fast path: all weights rescaled to ticks of 1/lcm seconds.
    std::vector<Edge<std::int64_t>> forward = ToTicks(edges.forward, lcm);
    std::vector<Edge<std::int64_t>> backward = ToTicks(edges.backward, lcm);
    SolveWith(
        algorithm, n, forward, backward,
        [lcm](std::int64_t ticks) { return MediaTime::Rational(ticks, lcm); }, result);
  } else {
    SolveWith(
        algorithm, n, edges.forward, edges.backward, [](MediaTime t) { return t; }, result);
  }
  if (obs::Enabled()) {
    static obs::Counter& solves = obs::GetCounter("sched.solver.solves");
    static obs::Counter& propagations = obs::GetCounter("sched.solver.propagations");
    static obs::Counter& iterations = obs::GetCounter("sched.solver.iterations");
    solves.Add();
    propagations.Add(static_cast<std::int64_t>(result.stats.propagations));
    iterations.Add(static_cast<std::int64_t>(result.stats.iterations));
    if (!result.feasible) {
      static obs::Counter& infeasible = obs::GetCounter("sched.solver.infeasible");
      infeasible.Add();
    }
    // Sparse args: the same figures land in the registry counters above on
    // every solve; the span itself carries them only when the solve is
    // anomalous, keeping the nominal hot path free of annotation churn.
    if (!result.feasible) {
      span.Annotate("points", n);
      span.Annotate("constraints", graph.constraints().size());
      span.Annotate("propagations", result.stats.propagations);
      span.Annotate("iterations", result.stats.iterations);
      span.Annotate("feasible", result.feasible);
    }
  }
  return result;
}

}  // namespace cmif
