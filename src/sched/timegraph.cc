#include "src/sched/timegraph.h"

#include "src/base/string_util.h"

namespace cmif {

std::string_view ConstraintOriginName(ConstraintOrigin origin) {
  switch (origin) {
    case ConstraintOrigin::kStructure:
      return "structure";
    case ConstraintOrigin::kDuration:
      return "duration";
    case ConstraintOrigin::kChannelOrder:
      return "channel-order";
    case ConstraintOrigin::kExplicitArc:
      return "explicit-arc";
    case ConstraintOrigin::kCapability:
      return "capability";
  }
  return "?";
}

namespace {

constexpr std::optional<MediaTime> kUnbounded = std::nullopt;

Constraint Make(int from, int to, MediaTime lo, std::optional<MediaTime> hi,
                ConstraintOrigin origin, std::string label) {
  Constraint c;
  c.from = from;
  c.to = to;
  c.lo = lo;
  c.hi = hi;
  c.origin = origin;
  c.label = std::move(label);
  return c;
}

}  // namespace

StatusOr<int> TimeGraph::PointOf(const Node& node, PointKind kind) const {
  auto it = base_index_.find(&node);
  if (it == base_index_.end()) {
    return NotFoundError("node " + node.DisplayPath() + " is not part of this time graph");
  }
  return it->second + (kind == PointKind::kEnd ? 1 : 0);
}

const Node* TimeGraph::NodeOfPoint(int point) const {
  std::size_t base = static_cast<std::size_t>(point) / 2;
  return base < node_of_base_.size() ? node_of_base_[base] : nullptr;
}

Status TimeGraph::AddConstraint(Constraint constraint) {
  if (constraint.from < 0 || constraint.to < 0 ||
      constraint.from >= static_cast<int>(point_count_) ||
      constraint.to >= static_cast<int>(point_count_)) {
    return OutOfRangeError("constraint endpoint out of range");
  }
  if (constraint.hi.has_value() && *constraint.hi < constraint.lo) {
    return InvalidArgumentError("constraint upper bound below lower bound");
  }
  constraints_.push_back(std::move(constraint));
  disabled_.push_back(false);
  return Status::Ok();
}

StatusOr<std::size_t> TimeGraph::ConstraintOfArc(const Node& owner, int arc_index) const {
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (constraints_[i].owner == &owner && constraints_[i].arc_index == arc_index &&
        !disabled_[i]) {
      return i;
    }
  }
  return NotFoundError(StrFormat("no constraint for arc #%d on %s", arc_index,
                                 owner.DisplayPath().c_str()));
}

Status TimeGraph::UpdateConstraintBounds(std::size_t index, MediaTime lo,
                                         std::optional<MediaTime> hi, std::string label) {
  if (index >= constraints_.size()) {
    return OutOfRangeError("constraint index out of range");
  }
  Constraint& c = constraints_[index];
  if (hi.has_value() != c.hi.has_value()) {
    return FailedPreconditionError(
        "retune may not change the upper bound's finiteness (edge-set change)");
  }
  if (hi.has_value() && *hi < lo) {
    return InvalidArgumentError("constraint upper bound below lower bound");
  }
  c.lo = lo;
  c.hi = hi;
  c.label = std::move(label);
  return Status::Ok();
}

Status TimeGraph::DisableArc(const Node& owner, int arc_index) {
  CMIF_ASSIGN_OR_RETURN(std::size_t index, ConstraintOfArc(owner, arc_index));
  disabled_[index] = true;
  for (Constraint& c : constraints_) {
    if (c.owner == &owner && c.arc_index > arc_index) {
      --c.arc_index;
    }
  }
  return Status::Ok();
}

StatusOr<TimeGraph> TimeGraph::Build(const Document& document,
                                     const std::vector<EventDescriptor>& events,
                                     const TimeGraphOptions& options) {
  TimeGraph graph;

  // Number the points: pre-order, begin = 2i, end = 2i + 1. The root's begin
  // lands at index 0, the implied reference point.
  document.root().Visit([&graph](const Node& node) {
    int base = static_cast<int>(graph.node_of_base_.size()) * 2;
    graph.base_index_.emplace(&node, base);
    graph.node_of_base_.push_back(&node);
  });
  graph.point_count_ = graph.node_of_base_.size() * 2;

  const MediaTime zero;
  auto add = [&graph](Constraint c) {
    graph.constraints_.push_back(std::move(c));
    graph.disabled_.push_back(false);
  };

  // Duration windows for leaves with events; leaves without an event (e.g.
  // no channel) get a [0, inf) window so they stay schedulable.
  std::unordered_map<const Node*, const EventDescriptor*> event_of;
  for (const EventDescriptor& event : events) {
    event_of.emplace(event.node, &event);
  }

  // Structural default arcs.
  Status failure;
  document.root().Visit([&](const Node& node) {
    if (!failure.ok()) {
      return;
    }
    int begin = graph.base_index_.at(&node);
    int end = begin + 1;
    if (node.is_leaf()) {
      auto it = event_of.find(&node);
      MediaTime lo;
      std::optional<MediaTime> hi = kUnbounded;
      if (it != event_of.end()) {
        lo = it->second->min_duration;
        hi = it->second->max_duration;
      }
      add(Make(begin, end, lo, hi, ConstraintOrigin::kDuration,
               "duration of " + node.DisplayPath()));
      return;
    }
    if (node.children().empty()) {
      add(Make(begin, end, zero, zero, ConstraintOrigin::kStructure,
               "empty composite " + node.DisplayPath()));
      return;
    }
    if (node.kind() == NodeKind::kSeq) {
      int first_begin = graph.base_index_.at(&node.ChildAt(0));
      add(Make(begin, first_begin, zero, kUnbounded, ConstraintOrigin::kStructure,
               "seq start " + node.DisplayPath()));
      for (std::size_t i = 0; i + 1 < node.children().size(); ++i) {
        int prev_end = graph.base_index_.at(&node.ChildAt(i)) + 1;
        int next_begin = graph.base_index_.at(&node.ChildAt(i + 1));
        add(Make(prev_end, next_begin, zero, kUnbounded, ConstraintOrigin::kStructure,
                 StrFormat("seq order %s #%zu -> #%zu", node.DisplayPath().c_str(), i, i + 1)));
      }
      int last_end = graph.base_index_.at(&node.ChildAt(node.children().size() - 1)) + 1;
      add(Make(last_end, end, zero, zero, ConstraintOrigin::kStructure,
               "seq join " + node.DisplayPath()));
    } else {  // kPar
      for (const auto& child : node.children()) {
        int child_begin = graph.base_index_.at(child.get());
        int child_end = child_begin + 1;
        add(Make(begin, child_begin, zero, kUnbounded, ConstraintOrigin::kStructure,
                 "par fork " + node.DisplayPath() + " -> " + child->DisplayPath()));
        add(Make(child_end, end, zero, kUnbounded, ConstraintOrigin::kStructure,
                 "par join " + child->DisplayPath() + " -> " + node.DisplayPath()));
      }
    }
  });

  // Channel serialization: linear time order within each channel.
  if (options.serialize_channels) {
    std::unordered_map<std::string, const EventDescriptor*> last_on_channel;
    for (const EventDescriptor& event : events) {
      auto [it, inserted] = last_on_channel.try_emplace(event.channel, &event);
      if (!inserted) {
        int prev_end = graph.base_index_.at(it->second->node) + 1;
        int next_begin = graph.base_index_.at(event.node);
        add(Make(prev_end, next_begin, zero, kUnbounded, ConstraintOrigin::kChannelOrder,
                 "channel '" + event.channel + "' order " + it->second->node->DisplayPath() +
                     " -> " + event.node->DisplayPath()));
        it->second = &event;
      }
    }
  }

  // Explicit synchronization arcs.
  document.root().Visit([&](const Node& node) {
    if (!failure.ok()) {
      return;
    }
    for (std::size_t i = 0; i < node.arcs().size(); ++i) {
      const SyncArc& arc = node.arcs()[i];
      auto source = node.Resolve(arc.source);
      if (!source.ok()) {
        failure = source.status();
        return;
      }
      auto dest = node.Resolve(arc.dest);
      if (!dest.ok()) {
        failure = dest.status();
        return;
      }
      int from = graph.base_index_.at(*source) + (arc.source_edge == ArcEdge::kEnd ? 1 : 0);
      int to = graph.base_index_.at(*dest) + (arc.dest_edge == ArcEdge::kEnd ? 1 : 0);
      Constraint c = Make(from, to, arc.offset + arc.min_delay,
                          arc.max_delay.has_value()
                              ? std::optional<MediaTime>(arc.offset + *arc.max_delay)
                              : kUnbounded,
                          ConstraintOrigin::kExplicitArc,
                          "arc " + arc.ToString() + " on " + node.DisplayPath());
      c.owner = &node;
      c.arc_index = static_cast<int>(i);
      c.rigor = arc.rigor;
      add(std::move(c));
    }
  });
  if (!failure.ok()) {
    return failure;
  }
  return graph;
}

}  // namespace cmif
