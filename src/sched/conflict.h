// Conflict detection and may-arc relaxation. Section 5.3.3 names three
// conflict classes: (1) an unreasonable authored constraint, (2) device
// characteristics that cannot support the document, and (3) navigation past
// arcs whose sources never execute (handled in src/sched/navigate.h).
// "CMIF plays a role in signalling problems, allowing other mechanisms to
// provide solutions" — so conflicts carry the exact constraint cycle.
#ifndef SRC_SCHED_CONFLICT_H_
#define SRC_SCHED_CONFLICT_H_

#include <string>
#include <vector>

#include "src/sched/schedule.h"
#include "src/sched/solver.h"
#include "src/sched/timegraph.h"

namespace cmif {

enum class ConflictClass {
  kAuthoring = 0,  // section 5.3.3 case 1: the document over-constrains itself
  kCapability,     // case 2: an injected device constraint is in the cycle
  kNavigation,     // case 3: reported by AnalyzeSeek
};

std::string_view ConflictClassName(ConflictClass cls);

// One inconsistent constraint cycle.
struct Conflict {
  ConflictClass cls = ConflictClass::kAuthoring;
  std::string description;
  // Labels of the constraints forming the negative cycle, in cycle order.
  std::vector<std::string> cycle;
};

// Scheduling controls.
struct ScheduleOptions {
  TimeGraphOptions graph;
  // When infeasible, repeatedly drop one "may" arc from the conflict cycle
  // ("desirable but not essential", section 5.3.2) and re-solve.
  bool relax_may_arcs = true;
  std::size_t max_relaxations = 64;
  // Solver strategy per round (kDirect or the SCC-condensed engine).
  SolveOptions solve;
};

// The outcome of scheduling one document.
struct ScheduleResult {
  bool feasible = false;
  Schedule schedule;   // valid when feasible
  SolveResult solve;   // raw point times / final conflict cycle
  // Conflicts hit along the way. When feasible, these are the cycles that
  // were broken by dropping may arcs; when infeasible, the last entry is the
  // unbreakable cycle.
  std::vector<Conflict> conflicts;
  // Human-readable labels of the may arcs that were dropped.
  std::vector<std::string> dropped_arcs;
};

// Solves `graph` (already built, possibly with capability constraints
// injected), relaxing may arcs per `options`. The graph is mutated: dropped
// arcs are disabled.
StatusOr<ScheduleResult> SolveSchedule(TimeGraph& graph,
                                       const std::vector<EventDescriptor>& events,
                                       const ScheduleOptions& options = {});

// Convenience: collect events, build the graph, and solve.
StatusOr<ScheduleResult> ComputeSchedule(const Document& document,
                                         const std::vector<EventDescriptor>& events,
                                         const ScheduleOptions& options = {});

// -- Structured conflict reporting -----------------------------------------
// The facade reports edit-time constraint conflicts as a kFailedPrecondition
// whose message is this canonical, machine-parseable encoding — the blame
// classification and the full constraint cycle survive the Status boundary
// instead of collapsing into an ad-hoc string:
//
//   constraint conflict [<class>]: <description>
//     cycle[<i>]: <constraint label>        (one line per cycle entry)
//
// ConflictFromStatus parses that encoding back; it rejects statuses that are
// not kFailedPrecondition or do not carry the marker line.
Status ConflictToStatus(const Conflict& conflict);
StatusOr<Conflict> ConflictFromStatus(const Status& status);

}  // namespace cmif

#endif  // SRC_SCHED_CONFLICT_H_
