#include "src/api/edit_session.h"

#include <utility>

#include "src/ddbms/persist.h"
#include "src/doc/event.h"
#include "src/doc/path.h"
#include "src/fmt/parser.h"

namespace cmif {
namespace api {

namespace {

StatusOr<Node*> ResolveOwner(Document& document, const std::string& path) {
  CMIF_ASSIGN_OR_RETURN(NodePath parsed, NodePath::Parse(path));
  return document.root().Resolve(parsed);
}

PointKind EdgePoint(ArcEdge edge) {
  return edge == ArcEdge::kEnd ? PointKind::kEnd : PointKind::kBegin;
}

// The exact constraint TimeGraph::Build compiles for this arc, so a patched
// graph stays semantically identical to a fresh build of the edited document.
Constraint CompileArc(const Node& owner, const SyncArc& arc, int arc_index, int from, int to) {
  Constraint c;
  c.from = from;
  c.to = to;
  c.lo = arc.offset + arc.min_delay;
  if (arc.max_delay.has_value()) {
    c.hi = arc.offset + *arc.max_delay;
  }
  c.origin = ConstraintOrigin::kExplicitArc;
  c.owner = &owner;
  c.arc_index = arc_index;
  c.rigor = arc.rigor;
  c.label = "arc " + arc.ToString() + " on " + owner.DisplayPath();
  return c;
}

}  // namespace

EditSession::EditSession(Document document, DescriptorStore store, EditSessionOptions options)
    : document_(std::move(document)), store_(std::move(store)), options_(std::move(options)) {}

StatusOr<std::unique_ptr<EditSession>> EditSession::Open(const Document& document,
                                                         const DescriptorStore& store,
                                                         const EditSessionOptions& options) {
  std::unique_ptr<EditSession> session(new EditSession(document.Clone(), store, options));
  CMIF_RETURN_IF_ERROR(session->RebuildAndSolve().status());
  return session;
}

StatusOr<EditReport> EditSession::Apply(const std::string& op_line) {
  CMIF_ASSIGN_OR_RETURN(EditOp op, ParseEditOp(op_line));
  return Apply(op);
}

StatusOr<EditReport> EditSession::Apply(const EditOp& op) {
  bool finiteness_changed = false;
  if (op.kind == EditOpKind::kRetuneArc && !needs_rebuild_) {
    CMIF_ASSIGN_OR_RETURN(Node * owner, ResolveOwner(document_, op.path));
    if (op.arc_index >= 0 && static_cast<std::size_t>(op.arc_index) < owner->arcs().size()) {
      const SyncArc& before = owner->arcs()[static_cast<std::size_t>(op.arc_index)];
      finiteness_changed = before.max_delay.has_value() != op.arc.max_delay.has_value();
    }
  }
  CMIF_ASSIGN_OR_RETURN(EditReport report, ApplyEdit(document_, op));
  PatchGraph(op, finiteness_changed, !report.dropped_arcs.empty());
  ++pending_ops_;
  return report;
}

void EditSession::PatchGraph(const EditOp& op, bool finiteness_changed, bool dropped_arcs) {
  if (needs_rebuild_) {
    return;
  }
  // Falls back to a full rebuild whenever the fast path cannot mirror the
  // edit exactly; correctness never depends on patching succeeding.
  auto rebuild = [this] { needs_rebuild_ = true; };
  switch (op.kind) {
    case EditOpKind::kAddNode:
    case EditOpKind::kRemoveNode:
      // Node surgery renumbers time points and channel order; no patch.
      pending_structure_ = true;
      rebuild();
      return;
    case EditOpKind::kRetuneArc: {
      if (finiteness_changed || dropped_arcs) {
        pending_structure_ = true;
        rebuild();
        return;
      }
      StatusOr<Node*> owner = ResolveOwner(document_, op.path);
      if (!owner.ok()) {
        return rebuild();
      }
      const SyncArc& arc = (*owner)->arcs()[static_cast<std::size_t>(op.arc_index)];
      StatusOr<std::size_t> index = graph_->ConstraintOfArc(**owner, op.arc_index);
      if (!index.ok()) {
        return rebuild();
      }
      Status patched = graph_->UpdateConstraintBounds(
          *index, arc.offset + arc.min_delay,
          arc.max_delay.has_value() ? std::optional<MediaTime>(arc.offset + *arc.max_delay)
                                    : std::nullopt,
          "arc " + arc.ToString() + " on " + (*owner)->DisplayPath());
      if (!patched.ok()) {
        return rebuild();
      }
      retuned_.push_back(*index);
      return;
    }
    case EditOpKind::kAddArc: {
      pending_structure_ = true;
      StatusOr<Node*> owner = ResolveOwner(document_, op.path);
      if (!owner.ok() || (*owner)->arcs().empty()) {
        return rebuild();
      }
      int arc_index = static_cast<int>((*owner)->arcs().size()) - 1;
      const SyncArc& arc = (*owner)->arcs().back();
      StatusOr<Node*> source = (*owner)->Resolve(arc.source);
      StatusOr<Node*> dest = (*owner)->Resolve(arc.dest);
      if (!source.ok() || !dest.ok()) {
        return rebuild();
      }
      StatusOr<int> from = graph_->PointOf(**source, EdgePoint(arc.source_edge));
      StatusOr<int> to = graph_->PointOf(**dest, EdgePoint(arc.dest_edge));
      if (!from.ok() || !to.ok()) {
        return rebuild();
      }
      Status added = graph_->AddConstraint(CompileArc(**owner, arc, arc_index, *from, *to));
      if (!added.ok()) {
        return rebuild();
      }
      structural_.push_back(graph_->constraints().size() - 1);
      return;
    }
    case EditOpKind::kRemoveArc: {
      pending_structure_ = true;
      StatusOr<Node*> owner = ResolveOwner(document_, op.path);
      if (!owner.ok()) {
        return rebuild();
      }
      StatusOr<std::size_t> index = graph_->ConstraintOfArc(**owner, op.arc_index);
      if (!index.ok() || !graph_->DisableArc(**owner, op.arc_index).ok()) {
        return rebuild();
      }
      structural_.push_back(*index);
      return;
    }
  }
}

StatusOr<EditDelta> EditSession::Recompile() {
  if (pending_ops_ == 0 && generation_ > 0) {
    EditDelta delta;
    delta.generation = generation_;
    return delta;
  }
  if (!needs_rebuild_ && solver_ != nullptr) {
    const SolveResult* result;
    if (structural_.empty()) {
      result = &solver_->ResolveRetuned(retuned_);
    } else {
      std::vector<std::size_t> touched = structural_;
      touched.insert(touched.end(), retuned_.begin(), retuned_.end());
      result = &solver_->ResolveStructural(touched);
    }
    if (result->feasible) {
      // The graph and event list are unchanged on this path, so the schedule
      // is relabelled in place instead of re-materialized per keystroke.
      if (!schedule_.Retime(*graph_, *result).ok()) {
        CMIF_ASSIGN_OR_RETURN(Schedule schedule, Schedule::FromSolve(*graph_, events_, *result));
        schedule_ = std::move(schedule);
      }
      solve_ = *result;
      ++generation_;
      EditDelta delta;
      delta.generation = generation_;
      delta.incremental = solver_->last_incremental();
      delta.structure_changed = pending_structure_;
      delta.ops_applied = pending_ops_;
      delta.changed_points = solver_->last_cone_points();
      delta.stats = result->stats;
      ClearPending();
      return delta;
    }
    // Infeasible: re-compile canonically so relaxation order and the
    // reported cycle match a from-scratch compile of the edited document.
  }
  return RebuildAndSolve();
}

StatusOr<EditDelta> EditSession::RebuildAndSolve() {
  CMIF_ASSIGN_OR_RETURN(std::vector<EventDescriptor> events, CollectEvents(document_, &store_));
  CMIF_ASSIGN_OR_RETURN(TimeGraph built,
                        TimeGraph::Build(document_, events, options_.schedule.graph));
  auto graph = std::make_unique<TimeGraph>(std::move(built));
  CMIF_ASSIGN_OR_RETURN(ScheduleResult compiled,
                        SolveSchedule(*graph, events, options_.schedule));
  if (!compiled.feasible) {
    // Keep the last-good schedule and generation; the session stays on the
    // canonical path until a later edit restores feasibility.
    needs_rebuild_ = true;
    return ConflictToStatus(compiled.conflicts.back());
  }
  events_ = std::move(events);
  graph_ = std::move(graph);
  solver_ = std::make_unique<IncrementalSolver>(*graph_);
  solver_->FullSolve();  // primes the condensation the next edits warm-start
  schedule_ = std::move(compiled.schedule);
  solve_ = std::move(compiled.solve);
  ++generation_;
  EditDelta delta;
  delta.generation = generation_;
  delta.incremental = false;
  delta.structure_changed = pending_structure_ || generation_ == 1;
  delta.ops_applied = pending_ops_;
  delta.changed_points = graph_->point_count();
  delta.stats = solve_.stats;
  delta.dropped_arcs = compiled.dropped_arcs;
  ClearPending();
  // Relaxation disabled may arcs the document still carries: a from-scratch
  // compile of a later revision would re-consider them, so the session must
  // too.
  needs_rebuild_ = !delta.dropped_arcs.empty();
  return delta;
}

void EditSession::ClearPending() {
  pending_ops_ = 0;
  pending_structure_ = false;
  needs_rebuild_ = false;
  retuned_.clear();
  structural_.clear();
}

Status EditSession::Publish(ServeCorpus& corpus, std::size_t index) const {
  return corpus.UpdateDocument(index, document_.Clone());
}

StatusOr<Session> Session::Open(const std::string& document_text,
                                const std::string& catalog_text) {
  Session session;
  CMIF_ASSIGN_OR_RETURN(session.document_, ParseDocument(document_text));
  if (!catalog_text.empty()) {
    CMIF_ASSIGN_OR_RETURN(session.store_, ReadCatalog(catalog_text));
  }
  return session;
}

}  // namespace api
}  // namespace cmif
