#include "src/api/cmif.h"

#include "src/ddbms/persist.h"
#include "src/fmt/parser.h"

namespace cmif {
namespace api {

StatusOr<Document> LoadDocument(const std::string& text) { return ParseDocument(text); }

StatusOr<DescriptorStore> LoadCatalog(const std::string& text) { return ReadCatalog(text); }

StatusOr<CompileReport> Compile(const Document& document, const DescriptorStore& store,
                                const BlockStore& blocks, const PipelineOptions& options) {
  return CompilePresentation(document, store, blocks, options);
}

StatusOr<PipelineReport> Play(const Document& document, const DescriptorStore& store,
                              const BlockStore& blocks, const PipelineOptions& options) {
  return RunPipeline(document, store, blocks, options);
}

StatusOr<ServeStats> Serve(ServeCorpus& corpus, const ServeOptions& options,
                           const std::vector<ServeRequest>& trace) {
  ServeLoop loop(corpus, options);
  return loop.Run(trace);
}

}  // namespace api
}  // namespace cmif
