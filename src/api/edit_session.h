// cmif::api::EditSession — the authoring loop. A session owns a private
// clone of one document plus its compiled constraint network, applies EditOps
// (src/doc/edit.h), and recompiles incrementally: a retune re-solves only the
// dirty cone of the SCC condensation (src/sched/incremental.h); structural
// arc edits recondense and re-solve the cone when the partition survives;
// node surgery, window-finiteness changes, and anything infeasible fall back
// to a canonical from-scratch compile so the session's results are always
// byte-equal to compiling the edited document fresh — the property the
// src/check differential harness enforces.
//
// Publishing: Publish() replaces a ServeCorpus slot with the session's
// current document, which rehashes the slot and bumps the shared-store
// generation — every mapping-cache / persistent-cache entry compiled from
// the old revision becomes unreachable.
#ifndef SRC_API_EDIT_SESSION_H_
#define SRC_API_EDIT_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/doc/document.h"
#include "src/doc/edit.h"
#include "src/sched/conflict.h"
#include "src/sched/incremental.h"
#include "src/serve/serve.h"

namespace cmif {
namespace api {

struct EditSessionOptions {
  // Per-recompile scheduling controls. The solver strategy defaults to the
  // SCC-condensed engine; from-scratch rebuilds honour it too.
  ScheduleOptions schedule;
  EditSessionOptions() { schedule.solve.strategy = SolveOptions::Strategy::kCondensed; }
};

// What one Recompile() call did.
struct EditDelta {
  // Monotone revision of the session's compiled state; bumped on every
  // successful recompile (1 = the opening compile).
  std::uint64_t generation = 0;
  // True when the dirty-cone path produced this revision; false for the
  // opening compile and every full-rebuild fallback.
  bool incremental = false;
  // The edit batch changed the constraint set (arc add/remove or node
  // surgery), not just bounds.
  bool structure_changed = false;
  // Ops applied since the previous successful recompile.
  std::size_t ops_applied = 0;
  // Time points re-labelled (the cone size; point_count on a full solve).
  std::size_t changed_points = 0;
  SolveStats stats;
  // May-arc labels dropped by relaxation during this recompile.
  std::vector<std::string> dropped_arcs;
};

class EditSession {
 public:
  // Opens a session on a clone of `document` and compiles it. Fails with the
  // structured conflict encoding (ConflictToStatus) when the document is
  // infeasible even after may-arc relaxation.
  static StatusOr<std::unique_ptr<EditSession>> Open(const Document& document,
                                                     const DescriptorStore& store,
                                                     const EditSessionOptions& options = {});

  EditSession(const EditSession&) = delete;
  EditSession& operator=(const EditSession&) = delete;

  // Applies one op to the session document immediately and patches (or
  // queues) the constraint network. The schedule is stale until the next
  // Recompile(). A failed Apply leaves the session unchanged.
  StatusOr<EditReport> Apply(const EditOp& op);
  // Parses the one-line textual form first.
  StatusOr<EditReport> Apply(const std::string& op_line);

  // Re-solves for every op applied since the last successful recompile.
  // On an infeasible network the session keeps its last-good schedule and
  // generation and returns ConflictToStatus (kFailedPrecondition, blame
  // class + constraint cycle machine-parseable via ConflictFromStatus).
  StatusOr<EditDelta> Recompile();

  const Document& document() const { return document_; }
  // Last-good compiled outputs (valid once Open succeeded).
  const Schedule& schedule() const { return schedule_; }
  const SolveResult& solve() const { return solve_; }
  std::uint64_t generation() const { return generation_; }
  // Ops applied but not yet covered by a successful Recompile().
  std::size_t pending_ops() const { return pending_ops_; }

  // Replaces corpus slot `index` with a clone of the session document
  // (ServeCorpus::UpdateDocument: rehash + store-generation bump).
  Status Publish(ServeCorpus& corpus, std::size_t index) const;

 private:
  EditSession(Document document, DescriptorStore store, EditSessionOptions options);

  // Patches the live TimeGraph for one applied op, or flags a rebuild.
  void PatchGraph(const EditOp& op, bool finiteness_changed, bool dropped_arcs);
  // Canonical from-scratch compile of the current document.
  StatusOr<EditDelta> RebuildAndSolve();
  void ClearPending();

  Document document_;
  DescriptorStore store_;
  EditSessionOptions options_;

  std::vector<EventDescriptor> events_;
  std::unique_ptr<TimeGraph> graph_;
  std::unique_ptr<IncrementalSolver> solver_;

  Schedule schedule_;
  SolveResult solve_;
  std::uint64_t generation_ = 0;

  // Pending-edit bookkeeping between recompiles.
  std::size_t pending_ops_ = 0;
  bool needs_rebuild_ = true;        // until the opening compile
  bool pending_structure_ = false;   // batch touched the constraint set
  std::vector<std::size_t> retuned_;     // constraints with patched bounds
  std::vector<std::size_t> structural_;  // constraints added or disabled
};

// One opened document plus its catalog — the handle front ends pass around.
// Owns nothing shared; Edit() spawns an EditSession on a private clone, so
// several edit sessions may fork from one Session.
class Session {
 public:
  // Parses document source and (optionally) catalog text.
  static StatusOr<Session> Open(const std::string& document_text,
                                const std::string& catalog_text = "");

  const Document& document() const { return document_; }
  const DescriptorStore& store() const { return store_; }

  StatusOr<std::unique_ptr<EditSession>> Edit(const EditSessionOptions& options = {}) const {
    return EditSession::Open(document_, store_, options);
  }

 private:
  Document document_{NodeKind::kSeq};
  DescriptorStore store_;
};

}  // namespace api
}  // namespace cmif

#endif  // SRC_API_EDIT_SESSION_H_
