// cmif::api — the one header front-end programs compile against. Everything
// a tool, bench, or embedding application needs from the pipeline, serving,
// and networking layers is exported here with stable Status/StatusOr
// signatures; the headers under src/pipeline, src/serve, and src/net are
// internal and may reshuffle between releases (CI greps that nothing outside
// src/ and tests/ includes them directly).
//
// The four entry points:
//   LoadDocument / LoadCatalog   text -> Document / DescriptorStore
//   Compile                      document -> compiled presentation
//                                (validate, map, filter-plan, schedule)
//   Play                         Compile plus the viewing stage
//   Serve                        a request trace over a ServeLoop
// plus the serving types (ServeLoop et al.), the networked delivery layer
// (NetServer / NetClient and the PresentRequest/PresentResponse messages),
// and the capture tools. Names under cmif::api are aliases, not copies: an
// api::PipelineOptions IS a cmif::PipelineOptions, so internal code and
// facade code interoperate without conversion.
#ifndef SRC_API_CMIF_H_
#define SRC_API_CMIF_H_

#include <memory>
#include <string>
#include <vector>

#include "src/api/edit_session.h"
#include "src/net/client.h"
#include "src/net/presentation_wire.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/pipeline/capture.h"
#include "src/pipeline/pipeline.h"
#include "src/serve/mapping_cache.h"
#include "src/serve/prefetch.h"
#include "src/serve/serve.h"

namespace cmif {
namespace api {

// ---- documents -----------------------------------------------------------

// Parses CMIF document source text.
StatusOr<Document> LoadDocument(const std::string& text);
// Parses data-descriptor catalog text (the ddbms persist format).
StatusOr<DescriptorStore> LoadCatalog(const std::string& text);

// ---- compiling and playing -----------------------------------------------

using cmif::PipelineMode;
using cmif::PipelineOptions;
using cmif::StageTiming;
using cmif::CompileReport;
using cmif::PipelineReport;
using cmif::DegradationReport;
using cmif::CaptureSession;

// Compiles `document` against `options.profile`: validate -> presentation
// map -> filter plan -> schedule. Never plays.
StatusOr<CompileReport> Compile(const Document& document, const DescriptorStore& store,
                                const BlockStore& blocks, const PipelineOptions& options = {});

// Compile plus the viewing stage (honors options.mode; the default plays).
StatusOr<PipelineReport> Play(const Document& document, const DescriptorStore& store,
                              const BlockStore& blocks, const PipelineOptions& options = {});

// ---- authoring and editing -----------------------------------------------
// Session and EditSession (src/api/edit_session.h) are the stateful
// authoring handles: open a document, apply EditOps, Recompile()
// incrementally, Publish() into a serving corpus. The op language and the
// structured-conflict encoding are re-exported here so front ends never
// include src/doc/edit.h or src/sched/conflict.h directly.

using cmif::EditOp;
using cmif::EditOpKind;
using cmif::EditOpKindName;
using cmif::EditReport;
using cmif::DroppedArc;
using cmif::ParseEditOp;
using cmif::FormatEditOp;
using cmif::ApplyEdit;

// The one solver entry point: Solve(graph, SolveOptions) picks between the
// direct relaxation and the SCC-condensed engine. (SolveStn is deprecated;
// ScheduleOptions::solve carries the choice through Compile/Play/Serve.)
using cmif::SolveOptions;
using cmif::Solve;
using cmif::SolveStats;

// Edit-time conflicts cross the Status boundary as kFailedPrecondition with
// the canonical encoding; ConflictFromStatus recovers blame class + cycle.
using cmif::Conflict;
using cmif::ConflictClass;
using cmif::ConflictClassName;
using cmif::ConflictToStatus;
using cmif::ConflictFromStatus;

// ---- serving -------------------------------------------------------------

using cmif::CompiledPresentation;
using cmif::MappingCache;
using cmif::MappingCacheKey;
// The on-disk second tier behind MappingCache (ServeOptions::cache_dir /
// `serve --cache-dir`) and the payload codec behind `cmif_tool cache`.
using cmif::PersistentCache;
using cmif::PersistentCacheFileName;
using cmif::SerializeCompiledPresentation;
using cmif::ParseCompiledPresentation;
using cmif::ServeCorpus;
using cmif::ServeDocument;
using cmif::ServeRequest;
using cmif::ServeResponse;
using cmif::ServeOptions;
using cmif::ServeOutcome;
using cmif::ServeOutcomeName;
using cmif::ServeStats;
using cmif::ServeLoop;
using cmif::BuildNewsCorpus;
using cmif::GenerateTrace;

// Replays `trace` over a fresh ServeLoop on `corpus` (ServeOptions::threads
// workers) and aggregates. Equivalent to ServeLoop(corpus, options).Run(trace)
// for callers that do not need to keep the loop.
StatusOr<ServeStats> Serve(ServeCorpus& corpus, const ServeOptions& options,
                           const std::vector<ServeRequest>& trace);

// ---- networked delivery --------------------------------------------------

namespace net = cmif::net;

using net::PresentRequest;
using net::PresentResponse;
using net::WireSpan;
using net::NetServer;
using net::NetServerOptions;
using net::NetClient;
using net::NetClientOptions;
using net::SerializePresentation;
using net::PresentationHash;

// Deadline-aware request scheduling (the `serve --sched=fifo|edf` knob) and
// its parser; RequestScheduler itself is server-internal.
using net::SchedPolicy;
using net::SchedPolicyName;
using net::ParseSchedPolicy;

// Streamed delivery (wire v4): the chunked-transfer client entry point and
// the schedule-driven prefetch planner behind it. A StreamResult carries the
// presentation prefix plus the delivered blocks in schedule order;
// BuildStreamPlan exposes the same plan the server streams from, for tools
// and benches that model the transfer locally.
using net::StreamResult;
using net::kDefaultChunkBytes;
using net::kMinChunkBytes;
using net::kMaxChunkBytes;
using net::StreamChunkCount;
using cmif::PrefetchBlock;
using cmif::StreamPlan;
using cmif::BuildStreamPlan;

// Live server telemetry: the kStatsRequest/kStatsResponse payload and its
// JSON rendering (`cmif_tool stats`). The tracing side — TraceContext,
// NewTrace, ScopedTrace — lives in src/obs/trace.h, which front ends may
// include directly like the rest of src/obs.
using net::StatsSnapshot;
using net::StatsSnapshotJson;

}  // namespace api
}  // namespace cmif

#endif  // SRC_API_CMIF_H_
