#include "src/serve/persistent_cache.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "src/base/crc32.h"
#include "src/base/lexer.h"
#include "src/base/logging.h"
#include "src/base/media_time.h"
#include "src/base/string_util.h"
#include "src/doc/event.h"
#include "src/doc/node.h"
#include "src/fault/fault.h"
#include "src/media/media_type.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/sched/schedule.h"

namespace cmif {
namespace {

namespace fs = std::filesystem;

constexpr int kEntryVersion = 1;
constexpr std::string_view kEntrySuffix = ".cpe";

// ---------------------------------------------------------------------------
// Kill-9 crash hook. One plan per process: the writer thread raises SIGKILL
// on the `remaining`-th arrival at `point`. Guarded by a mutex — this is a
// test/chaos facility, never on a fault-free path.

std::mutex& CrashMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::string& CrashPoint() {
  static std::string* point = new std::string();
  return *point;
}
int g_crash_remaining = 0;

// True when this arrival at `point` is the one armed to die.
bool CrashHere(std::string_view point) {
  std::lock_guard<std::mutex> lock(CrashMu());
  if (CrashPoint() != point) {
    return false;
  }
  if (--g_crash_remaining > 0) {
    return false;
  }
  CrashPoint().clear();
  return true;
}

[[noreturn]] void KillSelf() {
  // The whole point: die the way a power cut does — no destructors, no
  // flushes, no atexit. SIGKILL cannot be caught.
  ::kill(::getpid(), SIGKILL);
  for (;;) {
    ::pause();
  }
}

void MaybeKillAt(std::string_view point) {
  if (CrashHere(point)) {
    KillSelf();
  }
}

// ---------------------------------------------------------------------------
// Paths and file names.

fs::path EntriesDir(const std::string& dir) { return fs::path(dir) / "entries"; }
fs::path TmpDir(const std::string& dir) { return fs::path(dir) / "tmp"; }
fs::path QuarantineDir(const std::string& dir) { return fs::path(dir) / "quarantine"; }
fs::path JournalPath(const std::string& dir) { return fs::path(dir) / "manifest.journal"; }

std::string SanitizeProfile(std::string_view profile) {
  std::string out;
  for (char c : profile.substr(0, 32)) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Small read/parse helpers.

StatusOr<std::string> ReadFileBytes(const fs::path& path, std::size_t limit = 0) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return UnavailableError("cannot open " + path.string());
  }
  std::string out;
  char buffer[4096];
  while (in.good() && (limit == 0 || out.size() < limit)) {
    in.read(buffer, sizeof(buffer));
    out.append(buffer, static_cast<std::size_t>(in.gcount()));
  }
  if (in.bad()) {
    return UnavailableError("read error on " + path.string());
  }
  if (limit != 0 && out.size() > limit) {
    out.resize(limit);
  }
  return out;
}

StatusOr<std::uint64_t> ParseU64(const Token& token, int base = 10) {
  // Canonical digits only (the writer emits lowercase hex, no sign, no "0x"):
  // strtoull alone would accept uppercase hex and prefixes, letting a
  // bit-flipped header still verify. Every non-canonical byte is corruption.
  for (char c : token.text) {
    if (!((c >= '0' && c <= '9' && c - '0' < base) || (base == 16 && c >= 'a' && c <= 'f'))) {
      return DataLossError(StrFormat("line %d (offset %zu): bad number '%s'", token.line,
                                     token.offset, token.text.c_str()));
    }
  }
  errno = 0;
  char* end = nullptr;
  std::uint64_t value = std::strtoull(token.text.c_str(), &end, base);
  if (token.text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return DataLossError(StrFormat("line %d (offset %zu): bad number '%s'", token.line,
                                   token.offset, token.text.c_str()));
  }
  return value;
}

StatusOr<std::int64_t> ParseI64(const Token& token) {
  errno = 0;
  char* end = nullptr;
  std::int64_t value = std::strtoll(token.text.c_str(), &end, 10);
  if (token.text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return DataLossError(StrFormat("line %d (offset %zu): bad integer '%s'", token.line,
                                   token.offset, token.text.c_str()));
  }
  return value;
}

Status ExpectWord(Lexer& lexer, std::string_view word) {
  CMIF_ASSIGN_OR_RETURN(Token token, lexer.Expect(TokenKind::kWord));
  if (token.text != word) {
    return DataLossError(StrFormat("line %d (offset %zu): expected '%s', got '%s'", token.line,
                                   token.offset, std::string(word).c_str(), token.text.c_str()));
  }
  return Status::Ok();
}

StatusOr<std::uint64_t> ReadU64After(Lexer& lexer, std::string_view word, int base = 10) {
  CMIF_RETURN_IF_ERROR(ExpectWord(lexer, word));
  CMIF_ASSIGN_OR_RETURN(Token token, lexer.Expect(TokenKind::kWord));
  return ParseU64(token, base);
}

StatusOr<std::string> ReadStringAfter(Lexer& lexer, std::string_view word) {
  CMIF_RETURN_IF_ERROR(ExpectWord(lexer, word));
  CMIF_ASSIGN_OR_RETURN(Token token, lexer.Expect(TokenKind::kString));
  return std::move(token.text);
}

StatusOr<MediaTime> ReadTimeAfter(Lexer& lexer, std::string_view word) {
  CMIF_RETURN_IF_ERROR(ExpectWord(lexer, word));
  CMIF_ASSIGN_OR_RETURN(Token token, lexer.Expect(TokenKind::kWord));
  StatusOr<MediaTime> time = ParseMediaTime(token.text);
  if (!time.ok()) {
    return DataLossError(StrFormat("line %d (offset %zu): bad time '%s'", token.line, token.offset,
                                   token.text.c_str()));
  }
  return time;
}

StatusOr<FilterOpKind> ParseFilterOpKind(const Token& token) {
  static constexpr FilterOpKind kKinds[] = {
      FilterOpKind::kQuantizeColor, FilterOpKind::kMonochrome,    FilterOpKind::kDownscale,
      FilterOpKind::kSubsampleFps,  FilterOpKind::kResampleAudio, FilterOpKind::kMixToMono,
  };
  for (FilterOpKind kind : kKinds) {
    if (token.text == FilterOpKindName(kind)) {
      return kind;
    }
  }
  return DataLossError(StrFormat("line %d (offset %zu): unknown filter op '%s'", token.line,
                                 token.offset, token.text.c_str()));
}

StatusOr<ConflictClass> ParseConflictClass(const Token& token) {
  static constexpr ConflictClass kClasses[] = {
      ConflictClass::kAuthoring,
      ConflictClass::kCapability,
      ConflictClass::kNavigation,
  };
  for (ConflictClass cls : kClasses) {
    if (token.text == ConflictClassName(cls)) {
      return cls;
    }
  }
  return DataLossError(StrFormat("line %d (offset %zu): unknown conflict class '%s'", token.line,
                                 token.offset, token.text.c_str()));
}

// ---------------------------------------------------------------------------
// Entry header: the first line of every entry file.
//   (pcache-entry version 1 doc <hex> chan <hex> gen <n> profile "<p>"
//    bytes <n> crc <hex>)

struct EntryHeader {
  MappingCacheKey key;
  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
  std::size_t header_bytes = 0;  // header line length including '\n'
};

std::string BuildHeaderLine(const MappingCacheKey& key, std::size_t payload_bytes,
                            std::uint32_t crc) {
  return StrFormat("(pcache-entry version %d doc %016llx chan %016llx gen %llu profile %s "
                   "bytes %zu crc %08lx)\n",
                   kEntryVersion, static_cast<unsigned long long>(key.document_hash),
                   static_cast<unsigned long long>(key.channel_hash),
                   static_cast<unsigned long long>(key.store_generation),
                   QuoteString(key.profile).c_str(), payload_bytes,
                   static_cast<unsigned long>(crc));
}

StatusOr<EntryHeader> ParseHeaderLine(std::string_view content) {
  std::size_t newline = content.find('\n');
  if (newline == std::string_view::npos) {
    return DataLossError(StrFormat("truncated entry header (no newline in the first %zu bytes)",
                                   content.size()));
  }
  EntryHeader header;
  header.header_bytes = newline + 1;
  Lexer lexer(content.substr(0, newline));
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
  CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "pcache-entry"));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t version, ReadU64After(lexer, "version"));
  if (version != static_cast<std::uint64_t>(kEntryVersion)) {
    return DataLossError(StrFormat("unsupported pcache entry version %llu",
                                   static_cast<unsigned long long>(version)));
  }
  CMIF_ASSIGN_OR_RETURN(header.key.document_hash, ReadU64After(lexer, "doc", 16));
  CMIF_ASSIGN_OR_RETURN(header.key.channel_hash, ReadU64After(lexer, "chan", 16));
  CMIF_ASSIGN_OR_RETURN(header.key.store_generation, ReadU64After(lexer, "gen"));
  CMIF_ASSIGN_OR_RETURN(header.key.profile, ReadStringAfter(lexer, "profile"));
  CMIF_ASSIGN_OR_RETURN(header.payload_bytes, ReadU64After(lexer, "bytes"));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t crc, ReadU64After(lexer, "crc", 16));
  header.payload_crc = static_cast<std::uint32_t>(crc);
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kEnd).status());
  return header;
}

// Full structural check of one entry file image: header, exact size, CRC.
StatusOr<EntryHeader> VerifyEntryImage(std::string_view content) {
  CMIF_ASSIGN_OR_RETURN(EntryHeader header, ParseHeaderLine(content));
  std::size_t have = content.size() - header.header_bytes;
  if (have < header.payload_bytes) {
    return DataLossError(StrFormat("entry truncated: header declares %llu payload bytes, "
                                   "%zu present (offset %zu)",
                                   static_cast<unsigned long long>(header.payload_bytes), have,
                                   content.size()));
  }
  if (have > header.payload_bytes) {
    return DataLossError(StrFormat("entry has %zu trailing bytes past the declared payload "
                                   "(offset %zu)",
                                   have - header.payload_bytes,
                                   header.header_bytes + header.payload_bytes));
  }
  std::uint32_t actual = Crc32(content.substr(header.header_bytes));
  if (actual != header.payload_crc) {
    return DataLossError(StrFormat("entry payload fails its CRC-32 check: declared %08lx, "
                                   "actual %08lx (offset %zu)",
                                   static_cast<unsigned long>(header.payload_crc),
                                   static_cast<unsigned long>(actual), header.header_bytes));
  }
  return header;
}

// ---------------------------------------------------------------------------
// Manifest journal: one CRC'd line per committed entry.
//   <crc8> commit <file> <payload-bytes> <payload-crc8>\n
// The line CRC covers everything after "<crc8> ". Appends are single writes
// of whole lines, so a crash tears at most the trailing line; replay drops a
// torn or corrupt tail (the affected entries reappear as orphans and are
// fully verified instead).

std::string BuildJournalLine(const std::string& file, std::uint64_t payload_bytes,
                             std::uint32_t payload_crc) {
  std::string body = StrFormat("commit %s %llu %08lx", file.c_str(),
                               static_cast<unsigned long long>(payload_bytes),
                               static_cast<unsigned long>(payload_crc));
  return StrFormat("%08lx %s\n", static_cast<unsigned long>(Crc32(body)), body.c_str());
}

struct JournalRecord {
  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
};

struct JournalReplay {
  std::map<std::string, JournalRecord> committed;  // file name -> last record
  std::uint64_t torn_lines = 0;                    // dropped (torn or corrupt) tail lines
};

JournalReplay ReplayJournal(std::string_view text) {
  JournalReplay replay;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t newline = text.find('\n', pos);
    if (newline == std::string_view::npos) {
      // Torn tail: the crash hit mid-append. Drop it.
      ++replay.torn_lines;
      break;
    }
    std::string_view line = text.substr(pos, newline - pos);
    pos = newline + 1;
    bool ok = false;
    if (line.size() > 9 && line[8] == ' ') {
      std::string_view body = line.substr(9);
      errno = 0;
      char* end = nullptr;
      std::uint32_t declared =
          static_cast<std::uint32_t>(std::strtoul(std::string(line.substr(0, 8)).c_str(), &end, 16));
      if (end != nullptr && *end == '\0' && declared == Crc32(body)) {
        std::vector<std::string> fields = SplitString(body, ' ');
        if (fields.size() == 4 && fields[0] == "commit") {
          JournalRecord record;
          record.payload_bytes = std::strtoull(fields[2].c_str(), nullptr, 10);
          record.payload_crc = static_cast<std::uint32_t>(std::strtoul(fields[3].c_str(), nullptr, 16));
          replay.committed[fields[1]] = record;
          ok = true;
        }
      }
    }
    if (!ok) {
      // A bad line mid-journal means nothing after it can be trusted; stop.
      // The entries its lost successors named are re-verified as orphans.
      ++replay.torn_lines;
      break;
    }
  }
  return replay;
}

// ---------------------------------------------------------------------------
// POSIX write helpers (the commit path needs real fds for fsync).

Status WriteAllFd(int fd, std::string_view bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return UnavailableError(StrFormat("write failed: %s", std::strerror(errno)));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

void FsyncDir(const fs::path& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Payload serialization.

std::string SerializeCompiledPresentation(const CompiledPresentation& compiled) {
  std::string out;
  out += "(compiled\n";

  out += " (map\n";
  for (const ChannelBinding& binding : compiled.map.bindings()) {
    if (!binding.region.empty()) {
      out += StrFormat("  (bind %s region %s)\n", QuoteString(binding.channel).c_str(),
                       QuoteString(binding.region).c_str());
    } else {
      out += StrFormat("  (bind %s speaker %s volume %d)\n", QuoteString(binding.channel).c_str(),
                       QuoteString(binding.speaker).c_str(), binding.volume);
    }
  }
  out += " )\n";

  out += StrFormat(" (filter total %lld %lld unsupported %zu\n",
                   static_cast<long long>(compiled.filter.total_bytes_before),
                   static_cast<long long>(compiled.filter.total_bytes_after),
                   compiled.filter.unsupported);
  for (const FilterPlan& plan : compiled.filter.plans) {
    out += StrFormat("  (plan %s bytes %lld -> %lld supported %d reason %s",
                     QuoteString(plan.descriptor_id).c_str(),
                     static_cast<long long>(plan.bytes_before),
                     static_cast<long long>(plan.bytes_after), plan.supported ? 1 : 0,
                     QuoteString(plan.unsupported_reason).c_str());
    for (const FilterOp& op : plan.ops) {
      out += StrFormat(" (op %s %d %d)", std::string(FilterOpKindName(op.kind)).c_str(), op.arg1,
                       op.arg2);
    }
    out += ")\n";
  }
  out += " )\n";

  out += StrFormat(" (schedule feasible %d\n", compiled.schedule.feasible ? 1 : 0);
  for (const ScheduledEvent& scheduled : compiled.schedule.schedule.events()) {
    out += StrFormat("  (event %s channel %s medium %s descriptor %s begin %s end %s)\n",
                     QuoteString(scheduled.event.node ? scheduled.event.node->DisplayPath() : "")
                         .c_str(),
                     QuoteString(scheduled.event.channel).c_str(),
                     std::string(MediaTypeName(scheduled.event.medium)).c_str(),
                     QuoteString(scheduled.event.descriptor_id).c_str(),
                     scheduled.begin.ToString().c_str(), scheduled.end.ToString().c_str());
  }
  // Node times in display-path order: the table is a hash map in memory, and
  // a deterministic serialization keeps identical compiles byte-identical on
  // disk (the crash harness diffs entry files across cycles).
  std::vector<std::pair<std::string, std::pair<MediaTime, MediaTime>>> node_rows;
  compiled.schedule.schedule.VisitNodeTimes([&](const Node* node, MediaTime begin, MediaTime end) {
    node_rows.emplace_back(node->DisplayPath(), std::make_pair(begin, end));
  });
  std::sort(node_rows.begin(), node_rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [path, times] : node_rows) {
    out += StrFormat("  (node %s begin %s end %s)\n", QuoteString(path).c_str(),
                     times.first.ToString().c_str(), times.second.ToString().c_str());
  }
  for (const std::string& arc : compiled.schedule.dropped_arcs) {
    out += StrFormat("  (dropped-arc %s)\n", QuoteString(arc).c_str());
  }
  for (const Conflict& conflict : compiled.schedule.conflicts) {
    out += StrFormat("  (conflict %s %s", std::string(ConflictClassName(conflict.cls)).c_str(),
                     QuoteString(conflict.description).c_str());
    for (const std::string& label : conflict.cycle) {
      out += StrFormat(" %s", QuoteString(label).c_str());
    }
    out += ")\n";
  }
  out += " )\n";
  out += ")\n";
  return out;
}

StatusOr<CompiledPresentation> ParseCompiledPresentation(std::string_view payload,
                                                         const Document& document,
                                                         const DescriptorStore& store) {
  CompiledPresentation compiled;
  Lexer lexer(payload);
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
  CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "compiled"));

  // (map (bind ...) ...)
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
  CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "map"));
  for (;;) {
    CMIF_ASSIGN_OR_RETURN(Token token, lexer.Next());
    if (token.kind == TokenKind::kRParen) {
      break;
    }
    if (token.kind != TokenKind::kLParen) {
      return DataLossError(StrFormat("line %d (offset %zu): expected '(' or ')' in map section",
                                     token.line, token.offset));
    }
    CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "bind"));
    CMIF_ASSIGN_OR_RETURN(Token channel, lexer.Expect(TokenKind::kString));
    CMIF_ASSIGN_OR_RETURN(Token kind, lexer.Expect(TokenKind::kWord));
    if (kind.text == "region") {
      CMIF_ASSIGN_OR_RETURN(Token region, lexer.Expect(TokenKind::kString));
      CMIF_RETURN_IF_ERROR(compiled.map.BindRegion(channel.text, region.text));
    } else if (kind.text == "speaker") {
      CMIF_ASSIGN_OR_RETURN(Token speaker, lexer.Expect(TokenKind::kString));
      CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "volume"));
      CMIF_ASSIGN_OR_RETURN(Token volume, lexer.Expect(TokenKind::kWord));
      CMIF_ASSIGN_OR_RETURN(std::int64_t vol, ParseI64(volume));
      CMIF_RETURN_IF_ERROR(
          compiled.map.BindSpeaker(channel.text, speaker.text, static_cast<int>(vol)));
    } else {
      return DataLossError(StrFormat("line %d (offset %zu): unknown binding kind '%s'", kind.line,
                                     kind.offset, kind.text.c_str()));
    }
    CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
  }

  // (filter total B A unsupported N (plan ...) ...)
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
  CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "filter"));
  CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "total"));
  {
    CMIF_ASSIGN_OR_RETURN(Token before, lexer.Expect(TokenKind::kWord));
    CMIF_ASSIGN_OR_RETURN(compiled.filter.total_bytes_before, ParseI64(before));
    CMIF_ASSIGN_OR_RETURN(Token after, lexer.Expect(TokenKind::kWord));
    CMIF_ASSIGN_OR_RETURN(compiled.filter.total_bytes_after, ParseI64(after));
    CMIF_ASSIGN_OR_RETURN(std::uint64_t unsupported, ReadU64After(lexer, "unsupported"));
    compiled.filter.unsupported = static_cast<std::size_t>(unsupported);
  }
  for (;;) {
    CMIF_ASSIGN_OR_RETURN(Token token, lexer.Next());
    if (token.kind == TokenKind::kRParen) {
      break;
    }
    if (token.kind != TokenKind::kLParen) {
      return DataLossError(StrFormat("line %d (offset %zu): expected '(' or ')' in filter section",
                                     token.line, token.offset));
    }
    CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "plan"));
    FilterPlan plan;
    CMIF_ASSIGN_OR_RETURN(Token id, lexer.Expect(TokenKind::kString));
    plan.descriptor_id = std::move(id.text);
    CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "bytes"));
    CMIF_ASSIGN_OR_RETURN(Token before, lexer.Expect(TokenKind::kWord));
    CMIF_ASSIGN_OR_RETURN(plan.bytes_before, ParseI64(before));
    CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "->"));
    CMIF_ASSIGN_OR_RETURN(Token after, lexer.Expect(TokenKind::kWord));
    CMIF_ASSIGN_OR_RETURN(plan.bytes_after, ParseI64(after));
    CMIF_ASSIGN_OR_RETURN(std::uint64_t supported, ReadU64After(lexer, "supported"));
    plan.supported = supported != 0;
    CMIF_ASSIGN_OR_RETURN(plan.unsupported_reason, ReadStringAfter(lexer, "reason"));
    for (;;) {
      CMIF_ASSIGN_OR_RETURN(Token inner, lexer.Next());
      if (inner.kind == TokenKind::kRParen) {
        break;
      }
      if (inner.kind != TokenKind::kLParen) {
        return DataLossError(StrFormat("line %d (offset %zu): expected '(op ...)' or ')'",
                                       inner.line, inner.offset));
      }
      CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "op"));
      FilterOp op;
      CMIF_ASSIGN_OR_RETURN(Token name, lexer.Expect(TokenKind::kWord));
      CMIF_ASSIGN_OR_RETURN(op.kind, ParseFilterOpKind(name));
      CMIF_ASSIGN_OR_RETURN(Token arg1, lexer.Expect(TokenKind::kWord));
      CMIF_ASSIGN_OR_RETURN(std::int64_t a1, ParseI64(arg1));
      op.arg1 = static_cast<int>(a1);
      CMIF_ASSIGN_OR_RETURN(Token arg2, lexer.Expect(TokenKind::kWord));
      CMIF_ASSIGN_OR_RETURN(std::int64_t a2, ParseI64(arg2));
      op.arg2 = static_cast<int>(a2);
      CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
      plan.ops.push_back(op);
    }
    compiled.filter.plans.push_back(std::move(plan));
  }

  // (schedule feasible F (event ...) (node ...) (dropped-arc ...) (conflict ...))
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
  CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "schedule"));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t feasible, ReadU64After(lexer, "feasible"));
  compiled.schedule.feasible = feasible != 0;
  compiled.schedule.solve.feasible = compiled.schedule.feasible;

  struct PersistedEvent {
    std::string path;
    std::string channel;
    MediaType medium = MediaType::kText;
    std::string descriptor_id;
    MediaTime begin;
    MediaTime end;
  };
  std::vector<PersistedEvent> persisted_events;
  std::vector<std::pair<std::string, std::pair<MediaTime, MediaTime>>> persisted_nodes;
  for (;;) {
    CMIF_ASSIGN_OR_RETURN(Token token, lexer.Next());
    if (token.kind == TokenKind::kRParen) {
      break;
    }
    if (token.kind != TokenKind::kLParen) {
      return DataLossError(StrFormat("line %d (offset %zu): expected '(' or ')' in schedule "
                                     "section",
                                     token.line, token.offset));
    }
    CMIF_ASSIGN_OR_RETURN(Token kind, lexer.Expect(TokenKind::kWord));
    if (kind.text == "event") {
      PersistedEvent event;
      CMIF_ASSIGN_OR_RETURN(Token path, lexer.Expect(TokenKind::kString));
      event.path = std::move(path.text);
      CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "channel"));
      CMIF_ASSIGN_OR_RETURN(Token channel, lexer.Expect(TokenKind::kString));
      event.channel = std::move(channel.text);
      CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "medium"));
      CMIF_ASSIGN_OR_RETURN(Token medium, lexer.Expect(TokenKind::kWord));
      StatusOr<MediaType> media_type = ParseMediaType(medium.text);
      if (!media_type.ok()) {
        return DataLossError(StrFormat("line %d (offset %zu): unknown medium '%s'", medium.line,
                                       medium.offset, medium.text.c_str()));
      }
      event.medium = *media_type;
      CMIF_RETURN_IF_ERROR(ExpectWord(lexer, "descriptor"));
      CMIF_ASSIGN_OR_RETURN(Token descriptor, lexer.Expect(TokenKind::kString));
      event.descriptor_id = std::move(descriptor.text);
      CMIF_ASSIGN_OR_RETURN(event.begin, ReadTimeAfter(lexer, "begin"));
      CMIF_ASSIGN_OR_RETURN(event.end, ReadTimeAfter(lexer, "end"));
      CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
      persisted_events.push_back(std::move(event));
    } else if (kind.text == "node") {
      CMIF_ASSIGN_OR_RETURN(Token path, lexer.Expect(TokenKind::kString));
      CMIF_ASSIGN_OR_RETURN(MediaTime begin, ReadTimeAfter(lexer, "begin"));
      CMIF_ASSIGN_OR_RETURN(MediaTime end, ReadTimeAfter(lexer, "end"));
      CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
      persisted_nodes.emplace_back(std::move(path.text), std::make_pair(begin, end));
    } else if (kind.text == "dropped-arc") {
      CMIF_ASSIGN_OR_RETURN(Token label, lexer.Expect(TokenKind::kString));
      CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
      compiled.schedule.dropped_arcs.push_back(std::move(label.text));
    } else if (kind.text == "conflict") {
      Conflict conflict;
      CMIF_ASSIGN_OR_RETURN(Token cls, lexer.Expect(TokenKind::kWord));
      CMIF_ASSIGN_OR_RETURN(conflict.cls, ParseConflictClass(cls));
      CMIF_ASSIGN_OR_RETURN(Token description, lexer.Expect(TokenKind::kString));
      conflict.description = std::move(description.text);
      for (;;) {
        CMIF_ASSIGN_OR_RETURN(Token label, lexer.Next());
        if (label.kind == TokenKind::kRParen) {
          break;
        }
        if (label.kind != TokenKind::kString) {
          return DataLossError(StrFormat("line %d (offset %zu): expected cycle label string",
                                         label.line, label.offset));
        }
        conflict.cycle.push_back(std::move(label.text));
      }
      compiled.schedule.conflicts.push_back(std::move(conflict));
    } else {
      return DataLossError(StrFormat("line %d (offset %zu): unknown schedule item '%s'", kind.line,
                                     kind.offset, kind.text.c_str()));
    }
  }
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());  // (compiled
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kEnd).status());

  // Resolve display paths against the live document tree.
  std::unordered_map<std::string, const Node*> by_path;
  document.root().Visit([&](const Node& node) { by_path.emplace(node.DisplayPath(), &node); });

  std::unordered_map<const Node*, std::pair<MediaTime, MediaTime>> node_times;
  for (auto& [path, times] : persisted_nodes) {
    auto it = by_path.find(path);
    if (it == by_path.end()) {
      return DataLossError("persisted node '" + path + "' is not in the document");
    }
    node_times.emplace(it->second, times);
  }

  // Regenerate the full event descriptors (durations, effective attributes)
  // from the document + catalog — valid because the cache key pins both via
  // the document hash and store generation — and cross-check each against
  // its persisted counterpart. Any disagreement means the entry does not
  // belong to this (document, catalog) state: corruption, by definition.
  std::vector<ScheduledEvent> events;
  if (!persisted_events.empty()) {
    CMIF_ASSIGN_OR_RETURN(std::vector<EventDescriptor> collected, CollectEvents(document, &store));
    if (collected.size() != persisted_events.size()) {
      return DataLossError(StrFormat("entry has %zu events, document yields %zu",
                                     persisted_events.size(), collected.size()));
    }
    events.reserve(collected.size());
    for (std::size_t i = 0; i < collected.size(); ++i) {
      const EventDescriptor& descriptor = collected[i];
      const PersistedEvent& persisted = persisted_events[i];
      if (descriptor.node == nullptr || descriptor.node->DisplayPath() != persisted.path ||
          descriptor.channel != persisted.channel || descriptor.medium != persisted.medium ||
          descriptor.descriptor_id != persisted.descriptor_id) {
        return DataLossError(StrFormat("persisted event %zu does not match the document's event "
                                       "list",
                                       i));
      }
      events.push_back(ScheduledEvent{descriptor, persisted.begin, persisted.end});
    }
  }
  compiled.schedule.schedule = Schedule::FromParts(std::move(events), std::move(node_times));
  return compiled;
}

// ---------------------------------------------------------------------------
// PersistentCache.

std::string PersistentCacheFileName(const MappingCacheKey& key) {
  return StrFormat("%016llx-%016llx-g%llu-%s-%08llx%s",
                   static_cast<unsigned long long>(key.document_hash),
                   static_cast<unsigned long long>(key.channel_hash),
                   static_cast<unsigned long long>(key.store_generation),
                   SanitizeProfile(key.profile).c_str(),
                   static_cast<unsigned long long>(Fnv1a64(key.profile) & 0xffffffffULL),
                   std::string(kEntrySuffix).c_str());
}

PersistentCache::PersistentCache(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {}

PersistentCache::~PersistentCache() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) {
    writer_.join();
  }
}

void PersistentCache::SetCrashPlanForTest(std::string point, int after) {
  std::lock_guard<std::mutex> lock(CrashMu());
  CrashPoint() = std::move(point);
  g_crash_remaining = after;
}

StatusOr<std::unique_ptr<PersistentCache>> PersistentCache::Open(std::string dir,
                                                                 Options options) {
  if (dir.empty()) {
    return InvalidArgumentError("persistent cache directory must not be empty");
  }
  if (const char* crash = std::getenv("CMIF_PCACHE_CRASH")) {
    std::string spec(crash);
    std::size_t colon = spec.find(':');
    int after = 1;
    if (colon != std::string::npos) {
      after = std::max(1, std::atoi(spec.c_str() + colon + 1));
      spec.resize(colon);
    }
    SetCrashPlanForTest(spec, after);
  }
  std::unique_ptr<PersistentCache> cache(new PersistentCache(std::move(dir), options));
  CMIF_RETURN_IF_ERROR(cache->Recover());
  cache->writer_ = std::thread([raw = cache.get()] { raw->WriterLoop(); });
  return cache;
}

Status PersistentCache::Recover() {
  auto start = std::chrono::steady_clock::now();
  std::error_code ec;
  for (const fs::path& sub :
       {fs::path(dir_), EntriesDir(dir_), TmpDir(dir_), QuarantineDir(dir_)}) {
    fs::create_directories(sub, ec);
    if (ec) {
      return UnavailableError("cannot create cache directory " + sub.string() + ": " +
                              ec.message());
    }
  }

  // 1. In-flight temp files are garbage by definition.
  for (const fs::directory_entry& entry : fs::directory_iterator(TmpDir(dir_), ec)) {
    fs::remove(entry.path(), ec);
  }

  // 2. Replay the manifest journal (tolerating a torn tail).
  JournalReplay replay;
  if (fs::exists(JournalPath(dir_), ec)) {
    StatusOr<std::string> journal = ReadFileBytes(JournalPath(dir_));
    if (journal.ok()) {
      replay = ReplayJournal(*journal);
    }
  }

  // 3. Scan committed entries. Journaled files get a cheap header + exact-
  // size check (CRC is verified on first read); orphans — renamed into place
  // but lost from the journal by a crash — are fully verified, then adopted
  // back into the journal or quarantined.
  std::vector<std::string> adopt;
  for (const fs::directory_entry& entry : fs::directory_iterator(EntriesDir(dir_), ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string file = entry.path().filename().string();
    if (file.size() < kEntrySuffix.size() ||
        file.substr(file.size() - kEntrySuffix.size()) != kEntrySuffix) {
      continue;
    }
    auto journaled = replay.committed.find(file);
    Status verdict = Status::Ok();
    EntryHeader header;
    bool orphan = false;
    if (journaled != replay.committed.end()) {
      StatusOr<std::string> prefix = ReadFileBytes(entry.path(), 4096);
      if (!prefix.ok()) {
        verdict = prefix.status();
      } else {
        StatusOr<EntryHeader> parsed = ParseHeaderLine(*prefix);
        if (!parsed.ok()) {
          verdict = parsed.status();
        } else {
          header = *parsed;
          std::uint64_t expected = header.header_bytes + header.payload_bytes;
          std::uint64_t actual = entry.file_size(ec);
          if (actual != expected) {
            verdict = DataLossError(StrFormat("entry is %llu bytes, header declares %llu",
                                              static_cast<unsigned long long>(actual),
                                              static_cast<unsigned long long>(expected)));
          } else if (header.payload_bytes != journaled->second.payload_bytes ||
                     header.payload_crc != journaled->second.payload_crc) {
            verdict = DataLossError("entry header disagrees with its journal record");
          }
        }
      }
    } else {
      StatusOr<std::string> content = ReadFileBytes(entry.path());
      if (!content.ok()) {
        verdict = content.status();
      } else {
        StatusOr<EntryHeader> parsed = VerifyEntryImage(*content);
        if (!parsed.ok()) {
          verdict = parsed.status();
        } else {
          header = *parsed;
          orphan = true;  // adopted below, once the filename check passes too
        }
      }
    }
    if (!verdict.ok()) {
      // Quarantine without the lock: Recover runs before the writer starts.
      fs::rename(entry.path(), QuarantineDir(dir_) / file, ec);
      ++stats_.quarantined;
      if (obs::Enabled()) {
        static obs::Counter& quarantined = obs::GetCounter("serve.pcache.quarantined");
        quarantined.Add();
      }
      CMIF_LOG(kWarning) << "pcache quarantined " << file << " at startup: " << verdict.message();
      continue;
    }
    if (PersistentCacheFileName(header.key) != file) {
      fs::rename(entry.path(), QuarantineDir(dir_) / file, ec);
      ++stats_.quarantined;
      CMIF_LOG(kWarning) << "pcache quarantined " << file << ": header key does not match name";
      continue;
    }
    if (orphan) {
      adopt.push_back(file);
    }
    IndexEntry index_entry;
    index_entry.file = file;
    index_entry.bytes = header.payload_bytes;
    index_entry.crc = header.payload_crc;
    stats_.disk_bytes += header.header_bytes + header.payload_bytes;
    index_.emplace(std::move(file), std::move(index_entry));
  }
  stats_.journal_torn = replay.torn_lines;
  stats_.orphans_adopted = adopt.size();
  stats_.entries = index_.size();

  // 4. Compact the journal whenever this scan learned something it didn't
  // say: adopted orphans must be journaled so the next Open trusts them
  // cheaply, and a torn line must not stay in the file — appending after a
  // newline-less tail would corrupt the junction and re-tear every later
  // replay at the same spot. A full rewrite (tmp, fsync, rename) heals both
  // and drops duplicate lines from refills as a side effect.
  if (!adopt.empty() || replay.torn_lines > 0) {
    std::string lines;
    for (const auto& [file, entry] : index_) {
      lines += BuildJournalLine(file, entry.bytes, entry.crc);
    }
    fs::path tmp = TmpDir(dir_) / "manifest.journal.tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      Status wrote = WriteAllFd(fd, lines);
      ::fsync(fd);
      ::close(fd);
      if (wrote.ok()) {
        fs::rename(tmp, JournalPath(dir_), ec);
        FsyncDir(dir_);
      }
    }
  }

  auto end = std::chrono::steady_clock::now();
  stats_.open_recovery_ms = std::chrono::duration<double, std::milli>(end - start).count();
  return Status::Ok();
}

void PersistentCache::Quarantine(const std::string& file, const Status& reason) {
  std::error_code ec;
  fs::rename(EntriesDir(dir_) / file, QuarantineDir(dir_) / file, ec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(file);
    if (it != index_.end()) {
      index_.erase(it);
      stats_.entries = index_.size();
    }
    ++stats_.quarantined;
  }
  if (obs::Enabled()) {
    static obs::Counter& quarantined = obs::GetCounter("serve.pcache.quarantined");
    quarantined.Add();
  }
  CMIF_LOG(kWarning) << "pcache quarantined " << file << ": " << reason.message();
}

std::shared_ptr<const CompiledPresentation> PersistentCache::Get(const MappingCacheKey& key,
                                                                 const Document& document,
                                                                 const DescriptorStore& store) {
  std::string file = PersistentCacheFileName(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.find(file) == index_.end()) {
      ++stats_.misses;
      if (obs::Enabled()) {
        static obs::Counter& misses = obs::GetCounter("serve.pcache.misses");
        misses.Add();
      }
      return nullptr;
    }
  }
  if (fault::Enabled()) {
    if (Status injected = fault::InjectPoint("fs.pcache.read"); !injected.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.read_errors;
      return nullptr;  // transient: served as a miss, the caller recompiles
    }
  }
  StatusOr<std::string> content = ReadFileBytes(EntriesDir(dir_) / file);
  if (!content.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.read_errors;
    return nullptr;
  }
  StatusOr<EntryHeader> header = VerifyEntryImage(*content);
  if (!header.ok()) {
    Quarantine(file, header.status());
    return nullptr;
  }
  if (!(header->key == key)) {
    Quarantine(file, DataLossError("entry header key does not match the lookup key"));
    return nullptr;
  }
  StatusOr<CompiledPresentation> parsed =
      ParseCompiledPresentation(std::string_view(*content).substr(header->header_bytes), document,
                                store);
  if (!parsed.ok()) {
    Quarantine(file, parsed.status());
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    stats_.bytes_read += content->size();
  }
  if (obs::Enabled()) {
    static obs::Counter& hits = obs::GetCounter("serve.pcache.hits");
    hits.Add();
  }
  return std::make_shared<const CompiledPresentation>(*std::move(parsed));
}

bool PersistentCache::Put(const MappingCacheKey& key,
                          std::shared_ptr<const CompiledPresentation> compiled) {
  if (compiled == nullptr) {
    return false;
  }
  {
    // Cheap reject before paying for serialization when the queue is full.
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ || queue_.size() >= options_.max_pending_writes) {
      std::lock_guard<std::mutex> stats_lock(mu_);
      ++stats_.dropped_writes;
      return false;
    }
  }
  // Serialize here, on the caller's thread: the presentation holds Node*
  // into the live document, and the caller only guarantees that document
  // alive across this call — a Publish can swap it out the moment we
  // return. The writer thread must never dereference the presentation.
  std::string payload = SerializeCompiledPresentation(*compiled);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ || queue_.size() >= options_.max_pending_writes) {
      std::lock_guard<std::mutex> stats_lock(mu_);
      ++stats_.dropped_writes;
      return false;
    }
    queue_.push_back(PendingWrite{key, std::move(payload)});
  }
  queue_cv_.notify_one();
  return true;
}

void PersistentCache::Flush() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void PersistentCache::WriterLoop() {
  for (;;) {
    PendingWrite write;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping
      }
      write = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    Status status = CommitEntry(write);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.write_errors;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

Status PersistentCache::CommitEntry(const PendingWrite& write) {
  std::string file = PersistentCacheFileName(write.key);
  {
    // An identical key is already on disk (a racing fill); skip the rewrite.
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.find(file) != index_.end()) {
      return Status::Ok();
    }
  }
  std::string payload = write.payload;
  std::uint32_t crc = Crc32(payload);
  if (fault::Enabled()) {
    // Bit rot between write and read: the CRC is computed over the pristine
    // payload first, so injected corruption is caught on read + quarantined,
    // never decoded.
    (void)fault::MaybeCorrupt("fs.pcache.write", payload);
    CMIF_RETURN_IF_ERROR(fault::InjectPoint("fs.pcache.write"));
  }
  std::string image = BuildHeaderLine(write.key, payload.size(), crc);
  std::size_t header_bytes = image.size();
  image += payload;

  fs::path tmp = TmpDir(dir_) / (file + ".tmp");
  fs::path final_path = EntriesDir(dir_) / file;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return UnavailableError(StrFormat("cannot create %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  if (CrashHere("entry.partial")) {
    // Torn write: half the image reaches the page cache, then the process
    // dies. The survivor must never serve this.
    (void)WriteAllFd(fd, std::string_view(image).substr(0, image.size() / 2));
    KillSelf();
  }
  Status written = WriteAllFd(fd, image);
  if (!written.ok()) {
    ::close(fd);
    std::error_code ec;
    fs::remove(tmp, ec);
    return written;
  }
  MaybeKillAt("entry.pre_fsync");
  if (fault::Enabled()) {
    if (Status injected = fault::InjectPoint("fs.pcache.fsync"); !injected.ok()) {
      ::close(fd);
      std::error_code ec;
      fs::remove(tmp, ec);
      return injected;
    }
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::error_code ec;
    fs::remove(tmp, ec);
    return UnavailableError(StrFormat("fsync failed: %s", std::strerror(errno)));
  }
  ::close(fd);

  MaybeKillAt("entry.pre_rename");
  if (fault::Enabled()) {
    if (Status injected = fault::InjectPoint("fs.pcache.rename"); !injected.ok()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return injected;
    }
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return UnavailableError(StrFormat("rename failed: %s", std::strerror(errno)));
  }
  FsyncDir(EntriesDir(dir_));

  // The entry is durable from here on: journal-append failures (or a crash
  // before the append) only cost the next Open a full verification of this
  // file as an orphan.
  MaybeKillAt("journal.pre_append");
  std::string line = BuildJournalLine(file, payload.size(), crc);
  int jfd = ::open(JournalPath(dir_).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (jfd >= 0) {
    if (CrashHere("journal.partial")) {
      (void)WriteAllFd(jfd, std::string_view(line).substr(0, line.size() / 2));
      KillSelf();
    }
    (void)WriteAllFd(jfd, line);
    ::fsync(jfd);
    ::close(jfd);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    IndexEntry entry;
    entry.file = file;
    entry.bytes = payload.size();
    entry.crc = crc;
    index_.emplace(file, std::move(entry));
    ++stats_.writes;
    stats_.bytes_written += header_bytes + payload.size();
    stats_.disk_bytes += header_bytes + payload.size();
    stats_.entries = index_.size();
  }
  if (obs::Enabled()) {
    static obs::Counter& writes = obs::GetCounter("serve.pcache.writes");
    writes.Add();
  }
  return Status::Ok();
}

PersistentCache::Stats PersistentCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

StatusOr<std::vector<PersistentCache::EntryInfo>> PersistentCache::List(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(fs::path(dir), ec)) {
    return NotFoundError("no cache directory at " + dir);
  }
  JournalReplay replay;
  if (fs::exists(JournalPath(dir), ec)) {
    StatusOr<std::string> journal = ReadFileBytes(JournalPath(dir));
    if (journal.ok()) {
      replay = ReplayJournal(*journal);
    }
  }
  std::vector<EntryInfo> entries;
  if (fs::is_directory(EntriesDir(dir), ec)) {
    for (const fs::directory_entry& file : fs::directory_iterator(EntriesDir(dir), ec)) {
      if (!file.is_regular_file()) {
        continue;
      }
      EntryInfo info;
      info.file = file.path().filename().string();
      info.journaled = replay.committed.count(info.file) > 0;
      StatusOr<std::string> prefix = ReadFileBytes(file.path(), 4096);
      if (prefix.ok()) {
        StatusOr<EntryHeader> header = ParseHeaderLine(*prefix);
        if (header.ok()) {
          info.document_hash = header->key.document_hash;
          info.channel_hash = header->key.channel_hash;
          info.store_generation = header->key.store_generation;
          info.profile = header->key.profile;
          info.bytes = header->payload_bytes;
        }
      }
      entries.push_back(std::move(info));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) { return a.file < b.file; });
  return entries;
}

StatusOr<PersistentCache::VerifyReport> PersistentCache::Verify(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(fs::path(dir), ec)) {
    return NotFoundError("no cache directory at " + dir);
  }
  VerifyReport report;
  if (fs::is_directory(EntriesDir(dir), ec)) {
    std::vector<fs::path> files;
    for (const fs::directory_entry& file : fs::directory_iterator(EntriesDir(dir), ec)) {
      if (file.is_regular_file()) {
        files.push_back(file.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& path : files) {
      ++report.checked;
      StatusOr<std::string> content = ReadFileBytes(path);
      Status verdict =
          content.ok() ? VerifyEntryImage(*content).status() : content.status();
      if (verdict.ok()) {
        ++report.ok;
      } else {
        report.corrupt.push_back(path.filename().string() + ": " + std::string(verdict.message()));
      }
    }
  }
  return report;
}

Status PersistentCache::Purge(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(fs::path(dir), ec)) {
    return NotFoundError("no cache directory at " + dir);
  }
  for (const fs::path& sub : {EntriesDir(dir), TmpDir(dir), QuarantineDir(dir)}) {
    if (!fs::is_directory(sub, ec)) {
      continue;
    }
    for (const fs::directory_entry& file : fs::directory_iterator(sub, ec)) {
      fs::remove_all(file.path(), ec);
    }
  }
  fs::remove(JournalPath(dir), ec);
  return Status::Ok();
}

}  // namespace cmif
