// The presentation-mapping cache: the Madeus/LimSee export-architecture
// trick of caching *compiled* presentation mappings per target. A compiled
// presentation is everything the descriptor-only pipeline derives from a
// (document, profile) pair — the presentation map, the constraint-filter
// report, and the solved schedule — so a cache hit answers a serve request
// without touching the mapping, filtering, or scheduling stages at all.
//
// Keys combine the document content hash, the channel-set hash, the profile
// name, and the shared store generation; any catalog mutation therefore
// invalidates every compilation that might have read it (see
// src/ddbms/shared_store.h).
#ifndef SRC_SERVE_MAPPING_CACHE_H_
#define SRC_SERVE_MAPPING_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/present/filter.h"
#include "src/present/presentation_map.h"
#include "src/sched/conflict.h"

namespace cmif {

// What the cold path compiles and the warm path returns. Entries are shared
// immutable: workers hold shared_ptrs, so eviction never invalidates a
// response in flight. The embedded Schedule refers to nodes of the corpus
// document it was compiled from, which outlives the cache.
struct CompiledPresentation {
  PresentationMap map;
  FilterReport filter;
  ScheduleResult schedule;

  // Approximate bytes of derived state a hit avoids recomputing (used for
  // the serve.cache.bytes_saved counter).
  std::size_t CostBytes() const;
};

struct MappingCacheKey {
  std::uint64_t document_hash = 0;   // Fnv1a64 of the serialized document
  std::uint64_t channel_hash = 0;    // Fnv1a64 over channel (name, type) pairs
  std::uint64_t store_generation = 0;
  std::string profile;

  bool operator==(const MappingCacheKey& other) const = default;
};

struct MappingCacheKeyHash {
  std::size_t operator()(const MappingCacheKey& key) const;
};

// A bounded LRU map from MappingCacheKey to compiled presentations. All
// operations are thread-safe behind one mutex — a hit is a hash probe plus a
// list splice, orders of magnitude cheaper than the compile it replaces, so
// a single lock does not bottleneck the serve loop.
class MappingCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stale_hits = 0;  // GetStale lookups that found an entry
    std::uint64_t evictions = 0;
    std::uint64_t bytes_saved = 0;  // sum of CostBytes() over hits
    std::size_t entries = 0;
  };

  // capacity < 1 is clamped to 1.
  explicit MappingCache(std::size_t capacity);

  // nullptr on miss. Hits refresh recency and bump hit counters.
  std::shared_ptr<const CompiledPresentation> Get(const MappingCacheKey& key);

  // Degraded lookup: the freshest entry matching `key` on every field
  // *except* store_generation. Used by the serve loop's stale-while-error
  // path — a compile failed, so a presentation built against an older
  // catalog beats no presentation at all. Does not refresh recency and does
  // not count as a regular hit (stale_hits instead), so degraded serving
  // never masquerades as healthy cache behavior.
  std::shared_ptr<const CompiledPresentation> GetStale(const MappingCacheKey& key);

  // Inserts (or replaces) an entry, evicting the least recently used entry
  // when over capacity.
  void Put(const MappingCacheKey& key, std::shared_ptr<const CompiledPresentation> value);

  Stats stats() const;
  std::size_t capacity() const { return capacity_; }

  // Drops every entry (stats are kept).
  void Clear();

 private:
  using LruList = std::list<std::pair<MappingCacheKey, std::shared_ptr<const CompiledPresentation>>>;

  std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<MappingCacheKey, LruList::iterator, MappingCacheKeyHash> index_;
  Stats stats_;
};

}  // namespace cmif

#endif  // SRC_SERVE_MAPPING_CACHE_H_
