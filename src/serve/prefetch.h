// The schedule-driven prefetch planner behind streamed delivery (wire v4,
// src/net/stream.h). A solved schedule says exactly when each data block is
// first needed; a capability profile says how fast the target channel can
// absorb bytes (fig10's device timings). Delivery order therefore isn't a
// heuristic: block B must start arriving by first_need(B) − size(B)/
// channel_bandwidth, and sending blocks in ascending must-start order is
// what lets a client play from the schedule prefix without ever stalling on
// a block that could have been fetched earlier.
//
// The same plan drives both delivery paths — chunked streaming and the v4
// blob blocks field — which is what makes the streamed-vs-blob differential
// (src/check/stream.h) a byte-level comparison.
#ifndef SRC_SERVE_PREFETCH_H_
#define SRC_SERVE_PREFETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"
#include "src/ddbms/descriptor.h"
#include "src/ddbms/store.h"
#include "src/media/media_type.h"
#include "src/present/capability.h"
#include "src/serve/mapping_cache.h"

namespace cmif {

// One block in delivery order.
struct PrefetchBlock {
  std::string descriptor_id;
  MediaType medium = MediaType::kText;
  // The block's canonical payload (src/media/block_codec.h) within
  // StreamPlan::bytes.
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  // Earliest schedule time any event presents this block.
  MediaTime first_need;
  // Latest transfer-start time that still arrives by first_need on the
  // block's channel bandwidth (== first_need when bandwidth is infinite).
  MediaTime must_start_by;
};

// A delivery plan: blocks ordered by ascending must_start_by, their
// canonical payloads concatenated in that order.
struct StreamPlan {
  std::vector<PrefetchBlock> blocks;
  // Concatenated payloads; block i occupies [offset, offset + bytes).
  std::string bytes;
  // Fnv1a64(bytes) — the stream's end-to-end integrity hash.
  std::uint64_t payload_hash = 0;
  // True when a placeholder stood in for a block whose store fetch failed;
  // the plan is still deliverable but not the authoritative payload.
  bool degraded = false;

  std::uint64_t total_bytes() const { return bytes.size(); }
};

// Builds the delivery plan for a compiled presentation: every distinct
// descriptor the schedule references (restricted to `channels` when
// non-empty, mirroring response serialization), resolved against the
// stores, ordered by must-start time (ties: first need, then id — fully
// deterministic). Fetch failures degrade to placeholder blocks rather than
// failing the stream; descriptors without content also ship placeholders
// (there is nothing else to deliver). Infeasible schedules yield an empty
// plan.
StatusOr<StreamPlan> BuildStreamPlan(const CompiledPresentation& presentation,
                                     const DescriptorStore& store, const BlockStore& blocks,
                                     const SystemProfile& profile,
                                     const std::vector<std::string>& channels = {});

}  // namespace cmif

#endif  // SRC_SERVE_PREFETCH_H_
