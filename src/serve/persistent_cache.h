// The on-disk second tier behind MappingCache: compiled presentations that
// survive a process death, so a restarted server warms from disk instead of
// re-running the pipeline (fig16 measures the gap; fig11 put it at ~196x).
//
// The format follows the persist-v2 discipline (versioned header, CRC-32 per
// entry, structured kDataLoss with byte offsets) but is engineered for crash
// consistency rather than mere detection:
//
//   <dir>/entries/<key>.cpe    committed entries, one file per cache key
//   <dir>/manifest.journal     append-only commit journal (CRC'd lines)
//   <dir>/tmp/                 in-flight writes (wiped at Open)
//   <dir>/quarantine/          corrupt files moved aside, never served
//
// Commit protocol: an entry is serialized to tmp/, fsync'd, atomically
// renamed into entries/, and only then recorded in the manifest journal
// (followed by a directory fsync). A crash at any point leaves either a tmp
// leftover (deleted at Open), an un-journaled orphan in entries/ (fully
// CRC-verified at Open: adopted if intact, quarantined if torn), or a
// journaled entry (trusted at Open after a cheap header/size check, CRC
// verified on first read). A torn trailing journal line is tolerated and
// dropped. Nothing corrupt is ever served: any header mismatch, truncation,
// CRC failure, or reconstruction mismatch quarantines the file (counted in
// serve.pcache.quarantined) and the caller recompiles transparently.
//
// Keys are the MappingCache tuple (document hash, channel hash, profile,
// store generation), encoded in the file name and restated in the header.
// Generation mismatch is the invalidation rule: an entry is only served to
// the exact catalog state it was compiled against — a lookup under any other
// generation misses, so catalog mutations orphan old disk entries just as
// they do in-memory ones. The corpus build is deterministic, so a clean
// restart reproduces the same generation and the disk tier hits.
//
// Writes are write-behind: Put enqueues on a bounded queue drained by one
// background writer thread (overflow drops the write, counted — the entry
// just stays memory-only). Get is called with the shared store read lock
// held (the serve loop's cold path) so reconstruction sees exactly the
// catalog state named by the key's generation.
#ifndef SRC_SERVE_PERSISTENT_CACHE_H_
#define SRC_SERVE_PERSISTENT_CACHE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/doc/document.h"
#include "src/serve/mapping_cache.h"

namespace cmif {

// Serializes the derived state of a compiled presentation into the canonical
// entry payload: map bindings, full filter plans, schedule feasibility,
// events with begin/end times, the per-node time table, dropped arcs and
// conflicts. Everything SerializePresentation reads round-trips, so a
// reconstructed entry is byte-identical on the wire (PresentationHash
// equality is the contract, asserted by tests and the crash harness).
std::string SerializeCompiledPresentation(const CompiledPresentation& compiled);

// Rebuilds a compiled presentation from `payload`. The document and store
// must be the ones the entry was compiled from (the key's hashes and
// generation guarantee this at the call site): node display paths resolve
// against the document tree and event descriptors are regenerated with
// CollectEvents, cross-checked field by field against the persisted events.
// Any mismatch is kDataLoss — treated as corruption by the cache. The
// SolveResult inside the returned ScheduleResult carries only the
// feasibility flag; raw solver point times are not persisted (nothing on the
// serve path reads them).
StatusOr<CompiledPresentation> ParseCompiledPresentation(std::string_view payload,
                                                         const Document& document,
                                                         const DescriptorStore& store);

// The persistent cache. Thread-safe: the index and stats sit behind one
// mutex; file reads and parses run outside it. One process owns a cache
// directory at a time (single-writer; the index is loaded at Open and not
// re-scanned).
class PersistentCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;          // entry read, verified, reconstructed
    std::uint64_t misses = 0;        // no committed entry for the key
    std::uint64_t writes = 0;        // entries committed to disk
    std::uint64_t write_errors = 0;  // commits aborted (I/O or fault injection)
    std::uint64_t read_errors = 0;   // reads failed transiently (served as miss)
    std::uint64_t quarantined = 0;   // corrupt files moved to quarantine/
    std::uint64_t dropped_writes = 0;  // write-behind queue overflow
    std::uint64_t journal_torn = 0;  // journal lines dropped at Open
    std::uint64_t orphans_adopted = 0;  // un-journaled entries verified at Open
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_read = 0;
    std::size_t entries = 0;       // committed entries in the index
    std::uint64_t disk_bytes = 0;  // committed entry bytes on disk
    double open_recovery_ms = 0;   // wall time of the last Open recovery scan
  };

  struct Options {
    // Write-behind queue bound; a Put past it is dropped (counted).
    std::size_t max_pending_writes = 256;
  };

  // One committed entry, as reported by List/Verify (operator tooling).
  struct EntryInfo {
    std::string file;  // file name within entries/
    std::uint64_t document_hash = 0;
    std::uint64_t channel_hash = 0;
    std::uint64_t store_generation = 0;
    std::string profile;
    std::uint64_t bytes = 0;  // payload bytes
    bool journaled = false;
  };

  struct VerifyReport {
    std::size_t checked = 0;
    std::size_t ok = 0;
    std::vector<std::string> corrupt;  // file name: reason
  };

  // Opens (creating if needed) a cache directory and runs crash recovery:
  // wipes tmp/, replays the manifest journal (tolerating a torn tail),
  // verifies orphans, and builds the in-memory index. Fails only on
  // unusable directories — corrupt entries are quarantined, never an error.
  static StatusOr<std::unique_ptr<PersistentCache>> Open(std::string dir, Options options);
  static StatusOr<std::unique_ptr<PersistentCache>> Open(std::string dir) {
    return Open(std::move(dir), Options());
  }

  ~PersistentCache();
  PersistentCache(const PersistentCache&) = delete;
  PersistentCache& operator=(const PersistentCache&) = delete;

  // nullptr on miss or on any failure (transient read errors count as
  // misses; corruption quarantines the entry). On success the returned
  // presentation references nodes of `document`, exactly like a fresh
  // compile. Call with the shared store read lock held.
  std::shared_ptr<const CompiledPresentation> Get(const MappingCacheKey& key,
                                                  const Document& document,
                                                  const DescriptorStore& store);

  // Enqueues a write-behind commit of `compiled` under `key`. Returns false
  // when the queue is full and the write was dropped. Serialization happens
  // on the calling thread — `compiled` references nodes of the live document,
  // which the caller only guarantees alive for the duration of this call
  // (EditSession::Publish may swap the document out right after). The writer
  // thread only ever sees the serialized bytes.
  bool Put(const MappingCacheKey& key, std::shared_ptr<const CompiledPresentation> compiled);

  // Blocks until every enqueued write has committed (or failed).
  void Flush();

  Stats stats() const;
  const std::string& dir() const { return dir_; }

  // Operator tooling (cmif_tool cache {ls,verify,purge}); all static so the
  // tool never has to take ownership of a live cache.
  static StatusOr<std::vector<EntryInfo>> List(const std::string& dir);
  // Read-only full verification: header, size and CRC of every entry file
  // (committed or not). Never moves files.
  static StatusOr<VerifyReport> Verify(const std::string& dir);
  // Deletes entries, journal, tmp and quarantined files. The directory
  // itself is kept.
  static Status Purge(const std::string& dir);

  // Deterministic kill-9 hook for the crash harness: the process raises
  // SIGKILL at the `after`-th arrival at `point` on the writer thread.
  // Points: "entry.partial" (half the entry bytes written), "entry.pre_fsync",
  // "entry.pre_rename", "journal.pre_append", "journal.partial" (half the
  // journal line written). An empty point disarms. Also armed by the
  // CMIF_PCACHE_CRASH environment variable ("<point>:<n>"), read at Open.
  static void SetCrashPlanForTest(std::string point, int after);

 private:
  PersistentCache(std::string dir, Options options);

  struct IndexEntry {
    std::string file;
    std::uint64_t bytes = 0;  // payload bytes
    std::uint32_t crc = 0;
  };

  struct PendingWrite {
    MappingCacheKey key;
    std::string payload;  // serialized at enqueue; owns every byte it commits
  };

  Status Recover();
  void WriterLoop();
  // Serializes and commits one entry; returns the committed payload size.
  Status CommitEntry(const PendingWrite& write);
  // Moves entries/<file> to quarantine/ and drops it from the index.
  void Quarantine(const std::string& file, const Status& reason);

  std::string dir_;
  Options options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, IndexEntry> index_;  // file name -> entry
  Stats stats_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<PendingWrite> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::thread writer_;
};

// The canonical entry file name for a key: encodes every key field, so a
// lookup is a single index probe and `cache ls` can report keys without
// reading payloads.
std::string PersistentCacheFileName(const MappingCacheKey& key);

}  // namespace cmif

#endif  // SRC_SERVE_PERSISTENT_CACHE_H_
