#include "src/serve/prefetch.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/base/string_util.h"
#include "src/media/block_codec.h"
#include "src/sched/schedule.h"

namespace cmif {

StatusOr<StreamPlan> BuildStreamPlan(const CompiledPresentation& presentation,
                                     const DescriptorStore& store, const BlockStore& blocks,
                                     const SystemProfile& profile,
                                     const std::vector<std::string>& channels) {
  StreamPlan plan;
  if (!presentation.schedule.feasible) {
    return plan;
  }
  std::set<std::string> selected(channels.begin(), channels.end());

  // Distinct descriptors in the (channel-restricted) schedule, each with the
  // earliest time any event presents it.
  struct Need {
    MediaTime first_need;
    MediaType medium = MediaType::kText;
  };
  std::map<std::string, Need> needs;
  for (const ScheduledEvent& scheduled : presentation.schedule.schedule.events()) {
    if (scheduled.event.descriptor_id.empty()) {
      continue;  // immediate data travels inside the presentation body
    }
    if (!selected.empty() && !selected.contains(scheduled.event.channel)) {
      continue;
    }
    auto [it, inserted] =
        needs.try_emplace(scheduled.event.descriptor_id,
                          Need{scheduled.begin, scheduled.event.medium});
    if (!inserted && scheduled.begin < it->second.first_need) {
      it->second.first_need = scheduled.begin;
    }
  }

  plan.blocks.reserve(needs.size());
  std::vector<std::string> payloads;
  payloads.reserve(needs.size());
  for (const auto& [descriptor_id, need] : needs) {
    PrefetchBlock entry;
    entry.descriptor_id = descriptor_id;
    entry.medium = need.medium;
    entry.first_need = need.first_need;

    const DataDescriptor* descriptor = store.Get(descriptor_id);
    if (descriptor == nullptr) {
      // The schedule references a descriptor the store no longer holds
      // (e.g. an edit raced the request); nothing can stand in for it.
      plan.degraded = true;
      continue;
    }
    std::string payload;
    if (descriptor->has_content()) {
      StatusOr<DataBlock> block = ResolveContent(*descriptor, blocks);
      if (block.ok()) {
        payload = EncodeBlockPayload(*block);
      } else {
        plan.degraded = true;
        payload = EncodeBlockPayload(MakePlaceholderBlock(*descriptor));
      }
    } else {
      // Descriptor-without-data transport mode: a placeholder is the only
      // deliverable payload, same as the player would synthesize.
      payload = EncodeBlockPayload(MakePlaceholderBlock(*descriptor));
    }
    entry.bytes = payload.size();

    // Latest start that still arrives in time on this medium's channel.
    std::int64_t bandwidth = profile.TimingFor(entry.medium).bandwidth_bytes_per_s;
    entry.must_start_by =
        bandwidth > 0
            ? entry.first_need - MediaTime::Bytes(static_cast<std::int64_t>(entry.bytes), bandwidth)
            : entry.first_need;

    payloads.push_back(std::move(payload));
    plan.blocks.push_back(std::move(entry));
  }

  // Delivery order: ascending must-start, ties broken deterministically.
  std::vector<std::size_t> order(plan.blocks.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PrefetchBlock& lhs = plan.blocks[a];
    const PrefetchBlock& rhs = plan.blocks[b];
    if (lhs.must_start_by != rhs.must_start_by) {
      return lhs.must_start_by < rhs.must_start_by;
    }
    if (lhs.first_need != rhs.first_need) {
      return lhs.first_need < rhs.first_need;
    }
    return lhs.descriptor_id < rhs.descriptor_id;
  });

  std::vector<PrefetchBlock> ordered;
  ordered.reserve(plan.blocks.size());
  std::uint64_t total = 0;
  for (std::size_t index : order) {
    total += payloads[index].size();
  }
  plan.bytes.reserve(static_cast<std::size_t>(total));
  for (std::size_t index : order) {
    PrefetchBlock entry = std::move(plan.blocks[index]);
    entry.offset = plan.bytes.size();
    plan.bytes.append(payloads[index]);
    ordered.push_back(std::move(entry));
  }
  plan.blocks = std::move(ordered);
  plan.payload_hash = Fnv1a64(plan.bytes);
  return plan;
}

}  // namespace cmif
