#include "src/serve/mapping_cache.h"

#include <algorithm>

#include "src/base/string_util.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {

std::size_t CompiledPresentation::CostBytes() const {
  std::size_t bytes = map.Serialize().size();
  for (const FilterPlan& plan : filter.plans) {
    bytes += plan.descriptor_id.size() + plan.ops.size() * sizeof(FilterOp);
  }
  bytes += schedule.schedule.events().size() * sizeof(ScheduledEvent);
  return bytes;
}

std::size_t MappingCacheKeyHash::operator()(const MappingCacheKey& key) const {
  std::uint64_t hash = Fnv1a64(key.profile);
  hash = Fnv1a64Combine(hash, key.document_hash);
  hash = Fnv1a64Combine(hash, key.channel_hash);
  hash = Fnv1a64Combine(hash, key.store_generation);
  return static_cast<std::size_t>(hash);
}

MappingCache::MappingCache(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

std::shared_ptr<const CompiledPresentation> MappingCache::Get(const MappingCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (obs::Enabled()) {
      static obs::Counter& misses = obs::GetCounter("serve.cache.misses");
      misses.Add();
    }
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  std::shared_ptr<const CompiledPresentation> value = it->second->second;
  std::size_t saved = value->CostBytes();
  stats_.bytes_saved += saved;
  if (obs::Enabled()) {
    static obs::Counter& hits = obs::GetCounter("serve.cache.hits");
    static obs::Counter& bytes_saved = obs::GetCounter("serve.cache.bytes_saved");
    hits.Add();
    bytes_saved.Add(static_cast<std::int64_t>(saved));
  }
  return value;
}

std::shared_ptr<const CompiledPresentation> MappingCache::GetStale(const MappingCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<const CompiledPresentation>* best = nullptr;
  std::uint64_t best_generation = 0;
  for (const auto& [entry_key, value] : lru_) {
    if (entry_key.document_hash != key.document_hash ||
        entry_key.channel_hash != key.channel_hash || entry_key.profile != key.profile) {
      continue;
    }
    if (best == nullptr || entry_key.store_generation > best_generation) {
      best = &value;
      best_generation = entry_key.store_generation;
    }
  }
  if (best == nullptr) {
    return nullptr;
  }
  ++stats_.stale_hits;
  if (obs::Enabled()) {
    static obs::Counter& stale_hits = obs::GetCounter("serve.cache.stale_hits");
    stale_hits.Add();
  }
  return *best;
}

void MappingCache::Put(const MappingCacheKey& key,
                       std::shared_ptr<const CompiledPresentation> value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    if (obs::Enabled()) {
      static obs::Counter& evictions = obs::GetCounter("serve.cache.evictions");
      evictions.Add();
    }
  }
  stats_.entries = lru_.size();
}

MappingCache::Stats MappingCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.entries = lru_.size();
  return snapshot;
}

void MappingCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
}

}  // namespace cmif
