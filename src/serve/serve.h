// The concurrent document-serving layer: one shared ddbms instance, a
// thread pool of pipeline workers, and the compiled-presentation cache. A
// request is a (document, profile) pair; the response is the compiled
// presentation (map + filter report + schedule) that a client-side player
// would consume. Request traces are synthetic with Zipf-distributed document
// popularity — the multi-client shape of a news server where a few broadcasts
// are hot and the long tail is cold.
#ifndef SRC_SERVE_SERVE_H_
#define SRC_SERVE_SERVE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ddbms/shared_store.h"
#include "src/doc/document.h"
#include "src/present/capability.h"
#include "src/serve/mapping_cache.h"

namespace cmif {

// One servable document: the parsed tree plus its precomputed content hash
// (documents are immutable once registered; descriptors live in the shared
// store, not here).
struct ServeDocument {
  std::string name;
  Document document{NodeKind::kSeq};
  std::uint64_t document_hash = 0;
  std::uint64_t channel_hash = 0;
};

// The server's corpus: every registered document over one shared descriptor
// database and block store ("one ddbms instance serves all workers").
class ServeCorpus {
 public:
  ServeCorpus() = default;
  ServeCorpus(const ServeCorpus&) = delete;
  ServeCorpus& operator=(const ServeCorpus&) = delete;

  // Registers a document and merges its catalog into the shared stores.
  // Descriptor ids shared between documents must reference identical content
  // (the Evening News variants overlap this way by construction).
  Status AddDocument(std::string name, Document document, const DescriptorStore& catalog,
                     const BlockStore& blocks);

  std::size_t size() const { return documents_.size(); }
  const ServeDocument& document(std::size_t i) const { return *documents_[i]; }

  SharedDescriptorStore& store() { return store_; }
  const SharedDescriptorStore& store() const { return store_; }
  SharedBlockStore& blocks() { return blocks_; }
  const SharedBlockStore& blocks() const { return blocks_; }

 private:
  // unique_ptr so ServeDocument addresses (and the Node pointers inside
  // cached Schedules) stay stable as the corpus grows.
  std::vector<std::unique_ptr<ServeDocument>> documents_;
  SharedDescriptorStore store_;
  SharedBlockStore blocks_;
};

// Builds a corpus of Evening News variants: document i has (i % max_stories)
// + 1 stories, so variants share story prefixes and their descriptors merge
// consistently into the shared catalog.
StatusOr<std::unique_ptr<ServeCorpus>> BuildNewsCorpus(int documents, int max_stories = 3,
                                                       std::uint64_t seed = 1);

// One synthetic request.
struct ServeRequest {
  std::size_t document = 0;  // index into the corpus
  std::size_t profile = 0;   // index into ServeOptions::profiles
};

struct ServeOptions {
  int threads = 4;
  // Zipf skew of document popularity (0 = uniform, 1.0 = classic web trace).
  double zipf_skew = 1.0;
  std::uint64_t seed = 1;
  std::size_t cache_capacity = 128;
  bool use_cache = true;
  // Profiles requests are served against, chosen uniformly per request.
  std::vector<SystemProfile> profiles = {WorkstationProfile(), PersonalSystemProfile()};
};

// Deterministic Zipf request trace over `corpus_size` documents: the same
// (corpus_size, options.seed, options.zipf_skew, profile count) always
// yields the same trace.
std::vector<ServeRequest> GenerateTrace(std::size_t corpus_size, std::size_t requests,
                                        const ServeOptions& options);

// Aggregate results of one ServeLoop run.
struct ServeStats {
  std::size_t requests = 0;
  std::size_t errors = 0;  // requests whose pipeline failed
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double wall_ms = 0;
  double throughput_rps = 0;
  // Per-request latency percentiles (milliseconds).
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;

  std::string Summary() const;
};

// The serve driver: fans a request trace out over a thread pool. Workers
// pull requests from a shared atomic cursor (no per-request future
// round-trips) and run the compile pipeline — or hit the cache — under the
// shared store's read lock.
class ServeLoop {
 public:
  ServeLoop(ServeCorpus& corpus, ServeOptions options);

  // Serves one request synchronously on the calling thread.
  StatusOr<std::shared_ptr<const CompiledPresentation>> Handle(const ServeRequest& request);

  // Serves the whole trace on `options.threads` workers and aggregates.
  StatusOr<ServeStats> Run(const std::vector<ServeRequest>& trace);

  MappingCache& cache() { return cache_; }
  const ServeOptions& options() const { return options_; }

 private:
  ServeCorpus& corpus_;
  ServeOptions options_;
  MappingCache cache_;
};

}  // namespace cmif

#endif  // SRC_SERVE_SERVE_H_
