// The concurrent document-serving layer: one shared ddbms instance, a
// thread pool of pipeline workers, and the compiled-presentation cache. A
// request is a (document, profile) pair; the response is the compiled
// presentation (map + filter report + schedule) that a client-side player
// would consume. Request traces are synthetic with Zipf-distributed document
// popularity — the multi-client shape of a news server where a few broadcasts
// are hot and the long tail is cold.
#ifndef SRC_SERVE_SERVE_H_
#define SRC_SERVE_SERVE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/ddbms/shared_store.h"
#include "src/doc/document.h"
#include "src/fault/circuit_breaker.h"
#include "src/fault/retry.h"
#include "src/present/capability.h"
#include "src/serve/mapping_cache.h"
#include "src/serve/persistent_cache.h"

namespace cmif {

// One servable document: the parsed tree plus its precomputed content hash
// (documents are immutable once registered; descriptors live in the shared
// store, not here).
struct ServeDocument {
  std::string name;
  Document document{NodeKind::kSeq};
  std::uint64_t document_hash = 0;
  std::uint64_t channel_hash = 0;
};

// The server's corpus: every registered document over one shared descriptor
// database and block store ("one ddbms instance serves all workers").
class ServeCorpus {
 public:
  ServeCorpus() = default;
  ServeCorpus(const ServeCorpus&) = delete;
  ServeCorpus& operator=(const ServeCorpus&) = delete;

  // Registers a document and merges its catalog into the shared stores.
  // Descriptor ids shared between documents must reference identical content
  // (the Evening News variants overlap this way by construction).
  Status AddDocument(std::string name, Document document, const DescriptorStore& catalog,
                     const BlockStore& blocks);

  // Replaces the document in slot `index` (the edit-session publish path).
  // Rehashes the slot's identity and bumps the shared-store generation, so
  // every mapping-cache and persistent-cache entry compiled from the old
  // revision becomes unreachable before it could be dereferenced. Callers
  // must not race this with requests being served on the same slot.
  Status UpdateDocument(std::size_t index, Document document);

  std::size_t size() const { return documents_.size(); }
  const ServeDocument& document(std::size_t i) const { return *documents_[i]; }

  SharedDescriptorStore& store() { return store_; }
  const SharedDescriptorStore& store() const { return store_; }
  SharedBlockStore& blocks() { return blocks_; }
  const SharedBlockStore& blocks() const { return blocks_; }

 private:
  // unique_ptr so ServeDocument addresses (and the Node pointers inside
  // cached Schedules) stay stable as the corpus grows.
  std::vector<std::unique_ptr<ServeDocument>> documents_;
  SharedDescriptorStore store_;
  SharedBlockStore blocks_;
};

// Builds a corpus of Evening News variants: document i has (i % max_stories)
// + 1 stories, so variants share story prefixes and their descriptors merge
// consistently into the shared catalog.
StatusOr<std::unique_ptr<ServeCorpus>> BuildNewsCorpus(int documents, int max_stories = 3,
                                                       std::uint64_t seed = 1);

// One synthetic request.
struct ServeRequest {
  std::size_t document = 0;  // index into the corpus
  std::size_t profile = 0;   // index into ServeOptions::profiles
};

struct ServeOptions {
  int threads = 4;
  // Zipf skew of document popularity (0 = uniform, 1.0 = classic web trace).
  double zipf_skew = 1.0;
  std::uint64_t seed = 1;
  std::size_t cache_capacity = 128;
  bool use_cache = true;
  // When non-empty, an on-disk second tier (src/serve/persistent_cache)
  // behind the memory cache: misses fall through to disk before compiling
  // (promoting hits into memory), fresh compiles are written behind. The
  // directory is opened at ServeLoop construction; an unusable directory is
  // recorded in ServeLoop::pcache_status() and serving continues memory-only.
  std::string cache_dir;
  // Profiles requests are served against, chosen uniformly per request.
  std::vector<SystemProfile> profiles = {WorkstationProfile(), PersonalSystemProfile()};
  // Recovery ladder around the compile path. Retries apply to kUnavailable
  // compile failures (the only code fault injection produces); the breaker is
  // keyed per document, so one persistently failing document fails fast
  // without starving the rest of the corpus.
  fault::RetryPolicy retry;
  fault::BreakerOptions compile_breaker;
  // When true, a request whose compile fails (or is rejected by an open
  // breaker) is answered from the freshest stale cache entry for the same
  // (document, profile) — reported as degraded, never re-cached as healthy.
  bool enable_degraded = false;
  // Test seam: runs on the worker thread before each request in Run().
  // Exceptions it throws are counted in ServeStats::exceptions (satellite:
  // worker exceptions must surface as errors, not vanish).
  std::function<void(const ServeRequest&)> request_hook;
};

// Deterministic Zipf request trace over `corpus_size` documents: the same
// (corpus_size, options.seed, options.zipf_skew, profile count) always
// yields the same trace.
std::vector<ServeRequest> GenerateTrace(std::size_t corpus_size, std::size_t requests,
                                        const ServeOptions& options);

// How one request ended. kHealthy/kRecovered carry a fresh compile (the
// latter after at least one retry), kDegraded carries a stale presentation
// served because the fresh compile failed, kFailed carries only an error.
enum class ServeOutcome { kHealthy = 0, kRecovered, kDegraded, kFailed };

std::string_view ServeOutcomeName(ServeOutcome outcome);

// The full answer to one request: distinguishes degraded from failed (the
// degraded-vs-failed split the chaos bench measures).
struct ServeResponse {
  std::shared_ptr<const CompiledPresentation> presentation;
  ServeOutcome outcome = ServeOutcome::kHealthy;
  int attempts = 1;   // compile attempts consumed (1 on cache hits)
  bool cache_hit = false;
  bool disk_hit = false;  // the hit came from the persistent tier
  Status error;       // the compile error behind kDegraded / kFailed

  // True when the client got a presentation, healthy or not.
  bool served() const { return outcome != ServeOutcome::kFailed; }
};

// Aggregate results of one ServeLoop run.
struct ServeStats {
  std::size_t requests = 0;
  // Requests that produced no presentation: failed compiles plus worker
  // exceptions. Degraded responses are NOT errors — they served a (stale)
  // presentation and are counted separately.
  std::size_t errors = 0;
  std::size_t degraded = 0;     // served stale after a compile failure
  std::size_t recovered = 0;    // healthy after >= 1 retry
  std::size_t exceptions = 0;   // worker-thread exceptions (included in errors)
  std::uint64_t breaker_opens = 0;  // compile-breaker opens during the run
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t pcache_hits = 0;  // disk-tier hits (included in cache_hits)
  double wall_ms = 0;
  double throughput_rps = 0;
  // Per-request latency percentiles (milliseconds).
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;

  std::string Summary() const;
};

// The serve driver: fans a request trace out over a thread pool. Workers
// pull requests from a shared atomic cursor (no per-request future
// round-trips) and run the compile pipeline — or hit the cache — under the
// shared store's read lock.
class ServeLoop {
 public:
  ServeLoop(ServeCorpus& corpus, ServeOptions options);

  // Serves one request synchronously on the calling thread, running the full
  // recovery ladder: cache -> breaker gate -> compile with retries -> stale
  // fallback. Never throws; every outcome (including kFailed) comes back as
  // a ServeResponse.
  ServeResponse Serve(const ServeRequest& request);

  // Cache-only serving for work that must not compile — the net layer's
  // blown-deadline degrade path. A fresh cache hit answers kHealthy; a stale
  // entry answers kDegraded carrying `reason`; otherwise kFailed with
  // `reason`. Never runs the pipeline, so it costs microseconds regardless
  // of load, and ignores enable_degraded (the caller already decided to
  // degrade — that is the point of calling this).
  ServeResponse ServeStale(const ServeRequest& request, Status reason);

  // Compatibility wrapper over Serve(): the presentation on success (healthy,
  // recovered, or degraded), the error status on failure.
  StatusOr<std::shared_ptr<const CompiledPresentation>> Handle(const ServeRequest& request);

  // Serves the whole trace on `options.threads` workers and aggregates.
  StatusOr<ServeStats> Run(const std::vector<ServeRequest>& trace);

  MappingCache& cache() { return cache_; }
  fault::BreakerSet& breakers() { return breakers_; }
  const ServeOptions& options() const { return options_; }
  const ServeCorpus& corpus() const { return corpus_; }

  // The disk tier; nullptr when cache_dir is empty or Open failed.
  PersistentCache* pcache() { return pcache_.get(); }
  // Why the disk tier is absent (Ok when present or never requested).
  const Status& pcache_status() const { return pcache_status_; }

 private:
  ServeCorpus& corpus_;
  ServeOptions options_;
  MappingCache cache_;
  std::unique_ptr<PersistentCache> pcache_;
  Status pcache_status_;
  // Per-document compile breakers (keyed by document name).
  fault::BreakerSet breakers_;
};

}  // namespace cmif

#endif  // SRC_SERVE_SERVE_H_
