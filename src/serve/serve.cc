#include "src/serve/serve.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>

#include "src/base/logging.h"
#include "src/base/random.h"
#include "src/base/string_util.h"
#include "src/base/thread_pool.h"
#include "src/fault/fault.h"
#include "src/fmt/writer.h"
#include "src/news/evening_news.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/pipeline/pipeline.h"

namespace cmif {
namespace {

std::uint64_t HashChannels(const ChannelDictionary& channels) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const ChannelDef& channel : channels.channels()) {
    hash = Fnv1a64Combine(hash, Fnv1a64(channel.name));
    hash = Fnv1a64Combine(hash, static_cast<std::uint64_t>(channel.medium));
  }
  return hash;
}

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Status ServeCorpus::AddDocument(std::string name, Document document,
                                const DescriptorStore& catalog, const BlockStore& blocks) {
  auto entry = std::make_unique<ServeDocument>();
  entry->name = std::move(name);
  entry->document = std::move(document);
  CMIF_ASSIGN_OR_RETURN(std::string text, WriteDocument(entry->document));
  // The cached schedules hold node pointers into the registered document, so
  // the key hashes document *identity* (content + corpus slot), never letting
  // two corpus entries with identical text share a compiled entry.
  entry->document_hash = Fnv1a64Combine(Fnv1a64(text), documents_.size());
  entry->channel_hash = HashChannels(entry->document.channels());
  store_.WithWrite([&](DescriptorStore& store) {
    for (const DataDescriptor& descriptor : catalog.descriptors()) {
      store.Upsert(descriptor);
    }
    return 0;
  });
  blocks_.WithWrite([&](BlockStore& store) {
    blocks.ForEach([&](const std::string& key, const DataBlock& block) { store.Set(key, block); });
    return 0;
  });
  documents_.push_back(std::move(entry));
  return Status::Ok();
}

Status ServeCorpus::UpdateDocument(std::size_t index, Document document) {
  if (index >= documents_.size()) {
    return OutOfRangeError(StrFormat("no corpus document #%zu", index));
  }
  ServeDocument& entry = *documents_[index];
  CMIF_ASSIGN_OR_RETURN(std::string text, WriteDocument(document));
  entry.document = std::move(document);
  entry.document_hash = Fnv1a64Combine(Fnv1a64(text), index);
  entry.channel_hash = HashChannels(entry.document.channels());
  // Cached schedules hold Node pointers into the tree just replaced; the
  // rehash makes those entries unreachable by key, and this (otherwise
  // empty) write section bumps the store generation so even stale-tolerant
  // readers see the slot as changed.
  store_.WithWrite([](DescriptorStore&) { return 0; });
  return Status::Ok();
}

StatusOr<std::unique_ptr<ServeCorpus>> BuildNewsCorpus(int documents, int max_stories,
                                                       std::uint64_t seed) {
  if (documents < 1 || max_stories < 1) {
    return InvalidArgumentError("corpus needs at least one document and one story");
  }
  auto corpus = std::make_unique<ServeCorpus>();
  for (int i = 0; i < documents; ++i) {
    NewsOptions options;
    options.stories = i % max_stories + 1;
    options.seed = seed;  // shared seed => shared story prefixes merge cleanly
    CMIF_ASSIGN_OR_RETURN(NewsWorkload workload, BuildEveningNews(options));
    CMIF_RETURN_IF_ERROR(corpus->AddDocument(StrFormat("news-%d-s%d", i, options.stories),
                                             std::move(workload.document), workload.store,
                                             workload.blocks));
  }
  return corpus;
}

std::vector<ServeRequest> GenerateTrace(std::size_t corpus_size, std::size_t requests,
                                        const ServeOptions& options) {
  std::vector<ServeRequest> trace;
  if (corpus_size == 0 || options.profiles.empty()) {
    return trace;
  }
  trace.reserve(requests);
  Rng rng(options.seed);
  ZipfDistribution popularity(corpus_size, options.zipf_skew);
  for (std::size_t i = 0; i < requests; ++i) {
    ServeRequest request;
    request.document = popularity.Sample(rng);
    request.profile = static_cast<std::size_t>(rng.NextBelow(options.profiles.size()));
    trace.push_back(request);
  }
  return trace;
}

std::string_view ServeOutcomeName(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kHealthy:
      return "healthy";
    case ServeOutcome::kRecovered:
      return "recovered";
    case ServeOutcome::kDegraded:
      return "degraded";
    case ServeOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string ServeStats::Summary() const {
  std::string out;
  out += StrFormat("  requests %zu (%zu errors), wall %.3f ms, %.1f req/s\n", requests, errors,
                   wall_ms, throughput_rps);
  if (degraded > 0 || recovered > 0 || exceptions > 0 || breaker_opens > 0) {
    out += StrFormat(
        "  recovery: %zu degraded, %zu recovered, %zu exceptions, %llu breaker opens\n", degraded,
        recovered, exceptions, static_cast<unsigned long long>(breaker_opens));
  }
  out += StrFormat("  latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n", p50_ms, p95_ms, p99_ms);
  std::uint64_t lookups = cache_hits + cache_misses;
  double hit_pct = lookups > 0 ? 100.0 * static_cast<double>(cache_hits) / lookups : 0;
  out += StrFormat("  cache %llu hits / %llu misses (%.1f%% hit rate)\n",
                   static_cast<unsigned long long>(cache_hits),
                   static_cast<unsigned long long>(cache_misses), hit_pct);
  if (pcache_hits > 0) {
    out += StrFormat("  disk cache %llu hits\n", static_cast<unsigned long long>(pcache_hits));
  }
  return out;
}

ServeLoop::ServeLoop(ServeCorpus& corpus, ServeOptions options)
    : corpus_(corpus),
      options_(std::move(options)),
      cache_(options_.cache_capacity),
      breakers_(options_.compile_breaker) {
  if (!options_.cache_dir.empty()) {
    StatusOr<std::unique_ptr<PersistentCache>> opened = PersistentCache::Open(options_.cache_dir);
    if (opened.ok()) {
      pcache_ = std::move(*opened);
    } else {
      // Serving works memory-only; the disk tier is an accelerator, never a
      // dependency. The reason stays queryable via pcache_status().
      pcache_status_ = opened.status();
      CMIF_LOG(kWarning) << "persistent cache disabled: " << pcache_status_.message();
    }
  }
}

ServeResponse ServeLoop::Serve(const ServeRequest& request) {
  ServeResponse response;
  if (request.document >= corpus_.size() || request.profile >= options_.profiles.size()) {
    response.outcome = ServeOutcome::kFailed;
    response.error = InvalidArgumentError("serve request outside corpus/profile range");
    return response;
  }
  const ServeDocument& doc = corpus_.document(request.document);
  const SystemProfile& profile = options_.profiles[request.profile];
  obs::Span span("serve-request");
  span.Annotate("document", doc.name);
  span.Annotate("profile", profile.name);
  if (obs::Enabled()) {
    static obs::Counter& requests = obs::GetCounter("serve.requests");
    requests.Add();
  }

  MappingCacheKey key;
  key.document_hash = doc.document_hash;
  key.channel_hash = doc.channel_hash;
  key.profile = profile.name;
  if (options_.use_cache) {
    key.store_generation = corpus_.store().generation();
    if (std::shared_ptr<const CompiledPresentation> hit = cache_.Get(key)) {
      span.Annotate("cache", "hit");
      response.presentation = std::move(hit);
      response.cache_hit = true;
      return response;
    }
  }
  // Memory miss: fall through to the disk tier before paying for a compile.
  // The read lock pins the catalog state, and the generation re-read under it
  // names that state exactly — the same discipline as the compile path — so
  // a reconstructed entry can never alias a newer catalog. A disk hit skips
  // the breaker gate: it runs no pipeline, so there is nothing to protect.
  if (options_.use_cache && pcache_ != nullptr) {
    std::shared_ptr<const CompiledPresentation> disk = corpus_.store().WithRead(
        [&](const DescriptorStore& store) -> std::shared_ptr<const CompiledPresentation> {
          key.store_generation = corpus_.store().generation();
          return pcache_->Get(key, doc.document, store);
        });
    if (disk != nullptr) {
      cache_.Put(key, disk);  // promote: the next lookup is a memory hit
      span.Annotate("cache", "disk-hit");
      response.presentation = std::move(disk);
      response.cache_hit = true;
      response.disk_hit = true;
      return response;
    }
  }
  span.Annotate("cache", options_.use_cache ? "miss" : "off");

  // Degraded fallback, shared between the fail-fast and compile-failed
  // paths: the freshest stale cache entry for this (document, profile).
  auto degrade = [&](Status error) {
    response.error = std::move(error);
    if (options_.enable_degraded && options_.use_cache) {
      if (std::shared_ptr<const CompiledPresentation> stale = cache_.GetStale(key)) {
        response.presentation = std::move(stale);
        response.outcome = ServeOutcome::kDegraded;
        span.Annotate("outcome", "degraded");
        if (obs::Enabled()) {
          static obs::Counter& degraded = obs::GetCounter("serve.degraded.requests");
          degraded.Add();
        }
        obs::RecordAnomaly("serve.degraded");
        return;
      }
    }
    response.outcome = ServeOutcome::kFailed;
    span.Annotate("outcome", "failed");
    if (obs::Enabled()) {
      static obs::Counter& failed = obs::GetCounter("serve.failed.requests");
      failed.Add();
    }
    obs::RecordAnomaly("serve.failed");
  };

  // Fail fast while this document's breaker is open: don't burn a pipeline
  // run (and its retries) on a document that is currently hopeless.
  fault::CircuitBreaker& breaker = breakers_.For(doc.name);
  if (!breaker.Allow()) {
    degrade(UnavailableError("compile breaker open for document '" + doc.name + "'"));
    return response;
  }

  // Cold path: compile under the shared stores' read locks, retrying
  // transient (kUnavailable) failures. The generation is re-read inside the
  // lock — writers bump it before releasing, so the value observed here
  // exactly identifies the catalog state the compile ran against, and the
  // entry can never alias a newer catalog.
  auto compile_once = [&]() -> StatusOr<std::shared_ptr<const CompiledPresentation>> {
    if (fault::Enabled()) {
      CMIF_RETURN_IF_ERROR(fault::InjectPoint("serve.compile"));
    }
    return corpus_.store().WithRead(
        [&](const DescriptorStore& store) -> StatusOr<std::shared_ptr<const CompiledPresentation>> {
          key.store_generation = corpus_.store().generation();
          return corpus_.blocks().WithRead(
              [&](const BlockStore& blocks) -> StatusOr<std::shared_ptr<const CompiledPresentation>> {
                PipelineOptions pipeline_options;
                pipeline_options.profile = profile;
                CMIF_ASSIGN_OR_RETURN(
                    CompileReport report,
                    CompilePresentation(doc.document, store, blocks, pipeline_options));
                auto result = std::make_shared<CompiledPresentation>();
                result->map = std::move(report.presentation_map);
                result->filter = std::move(report.filter);
                result->schedule = std::move(report.schedule);
                return std::shared_ptr<const CompiledPresentation>(std::move(result));
              });
        });
  };
  std::uint64_t salt = Fnv1a64Combine(doc.document_hash, Fnv1a64(profile.name));
  auto compiled = fault::Retry(options_.retry, compile_once, salt, &response.attempts);
  if (!compiled.ok()) {
    breaker.RecordFailure();
    degrade(compiled.status());
    return response;
  }
  breaker.RecordSuccess();
  if (response.attempts > 1) {
    response.outcome = ServeOutcome::kRecovered;
    span.Annotate("outcome", "recovered");
    span.Annotate("attempts", response.attempts);
    if (obs::Enabled()) {
      static obs::Counter& recovered = obs::GetCounter("serve.recovered.requests");
      recovered.Add();
    }
  }
  // Only fresh compiles are cached — a degraded (stale) response never
  // re-enters the cache under the current generation's key.
  if (options_.use_cache) {
    cache_.Put(key, *compiled);
    if (pcache_ != nullptr) {
      pcache_->Put(key, *compiled);  // write-behind; drops are counted
    }
  }
  response.presentation = *compiled;
  return response;
}

ServeResponse ServeLoop::ServeStale(const ServeRequest& request, Status reason) {
  ServeResponse response;
  if (request.document >= corpus_.size() || request.profile >= options_.profiles.size()) {
    response.outcome = ServeOutcome::kFailed;
    response.error = InvalidArgumentError("serve request outside corpus/profile range");
    return response;
  }
  const ServeDocument& doc = corpus_.document(request.document);
  const SystemProfile& profile = options_.profiles[request.profile];
  MappingCacheKey key;
  key.document_hash = doc.document_hash;
  key.channel_hash = doc.channel_hash;
  key.profile = profile.name;
  key.store_generation = corpus_.store().generation();
  if (options_.use_cache) {
    if (std::shared_ptr<const CompiledPresentation> hit = cache_.Get(key)) {
      response.presentation = std::move(hit);
      response.cache_hit = true;
      return response;  // kHealthy: the cache was fresh, nothing degraded
    }
    if (std::shared_ptr<const CompiledPresentation> stale = cache_.GetStale(key)) {
      response.presentation = std::move(stale);
      response.outcome = ServeOutcome::kDegraded;
      response.error = std::move(reason);
      if (obs::Enabled()) {
        static obs::Counter& degraded = obs::GetCounter("serve.degraded.requests");
        degraded.Add();
      }
      obs::RecordAnomaly("serve.degraded");
      return response;
    }
  }
  response.outcome = ServeOutcome::kFailed;
  response.error = std::move(reason);
  return response;
}

StatusOr<std::shared_ptr<const CompiledPresentation>> ServeLoop::Handle(
    const ServeRequest& request) {
  ServeResponse response = Serve(request);
  if (!response.served()) {
    return response.error;
  }
  return std::move(response.presentation);
}

StatusOr<ServeStats> ServeLoop::Run(const std::vector<ServeRequest>& trace) {
  struct WorkerResult {
    std::vector<double> latencies_ms;
    std::size_t errors = 0;
    std::size_t degraded = 0;
    std::size_t recovered = 0;
    std::size_t exceptions = 0;
  };

  MappingCache::Stats cache_before = cache_.stats();
  std::uint64_t pcache_hits_before = pcache_ != nullptr ? pcache_->stats().hits : 0;
  std::uint64_t opens_before = breakers_.TotalOpens();
  std::atomic<std::size_t> cursor{0};
  auto worker = [&]() {
    WorkerResult result;
    for (;;) {
      std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= trace.size()) {
        return result;
      }
      auto start = std::chrono::steady_clock::now();
      // A worker must survive anything a request throws: an escaped exception
      // would take down the whole pool and, before this guard, was silently
      // absorbed by the future machinery. Thrown requests count as errors.
      bool threw = false;
      ServeResponse response;
      try {
        if (options_.request_hook) {
          options_.request_hook(trace[i]);
        }
        response = Serve(trace[i]);
      } catch (...) {
        threw = true;
      }
      auto end = std::chrono::steady_clock::now();
      double millis = std::chrono::duration<double, std::milli>(end - start).count();
      result.latencies_ms.push_back(millis);
      if (obs::Enabled()) {
        static obs::Histogram& request_ms = obs::GetHistogram("serve.request_ms");
        request_ms.Record(millis);
      }
      if (threw) {
        ++result.exceptions;
        ++result.errors;
        if (obs::Enabled()) {
          static obs::Counter& exceptions = obs::GetCounter("serve.worker_exceptions");
          exceptions.Add();
        }
        continue;
      }
      switch (response.outcome) {
        case ServeOutcome::kHealthy:
          break;
        case ServeOutcome::kRecovered:
          ++result.recovered;
          break;
        case ServeOutcome::kDegraded:
          ++result.degraded;
          break;
        case ServeOutcome::kFailed:
          ++result.errors;
          break;
      }
    }
  };

  ThreadPool pool(options_.threads);
  std::vector<Future<WorkerResult>> futures;
  futures.reserve(pool.size());
  auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < pool.size(); ++i) {
    futures.push_back(pool.Submit(worker));
  }
  std::vector<double> latencies;
  latencies.reserve(trace.size());
  ServeStats stats;
  for (Future<WorkerResult>& future : futures) {
    WorkerResult result = future.Take();
    stats.errors += result.errors;
    stats.degraded += result.degraded;
    stats.recovered += result.recovered;
    stats.exceptions += result.exceptions;
    latencies.insert(latencies.end(), result.latencies_ms.begin(), result.latencies_ms.end());
  }
  auto wall_end = std::chrono::steady_clock::now();
  stats.breaker_opens = breakers_.TotalOpens() - opens_before;

  stats.requests = trace.size();
  stats.wall_ms = std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  stats.throughput_rps =
      stats.wall_ms > 0 ? static_cast<double>(trace.size()) / (stats.wall_ms / 1000.0) : 0;
  MappingCache::Stats cache_after = cache_.stats();
  stats.cache_hits = cache_after.hits - cache_before.hits;
  stats.cache_misses = cache_after.misses - cache_before.misses;
  if (pcache_ != nullptr) {
    // A disk hit is counted as a memory miss plus a pcache hit — the tiers
    // report independently, so hit rates stay interpretable per tier.
    stats.pcache_hits = pcache_->stats().hits - pcache_hits_before;
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p50_ms = PercentileOfSorted(latencies, 50);
  stats.p95_ms = PercentileOfSorted(latencies, 95);
  stats.p99_ms = PercentileOfSorted(latencies, 99);
  if (obs::Enabled()) {
    static obs::Gauge& rps = obs::GetGauge("serve.last_throughput_rps");
    rps.Set(static_cast<std::int64_t>(stats.throughput_rps));
  }
  return stats;
}

}  // namespace cmif
