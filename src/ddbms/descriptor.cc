#include "src/ddbms/descriptor.h"

#include <algorithm>

#include "src/base/string_util.h"
#include "src/fault/fault.h"

namespace cmif {

MediaType DataDescriptor::Medium() const {
  std::string name = attrs_.GetIdOr(std::string(kDescMedium), "text");
  auto parsed = ParseMediaType(name);
  return parsed.ok() ? *parsed : MediaType::kText;
}

MediaTime DataDescriptor::DeclaredDuration() const {
  return attrs_.GetTimeOr(kDescDuration, MediaTime());
}

std::int64_t DataDescriptor::DeclaredBytes() const { return attrs_.GetNumberOr(kDescBytes, 0); }

void DataDescriptor::DeriveAttrsFrom(const DataBlock& block) {
  attrs_.Set(std::string(kDescMedium), AttrValue::Id(std::string(MediaTypeName(block.medium()))));
  attrs_.Set(std::string(kDescBytes), AttrValue::Number(static_cast<std::int64_t>(block.ByteSize())));
  MediaTime duration = block.IntrinsicDuration();
  if (!duration.is_zero()) {
    attrs_.Set(std::string(kDescDuration), AttrValue::Time(duration));
  }
  if (block.is_generator()) {
    // Generator payloads have no materialized media to inspect; callers add
    // rate/resolution attributes from the generator parameters themselves.
    return;
  }
  switch (block.medium()) {
    case MediaType::kAudio:
      attrs_.Set(std::string(kDescRate), AttrValue::Number(block.audio().rate()));
      attrs_.Set(std::string(kDescFormat), AttrValue::String("pcm16"));
      break;
    case MediaType::kVideo:
      attrs_.Set(std::string(kDescRate), AttrValue::Number(block.video().fps()));
      attrs_.Set(std::string(kDescWidth), AttrValue::Number(block.video().width()));
      attrs_.Set(std::string(kDescHeight), AttrValue::Number(block.video().height()));
      attrs_.Set(std::string(kDescFormat), AttrValue::String("raw-rgb8"));
      attrs_.Set(std::string(kDescColorBits), AttrValue::Number(8));
      break;
    case MediaType::kImage:
    case MediaType::kGraphic:
      if (!block.is_generator()) {
        attrs_.Set(std::string(kDescWidth), AttrValue::Number(block.image().width()));
        attrs_.Set(std::string(kDescHeight), AttrValue::Number(block.image().height()));
      }
      attrs_.Set(std::string(kDescFormat), AttrValue::String("raw-rgb8"));
      attrs_.Set(std::string(kDescColorBits), AttrValue::Number(8));
      break;
    case MediaType::kText:
      attrs_.Set(std::string(kDescFormat), AttrValue::String("plain"));
      break;
  }
}

Status BlockStore::Put(std::string key, DataBlock block) {
  if (Has(key)) {
    return AlreadyExistsError("block '" + key + "' already stored");
  }
  blocks_.emplace_back(std::move(key), std::move(block));
  return Status::Ok();
}

void BlockStore::Set(std::string key, DataBlock block) {
  for (auto& [existing, value] : blocks_) {
    if (existing == key) {
      value = std::move(block);
      return;
    }
  }
  blocks_.emplace_back(std::move(key), std::move(block));
}

StatusOr<DataBlock> BlockStore::Get(const std::string& key) const {
  // The paper's storage server lived on a distributed OS where any fetch
  // could fail transiently, slow down, or stall; the chaos plans reproduce
  // that here. No plan installed => one relaxed atomic load.
  if (fault::Enabled()) {
    CMIF_RETURN_IF_ERROR(fault::InjectPoint("ddbms.block.get"));
  }
  for (const auto& [existing, value] : blocks_) {
    if (existing == key) {
      return value;
    }
  }
  return NotFoundError("block '" + key + "' not in store");
}

bool BlockStore::Has(const std::string& key) const {
  for (const auto& [existing, value] : blocks_) {
    (void)value;
    if (existing == key) {
      return true;
    }
  }
  return false;
}

bool BlockStore::Remove(const std::string& key) {
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->first == key) {
      blocks_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t BlockStore::TotalBytes() const {
  std::size_t total = 0;
  for (const auto& [key, block] : blocks_) {
    (void)key;
    total += block.ByteSize();
  }
  return total;
}

void BlockStore::ForEach(
    const std::function<void(const std::string&, const DataBlock&)>& fn) const {
  for (const auto& [key, block] : blocks_) {
    fn(key, block);
  }
}

StatusOr<DataBlock> ResolveContent(const DataDescriptor& descriptor, const BlockStore& store) {
  const ContentRef& content = descriptor.content();
  if (const auto* inline_block = std::get_if<DataBlock>(&content)) {
    return *inline_block;
  }
  if (const auto* key = std::get_if<std::string>(&content)) {
    return store.Get(*key);
  }
  if (const auto* generator = std::get_if<GeneratorSpec>(&content)) {
    return GeneratorRegistry::Global().Run(*generator);
  }
  return FailedPreconditionError("descriptor '" + descriptor.id() + "' carries no content");
}

DataBlock MakePlaceholderBlock(const DataDescriptor& descriptor) {
  MediaTime duration = descriptor.DeclaredDuration();
  switch (descriptor.Medium()) {
    case MediaType::kAudio: {
      int rate = static_cast<int>(descriptor.attrs().GetNumberOr(kDescRate, 8000));
      rate = std::clamp(rate, 1000, 48000);
      MediaTime length = duration.is_positive() ? duration : MediaTime::Seconds(1);
      auto frames = static_cast<std::size_t>(length.ToSecondsF() * rate);
      return DataBlock::FromAudio(AudioBuffer(rate, 1, std::max<std::size_t>(1, frames)));
    }
    case MediaType::kImage:
    case MediaType::kGraphic: {
      int width = static_cast<int>(descriptor.attrs().GetNumberOr(kDescWidth, 64));
      int height = static_cast<int>(descriptor.attrs().GetNumberOr(kDescHeight, 48));
      Raster card(std::clamp(width, 8, 128), std::clamp(height, 8, 128),
                  Pixel{0x60, 0x60, 0x60});
      return DataBlock::FromImage(std::move(card), descriptor.Medium());
    }
    case MediaType::kVideo: {
      int fps = static_cast<int>(descriptor.attrs().GetNumberOr(kDescRate, 25));
      fps = std::clamp(fps, 1, 60);
      VideoSegment segment(fps);
      // Solid low-resolution frames covering the declared duration, capped so
      // a placeholder never costs meaningful memory regardless of what the
      // attributes claim the real payload was.
      double seconds = duration.is_positive() ? duration.ToSecondsF() : 1.0;
      auto frames = static_cast<std::size_t>(seconds * fps);
      frames = std::clamp<std::size_t>(frames, 1, 250);
      for (std::size_t i = 0; i < frames; ++i) {
        (void)segment.Append(Raster(32, 24, Pixel{0x60, 0x60, 0x60}));
      }
      return DataBlock::FromVideo(std::move(segment));
    }
    case MediaType::kText:
      break;
  }
  return DataBlock::FromText(TextBlock("[" + descriptor.id() + " unavailable]", {}));
}

StatusOr<ResolvedContent> ResolveContentWithRecovery(const DataDescriptor& descriptor,
                                                     const BlockStore& store,
                                                     const fault::RetryPolicy& policy) {
  if (!descriptor.has_content()) {
    return FailedPreconditionError("descriptor '" + descriptor.id() + "' carries no content");
  }
  ResolvedContent resolved;
  auto fetched = fault::Retry(
      policy, [&] { return ResolveContent(descriptor, store); },
      /*salt=*/Fnv1a64(descriptor.id()), &resolved.attempts);
  if (fetched.ok()) {
    resolved.block = *std::move(fetched);
    resolved.outcome =
        resolved.attempts > 1 ? ResolveOutcome::kRecovered : ResolveOutcome::kHealthy;
    return resolved;
  }
  resolved.error = fetched.status();
  resolved.outcome = ResolveOutcome::kPlaceholder;
  resolved.block = MakePlaceholderBlock(descriptor);
  return resolved;
}

}  // namespace cmif
