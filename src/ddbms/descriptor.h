// Data descriptors: "collections of attributes that describe the nature of
// the data block" (section 3.1, Figure 2). A descriptor names the block, says
// what it is (medium, format, resolution, length, resources) and where its
// bytes live. A database "may be used to locate and access various data
// blocks based on the attributes in the data descriptors".
#ifndef SRC_DDBMS_DESCRIPTOR_H_
#define SRC_DDBMS_DESCRIPTOR_H_

#include <functional>
#include <string>
#include <variant>

#include "src/attr/attr_list.h"
#include "src/base/status.h"
#include "src/fault/retry.h"
#include "src/media/data_block.h"
#include "src/media/media_type.h"

namespace cmif {

// Conventional descriptor attribute names used throughout this library.
inline constexpr std::string_view kDescMedium = "medium";        // ID: text|audio|video|...
inline constexpr std::string_view kDescDuration = "duration";    // TIME intrinsic length
inline constexpr std::string_view kDescBytes = "bytes";          // NUMBER payload size
inline constexpr std::string_view kDescFormat = "format";        // STRING encoding name
inline constexpr std::string_view kDescWidth = "width";          // NUMBER pixels
inline constexpr std::string_view kDescHeight = "height";        // NUMBER pixels
inline constexpr std::string_view kDescRate = "rate";            // NUMBER fps or sample rate
inline constexpr std::string_view kDescColorBits = "color_bits"; // NUMBER bits per channel
inline constexpr std::string_view kDescKeywords = "keywords";    // STRING search keys
inline constexpr std::string_view kDescSource = "source";        // STRING provenance

// Where a descriptor's bytes live.
//  - monostate: attributes only (descriptor-without-data transport mode);
//  - std::string: key of a block held by a BlockStore ("storage server");
//  - GeneratorSpec: a program producing the block on demand;
//  - DataBlock: inline payload carried with the descriptor.
using ContentRef = std::variant<std::monostate, std::string, GeneratorSpec, DataBlock>;

// A named bundle of attributes plus a content reference.
class DataDescriptor {
 public:
  DataDescriptor() = default;
  DataDescriptor(std::string id, AttrList attrs) : id_(std::move(id)), attrs_(std::move(attrs)) {}

  const std::string& id() const { return id_; }
  const AttrList& attrs() const { return attrs_; }
  AttrList& mutable_attrs() { return attrs_; }

  const ContentRef& content() const { return content_; }
  void set_content(ContentRef content) { content_ = std::move(content); }
  bool has_content() const { return !std::holds_alternative<std::monostate>(content_); }

  // The declared medium (from the medium attribute), defaulting to text —
  // "the data is either text (the default) or another medium" (section 5.1).
  MediaType Medium() const;
  // Declared intrinsic duration; zero when unspecified.
  MediaTime DeclaredDuration() const;
  // Declared payload size; zero when unspecified.
  std::int64_t DeclaredBytes() const;

  // Fills medium/duration/bytes (and width/height/rate where known) from an
  // actual block. Used by the capture tools.
  void DeriveAttrsFrom(const DataBlock& block);

 private:
  std::string id_;
  AttrList attrs_;
  ContentRef content_;
};

// The "common storage server": named blocks that descriptors reference by
// key via the File attribute. In the paper this would be a distributed file
// or database service; here it is an in-process map.
class BlockStore {
 public:
  // Stores a block under `key`; error if the key exists.
  Status Put(std::string key, DataBlock block);
  // Replaces or inserts.
  void Set(std::string key, DataBlock block);
  StatusOr<DataBlock> Get(const std::string& key) const;
  bool Has(const std::string& key) const;
  bool Remove(const std::string& key);
  std::size_t size() const { return blocks_.size(); }
  // Total payload bytes held (the "massive amounts of media-based data").
  std::size_t TotalBytes() const;
  // Visits every (key, block) in insertion order.
  void ForEach(const std::function<void(const std::string&, const DataBlock&)>& fn) const;

 private:
  std::vector<std::pair<std::string, DataBlock>> blocks_;
};

// Materializes a descriptor's data block: inline blocks are returned as-is,
// store keys are fetched from `store`, generators are run via the global
// GeneratorRegistry. Descriptors without content yield FailedPrecondition.
StatusOr<DataBlock> ResolveContent(const DataDescriptor& descriptor, const BlockStore& store);

// Synthesizes a stand-in block from a descriptor's declared attributes alone
// — silence for audio, a solid card for images/video, an "[id unavailable]"
// caption for text — preserving the declared duration (and roughly the
// declared geometry, capped so a placeholder is always cheap) so schedules
// and sync arcs computed against the real block still hold.
DataBlock MakePlaceholderBlock(const DataDescriptor& descriptor);

// What ResolveContentWithRecovery did to produce its block.
enum class ResolveOutcome {
  kHealthy = 0,    // the real payload
  kRecovered,      // the real payload, after retrying a transient failure
  kPlaceholder,    // the payload was unrecoverable; a placeholder substitutes
};

struct ResolvedContent {
  DataBlock block;
  ResolveOutcome outcome = ResolveOutcome::kHealthy;
  int attempts = 1;
  Status error;  // the terminal fetch error behind a placeholder
};

// ResolveContent with the recovery ladder applied to store fetches: retry
// transient (kUnavailable) failures under `policy`, and on a permanent or
// retry-exhausted failure degrade to MakePlaceholderBlock instead of
// failing. Only descriptors *without any* content still yield an error —
// there is nothing declared to stand in for.
StatusOr<ResolvedContent> ResolveContentWithRecovery(const DataDescriptor& descriptor,
                                                     const BlockStore& store,
                                                     const fault::RetryPolicy& policy);

}  // namespace cmif

#endif  // SRC_DDBMS_DESCRIPTOR_H_
