#include "src/ddbms/query.h"

#include <cctype>

#include "src/base/string_util.h"

namespace cmif {

Query Query::Eq(std::string name, AttrValue value) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kEq;
  node->name = std::move(name);
  node->value = std::move(value);
  return Query(std::move(node));
}

Query Query::Range(std::string name, std::int64_t lo, std::int64_t hi) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRange;
  node->name = std::move(name);
  node->lo = lo;
  node->hi = hi;
  return Query(std::move(node));
}

Query Query::Has(std::string name) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kHas;
  node->name = std::move(name);
  return Query(std::move(node));
}

Query Query::And(std::vector<Query> children) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->children = std::move(children);
  return Query(std::move(node));
}

Query Query::Or(std::vector<Query> children) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->children = std::move(children);
  return Query(std::move(node));
}

Query Query::Not(Query child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->children.push_back(std::move(child));
  return Query(std::move(node));
}

bool Query::Matches(const AttrList& attrs) const {
  switch (node_->kind) {
    case Kind::kEq: {
      const AttrValue* v = attrs.Find(node_->name);
      if (v == nullptr) {
        return false;
      }
      if (*v == node_->value) {
        return true;
      }
      // NUMBER query values match whole-second TIME attributes and vice versa.
      if (node_->value.is_number() && v->is_time()) {
        return v->time() == MediaTime::Seconds(node_->value.number());
      }
      return false;
    }
    case Kind::kRange: {
      const AttrValue* v = attrs.Find(node_->name);
      if (v == nullptr || !v->is_number()) {
        return false;
      }
      return v->number() >= node_->lo && v->number() <= node_->hi;
    }
    case Kind::kHas:
      return attrs.Has(node_->name);
    case Kind::kAnd:
      for (const Query& child : node_->children) {
        if (!child.Matches(attrs)) {
          return false;
        }
      }
      return true;
    case Kind::kOr:
      for (const Query& child : node_->children) {
        if (child.Matches(attrs)) {
          return true;
        }
      }
      return false;
    case Kind::kNot:
      return !node_->children[0].Matches(attrs);
  }
  return false;
}

std::string Query::ToString() const {
  switch (node_->kind) {
    case Kind::kEq:
      return node_->name + "=" + node_->value.ToString();
    case Kind::kRange:
      return StrFormat("%s:[%lld,%lld]", node_->name.c_str(),
                       static_cast<long long>(node_->lo), static_cast<long long>(node_->hi));
    case Kind::kHas:
      return "has(" + node_->name + ")";
    case Kind::kAnd: {
      std::vector<std::string> parts;
      for (const Query& child : node_->children) {
        parts.push_back(child.ToString());
      }
      return "(" + JoinStrings(parts, " & ") + ")";
    }
    case Kind::kOr: {
      std::vector<std::string> parts;
      for (const Query& child : node_->children) {
        parts.push_back(child.ToString());
      }
      return "(" + JoinStrings(parts, " | ") + ")";
    }
    case Kind::kNot:
      return "!" + node_->children[0].ToString();
  }
  return "?";
}

namespace {

// Recursive-descent parser over the raw text (the query syntax is not
// s-expression shaped, so it does not use the shared Lexer).
class QueryParser {
 public:
  explicit QueryParser(std::string_view text) : text_(text) {}

  StatusOr<Query> Parse() {
    CMIF_ASSIGN_OR_RETURN(Query q, ParseOr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return DataLossError(StrFormat("trailing garbage at position %zu in query", pos_));
    }
    return q;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<Query> ParseOr() {
    CMIF_ASSIGN_OR_RETURN(Query first, ParseAnd());
    std::vector<Query> children{first};
    while (Eat('|')) {
      CMIF_ASSIGN_OR_RETURN(Query next, ParseAnd());
      children.push_back(next);
    }
    return children.size() == 1 ? children[0] : Query::Or(std::move(children));
  }

  StatusOr<Query> ParseAnd() {
    CMIF_ASSIGN_OR_RETURN(Query first, ParseFactor());
    std::vector<Query> children{first};
    while (Eat('&')) {
      CMIF_ASSIGN_OR_RETURN(Query next, ParseFactor());
      children.push_back(next);
    }
    return children.size() == 1 ? children[0] : Query::And(std::move(children));
  }

  StatusOr<Query> ParseFactor() {
    if (Eat('!')) {
      CMIF_ASSIGN_OR_RETURN(Query child, ParseFactor());
      return Query::Not(std::move(child));
    }
    if (Eat('(')) {
      CMIF_ASSIGN_OR_RETURN(Query inner, ParseOr());
      if (!Eat(')')) {
        return DataLossError("missing ')' in query");
      }
      return inner;
    }
    return ParsePredicate();
  }

  StatusOr<std::string> ParseName() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_' ||
            text_[pos_] == '.' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return DataLossError(StrFormat("expected a name at position %zu", start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<std::int64_t> ParseInt() {
    SkipSpace();
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return DataLossError("expected an integer in query");
    }
    return std::strtoll(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr, 10);
  }

  StatusOr<Query> ParsePredicate() {
    CMIF_ASSIGN_OR_RETURN(std::string name, ParseName());
    if (name == "has" && Eat('(')) {
      CMIF_ASSIGN_OR_RETURN(std::string attr, ParseName());
      if (!Eat(')')) {
        return DataLossError("missing ')' after has(");
      }
      return Query::Has(std::move(attr));
    }
    if (Eat('=')) {
      CMIF_ASSIGN_OR_RETURN(AttrValue value, ParseValue());
      return Query::Eq(std::move(name), std::move(value));
    }
    if (Eat(':')) {
      if (!Eat('[')) {
        return DataLossError("expected '[' after ':' in range predicate");
      }
      CMIF_ASSIGN_OR_RETURN(std::int64_t lo, ParseInt());
      if (!Eat(',')) {
        return DataLossError("expected ',' in range predicate");
      }
      CMIF_ASSIGN_OR_RETURN(std::int64_t hi, ParseInt());
      if (!Eat(']')) {
        return DataLossError("expected ']' in range predicate");
      }
      return Query::Range(std::move(name), lo, hi);
    }
    return DataLossError("predicate '" + name + "' needs '=', ':[lo,hi]' or has(...)");
  }

  StatusOr<AttrValue> ParseValue() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '"') {
      ++pos_;
      std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        return DataLossError("unterminated string in query");
      }
      std::string body(text_.substr(start, pos_ - start));
      ++pos_;
      return AttrValue::String(std::move(body));
    }
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool all_digits = true;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_' ||
            text_[pos_] == '.' || text_[pos_] == '-')) {
      if (!std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        all_digits = false;
      }
      ++pos_;
    }
    if (pos_ == start) {
      return DataLossError("expected a value in query");
    }
    std::string word(text_.substr(start, pos_ - start));
    if (all_digits || (word.size() > 1 && (word[0] == '-' || word[0] == '+'))) {
      bool numeric = true;
      for (std::size_t i = word[0] == '-' || word[0] == '+' ? 1 : 0; i < word.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(word[i]))) {
          numeric = false;
          break;
        }
      }
      if (numeric) {
        return AttrValue::Number(std::strtoll(word.c_str(), nullptr, 10));
      }
    }
    return AttrValue::Id(std::move(word));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Query> ParseQuery(std::string_view text) { return QueryParser(text).Parse(); }

}  // namespace cmif
