#include "src/ddbms/store.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {

Status DescriptorStore::Add(DataDescriptor descriptor) {
  if (descriptor.id().empty()) {
    return InvalidArgumentError("descriptor id must not be empty");
  }
  if (slot_by_id_.contains(descriptor.id())) {
    return AlreadyExistsError("descriptor '" + descriptor.id() + "' already stored");
  }
  std::size_t slot = descriptors_.size();
  slot_by_id_.emplace(descriptor.id(), slot);
  descriptors_.push_back(std::move(descriptor));
  IndexDescriptor(slot);
  return Status::Ok();
}

void DescriptorStore::Upsert(DataDescriptor descriptor) {
  auto it = slot_by_id_.find(descriptor.id());
  if (it == slot_by_id_.end()) {
    (void)Add(std::move(descriptor));
    return;
  }
  descriptors_[it->second] = std::move(descriptor);
  RebuildIndexes();
}

const DataDescriptor* DescriptorStore::Get(const std::string& id) const {
  auto it = slot_by_id_.find(id);
  const DataDescriptor* found = it == slot_by_id_.end() ? nullptr : &descriptors_[it->second];
  if (obs::Enabled()) {
    static obs::Counter& hits = obs::GetCounter("ddbms.store.hits");
    static obs::Counter& misses = obs::GetCounter("ddbms.store.misses");
    (found != nullptr ? hits : misses).Add();
  }
  return found;
}

bool DescriptorStore::Remove(const std::string& id) {
  auto it = slot_by_id_.find(id);
  if (it == slot_by_id_.end()) {
    return false;
  }
  std::size_t slot = it->second;
  slot_by_id_.erase(it);
  descriptors_.erase(descriptors_.begin() + static_cast<std::ptrdiff_t>(slot));
  // Slots after the removed one shift down.
  for (auto& [other_id, other_slot] : slot_by_id_) {
    (void)other_id;
    if (other_slot > slot) {
      --other_slot;
    }
  }
  RebuildIndexes();
  return true;
}

void DescriptorStore::CreateIndex(const std::string& attr_name) {
  if (indexes_.contains(attr_name)) {
    return;
  }
  indexes_.emplace(attr_name, Index{});
  Index& index = indexes_[attr_name];
  for (std::size_t slot = 0; slot < descriptors_.size(); ++slot) {
    const AttrValue* v = descriptors_[slot].attrs().Find(attr_name);
    if (v == nullptr) {
      continue;
    }
    index.by_value[v->ToString()].push_back(slot);
    if (v->is_number()) {
      index.by_number[v->number()].push_back(slot);
    }
  }
}

bool DescriptorStore::HasIndex(const std::string& attr_name) const {
  return indexes_.contains(attr_name);
}

void DescriptorStore::IndexDescriptor(std::size_t slot) {
  for (auto& [attr_name, index] : indexes_) {
    const AttrValue* v = descriptors_[slot].attrs().Find(attr_name);
    if (v == nullptr) {
      continue;
    }
    index.by_value[v->ToString()].push_back(slot);
    if (v->is_number()) {
      index.by_number[v->number()].push_back(slot);
    }
  }
}

void DescriptorStore::RebuildIndexes() {
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const auto& [name, index] : indexes_) {
    (void)index;
    names.push_back(name);
  }
  indexes_.clear();
  for (const std::string& name : names) {
    CreateIndex(name);
  }
}

std::optional<std::vector<std::size_t>> DescriptorStore::IndexCandidates(
    const Query& query) const {
  switch (query.kind()) {
    case Query::Kind::kEq: {
      auto it = indexes_.find(query.attr_name());
      if (it == indexes_.end()) {
        return std::nullopt;
      }
      auto hit = it->second.by_value.find(query.value().ToString());
      if (hit == it->second.by_value.end()) {
        return std::vector<std::size_t>{};
      }
      return hit->second;
    }
    case Query::Kind::kRange: {
      auto it = indexes_.find(query.attr_name());
      if (it == indexes_.end()) {
        return std::nullopt;
      }
      std::vector<std::size_t> slots;
      auto lo = it->second.by_number.lower_bound(query.lo());
      auto hi = it->second.by_number.upper_bound(query.hi());
      for (auto cursor = lo; cursor != hi; ++cursor) {
        slots.insert(slots.end(), cursor->second.begin(), cursor->second.end());
      }
      std::sort(slots.begin(), slots.end());
      return slots;
    }
    case Query::Kind::kAnd: {
      // The narrowest indexed conjunct prunes; the full predicate filters.
      std::optional<std::vector<std::size_t>> best;
      for (const Query& child : query.children()) {
        auto candidates = IndexCandidates(child);
        if (candidates.has_value() &&
            (!best.has_value() || candidates->size() < best->size())) {
          best = std::move(candidates);
        }
      }
      return best;
    }
    default:
      return std::nullopt;
  }
}

std::vector<const DataDescriptor*> DescriptorStore::Execute(const Query& query,
                                                            QueryStats* stats) const {
  std::optional<std::vector<std::size_t>> candidates = IndexCandidates(query);
  if (!candidates.has_value()) {
    return ExecuteScan(query, stats);
  }
  if (obs::Enabled()) {
    static obs::Counter& queries = obs::GetCounter("ddbms.queries");
    static obs::Counter& indexed = obs::GetCounter("ddbms.queries_indexed");
    static obs::Counter& examined = obs::GetCounter("ddbms.candidates_examined");
    queries.Add();
    indexed.Add();
    examined.Add(static_cast<std::int64_t>(candidates->size()));
  }
  if (stats != nullptr) {
    stats->used_index = true;
    stats->candidates_examined = candidates->size();
  }
  std::vector<const DataDescriptor*> out;
  for (std::size_t slot : *candidates) {
    const DataDescriptor& d = descriptors_[slot];
    if (query.Matches(d.attrs())) {
      out.push_back(&d);
    }
  }
  return out;
}

std::vector<const DataDescriptor*> DescriptorStore::ExecuteScan(const Query& query,
                                                                QueryStats* stats) const {
  if (obs::Enabled()) {
    static obs::Counter& queries = obs::GetCounter("ddbms.queries");
    static obs::Counter& scanned = obs::GetCounter("ddbms.queries_scanned");
    static obs::Counter& examined = obs::GetCounter("ddbms.candidates_examined");
    queries.Add();
    scanned.Add();
    examined.Add(static_cast<std::int64_t>(descriptors_.size()));
  }
  if (stats != nullptr) {
    stats->used_index = false;
    stats->candidates_examined = descriptors_.size();
  }
  std::vector<const DataDescriptor*> out;
  for (const DataDescriptor& d : descriptors_) {
    if (query.Matches(d.attrs())) {
      out.push_back(&d);
    }
  }
  return out;
}

}  // namespace cmif
