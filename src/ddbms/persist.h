// Text-catalog persistence for descriptor stores. A catalog is a sequence of
// s-expressions, one per descriptor:
//
//   (descriptor <id> (<attrs...>))                          ; attributes only
//   (descriptor <id> (<attrs...>) store "<block key>")      ; storage-server ref
//   (descriptor <id> (<attrs...>) generator <name> "<params>" <duration> <bytes>)
//   (descriptor <id> (<attrs...>) inline <medium> "<base64 or text>")
//
// Inline payloads use the medium's codec: text verbatim, audio as base64 WAV,
// image/graphic as base64 PPM. Inline video is intentionally unsupported —
// transport video via the store or a generator.
#ifndef SRC_DDBMS_PERSIST_H_
#define SRC_DDBMS_PERSIST_H_

#include <string>

#include "src/base/status.h"
#include "src/ddbms/store.h"

namespace cmif {

// Serializes every descriptor of `store` into catalog text.
StatusOr<std::string> WriteCatalog(const DescriptorStore& store);

// Parses catalog text into a fresh store (no indexes). Errors are kDataLoss
// with line information.
StatusOr<DescriptorStore> ReadCatalog(const std::string& text);

// Serializes one descriptor (the catalog line without a trailing newline).
StatusOr<std::string> WriteDescriptor(const DataDescriptor& descriptor);

}  // namespace cmif

#endif  // SRC_DDBMS_PERSIST_H_
