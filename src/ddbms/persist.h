// Text-catalog persistence for descriptor stores. A version-2 catalog opens
// with a header form followed by one s-expression per descriptor:
//
//   (catalog version 2 descriptors <count>)
//   (descriptor <id> (<attrs...>))                          ; attributes only
//   (descriptor <id> (<attrs...>) store "<block key>")      ; storage-server ref
//   (descriptor <id> (<attrs...>) generator <name> "<params>" <duration> <bytes>)
//   (descriptor <id> (<attrs...>) inline <medium> "<base64 or text>" crc <hex>)
//
// Inline payloads use the medium's codec: text verbatim, audio as base64 WAV,
// image/graphic as base64 PPM. Inline video is intentionally unsupported —
// transport video via the store or a generator.
//
// Robustness: the header's descriptor count detects truncation between
// descriptors (a cleanly cut file is NOT silently loaded as a partial
// store), the per-payload CRC-32 detects corrupted inline payloads, and
// every load error is structured kDataLoss carrying the line *and byte
// offset* of the failure. Version-1 catalogs (no header, no crc suffix) are
// still read for back-compat; they simply lack the two integrity checks.
#ifndef SRC_DDBMS_PERSIST_H_
#define SRC_DDBMS_PERSIST_H_

#include <string>

#include "src/base/status.h"
#include "src/ddbms/store.h"

namespace cmif {

// The catalog format version WriteCatalog emits.
inline constexpr int kCatalogVersion = 2;

// Serializes every descriptor of `store` into catalog text (version 2:
// header with descriptor count, CRC-32 on every inline payload).
StatusOr<std::string> WriteCatalog(const DescriptorStore& store);

// Parses catalog text into a fresh store (no indexes). Errors are kDataLoss
// with line and byte-offset information; a version-2 catalog additionally
// fails on truncation (count mismatch) and on inline-payload CRC mismatch.
// Subject to the "ddbms.persist.read" corruption fault site.
StatusOr<DescriptorStore> ReadCatalog(const std::string& text);

// Serializes one descriptor (the catalog line without a trailing newline).
StatusOr<std::string> WriteDescriptor(const DataDescriptor& descriptor);

}  // namespace cmif

#endif  // SRC_DDBMS_PERSIST_H_
