// Attribute queries over data descriptors. Section 6: "if the attributes
// contain search key information, then many time consuming activities
// relating to finding detailed information in large multimedia databases may
// be simplified". Queries are predicate trees over descriptor attribute
// lists, with a small concrete syntax:
//
//   query  := term ('|' term)*                      -- or
//   term   := factor ('&' factor)*                  -- and
//   factor := '!' factor | '(' query ')' | pred
//   pred   := name '=' value                        -- equality
//           | name ':' '[' int ',' int ']'          -- inclusive number range
//           | 'has' '(' name ')'                    -- attribute presence
//   value  := id | integer | "string"
#ifndef SRC_DDBMS_QUERY_H_
#define SRC_DDBMS_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/attr/attr_list.h"
#include "src/base/status.h"

namespace cmif {

// An immutable predicate tree. Value-semantic (cheap shared copies).
class Query {
 public:
  enum class Kind { kEq, kRange, kHas, kAnd, kOr, kNot };

  static Query Eq(std::string name, AttrValue value);
  // Inclusive numeric range on a NUMBER attribute.
  static Query Range(std::string name, std::int64_t lo, std::int64_t hi);
  static Query Has(std::string name);
  static Query And(std::vector<Query> children);
  static Query Or(std::vector<Query> children);
  static Query Not(Query child);

  Kind kind() const { return node_->kind; }
  const std::string& attr_name() const { return node_->name; }
  const AttrValue& value() const { return node_->value; }
  std::int64_t lo() const { return node_->lo; }
  std::int64_t hi() const { return node_->hi; }
  const std::vector<Query>& children() const { return node_->children; }

  // True if `attrs` satisfies the predicate. Eq on a NUMBER value also
  // matches TIME attributes of equal whole-second value.
  bool Matches(const AttrList& attrs) const;

  // Round-trippable rendering in the concrete syntax.
  std::string ToString() const;

 private:
  struct Node {
    Kind kind;
    std::string name;
    AttrValue value;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::vector<Query> children;
  };
  explicit Query(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

// Parses the concrete query syntax above; errors are kDataLoss.
StatusOr<Query> ParseQuery(std::string_view text);

}  // namespace cmif

#endif  // SRC_DDBMS_QUERY_H_
