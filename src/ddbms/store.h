// The descriptor database of Figure 2: "a database management system may be
// used to locate and access various data blocks based on the attributes in
// the data descriptors". Descriptors are looked up by id or by attribute
// query; attributes can be indexed so that equality and numeric-range
// predicates avoid a full scan.
#ifndef SRC_DDBMS_STORE_H_
#define SRC_DDBMS_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/ddbms/descriptor.h"
#include "src/ddbms/query.h"

namespace cmif {

// Execution statistics, for tests and the Figure-2 bench.
struct QueryStats {
  bool used_index = false;
  // Descriptors the engine evaluated the full predicate on.
  std::size_t candidates_examined = 0;
};

// An in-process descriptor database with optional per-attribute indexes.
class DescriptorStore {
 public:
  DescriptorStore() = default;

  // Adds a descriptor; error if its id is empty or already present.
  Status Add(DataDescriptor descriptor);
  // Replaces an existing descriptor (matched by id) or adds a new one.
  void Upsert(DataDescriptor descriptor);
  // nullptr when absent. The pointer is invalidated by mutations.
  const DataDescriptor* Get(const std::string& id) const;
  // Removes by id; true if something was removed.
  bool Remove(const std::string& id);

  std::size_t size() const { return descriptors_.size(); }
  bool empty() const { return descriptors_.empty(); }

  // Builds an equality + numeric-range index over `attr_name`. Incrementally
  // maintained by Add/Upsert/Remove afterwards. Idempotent.
  void CreateIndex(const std::string& attr_name);
  bool HasIndex(const std::string& attr_name) const;

  // Evaluates `query`, using an index when the query (or one conjunct of a
  // top-level AND) is an Eq/Range over an indexed attribute. Results are in
  // insertion order. Pointers are invalidated by mutations.
  std::vector<const DataDescriptor*> Execute(const Query& query, QueryStats* stats = nullptr) const;
  // Forces a full scan (the baseline the paper's attribute-index argument is
  // measured against).
  std::vector<const DataDescriptor*> ExecuteScan(const Query& query,
                                                 QueryStats* stats = nullptr) const;

  // All descriptors in insertion order.
  const std::vector<DataDescriptor>& descriptors() const { return descriptors_; }

 private:
  struct Index {
    // Canonical value text -> descriptor slots, for Eq.
    std::map<std::string, std::vector<std::size_t>> by_value;
    // NUMBER attributes additionally indexed for Range.
    std::map<std::int64_t, std::vector<std::size_t>> by_number;
  };

  void IndexDescriptor(std::size_t slot);
  void RebuildIndexes();
  // The slots an index narrows `query` to, or nullopt when no index applies.
  std::optional<std::vector<std::size_t>> IndexCandidates(const Query& query) const;

  std::vector<DataDescriptor> descriptors_;
  std::unordered_map<std::string, std::size_t> slot_by_id_;
  std::unordered_map<std::string, Index> indexes_;
};

}  // namespace cmif

#endif  // SRC_DDBMS_STORE_H_
