// Thread-safe sharing of one ddbms instance across pipeline workers. The
// serving workload is read-dominated — the descriptor-only pipeline stages
// never mutate the stores — so protection is a *sharded* reader-writer lock
// (the classic "big-reader" pattern): readers take a shared lock on one
// cache-line-padded stripe chosen by their thread id, writers take every
// stripe in order. Concurrent readers on different stripes never touch the
// same atomic, so read-side scaling is linear; writes are rare (captures)
// and pay the full sweep.
//
// Each wrapper also maintains a generation counter, bumped on every write
// section. The serve-layer mapping cache folds the generation into its keys,
// so any mutation of the shared catalog implicitly invalidates every cached
// compilation that might have read it.
#ifndef SRC_DDBMS_SHARED_STORE_H_
#define SRC_DDBMS_SHARED_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/ddbms/descriptor.h"
#include "src/ddbms/store.h"

namespace cmif {

// N independent shared_mutexes, padded so each lives on its own cache line.
// Annotated as one capability for clang thread-safety analysis: the stripes
// are an implementation detail (a reader holds exactly one, chosen by thread
// id), but to callers the lock behaves like a single shared_mutex, and the
// guards below model exactly that.
class CMIF_CAPABILITY("mutex") ShardedRwLock {
 public:
  static constexpr int kDefaultStripes = 8;

  explicit ShardedRwLock(int stripes = kDefaultStripes);
  ShardedRwLock(const ShardedRwLock&) = delete;
  ShardedRwLock& operator=(const ShardedRwLock&) = delete;

  int stripes() const { return stripes_; }

  // Shared-locks the calling thread's stripe for the guard's lifetime.
  class CMIF_SCOPED_CAPABILITY ReadGuard {
   public:
    explicit ReadGuard(const ShardedRwLock& lock) CMIF_ACQUIRE_SHARED(lock);
    ~ReadGuard() CMIF_RELEASE_GENERIC();
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    std::shared_mutex& mu_;
  };

  // Exclusively locks every stripe, in index order (deadlock-free against
  // other writers; readers hold a single stripe and cannot cycle).
  class CMIF_SCOPED_CAPABILITY WriteGuard {
   public:
    explicit WriteGuard(const ShardedRwLock& lock) CMIF_ACQUIRE(lock);
    ~WriteGuard() CMIF_RELEASE_GENERIC();
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

   private:
    const ShardedRwLock& lock_;
  };

 private:
  struct alignas(64) Stripe {
    mutable std::shared_mutex mu;
  };

  // The stripe this thread's readers use.
  std::size_t StripeFor(std::thread::id id) const;

  std::unique_ptr<Stripe[]> stripes_storage_;
  int stripes_;
};

// A DescriptorStore shared between pipeline workers. Readers get the plain
// single-threaded store under a striped shared lock (so the existing
// pipeline API, which takes `const DescriptorStore&`, works unchanged);
// writers get exclusive access and bump the generation.
class SharedDescriptorStore {
 public:
  explicit SharedDescriptorStore(DescriptorStore store = {},
                                 int stripes = ShardedRwLock::kDefaultStripes)
      : store_(std::move(store)), lock_(stripes) {}

  // Runs `fn(const DescriptorStore&)` under a read lock and returns its
  // result. The store reference must not escape the callback.
  template <typename Fn>
  auto WithRead(Fn&& fn) const {
    ShardedRwLock::ReadGuard guard(lock_);
    return std::forward<Fn>(fn)(store_);
  }

  // Runs `fn(DescriptorStore&)` under the exclusive lock, then bumps the
  // generation. The store reference must not escape the callback.
  template <typename Fn>
  auto WithWrite(Fn&& fn) {
    ShardedRwLock::WriteGuard guard(lock_);
    auto cleanup = [this] { generation_.fetch_add(1, std::memory_order_release); };
    struct Bump {
      decltype(cleanup) fn;
      ~Bump() { fn(); }
    } bump{cleanup};
    return std::forward<Fn>(fn)(store_);
  }

  // Monotonic count of completed write sections.
  std::uint64_t generation() const { return generation_.load(std::memory_order_acquire); }

  // Point-op conveniences (each is one locked section).
  Status Add(DataDescriptor descriptor);
  void Upsert(DataDescriptor descriptor);
  bool Remove(const std::string& id);
  // Copy-out lookup; nullopt when absent (no pointer can outlive the lock).
  std::optional<DataDescriptor> GetCopy(const std::string& id) const;
  // Copy-out query execution.
  std::vector<DataDescriptor> ExecuteCopy(const Query& query, QueryStats* stats = nullptr) const;
  std::size_t size() const;

 private:
  DescriptorStore store_;
  ShardedRwLock lock_;
  std::atomic<std::uint64_t> generation_{0};
};

// A BlockStore shared the same way.
class SharedBlockStore {
 public:
  explicit SharedBlockStore(BlockStore store = {}, int stripes = ShardedRwLock::kDefaultStripes)
      : store_(std::move(store)), lock_(stripes) {}

  template <typename Fn>
  auto WithRead(Fn&& fn) const {
    ShardedRwLock::ReadGuard guard(lock_);
    return std::forward<Fn>(fn)(store_);
  }

  template <typename Fn>
  auto WithWrite(Fn&& fn) {
    ShardedRwLock::WriteGuard guard(lock_);
    auto cleanup = [this] { generation_.fetch_add(1, std::memory_order_release); };
    struct Bump {
      decltype(cleanup) fn;
      ~Bump() { fn(); }
    } bump{cleanup};
    return std::forward<Fn>(fn)(store_);
  }

  std::uint64_t generation() const { return generation_.load(std::memory_order_acquire); }

  Status Put(std::string key, DataBlock block);
  void Set(std::string key, DataBlock block);
  StatusOr<DataBlock> Get(const std::string& key) const;
  bool Has(const std::string& key) const;
  std::size_t size() const;
  std::size_t TotalBytes() const;

 private:
  BlockStore store_;
  ShardedRwLock lock_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace cmif

#endif  // SRC_DDBMS_SHARED_STORE_H_
