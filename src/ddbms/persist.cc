#include "src/ddbms/persist.h"

#include <sstream>

#include "src/attr/parse.h"
#include "src/base/crc32.h"
#include "src/base/lexer.h"
#include "src/base/string_util.h"
#include "src/fault/fault.h"

namespace cmif {
namespace {

StatusOr<std::string> EncodeInlinePayload(const DataBlock& block) {
  switch (block.medium()) {
    case MediaType::kText:
      return block.text().text();
    case MediaType::kAudio:
      return Base64Encode(EncodeWav(block.audio()));
    case MediaType::kImage:
    case MediaType::kGraphic:
      return Base64Encode(EncodePpm(block.image()));
    case MediaType::kVideo:
      return UnimplementedError("inline video is not supported; use store or generator content");
  }
  return InternalError("unknown medium");
}

StatusOr<DataBlock> DecodeInlinePayload(MediaType medium, const std::string& body) {
  switch (medium) {
    case MediaType::kText:
      return DataBlock::FromText(TextBlock(body, TextFormatting{}));
    case MediaType::kAudio: {
      CMIF_ASSIGN_OR_RETURN(std::string wav, Base64Decode(body));
      CMIF_ASSIGN_OR_RETURN(AudioBuffer audio, DecodeWav(wav));
      return DataBlock::FromAudio(std::move(audio));
    }
    case MediaType::kImage:
    case MediaType::kGraphic: {
      CMIF_ASSIGN_OR_RETURN(std::string ppm, Base64Decode(body));
      CMIF_ASSIGN_OR_RETURN(Raster image, DecodePpm(ppm));
      return DataBlock::FromImage(std::move(image), medium);
    }
    case MediaType::kVideo:
      return UnimplementedError("inline video is not supported");
  }
  return InternalError("unknown medium");
}

// Parses the optional "(catalog version <v> descriptors <n>)" header.
// Returns the declared descriptor count, or -1 for a version-1 catalog
// (no header present; nothing is consumed in that case).
StatusOr<std::int64_t> ParseCatalogHeader(Lexer& lexer) {
  CMIF_ASSIGN_OR_RETURN(Token open, lexer.Peek());
  if (open.kind != TokenKind::kLParen) {
    return std::int64_t{-1};
  }
  // Look ahead past the paren: only commit once the keyword is "catalog".
  Lexer::Checkpoint checkpoint = lexer.Save();
  CMIF_RETURN_IF_ERROR(lexer.Next().status());
  CMIF_ASSIGN_OR_RETURN(Token keyword, lexer.Peek());
  if (keyword.kind != TokenKind::kWord || keyword.text != "catalog") {
    lexer.Restore(checkpoint);
    return std::int64_t{-1};
  }
  CMIF_RETURN_IF_ERROR(lexer.Next().status());
  CMIF_ASSIGN_OR_RETURN(Token version_word, lexer.Expect(TokenKind::kWord));
  if (version_word.text != "version") {
    return DataLossError(StrFormat("line %d (offset %zu): expected 'version' in catalog header",
                                   version_word.line, version_word.offset));
  }
  CMIF_ASSIGN_OR_RETURN(Token version, lexer.Expect(TokenKind::kWord));
  long version_number = std::strtol(version.text.c_str(), nullptr, 10);
  if (version_number < 1 || version_number > kCatalogVersion) {
    return DataLossError(StrFormat("line %d (offset %zu): unsupported catalog version '%s'",
                                   version.line, version.offset, version.text.c_str()));
  }
  CMIF_ASSIGN_OR_RETURN(Token descriptors_word, lexer.Expect(TokenKind::kWord));
  if (descriptors_word.text != "descriptors") {
    return DataLossError(
        StrFormat("line %d (offset %zu): expected 'descriptors' in catalog header",
                  descriptors_word.line, descriptors_word.offset));
  }
  CMIF_ASSIGN_OR_RETURN(Token count, lexer.Expect(TokenKind::kWord));
  std::int64_t declared = std::strtoll(count.text.c_str(), nullptr, 10);
  if (declared < 0) {
    return DataLossError(StrFormat("line %d (offset %zu): bad descriptor count '%s'", count.line,
                                   count.offset, count.text.c_str()));
  }
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
  return declared;
}

StatusOr<DescriptorStore> ParseCatalog(const std::string& text) {
  DescriptorStore store;
  Lexer lexer(text);
  CMIF_ASSIGN_OR_RETURN(std::int64_t declared_count, ParseCatalogHeader(lexer));
  std::int64_t parsed_count = 0;
  while (true) {
    CMIF_ASSIGN_OR_RETURN(Token token, lexer.Peek());
    if (token.kind == TokenKind::kEnd) {
      if (declared_count >= 0 && parsed_count != declared_count) {
        return DataLossError(StrFormat(
            "truncated catalog: header declares %lld descriptors but input ends after %lld "
            "(offset %zu)",
            static_cast<long long>(declared_count), static_cast<long long>(parsed_count),
            token.offset));
      }
      return store;
    }
    CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
    CMIF_ASSIGN_OR_RETURN(Token keyword, lexer.Expect(TokenKind::kWord));
    if (keyword.text != "descriptor") {
      return DataLossError(StrFormat("line %d (offset %zu): expected 'descriptor', got '%s'",
                                     keyword.line, keyword.offset, keyword.text.c_str()));
    }
    CMIF_ASSIGN_OR_RETURN(Token id, lexer.Expect(TokenKind::kWord));
    CMIF_ASSIGN_OR_RETURN(AttrList attrs, ParseAttrList(lexer));
    DataDescriptor descriptor(id.text, std::move(attrs));

    CMIF_ASSIGN_OR_RETURN(Token next, lexer.Next());
    if (next.kind == TokenKind::kWord) {
      if (next.text == "store") {
        CMIF_ASSIGN_OR_RETURN(Token key, lexer.Expect(TokenKind::kString));
        descriptor.set_content(key.text);
      } else if (next.text == "generator") {
        GeneratorSpec spec;
        CMIF_ASSIGN_OR_RETURN(Token name, lexer.Expect(TokenKind::kWord));
        spec.generator = name.text;
        CMIF_ASSIGN_OR_RETURN(Token params, lexer.Expect(TokenKind::kString));
        spec.params = params.text;
        CMIF_ASSIGN_OR_RETURN(Token duration, lexer.Expect(TokenKind::kWord));
        CMIF_ASSIGN_OR_RETURN(spec.duration, ParseMediaTime(duration.text));
        CMIF_ASSIGN_OR_RETURN(Token bytes, lexer.Expect(TokenKind::kWord));
        spec.approx_bytes = static_cast<std::size_t>(std::strtoll(bytes.text.c_str(), nullptr, 10));
        descriptor.set_content(std::move(spec));
      } else if (next.text == "inline") {
        CMIF_ASSIGN_OR_RETURN(Token medium_word, lexer.Expect(TokenKind::kWord));
        CMIF_ASSIGN_OR_RETURN(MediaType medium, ParseMediaType(medium_word.text));
        CMIF_ASSIGN_OR_RETURN(Token body, lexer.Expect(TokenKind::kString));
        // Optional "crc <hex>" suffix (version 2): verify before decoding,
        // so a corrupted payload is reported as corruption, not as a codec
        // error deeper in.
        CMIF_ASSIGN_OR_RETURN(Token after_body, lexer.Peek());
        if (after_body.kind == TokenKind::kWord && after_body.text == "crc") {
          CMIF_RETURN_IF_ERROR(lexer.Next().status());
          CMIF_ASSIGN_OR_RETURN(Token checksum, lexer.Expect(TokenKind::kWord));
          std::uint32_t declared_crc =
              static_cast<std::uint32_t>(std::strtoul(checksum.text.c_str(), nullptr, 16));
          std::uint32_t actual_crc = Crc32(body.text);
          if (actual_crc != declared_crc) {
            return DataLossError(StrFormat(
                "line %d (offset %zu): inline payload of descriptor '%s' fails its CRC-32 check "
                "(declared %08x, computed %08x) — the catalog is corrupted",
                body.line, body.offset, id.text.c_str(), declared_crc, actual_crc));
          }
        }
        CMIF_ASSIGN_OR_RETURN(DataBlock block, DecodeInlinePayload(medium, body.text));
        descriptor.set_content(std::move(block));
      } else {
        return DataLossError(StrFormat("line %d (offset %zu): unknown content kind '%s'",
                                       next.line, next.offset, next.text.c_str()));
      }
      CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
    } else if (next.kind != TokenKind::kRParen) {
      return DataLossError(StrFormat("line %d (offset %zu): expected content kind or ')'",
                                     next.line, next.offset));
    }
    CMIF_RETURN_IF_ERROR(store.Add(std::move(descriptor)));
    ++parsed_count;
  }
}

}  // namespace

StatusOr<std::string> WriteDescriptor(const DataDescriptor& descriptor) {
  std::ostringstream os;
  os << "(descriptor " << descriptor.id() << " " << descriptor.attrs().ToString();
  const ContentRef& content = descriptor.content();
  if (const auto* key = std::get_if<std::string>(&content)) {
    os << " store " << QuoteString(*key);
  } else if (const auto* gen = std::get_if<GeneratorSpec>(&content)) {
    os << " generator " << gen->generator << " " << QuoteString(gen->params) << " "
       << gen->duration.ToString() << " " << gen->approx_bytes;
  } else if (const auto* block = std::get_if<DataBlock>(&content)) {
    CMIF_ASSIGN_OR_RETURN(std::string body, EncodeInlinePayload(*block));
    os << " inline " << MediaTypeName(block->medium()) << " " << QuoteString(body) << " crc "
       << StrFormat("%08x", Crc32(body));
  }
  os << ")";
  return os.str();
}

StatusOr<std::string> WriteCatalog(const DescriptorStore& store) {
  std::string out = "; CMIF descriptor catalog\n";
  out += StrFormat("(catalog version %d descriptors %zu)\n", kCatalogVersion,
                   store.descriptors().size());
  for (const DataDescriptor& d : store.descriptors()) {
    CMIF_ASSIGN_OR_RETURN(std::string line, WriteDescriptor(d));
    out += line;
    out += '\n';
  }
  return out;
}

StatusOr<DescriptorStore> ReadCatalog(const std::string& text) {
  // The corruption fault site mutates the persisted image before parsing —
  // the CRC/offset machinery below is what detects it.
  if (fault::Enabled()) {
    std::string mutated = text;
    if (fault::MaybeCorrupt("ddbms.persist.read", mutated)) {
      return ParseCatalog(mutated);
    }
  }
  return ParseCatalog(text);
}

}  // namespace cmif
