#include "src/ddbms/persist.h"

#include <sstream>

#include "src/attr/parse.h"
#include "src/base/lexer.h"
#include "src/base/string_util.h"

namespace cmif {
namespace {

StatusOr<std::string> EncodeInlinePayload(const DataBlock& block) {
  switch (block.medium()) {
    case MediaType::kText:
      return block.text().text();
    case MediaType::kAudio:
      return Base64Encode(EncodeWav(block.audio()));
    case MediaType::kImage:
    case MediaType::kGraphic:
      return Base64Encode(EncodePpm(block.image()));
    case MediaType::kVideo:
      return UnimplementedError("inline video is not supported; use store or generator content");
  }
  return InternalError("unknown medium");
}

StatusOr<DataBlock> DecodeInlinePayload(MediaType medium, const std::string& body) {
  switch (medium) {
    case MediaType::kText:
      return DataBlock::FromText(TextBlock(body, TextFormatting{}));
    case MediaType::kAudio: {
      CMIF_ASSIGN_OR_RETURN(std::string wav, Base64Decode(body));
      CMIF_ASSIGN_OR_RETURN(AudioBuffer audio, DecodeWav(wav));
      return DataBlock::FromAudio(std::move(audio));
    }
    case MediaType::kImage:
    case MediaType::kGraphic: {
      CMIF_ASSIGN_OR_RETURN(std::string ppm, Base64Decode(body));
      CMIF_ASSIGN_OR_RETURN(Raster image, DecodePpm(ppm));
      return DataBlock::FromImage(std::move(image), medium);
    }
    case MediaType::kVideo:
      return UnimplementedError("inline video is not supported");
  }
  return InternalError("unknown medium");
}

}  // namespace

StatusOr<std::string> WriteDescriptor(const DataDescriptor& descriptor) {
  std::ostringstream os;
  os << "(descriptor " << descriptor.id() << " " << descriptor.attrs().ToString();
  const ContentRef& content = descriptor.content();
  if (const auto* key = std::get_if<std::string>(&content)) {
    os << " store " << QuoteString(*key);
  } else if (const auto* gen = std::get_if<GeneratorSpec>(&content)) {
    os << " generator " << gen->generator << " " << QuoteString(gen->params) << " "
       << gen->duration.ToString() << " " << gen->approx_bytes;
  } else if (const auto* block = std::get_if<DataBlock>(&content)) {
    CMIF_ASSIGN_OR_RETURN(std::string body, EncodeInlinePayload(*block));
    os << " inline " << MediaTypeName(block->medium()) << " " << QuoteString(body);
  }
  os << ")";
  return os.str();
}

StatusOr<std::string> WriteCatalog(const DescriptorStore& store) {
  std::string out = "; CMIF descriptor catalog\n";
  for (const DataDescriptor& d : store.descriptors()) {
    CMIF_ASSIGN_OR_RETURN(std::string line, WriteDescriptor(d));
    out += line;
    out += '\n';
  }
  return out;
}

StatusOr<DescriptorStore> ReadCatalog(const std::string& text) {
  DescriptorStore store;
  Lexer lexer(text);
  while (true) {
    CMIF_ASSIGN_OR_RETURN(Token token, lexer.Peek());
    if (token.kind == TokenKind::kEnd) {
      return store;
    }
    CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
    CMIF_ASSIGN_OR_RETURN(Token keyword, lexer.Expect(TokenKind::kWord));
    if (keyword.text != "descriptor") {
      return DataLossError(StrFormat("line %d: expected 'descriptor', got '%s'", keyword.line,
                                     keyword.text.c_str()));
    }
    CMIF_ASSIGN_OR_RETURN(Token id, lexer.Expect(TokenKind::kWord));
    CMIF_ASSIGN_OR_RETURN(AttrList attrs, ParseAttrList(lexer));
    DataDescriptor descriptor(id.text, std::move(attrs));

    CMIF_ASSIGN_OR_RETURN(Token next, lexer.Next());
    if (next.kind == TokenKind::kWord) {
      if (next.text == "store") {
        CMIF_ASSIGN_OR_RETURN(Token key, lexer.Expect(TokenKind::kString));
        descriptor.set_content(key.text);
      } else if (next.text == "generator") {
        GeneratorSpec spec;
        CMIF_ASSIGN_OR_RETURN(Token name, lexer.Expect(TokenKind::kWord));
        spec.generator = name.text;
        CMIF_ASSIGN_OR_RETURN(Token params, lexer.Expect(TokenKind::kString));
        spec.params = params.text;
        CMIF_ASSIGN_OR_RETURN(Token duration, lexer.Expect(TokenKind::kWord));
        CMIF_ASSIGN_OR_RETURN(spec.duration, ParseMediaTime(duration.text));
        CMIF_ASSIGN_OR_RETURN(Token bytes, lexer.Expect(TokenKind::kWord));
        spec.approx_bytes = static_cast<std::size_t>(std::strtoll(bytes.text.c_str(), nullptr, 10));
        descriptor.set_content(std::move(spec));
      } else if (next.text == "inline") {
        CMIF_ASSIGN_OR_RETURN(Token medium_word, lexer.Expect(TokenKind::kWord));
        CMIF_ASSIGN_OR_RETURN(MediaType medium, ParseMediaType(medium_word.text));
        CMIF_ASSIGN_OR_RETURN(Token body, lexer.Expect(TokenKind::kString));
        CMIF_ASSIGN_OR_RETURN(DataBlock block, DecodeInlinePayload(medium, body.text));
        descriptor.set_content(std::move(block));
      } else {
        return DataLossError(StrFormat("line %d: unknown content kind '%s'", next.line,
                                       next.text.c_str()));
      }
      CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
    } else if (next.kind != TokenKind::kRParen) {
      return DataLossError(StrFormat("line %d: expected content kind or ')'", next.line));
    }
    CMIF_RETURN_IF_ERROR(store.Add(std::move(descriptor)));
  }
}

}  // namespace cmif
