#include "src/ddbms/shared_store.h"

#include <algorithm>

#include "src/base/string_util.h"

namespace cmif {

ShardedRwLock::ShardedRwLock(int stripes) : stripes_(std::max(1, stripes)) {
  stripes_storage_ = std::make_unique<Stripe[]>(stripes_);
}

std::size_t ShardedRwLock::StripeFor(std::thread::id id) const {
  std::size_t raw = std::hash<std::thread::id>{}(id);
  // Mix: thread ids are often small sequential integers.
  return Fnv1a64Combine(0xcbf29ce484222325ULL, raw) % static_cast<std::size_t>(stripes_);
}

ShardedRwLock::ReadGuard::ReadGuard(const ShardedRwLock& lock)
    : mu_(lock.stripes_storage_[lock.StripeFor(std::this_thread::get_id())].mu) {
  mu_.lock_shared();
}

ShardedRwLock::ReadGuard::~ReadGuard() { mu_.unlock_shared(); }

ShardedRwLock::WriteGuard::WriteGuard(const ShardedRwLock& lock) : lock_(lock) {
  for (int i = 0; i < lock_.stripes_; ++i) {
    lock_.stripes_storage_[i].mu.lock();
  }
}

ShardedRwLock::WriteGuard::~WriteGuard() {
  for (int i = lock_.stripes_ - 1; i >= 0; --i) {
    lock_.stripes_storage_[i].mu.unlock();
  }
}

Status SharedDescriptorStore::Add(DataDescriptor descriptor) {
  return WithWrite([&](DescriptorStore& store) { return store.Add(std::move(descriptor)); });
}

void SharedDescriptorStore::Upsert(DataDescriptor descriptor) {
  WithWrite([&](DescriptorStore& store) {
    store.Upsert(std::move(descriptor));
    return 0;
  });
}

bool SharedDescriptorStore::Remove(const std::string& id) {
  return WithWrite([&](DescriptorStore& store) { return store.Remove(id); });
}

std::optional<DataDescriptor> SharedDescriptorStore::GetCopy(const std::string& id) const {
  return WithRead([&](const DescriptorStore& store) -> std::optional<DataDescriptor> {
    const DataDescriptor* found = store.Get(id);
    if (found == nullptr) {
      return std::nullopt;
    }
    return *found;
  });
}

std::vector<DataDescriptor> SharedDescriptorStore::ExecuteCopy(const Query& query,
                                                               QueryStats* stats) const {
  return WithRead([&](const DescriptorStore& store) {
    std::vector<DataDescriptor> results;
    for (const DataDescriptor* descriptor : store.Execute(query, stats)) {
      results.push_back(*descriptor);
    }
    return results;
  });
}

std::size_t SharedDescriptorStore::size() const {
  return WithRead([](const DescriptorStore& store) { return store.size(); });
}

Status SharedBlockStore::Put(std::string key, DataBlock block) {
  return WithWrite(
      [&](BlockStore& store) { return store.Put(std::move(key), std::move(block)); });
}

void SharedBlockStore::Set(std::string key, DataBlock block) {
  WithWrite([&](BlockStore& store) {
    store.Set(std::move(key), std::move(block));
    return 0;
  });
}

StatusOr<DataBlock> SharedBlockStore::Get(const std::string& key) const {
  return WithRead([&](const BlockStore& store) { return store.Get(key); });
}

bool SharedBlockStore::Has(const std::string& key) const {
  return WithRead([&](const BlockStore& store) { return store.Has(key); });
}

std::size_t SharedBlockStore::size() const {
  return WithRead([](const BlockStore& store) { return store.size(); });
}

std::size_t SharedBlockStore::TotalBytes() const {
  return WithRead([](const BlockStore& store) { return store.TotalBytes(); });
}

}  // namespace cmif
