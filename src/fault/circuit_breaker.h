// Circuit breakers for the recovery layer: after `failure_threshold`
// consecutive failures a breaker opens and fails fast (Allow() == false) for
// `open_ms`; the first Allow() after the window moves it to half-open, where
// a bounded number of probe requests run — `half_open_successes` consecutive
// successes close the circuit, any failure reopens it. Time comes from
// fault::GlobalClock() so transitions are exactly testable with a FakeClock.
//
// BreakerSet keys breakers by name (a store shard, a playback channel) with
// stable addresses, mirroring the obs::MetricsRegistry pattern.
#ifndef SRC_FAULT_CIRCUIT_BREAKER_H_
#define SRC_FAULT_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/fault/clock.h"

namespace cmif {
namespace fault {

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

std::string_view BreakerStateName(BreakerState state);

struct BreakerOptions {
  int failure_threshold = 5;      // consecutive failures that open the circuit
  std::int64_t open_ms = 1000;    // fail-fast window before probing resumes
  int half_open_successes = 2;    // consecutive probe successes that close it
  int half_open_probes = 2;       // probes admitted per half-open round
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options = {}) : options_(options) {}
  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  // May this call proceed? Open circuits answer false until the open window
  // elapses, then transition to half-open and admit up to half_open_probes
  // calls; excess probes are rejected until their results arrive.
  bool Allow();

  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  // Times the circuit has opened since construction.
  std::uint64_t opens() const;
  // Calls rejected by an open (or probe-saturated half-open) circuit.
  std::uint64_t rejected() const;

 private:
  void OpenLocked(std::int64_t now_micros);

  BreakerOptions options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int half_open_in_flight_ = 0;
  std::int64_t reopen_at_micros_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t rejected_ = 0;
};

// Named breakers with stable addresses (references stay valid forever).
class BreakerSet {
 public:
  explicit BreakerSet(BreakerOptions options = {}) : options_(options) {}

  CircuitBreaker& For(std::string_view key);
  // Snapshot of (key, state) pairs in key order.
  std::map<std::string, BreakerState> States() const;
  // Sum of opens() over all breakers.
  std::uint64_t TotalOpens() const;

 private:
  BreakerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>, std::less<>> breakers_;
};

}  // namespace fault
}  // namespace cmif

#endif  // SRC_FAULT_CIRCUIT_BREAKER_H_
