#include "src/fault/fault.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "src/base/string_util.h"
#include "src/fault/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace fault {
namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// The plan plus per-site decision counters, guarded by one mutex. Probes
// only reach this after the relaxed Enabled() check, so the lock is never
// taken on a fault-free hot path.
struct PlanState {
  std::mutex mu;
  FaultPlan plan;
  std::map<std::string, std::uint64_t, std::less<>> site_counters;

  std::atomic<std::uint64_t> transient{0};
  std::atomic<std::uint64_t> latency{0};
  std::atomic<std::uint64_t> stall{0};
  std::atomic<std::uint64_t> corrupt{0};
  std::atomic<std::uint64_t> probes{0};
};

PlanState& State() {
  static PlanState* state = new PlanState();
  return *state;
}

bool SitePatternMatches(std::string_view pattern, std::string_view site) {
  if (site.size() < pattern.size() || site.substr(0, pattern.size()) != pattern) {
    return false;
  }
  return site.size() == pattern.size() || site[pattern.size()] == '.';
}

// One deterministic decision for `site`: draws u from (seed, site, call
// index) and maps it onto the config's cumulative probability bands.
struct Decision {
  FaultKind kind = FaultKind::kNone;
  FaultSiteConfig config;
  std::uint64_t draw = 0;  // raw hash, reused to pick corruption positions
};

Decision Decide(std::string_view site) {
  PlanState& state = State();
  FaultSiteConfig config;
  std::uint64_t seed = 0;
  std::uint64_t index = 0;
  bool matched = false;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    for (const auto& [pattern, site_config] : state.plan.sites) {
      if (SitePatternMatches(pattern, site)) {
        config = site_config;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return {};
    }
    seed = state.plan.seed;
    auto it = state.site_counters.find(site);
    if (it == state.site_counters.end()) {
      it = state.site_counters.emplace(std::string(site), 0).first;
    }
    index = it->second++;
  }
  state.probes.fetch_add(1, std::memory_order_relaxed);

  Decision decision;
  decision.config = config;
  decision.draw = SplitMix64(seed ^ Fnv1a64(site) ^ index * 0x9E3779B97F4A7C15ULL);
  double u = static_cast<double>(decision.draw >> 11) * 0x1.0p-53;
  double edge = config.transient_p;
  if (u < edge) {
    decision.kind = FaultKind::kTransient;
    return decision;
  }
  edge += config.latency_p;
  if (u < edge) {
    decision.kind = FaultKind::kLatency;
    return decision;
  }
  edge += config.stall_p;
  if (u < edge) {
    decision.kind = FaultKind::kStall;
    return decision;
  }
  edge += config.corrupt_p;
  if (u < edge) {
    decision.kind = FaultKind::kCorrupt;
  }
  return decision;
}

void CountInjection(FaultKind kind) {
  PlanState& state = State();
  switch (kind) {
    case FaultKind::kTransient:
      state.transient.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kLatency:
      state.latency.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kStall:
      state.stall.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kCorrupt:
      state.corrupt.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kNone:
      return;
  }
  if (obs::Enabled()) {
    // One cached counter per kind: injection probes sit on hot paths and
    // must not concatenate names or take the registry lock per hit.
    static obs::Counter* const kInjected[] = {
        nullptr,  // kNone returns above
        &obs::GetCounter("fault.injected.transient"),
        &obs::GetCounter("fault.injected.latency"),
        &obs::GetCounter("fault.injected.stall"),
        &obs::GetCounter("fault.injected.corrupt"),
    };
    kInjected[static_cast<std::size_t>(kind)]->Add();
  }
}

// Sleeps for `ms` of injected delay, clamped to the thread's remaining
// deadline budget. Returns false when the full delay did not fit.
bool SleepWithinDeadline(std::int64_t ms) {
  std::int64_t want = ms * 1000;
  std::int64_t remaining = RemainingDeadlineMicros();
  std::int64_t granted = std::min(want, std::max<std::int64_t>(remaining, 0));
  GlobalClock().SleepMicros(granted);
  return granted >= want && !DeadlineExpired();
}

Status ParsePlanEntry(std::string_view entry, FaultPlan& plan) {
  std::size_t colon = entry.find(':');
  if (colon == std::string_view::npos) {
    return InvalidArgumentError(StrFormat("fault plan entry '%s' has no ':' (want site:kind=p)",
                                          std::string(entry).c_str()));
  }
  std::string site(TrimString(entry.substr(0, colon)));
  if (site.empty()) {
    return InvalidArgumentError("fault plan entry has an empty site pattern");
  }
  FaultSiteConfig config;
  for (const std::string& part : SplitString(entry.substr(colon + 1), ',')) {
    std::string_view setting = TrimString(part);
    std::size_t eq = setting.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError(StrFormat("fault setting '%s' has no '='",
                                            std::string(setting).c_str()));
    }
    std::string_view kind = TrimString(setting.substr(0, eq));
    std::string_view value = TrimString(setting.substr(eq + 1));
    std::int64_t delay_ms = -1;
    std::size_t at = value.find('@');
    if (at != std::string_view::npos) {
      std::string_view delay = value.substr(at + 1);
      if (delay.size() >= 2 && delay.substr(delay.size() - 2) == "ms") {
        delay = delay.substr(0, delay.size() - 2);
      }
      delay_ms = std::strtoll(std::string(delay).c_str(), nullptr, 10);
      if (delay_ms <= 0) {
        return InvalidArgumentError(StrFormat("fault delay in '%s' must be positive milliseconds",
                                              std::string(setting).c_str()));
      }
      value = value.substr(0, at);
    }
    double p = std::strtod(std::string(value).c_str(), nullptr);
    if (p < 0 || p > 1) {
      return InvalidArgumentError(StrFormat("fault probability in '%s' must be in [0,1]",
                                            std::string(setting).c_str()));
    }
    if (kind == "transient") {
      config.transient_p = p;
    } else if (kind == "latency") {
      config.latency_p = p;
      if (delay_ms > 0) {
        config.latency_ms = delay_ms;
      }
    } else if (kind == "stall") {
      config.stall_p = p;
      if (delay_ms > 0) {
        config.stall_ms = delay_ms;
      }
    } else if (kind == "corrupt") {
      config.corrupt_p = p;
    } else {
      return InvalidArgumentError(StrFormat(
          "unknown fault kind '%s' (want transient|latency|stall|corrupt)",
          std::string(kind).c_str()));
    }
  }
  if (config.transient_p + config.latency_p + config.stall_p + config.corrupt_p > 1.0) {
    return InvalidArgumentError(
        StrFormat("fault probabilities for site '%s' sum past 1.0", site.c_str()));
  }
  if (!IsKnownFaultSitePattern(site)) {
    std::string known;
    for (std::string_view name : KnownFaultSites()) {
      if (!known.empty()) {
        known += ", ";
      }
      known += name;
    }
    return InvalidArgumentError(StrFormat(
        "unknown fault site '%s' (the plan would silently do nothing); known sites: %s",
        site.c_str(), known.c_str()));
  }
  plan.sites.emplace_back(std::move(site), config);
  return Status::Ok();
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "?";
}

StatusOr<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  for (const std::string& raw : SplitString(spec, ';')) {
    std::string_view entry = TrimString(raw);
    if (entry.empty()) {
      continue;
    }
    if (StartsWith(entry, "seed=")) {
      plan.seed = std::strtoull(std::string(entry.substr(5)).c_str(), nullptr, 10);
      continue;
    }
    CMIF_RETURN_IF_ERROR(ParsePlanEntry(entry, plan));
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = StrFormat("seed=%llu", static_cast<unsigned long long>(seed));
  for (const auto& [site, config] : sites) {
    out += ';';
    out += site;
    out += ':';
    std::vector<std::string> settings;
    if (config.transient_p > 0) {
      settings.push_back(StrFormat("transient=%g", config.transient_p));
    }
    if (config.latency_p > 0) {
      settings.push_back(StrFormat("latency=%g@%lldms", config.latency_p,
                                   static_cast<long long>(config.latency_ms)));
    }
    if (config.stall_p > 0) {
      settings.push_back(
          StrFormat("stall=%g@%lldms", config.stall_p, static_cast<long long>(config.stall_ms)));
    }
    if (config.corrupt_p > 0) {
      settings.push_back(StrFormat("corrupt=%g", config.corrupt_p));
    }
    out += JoinStrings(settings, ",");
  }
  return out;
}

FaultPlan StandardChaosPlan(int level, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (level <= 0) {
    return plan;
  }
  double scale = static_cast<double>(level);
  auto capped = [&](double base) { return std::min(0.9, base * scale); };

  FaultSiteConfig block;
  block.transient_p = capped(0.02);
  block.latency_p = capped(0.05);
  block.latency_ms = 10;
  block.stall_p = capped(0.005);
  block.stall_ms = 100;
  plan.sites.emplace_back("ddbms.block.get", block);

  FaultSiteConfig persist;
  persist.corrupt_p = capped(0.05);
  plan.sites.emplace_back("ddbms.persist.read", persist);

  FaultSiteConfig compile;
  compile.transient_p = capped(0.01);
  compile.latency_p = capped(0.02);
  compile.latency_ms = 5;
  compile.stall_p = capped(0.002);
  compile.stall_ms = 150;
  plan.sites.emplace_back("serve.compile", compile);

  FaultSiteConfig device;
  device.transient_p = capped(0.01);
  device.latency_p = capped(0.05);
  device.latency_ms = 20;
  plan.sites.emplace_back("player.device", device);

  // Network path (src/net): transient accept/read/write failures plus
  // in-transit frame corruption. No stalls — socket reads have no
  // ScopedDeadline, and the client's reconnect ladder is the recovery under
  // test, not timeout clamping.
  FaultSiteConfig net_accept;
  net_accept.transient_p = capped(0.02);
  plan.sites.emplace_back("net.accept", net_accept);
  FaultSiteConfig net_io;
  net_io.transient_p = capped(0.01);
  plan.sites.emplace_back("net.read", net_io);
  plan.sites.emplace_back("net.write", net_io);
  FaultSiteConfig net_corrupt;
  net_corrupt.corrupt_p = capped(0.02);
  plan.sites.emplace_back("net.frame_corrupt", net_corrupt);
  // Reactor-era sites: a transient net.partial_write truncates one flush
  // attempt to a single byte (short-write resumption under load); a
  // net.slow_loris latency injection delays a client's frame write, aging
  // the server's partial-frame timer.
  FaultSiteConfig net_partial;
  net_partial.transient_p = capped(0.05);
  plan.sites.emplace_back("net.partial_write", net_partial);
  FaultSiteConfig net_loris;
  net_loris.latency_p = capped(0.02);
  net_loris.latency_ms = 15;
  plan.sites.emplace_back("net.slow_loris", net_loris);
  // Streamed delivery (wire v4): a transient net.chunk.drop cuts the chunk
  // stream mid-transfer and drops the connection — the client reconnects
  // and resumes at its contiguous chunk boundary. net.chunk.corrupt flips
  // payload bytes *before* framing, so the frame CRC still passes and only
  // the end-to-end stream hash catches it, forcing a restart from chunk 0
  // (a resume would replay the corrupt prefix).
  FaultSiteConfig chunk_drop;
  chunk_drop.transient_p = capped(0.02);
  plan.sites.emplace_back("net.chunk.drop", chunk_drop);
  FaultSiteConfig chunk_corrupt;
  chunk_corrupt.corrupt_p = capped(0.01);
  plan.sites.emplace_back("net.chunk.corrupt", chunk_corrupt);

  // Persistent-cache commit path (src/serve/persistent_cache): transient
  // write/fsync/rename failures abort a commit (the entry stays memory-only),
  // corrupt writes land rotten bytes on disk that the CRC must catch on
  // read, and transient reads are served as misses. No stalls — commits run
  // on the write-behind thread with no ScopedDeadline to clamp them.
  FaultSiteConfig pcache_write;
  pcache_write.transient_p = capped(0.02);
  pcache_write.corrupt_p = capped(0.02);
  plan.sites.emplace_back("fs.pcache.write", pcache_write);
  FaultSiteConfig pcache_read;
  pcache_read.transient_p = capped(0.01);
  plan.sites.emplace_back("fs.pcache.read", pcache_read);
  FaultSiteConfig pcache_meta;
  pcache_meta.transient_p = capped(0.01);
  plan.sites.emplace_back("fs.pcache.rename", pcache_meta);
  plan.sites.emplace_back("fs.pcache.fsync", pcache_meta);
  return plan;
}

const std::vector<std::string_view>& KnownFaultSites() {
  // Keep in sync with every InjectPoint/InjectDeviceFault/MaybeCorrupt call
  // site; tests/fault/fault_test.cc cross-checks the StandardChaosPlan
  // entries against this list.
  static const std::vector<std::string_view>* const kSites =
      new std::vector<std::string_view>{
          "ddbms.block.get",
          "ddbms.persist.read",
          "serve.compile",
          "player.device",  // family: per-channel suffixes at runtime
          "net.accept",
          "net.read",
          "net.write",
          "net.frame_corrupt",
          "net.partial_write",
          "net.slow_loris",
          "net.chunk.drop",
          "net.chunk.corrupt",
          "fs.pcache.write",
          "fs.pcache.read",
          "fs.pcache.rename",
          "fs.pcache.fsync",
      };
  return *kSites;
}

bool IsKnownFaultSitePattern(std::string_view pattern) {
  for (std::string_view site : KnownFaultSites()) {
    // Covers the site ("net" -> "net.read") or specializes a family
    // ("player.device.video" under "player.device").
    if (SitePatternMatches(pattern, site) || SitePatternMatches(site, pattern)) {
      return true;
    }
  }
  return false;
}

#ifndef CMIF_FAULT_DISABLED
namespace detail {
std::atomic<bool> g_active{false};
}  // namespace detail
#endif

void SetPlan(FaultPlan plan) {
  PlanState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.plan = std::move(plan);
    state.site_counters.clear();
  }
  ResetCounts();
#ifndef CMIF_FAULT_DISABLED
  bool active = false;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    for (const auto& [site, config] : state.plan.sites) {
      (void)site;
      if (!config.empty()) {
        active = true;
        break;
      }
    }
  }
  detail::g_active.store(active, std::memory_order_relaxed);
#endif
}

void ClearPlan() { SetPlan(FaultPlan{.seed = 1, .sites = {}}); }

FaultPlan CurrentPlan() {
  PlanState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.plan;
}

InjectionCounts Counts() {
  PlanState& state = State();
  InjectionCounts counts;
  counts.transient = state.transient.load(std::memory_order_relaxed);
  counts.latency = state.latency.load(std::memory_order_relaxed);
  counts.stall = state.stall.load(std::memory_order_relaxed);
  counts.corrupt = state.corrupt.load(std::memory_order_relaxed);
  counts.probes = state.probes.load(std::memory_order_relaxed);
  return counts;
}

void ResetCounts() {
  PlanState& state = State();
  state.transient.store(0, std::memory_order_relaxed);
  state.latency.store(0, std::memory_order_relaxed);
  state.stall.store(0, std::memory_order_relaxed);
  state.corrupt.store(0, std::memory_order_relaxed);
  state.probes.store(0, std::memory_order_relaxed);
}

#ifndef CMIF_FAULT_DISABLED

Status InjectPoint(std::string_view site) {
  if (!Enabled()) {
    return Status::Ok();
  }
  Decision decision = Decide(site);
  switch (decision.kind) {
    case FaultKind::kNone:
    case FaultKind::kCorrupt:  // corruption is for MaybeCorrupt sites
      return Status::Ok();
    case FaultKind::kTransient:
      CountInjection(FaultKind::kTransient);
      return UnavailableError(StrFormat("injected transient fault at %s",
                                        std::string(site).c_str()));
    case FaultKind::kLatency:
      CountInjection(FaultKind::kLatency);
      if (!SleepWithinDeadline(decision.config.latency_ms)) {
        return UnavailableError(StrFormat("injected latency at %s exceeded the attempt deadline",
                                          std::string(site).c_str()));
      }
      return Status::Ok();
    case FaultKind::kStall:
      CountInjection(FaultKind::kStall);
      // A stall hangs until the deadline aborts it (or for its full length
      // when no deadline is set) and then fails: stalls are never absorbed.
      SleepWithinDeadline(decision.config.stall_ms);
      return UnavailableError(StrFormat("injected stall at %s", std::string(site).c_str()));
  }
  return Status::Ok();
}

DeviceFault InjectDeviceFault(std::string_view site) {
  DeviceFault fault;
  if (!Enabled()) {
    return fault;
  }
  Decision decision = Decide(site);
  switch (decision.kind) {
    case FaultKind::kNone:
    case FaultKind::kCorrupt:
      break;
    case FaultKind::kTransient:
      CountInjection(FaultKind::kTransient);
      fault.drop = true;
      break;
    case FaultKind::kLatency:
      CountInjection(FaultKind::kLatency);
      fault.extra_latency_ms = decision.config.latency_ms;
      break;
    case FaultKind::kStall:
      CountInjection(FaultKind::kStall);
      fault.extra_latency_ms = decision.config.stall_ms;
      break;
  }
  return fault;
}

bool MaybeCorrupt(std::string_view site, std::string& payload) {
  if (!Enabled() || payload.empty()) {
    return false;
  }
  Decision decision = Decide(site);
  if (decision.kind != FaultKind::kCorrupt) {
    return false;
  }
  CountInjection(FaultKind::kCorrupt);
  // Flip a byte at up to four deterministic positions derived from the draw.
  std::uint64_t bits = decision.draw;
  for (int i = 0; i < 4; ++i) {
    std::size_t position = static_cast<std::size_t>(bits % payload.size());
    payload[position] = static_cast<char>(payload[position] ^ static_cast<char>(0x20 | (i + 1)));
    bits = SplitMix64(bits);
  }
  return true;
}

#endif  // CMIF_FAULT_DISABLED

}  // namespace fault
}  // namespace cmif
