// The recovery layer's time source: an injectable clock plus per-attempt
// deadlines. Retry backoff, circuit-breaker open windows, and injected
// latency/stall sleeps all go through GlobalClock(), so tests swap in a
// FakeClock and every timing assertion becomes exact and instant.
//
// Deadlines are thread-local and absolute: a ScopedDeadline bounds one
// attempt, injected sleeps clamp themselves to the remaining budget, and an
// expired deadline turns a stall into a fast kUnavailable instead of a hang.
// This file is always compiled (it is the recovery layer, not the injection
// layer); only the src/fault/fault.h probes respect CMIF_FAULT_DISABLED.
#ifndef SRC_FAULT_CLOCK_H_
#define SRC_FAULT_CLOCK_H_

#include <cstdint>
#include <mutex>

namespace cmif {
namespace fault {

// Monotonic time + sleep. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  // Microseconds on an arbitrary monotonic epoch.
  virtual std::int64_t NowMicros() = 0;
  // Blocks (or virtually advances) for `micros`; negative is a no-op.
  virtual void SleepMicros(std::int64_t micros) = 0;
};

// std::chrono::steady_clock + std::this_thread::sleep_for.
class SystemClock : public Clock {
 public:
  std::int64_t NowMicros() override;
  void SleepMicros(std::int64_t micros) override;
};

// A manually advanced clock: Sleep advances time instead of blocking, so
// backoff/open-window tests run in microseconds of wall time.
class FakeClock : public Clock {
 public:
  explicit FakeClock(std::int64_t start_micros = 0) : now_micros_(start_micros) {}

  std::int64_t NowMicros() override;
  void SleepMicros(std::int64_t micros) override;
  // Advances without a sleeper (e.g. to expire a breaker's open window).
  void AdvanceMicros(std::int64_t micros);
  // Total virtual time spent inside SleepMicros.
  std::int64_t slept_micros() const;

 private:
  mutable std::mutex mu_;
  std::int64_t now_micros_ = 0;
  std::int64_t slept_micros_ = 0;
};

// The process clock used by retry, breakers, and injected sleeps. Defaults
// to a SystemClock singleton.
Clock& GlobalClock();
// Overrides the global clock (nullptr restores the system clock). Test-only;
// not synchronized against in-flight sleepers.
void SetGlobalClockForTest(Clock* clock);

// RAII per-attempt deadline on the calling thread, measured on GlobalClock().
// Nested deadlines keep the tighter (earlier) bound; destruction restores the
// outer one. budget_ms <= 0 means "no deadline" (the scope is a no-op).
class ScopedDeadline {
 public:
  explicit ScopedDeadline(std::int64_t budget_ms);
  ~ScopedDeadline();
  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  std::int64_t previous_;
};

// Microseconds left before the innermost deadline on this thread; a large
// positive sentinel (> 10^15) when none is set.
std::int64_t RemainingDeadlineMicros();
// True when a deadline is set and has passed.
bool DeadlineExpired();

}  // namespace fault
}  // namespace cmif

#endif  // SRC_FAULT_CLOCK_H_
