#include "src/fault/clock.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace cmif {
namespace fault {
namespace {

constexpr std::int64_t kNoDeadline = INT64_MAX;

std::atomic<Clock*> g_clock{nullptr};

thread_local std::int64_t t_deadline_micros = kNoDeadline;

}  // namespace

std::int64_t SystemClock::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepMicros(std::int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

std::int64_t FakeClock::NowMicros() {
  std::lock_guard<std::mutex> lock(mu_);
  return now_micros_;
}

void FakeClock::SleepMicros(std::int64_t micros) {
  if (micros <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  now_micros_ += micros;
  slept_micros_ += micros;
}

void FakeClock::AdvanceMicros(std::int64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  now_micros_ += micros;
}

std::int64_t FakeClock::slept_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slept_micros_;
}

Clock& GlobalClock() {
  static SystemClock* system_clock = new SystemClock();
  Clock* override_clock = g_clock.load(std::memory_order_acquire);
  return override_clock != nullptr ? *override_clock : *system_clock;
}

void SetGlobalClockForTest(Clock* clock) { g_clock.store(clock, std::memory_order_release); }

ScopedDeadline::ScopedDeadline(std::int64_t budget_ms) : previous_(t_deadline_micros) {
  if (budget_ms > 0) {
    std::int64_t deadline = GlobalClock().NowMicros() + budget_ms * 1000;
    if (deadline < t_deadline_micros) {
      t_deadline_micros = deadline;
    }
  }
}

ScopedDeadline::~ScopedDeadline() { t_deadline_micros = previous_; }

std::int64_t RemainingDeadlineMicros() {
  if (t_deadline_micros == kNoDeadline) {
    return kNoDeadline;
  }
  return t_deadline_micros - GlobalClock().NowMicros();
}

bool DeadlineExpired() {
  return t_deadline_micros != kNoDeadline && GlobalClock().NowMicros() >= t_deadline_micros;
}

}  // namespace fault
}  // namespace cmif
