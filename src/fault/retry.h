// The retry policy of the recovery layer: capped exponential backoff with
// deterministic jitter and an optional per-attempt deadline. Only
// kUnavailable is retryable — every other code is a permanent answer and is
// returned on the first attempt. Backoff sleeps and deadlines run on
// fault::GlobalClock(), so a FakeClock makes the timing exactly testable.
#ifndef SRC_FAULT_RETRY_H_
#define SRC_FAULT_RETRY_H_

#include <cstdint>
#include <utility>

#include "src/base/status.h"
#include "src/fault/clock.h"
#include "src/obs/trace.h"

namespace cmif {
namespace fault {

struct RetryPolicy {
  int max_attempts = 4;                  // total tries, including the first
  std::int64_t initial_backoff_ms = 1;   // delay before the second attempt
  double multiplier = 2.0;               // growth per subsequent attempt
  std::int64_t max_backoff_ms = 100;     // cap on any single delay
  double jitter = 0.5;                   // fraction of each delay randomized
  std::int64_t attempt_deadline_ms = 0;  // per-attempt budget; 0 = none
  std::uint64_t seed = 1;                // jitter determinism
};

// True when `status` is worth retrying (kUnavailable).
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

// The backoff delay before attempt `attempt` (2-based: there is no delay
// before the first attempt). Exponential in (attempt - 2), capped at
// max_backoff_ms, with the top `jitter` fraction replaced by a deterministic
// hash of (policy.seed, salt, attempt) — so two breakers retrying the same
// shard spread out, yet a fixed seed replays exactly.
std::int64_t BackoffDelayMs(const RetryPolicy& policy, int attempt, std::uint64_t salt = 0);

namespace internal {
inline bool StatusOf(const Status& status, Status* out) {
  *out = status;
  return status.ok();
}
template <typename T>
bool StatusOf(const StatusOr<T>& result, Status* out) {
  *out = result.ok() ? Status::Ok() : result.status();
  return result.ok();
}
}  // namespace internal

// Runs `fn` (returning Status or StatusOr<T>) up to policy.max_attempts
// times, sleeping the backoff delay between attempts and bounding each
// attempt with policy.attempt_deadline_ms. Returns the first success or
// non-retryable error, else the last retryable error. `salt` diversifies the
// jitter stream (e.g. a request hash); `attempts_out`, when non-null,
// receives the number of attempts consumed.
template <typename Fn>
auto Retry(const RetryPolicy& policy, Fn&& fn, std::uint64_t salt = 0,
           int* attempts_out = nullptr) -> decltype(fn()) {
  int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    auto result = [&] {
      ScopedDeadline deadline(policy.attempt_deadline_ms);
      return fn();
    }();
    if (attempts_out != nullptr) {
      *attempts_out = attempt;
    }
    Status status;
    if (internal::StatusOf(result, &status) || !IsRetryable(status) || attempt >= max_attempts) {
      return result;
    }
    // About to retry: an anomaly by the always-sample rule — the request is
    // already off the happy path, so its trace should survive sampling.
    obs::RecordAnomaly("retry");
    GlobalClock().SleepMicros(BackoffDelayMs(policy, attempt + 1, salt) * 1000);
  }
}

}  // namespace fault
}  // namespace cmif

#endif  // SRC_FAULT_RETRY_H_
