#include "src/fault/circuit_breaker.h"

#include "src/obs/trace.h"

namespace cmif {
namespace fault {

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kClosed) {
    return true;
  }
  if (state_ == BreakerState::kOpen) {
    if (GlobalClock().NowMicros() < reopen_at_micros_) {
      ++rejected_;
      return false;
    }
    state_ = BreakerState::kHalfOpen;
    half_open_successes_ = 0;
    half_open_in_flight_ = 0;
  }
  // Half-open: admit a bounded probe round.
  if (half_open_in_flight_ >= options_.half_open_probes) {
    ++rejected_;
    return false;
  }
  ++half_open_in_flight_;
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ != BreakerState::kHalfOpen) {
    return;
  }
  if (half_open_in_flight_ > 0) {
    --half_open_in_flight_;
  }
  if (++half_open_successes_ >= options_.half_open_successes) {
    state_ = BreakerState::kClosed;
    half_open_successes_ = 0;
    half_open_in_flight_ = 0;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t now = GlobalClock().NowMicros();
  if (state_ == BreakerState::kHalfOpen) {
    OpenLocked(now);  // a failed probe reopens immediately
    return;
  }
  if (state_ == BreakerState::kOpen) {
    return;  // already failing fast
  }
  if (++consecutive_failures_ >= options_.failure_threshold) {
    OpenLocked(now);
  }
}

void CircuitBreaker::OpenLocked(std::int64_t now_micros) {
  state_ = BreakerState::kOpen;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  half_open_in_flight_ = 0;
  reopen_at_micros_ = now_micros + options_.open_ms * 1000;
  ++opens_;
  // A breaker opening is an anomaly: force-sample the current trace and dump
  // the flight recorder so the failures that tripped it are retained.
  obs::RecordAnomaly("breaker.open");
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

std::uint64_t CircuitBreaker::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

CircuitBreaker& BreakerSet::For(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(key);
  if (it == breakers_.end()) {
    it = breakers_.emplace(std::string(key), std::make_unique<CircuitBreaker>(options_)).first;
  }
  return *it->second;
}

std::map<std::string, BreakerState> BreakerSet::States() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, BreakerState> states;
  for (const auto& [key, breaker] : breakers_) {
    states.emplace(key, breaker->state());
  }
  return states;
}

std::uint64_t BreakerSet::TotalOpens() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, breaker] : breakers_) {
    (void)key;
    total += breaker->opens();
  }
  return total;
}

}  // namespace fault
}  // namespace cmif
