#include "src/fault/retry.h"

#include <algorithm>
#include <cmath>

namespace cmif {
namespace fault {
namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::int64_t BackoffDelayMs(const RetryPolicy& policy, int attempt, std::uint64_t salt) {
  if (attempt <= 1 || policy.initial_backoff_ms <= 0) {
    return 0;
  }
  double base = static_cast<double>(policy.initial_backoff_ms) *
                std::pow(std::max(1.0, policy.multiplier), attempt - 2);
  base = std::min(base, static_cast<double>(policy.max_backoff_ms));
  double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0) {
    std::uint64_t h =
        SplitMix64(policy.seed ^ salt * 0x9E3779B97F4A7C15ULL ^ static_cast<std::uint64_t>(attempt));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    base = base * (1.0 - jitter) + base * jitter * u;
  }
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(base));
}

}  // namespace fault
}  // namespace cmif
