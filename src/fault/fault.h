// Deterministic fault injection: seeded FaultPlans that make store reads,
// catalog loads, compiles, and playback devices fail, slow down, stall, or
// corrupt — reproducibly. The overhead contract mirrors src/obs: with
// CMIF_FAULT_DISABLED defined every probe here compiles to nothing; in a
// normal build a probe with no plan installed costs one relaxed atomic load.
//
// Sites are dotted names ("ddbms.block.get", "player.device.video"); a plan
// entry's site pattern matches by prefix, so "player.device" covers every
// channel. Each decision hashes (plan seed, site name, per-site call index),
// so a given plan replays the exact same fault sequence on every run —
// chaos tests and bench/fig12_chaos are deterministic.
//
// Probe families:
//  - InjectPoint(site): wall-clock operations returning Status. May return
//    kUnavailable (transient / stall) or sleep (latency) through
//    fault::GlobalClock(), clamped to the caller's ScopedDeadline so an
//    injected stall can never hang a request.
//  - InjectDeviceFault(site): virtual-time playback faults (extra device
//    latency or a dropped presentation); never sleeps.
//  - MaybeCorrupt(site, payload): deterministic byte flips for persisted
//    payloads; detected downstream by CRC checks (src/ddbms/persist).
#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace cmif {
namespace fault {

// What one probe decision injects.
enum class FaultKind {
  kNone = 0,
  kTransient,  // fail fast with kUnavailable
  kLatency,    // succeed after latency_ms
  kStall,      // hang for stall_ms (deadline-clamped), then kUnavailable
  kCorrupt,    // flip payload bytes (corruptible sites only)
};

std::string_view FaultKindName(FaultKind kind);

// Per-site fault probabilities. The four probabilities are disjoint outcomes
// of one uniform draw; their sum must be <= 1 (the remainder is "no fault").
struct FaultSiteConfig {
  double transient_p = 0;
  double latency_p = 0;
  double stall_p = 0;
  double corrupt_p = 0;
  std::int64_t latency_ms = 5;    // injected service delay
  std::int64_t stall_ms = 250;    // injected hang before the stall fails

  bool empty() const { return transient_p <= 0 && latency_p <= 0 && stall_p <= 0 && corrupt_p <= 0; }
};

// A seeded set of (site pattern, config) entries. Patterns match sites by
// dotted-prefix ("player.device" matches "player.device.video" and itself;
// it does not match "player.devices"). The first matching entry wins.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<std::pair<std::string, FaultSiteConfig>> sites;

  bool empty() const { return sites.empty(); }

  // Parses a plan spec, the `--faults=` syntax:
  //   seed=42;ddbms.block.get:transient=0.05,latency=0.1@20ms;serve.compile:stall=0.01@250ms
  // Entries are ';'-separated. "seed=<n>" sets the seed; every other entry is
  // "<site>:<kind>=<p>[@<delay>ms][,...]" with kinds transient, latency,
  // stall, corrupt (delay applies to latency/stall).
  static StatusOr<FaultPlan> Parse(std::string_view spec);

  // The spec form of this plan (parseable by Parse).
  std::string ToString() const;
};

// A canonical escalation ladder for chaos runs: level 0 is fault-free and
// each level raises probabilities across the store/compile/device sites.
// bench/fig12_chaos quotes its acceptance numbers at level 2.
FaultPlan StandardChaosPlan(int level, std::uint64_t seed = 42);

// Every dotted site name probed anywhere in the tree, in registry order.
// Families with dynamic suffixes (the per-channel "player.device.<channel>"
// probes) are listed by their stable prefix.
const std::vector<std::string_view>& KnownFaultSites();

// True when `pattern` could ever match a real probe: it prefix-covers a
// registered site ("net" covers "net.read") or specializes a registered
// family ("player.device.video" specializes "player.device").
// FaultPlan::Parse rejects patterns this returns false for, so a typo like
// "ddbms.blok.get" fails loudly instead of silently arming nothing. SetPlan
// stays unrestricted — tests may probe ad-hoc sites.
bool IsKnownFaultSitePattern(std::string_view pattern);

#ifdef CMIF_FAULT_DISABLED
constexpr bool Enabled() { return false; }
#else
namespace detail {
extern std::atomic<bool> g_active;
}  // namespace detail

// True when a plan is installed. Probes are no-ops otherwise.
inline bool Enabled() { return detail::g_active.load(std::memory_order_relaxed); }
#endif

// Installs `plan` process-wide (resets per-site call counters and injection
// totals); an empty plan deactivates the probes.
void SetPlan(FaultPlan plan);
// Uninstalls any plan.
void ClearPlan();
// The installed plan (empty when none).
FaultPlan CurrentPlan();

// RAII install/restore for tests and scoped chaos sections.
class ScopedPlan {
 public:
  explicit ScopedPlan(FaultPlan plan) : previous_(CurrentPlan()) { SetPlan(std::move(plan)); }
  ~ScopedPlan() { SetPlan(std::move(previous_)); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;

 private:
  FaultPlan previous_;
};

// Running totals of injected faults since the last SetPlan/ResetCounts.
struct InjectionCounts {
  std::uint64_t transient = 0;
  std::uint64_t latency = 0;
  std::uint64_t stall = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t probes = 0;  // decisions taken while a plan was active

  std::uint64_t total() const { return transient + latency + stall + corrupt; }
};

InjectionCounts Counts();
void ResetCounts();

// A virtual-time playback fault (no wall-clock effect).
struct DeviceFault {
  std::int64_t extra_latency_ms = 0;  // added to the device's start latency
  bool drop = false;                  // the presentation is lost entirely
};

#ifdef CMIF_FAULT_DISABLED
inline Status InjectPoint(std::string_view) { return Status::Ok(); }
inline DeviceFault InjectDeviceFault(std::string_view) { return {}; }
inline bool MaybeCorrupt(std::string_view, std::string&) { return false; }
#else
// Wall-clock probe: Ok (possibly after an injected sleep) or kUnavailable.
// Sleeps run on fault::GlobalClock() and are clamped to the remaining
// ScopedDeadline budget; a stall whose budget ran out fails immediately.
Status InjectPoint(std::string_view site);

// Virtual-time probe for the playback engine: maps transient_p to a dropped
// presentation and latency_p/stall_p to extra virtual device latency.
DeviceFault InjectDeviceFault(std::string_view site);

// Deterministically flips a few bytes of `payload` with probability
// corrupt_p. Returns true when the payload was mutated.
bool MaybeCorrupt(std::string_view site, std::string& payload);
#endif

}  // namespace fault
}  // namespace cmif

#endif  // SRC_FAULT_FAULT_H_
