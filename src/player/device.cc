#include "src/player/device.h"

#include <algorithm>

namespace cmif {

MediaTime VirtualDevice::EarliestStart(MediaTime requested, std::size_t payload_bytes) const {
  // The device is released at next_free_, then needs its setup time.
  MediaTime ready = next_free_ + timing_.setup;
  // Payload transfer begins once the device is ready; it can run ahead of
  // the requested time (prefetch) but not before `ready`.
  MediaTime transfer;
  if (timing_.bandwidth_bytes_per_s > 0 && payload_bytes > 0) {
    transfer = MediaTime::Bytes(static_cast<std::int64_t>(payload_bytes),
                                timing_.bandwidth_bytes_per_s);
  }
  MediaTime transfer_start = std::max(ready, requested - transfer - timing_.latency);
  return transfer_start + transfer + timing_.latency;
}

void VirtualDevice::Present(std::string event_label, MediaTime requested, MediaTime started,
                            MediaTime end, std::size_t payload_bytes) {
  records_.push_back(
      PresentationRecord{std::move(event_label), requested, started, end, payload_bytes});
  next_free_ = end;
}

}  // namespace cmif
