// Playback traces: the observable outcome of a simulated presentation run.
// Jitter statistics and freeze accounting let tests and benches quantify
// what the paper only argues qualitatively — how must/may synchronization
// and device speed interact (sections 5.3.2-5.3.4).
#ifndef SRC_PLAYER_TRACE_H_
#define SRC_PLAYER_TRACE_H_

#include <map>
#include <string>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"

namespace cmif {

// One event's playback outcome.
struct TraceEntry {
  std::string label;
  std::string channel;
  MediaTime scheduled_begin;  // original schedule position
  MediaTime target_begin;     // schedule position plus accumulated freezes
  MediaTime actual_begin;
  MediaTime actual_end;
  // actual_begin - target_begin (>= 0).
  MediaTime lateness;
  // True when this event's lateness exceeded its tolerance and the engine
  // froze the rest of the document to preserve a "must" relationship.
  bool caused_freeze = false;
  MediaTime freeze_amount;
  // True when the real payload was lost to a device fault and a placeholder
  // block was presented in its scheduled slot instead.
  bool degraded = false;
};

// Lateness statistics for one channel. Percentiles come from an
// obs::Histogram over the channel's per-event lateness, so they carry the
// histogram's log-bucket resolution (exact for uniform traces, bucket-
// interpolated otherwise); mean and max are exact.
struct ChannelJitter {
  std::size_t presentations = 0;
  double mean_lateness_ms = 0;
  double max_lateness_ms = 0;
  double p50_lateness_ms = 0;
  double p95_lateness_ms = 0;
  double p99_lateness_ms = 0;
};

// The full run record.
class PlaybackTrace {
 public:
  void Append(TraceEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  std::size_t FreezeCount() const;
  MediaTime TotalFreeze() const;
  // Presentations that substituted a placeholder for a lost payload.
  std::size_t DegradedCount() const;

  // Per-channel lateness stats.
  std::map<std::string, ChannelJitter> JitterByChannel() const;

  // Consistency checks: per channel, presentations do not overlap and stay
  // in order; no event starts before its target.
  Status Verify() const;

  // A compact multi-line summary.
  std::string Summary() const;

  // The full run record as one JSON object: entries, per-channel jitter
  // (including percentiles), and freeze totals. Parseable with
  // obs::ParseJson.
  std::string ToJson() const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace cmif

#endif  // SRC_PLAYER_TRACE_H_
