// Virtual output devices. One device realizes one synchronization channel;
// its timing model (latency, setup, bandwidth) comes from a SystemProfile.
// Devices record everything they "present" so tests can assert on outcomes
// without any physical display or loudspeaker — the substitution for the
// paper's workstation hardware (see DESIGN.md).
#ifndef SRC_PLAYER_DEVICE_H_
#define SRC_PLAYER_DEVICE_H_

#include <string>
#include <vector>

#include "src/base/media_time.h"
#include "src/media/media_type.h"
#include "src/present/capability.h"

namespace cmif {

// One presentation performed by a device.
struct PresentationRecord {
  std::string event_label;
  MediaTime requested;   // the schedule's begin time
  MediaTime started;     // when the device actually showed it
  MediaTime finished;    // when it was replaced / completed
  std::size_t payload_bytes = 0;

  MediaTime Lateness() const { return started - requested; }
};

// A channel's output device.
class VirtualDevice {
 public:
  VirtualDevice(std::string channel, MediaType medium, DeviceTiming timing)
      : channel_(std::move(channel)), medium_(medium), timing_(timing) {}

  const std::string& channel() const { return channel_; }
  MediaType medium() const { return medium_; }
  const DeviceTiming& timing() const { return timing_; }

  // The earliest time a presentation requested at `requested` with
  // `payload_bytes` of data can actually start, given the device's previous
  // commitment, setup time, transfer bandwidth and latency. Transfer may be
  // prefetched while the device is idle but not before the previous
  // presentation releases it.
  MediaTime EarliestStart(MediaTime requested, std::size_t payload_bytes) const;

  // Commits a presentation: records it and occupies the device until `end`.
  void Present(std::string event_label, MediaTime requested, MediaTime started, MediaTime end,
               std::size_t payload_bytes);

  // When the device becomes free again.
  MediaTime next_free() const { return next_free_; }

  const std::vector<PresentationRecord>& records() const { return records_; }

 private:
  std::string channel_;
  MediaType medium_;
  DeviceTiming timing_;
  MediaTime next_free_;
  std::vector<PresentationRecord> records_;
};

}  // namespace cmif

#endif  // SRC_PLAYER_DEVICE_H_
