// The virtual presentation clock. Playback is a deterministic discrete-event
// simulation: the clock only moves when the engine advances it, which makes
// freeze-frame and slow-motion ("it is possible to alter the rate of
// presentation", section 4) exact and reproducible.
#ifndef SRC_PLAYER_CLOCK_H_
#define SRC_PLAYER_CLOCK_H_

#include <cstdint>

#include "src/base/media_time.h"

namespace cmif {

// Maps document time to presentation time under a rational rate and
// accumulated freezes. presentation(t) grows as doc time advances; while
// frozen, presentation time advances but document time does not.
class VirtualClock {
 public:
  VirtualClock() = default;

  // Current document-time position.
  MediaTime document_time() const { return document_time_; }
  // Total presentation (wall-simulation) time elapsed, including freezes.
  MediaTime presentation_time() const { return presentation_time_; }
  // Total time spent frozen so far.
  MediaTime frozen_total() const { return frozen_total_; }

  // Playback rate as a rational (num/den of document seconds per
  // presentation second). 1/1 = normal, 1/2 = slow motion, 2/1 = fast.
  void SetRate(std::int64_t num, std::int64_t den);
  std::int64_t rate_num() const { return rate_num_; }
  std::int64_t rate_den() const { return rate_den_; }

  // Advances document time by `delta` (>= 0); presentation time grows by
  // delta / rate.
  void AdvanceDocument(MediaTime delta);
  // Advances document time to `target` if it is ahead of the current
  // position (no-op otherwise).
  void AdvanceDocumentTo(MediaTime target);
  // Freeze-frame: presentation time passes, document time stands still.
  void Freeze(MediaTime duration);

 private:
  MediaTime document_time_;
  MediaTime presentation_time_;
  MediaTime frozen_total_;
  std::int64_t rate_num_ = 1;
  std::int64_t rate_den_ = 1;
};

}  // namespace cmif

#endif  // SRC_PLAYER_CLOCK_H_
