#include "src/player/engine.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "src/fault/fault.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace {

// Channel priority for load shedding: captions and labels go first ("if the
// label is a little late, there is no reason for panic", section 5.3.2),
// the primary video feed last.
int MediumPriority(MediaType medium) {
  switch (medium) {
    case MediaType::kText:
      return 0;
    case MediaType::kGraphic:
    case MediaType::kImage:
      return 1;
    case MediaType::kAudio:
      return 2;
    case MediaType::kVideo:
      return 3;
  }
  return 3;
}

// The tolerance for one event: the tightest finite max_delay among explicit
// must arcs pointing at its begin edge, else the engine default.
MediaTime ToleranceFor(const Document& document, const Node& target,
                       MediaTime default_tolerance) {
  std::optional<MediaTime> tightest;
  document.root().Visit([&](const Node& node) {
    for (const SyncArc& arc : node.arcs()) {
      if (arc.rigor != ArcRigor::kMust || arc.dest_edge != ArcEdge::kBegin ||
          !arc.max_delay.has_value()) {
        continue;
      }
      auto dest = node.Resolve(arc.dest);
      if (!dest.ok() || *dest != &target) {
        continue;
      }
      if (!tightest.has_value() || *arc.max_delay < *tightest) {
        tightest = *arc.max_delay;
      }
    }
  });
  return tightest.value_or(default_tolerance);
}

// Payload size of one event, attribute-derived (never touches media bytes).
std::size_t PayloadBytes(const EventDescriptor& event, const DescriptorStore* store) {
  if (event.node->kind() == NodeKind::kImm) {
    return event.node->immediate_data().ByteSize();
  }
  if (store != nullptr) {
    if (const DataDescriptor* descriptor = store->Get(event.descriptor_id)) {
      return static_cast<std::size_t>(descriptor->DeclaredBytes());
    }
  }
  return 0;
}

}  // namespace

StatusOr<PlaybackResult> Play(const Document& document, const Schedule& schedule,
                              const DescriptorStore* store, const PlayerOptions& options) {
  PlaybackResult result;
  obs::Span run_span("player.run");
  static obs::Histogram& run_ms = obs::GetHistogram("player.run_ms");
  obs::ScopedLatency run_latency(run_ms);
  if (obs::Enabled()) {
    static obs::Counter& runs = obs::GetCounter("player.runs");
    runs.Add();
  }
  obs::TimelineBatch timeline;
  result.clock.SetRate(options.rate_num, options.rate_den);

  // One device per channel.
  std::map<std::string, std::size_t> device_of;
  for (const ChannelDef& channel : document.channels().channels()) {
    device_of.emplace(channel.name, result.devices.size());
    result.devices.emplace_back(channel.name, channel.medium,
                                options.profile.TimingFor(channel.medium));
  }

  // Per-channel instrument handles, resolved once per run and indexed by the
  // channel's device slot: the playback loop must not pay a name
  // concatenation, a registry/track-table lookup, or even a map probe per
  // presented event.
  struct ChannelObs {
    obs::Histogram* lateness = nullptr;
    int track = 0;
  };
  std::vector<ChannelObs> channel_obs(result.devices.size());
  auto obs_for_channel = [&channel_obs](std::size_t device_index,
                                        const std::string& channel) -> ChannelObs& {
    ChannelObs& slot = channel_obs[device_index];
    if (slot.lateness == nullptr) {
      slot.lateness = &obs::GetHistogram("player.lateness_ms." + channel);
      slot.track = obs::TimelineTrack("channel:" + channel);
    }
    return slot;
  };

  // Events in begin order (stable on document order for ties).
  std::vector<const ScheduledEvent*> ordered;
  ordered.reserve(schedule.events().size());
  for (const ScheduledEvent& event : schedule.events()) {
    ordered.push_back(&event);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ScheduledEvent* a, const ScheduledEvent* b) {
                     return a->begin < b->begin;
                   });

  // Recovery state: per-channel device breakers and the set of shed
  // channels. Breakers only ever record failures when a fault plan targets
  // the player's devices, so fault-free runs never touch this.
  fault::BreakerSet breakers(options.channel_breaker);
  std::set<std::string> dropped;

  MediaTime shift;  // accumulated freeze time
  for (const ScheduledEvent* scheduled : ordered) {
    // Skip events wholly before the start position. A zero-duration event
    // exactly at the start position still plays.
    if (scheduled->end <= options.start_at && scheduled->begin < options.start_at) {
      ++result.events_skipped;
      continue;
    }
    auto device_it = device_of.find(scheduled->event.channel);
    if (device_it == device_of.end()) {
      return FailedPreconditionError("event " + scheduled->event.node->DisplayPath() +
                                     " plays on unknown channel '" + scheduled->event.channel +
                                     "'");
    }
    if (!dropped.empty() && dropped.count(scheduled->event.channel) > 0) {
      ++result.suppressed_events;
      continue;
    }
    VirtualDevice& device = result.devices[device_it->second];

    fault::DeviceFault device_fault;
    if (fault::Enabled()) {
      device_fault = fault::InjectDeviceFault("player.device." + scheduled->event.channel);
      fault::CircuitBreaker& breaker = breakers.For(scheduled->event.channel);
      if (device_fault.drop || device_fault.extra_latency_ms > 0) {
        breaker.RecordFailure();
        if (options.enable_degradation && breaker.state() == fault::BreakerState::kOpen) {
          // The channel's device is misbehaving persistently: shed the
          // lowest-priority live channel so the rest of the presentation
          // keeps its sync windows.
          const VirtualDevice* victim = nullptr;
          for (const VirtualDevice& candidate : result.devices) {
            if (dropped.count(candidate.channel()) > 0) {
              continue;
            }
            if (victim == nullptr ||
                MediumPriority(candidate.medium()) < MediumPriority(victim->medium())) {
              victim = &candidate;
            }
          }
          if (victim != nullptr) {
            dropped.insert(victim->channel());
            result.dropped_channels.push_back(victim->channel());
            if (obs::Enabled()) {
              obs::GetCounter("player.dropped_channels").Add();
            }
          }
        }
      } else {
        breaker.RecordSuccess();
      }
    }

    MediaTime target = scheduled->begin + shift;
    // A dropped payload degrades to a locally synthesized placeholder: it
    // occupies the exact scheduled slot (no transfer cost), so downstream
    // sync arcs are unaffected.
    std::size_t bytes = device_fault.drop ? 0 : PayloadBytes(scheduled->event, store);
    MediaTime earliest = device.EarliestStart(target, bytes);
    if (device_fault.extra_latency_ms > 0) {
      earliest += MediaTime::Millis(device_fault.extra_latency_ms);
    }
    if (options.block_arrival && !scheduled->event.descriptor_id.empty() &&
        !device_fault.drop) {
      // Streamed delivery: the payload may still be in flight. Waiting for
      // it is a stall — the same shape as a busy device, so the existing
      // freeze/tolerance machinery absorbs the lateness downstream.
      MediaTime arrival = options.block_arrival(scheduled->event);
      if (arrival > earliest) {
        earliest = arrival;
      }
      if (arrival > target) {
        ++result.stalls;
        result.stall_total += arrival - target;
        if (obs::Enabled()) {
          obs::GetCounter("player.stream_stalls").Add();
        }
      }
    }
    MediaTime actual = std::max(target, earliest);
    MediaTime lateness = actual - target;

    TraceEntry entry;
    entry.label = scheduled->event.node->name().empty()
                      ? scheduled->event.node->DisplayPath()
                      : scheduled->event.node->name();
    entry.channel = scheduled->event.channel;
    entry.scheduled_begin = scheduled->begin;
    entry.target_begin = target;
    entry.lateness = lateness;
    entry.degraded = device_fault.drop;
    if (entry.degraded) {
      ++result.degraded_events;
      if (obs::Enabled()) {
        obs::GetCounter("player.degraded").Add();
      }
    }

    if (lateness.is_positive()) {
      MediaTime tolerance =
          ToleranceFor(document, *scheduled->event.node, options.default_tolerance);
      if (options.enable_freeze && lateness > tolerance) {
        // Freeze the document: everything downstream slips by the lateness,
        // preserving relative (must) synchronization.
        entry.caused_freeze = true;
        entry.freeze_amount = lateness;
        shift += lateness;
        result.clock.Freeze(lateness);
        target = scheduled->begin + shift;
        entry.target_begin = target;
        entry.lateness = MediaTime();
        actual = target;
      } else if (lateness > tolerance) {
        // Freezing disabled and the must window missed: record the
        // violation (the chaos bench asserts this stays zero when the
        // recovery ladder is on).
        ++result.sync_violations;
      }
    }

    MediaTime duration = scheduled->end - scheduled->begin;
    MediaTime end = actual + duration;
    entry.actual_begin = actual;
    entry.actual_end = end;
    device.Present(entry.label, target, actual, end, bytes);
    result.clock.AdvanceDocumentTo(scheduled->end);
    if (obs::Enabled()) {
      ChannelObs& channel = obs_for_channel(device_it->second, entry.channel);
      // `lateness` is the raw device lateness, before any freeze absorbed it.
      double lateness_ms = lateness.ToSecondsF() * 1000;
      channel.lateness->Record(lateness_ms);
      if (entry.caused_freeze) {
        static obs::Counter& freezes = obs::GetCounter("player.freezes");
        static obs::Histogram& freeze_ms = obs::GetHistogram("player.freeze_ms");
        freezes.Add();
        freeze_ms.Record(entry.freeze_amount.ToSecondsF() * 1000);
      }
      // The presentation itself, as a media-timeline span (one Perfetto track
      // per channel, timestamped in media time). Staged, not emitted: the
      // whole run publishes as one batch when `timeline` goes out of scope.
      // Args are sparse — only anomalous presentations (late, frozen, or
      // degraded) pay the annotation formatting; a nominal event stages
      // nothing but its name and slot.
      if (obs::SpanRecord* slice = timeline.Stage(
              channel.track, entry.label, entry.actual_begin.ToSecondsF() * 1e6,
              (entry.actual_end - entry.actual_begin).ToSecondsF() * 1e6)) {
        if (lateness_ms != 0 || entry.caused_freeze || entry.degraded) {
          slice->args.reserve(3);
          slice->args.emplace_back("lateness_ms", obs::JsonNumber(lateness_ms));
          slice->args.emplace_back("bytes", obs::JsonNumber(static_cast<std::int64_t>(bytes)));
          slice->args.emplace_back("froze", entry.caused_freeze ? "true" : "false");
        }
      }
    }
    result.trace.Append(std::move(entry));
  }
  // Sparse args: a nominal run's figures are all zero and the presentation
  // count is visible as the timeline slice count; annotating every run would
  // put five string/JSON conversions on the hot path for no information.
  if (result.events_skipped > 0 || result.degraded_events > 0 ||
      result.suppressed_events > 0 || result.trace.FreezeCount() > 0) {
    run_span.Annotate("presentations", result.trace.size());
    run_span.Annotate("skipped", result.events_skipped);
    run_span.Annotate("freezes", result.trace.FreezeCount());
    run_span.Annotate("degraded", result.degraded_events);
    run_span.Annotate("suppressed", result.suppressed_events);
  }
  return result;
}

}  // namespace cmif
