#include "src/player/trace.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "src/base/string_util.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace cmif {

std::size_t PlaybackTrace::FreezeCount() const {
  std::size_t n = 0;
  for (const TraceEntry& entry : entries_) {
    if (entry.caused_freeze) {
      ++n;
    }
  }
  return n;
}

MediaTime PlaybackTrace::TotalFreeze() const {
  MediaTime total;
  for (const TraceEntry& entry : entries_) {
    total += entry.freeze_amount;
  }
  return total;
}

std::size_t PlaybackTrace::DegradedCount() const {
  std::size_t n = 0;
  for (const TraceEntry& entry : entries_) {
    if (entry.degraded) {
      ++n;
    }
  }
  return n;
}

std::map<std::string, ChannelJitter> PlaybackTrace::JitterByChannel() const {
  std::map<std::string, ChannelJitter> out;
  // Histograms are neither copyable nor movable (atomics), so they live
  // beside the result map during the pass.
  std::map<std::string, std::unique_ptr<obs::Histogram>> histograms;
  for (const TraceEntry& entry : entries_) {
    ChannelJitter& jitter = out[entry.channel];
    double ms = entry.lateness.ToSecondsF() * 1000;
    jitter.mean_lateness_ms =
        (jitter.mean_lateness_ms * static_cast<double>(jitter.presentations) + ms) /
        static_cast<double>(jitter.presentations + 1);
    jitter.max_lateness_ms = std::max(jitter.max_lateness_ms, ms);
    ++jitter.presentations;
    auto& histogram = histograms[entry.channel];
    if (histogram == nullptr) {
      histogram = std::make_unique<obs::Histogram>();
    }
    histogram->Record(ms);
  }
  for (auto& [channel, histogram] : histograms) {
    ChannelJitter& jitter = out[channel];
    jitter.p50_lateness_ms = histogram->Percentile(50);
    jitter.p95_lateness_ms = histogram->Percentile(95);
    jitter.p99_lateness_ms = histogram->Percentile(99);
  }
  return out;
}

Status PlaybackTrace::Verify() const {
  std::map<std::string, const TraceEntry*> last_on_channel;
  for (const TraceEntry& entry : entries_) {
    if (entry.actual_begin < entry.target_begin) {
      return InternalError("event '" + entry.label + "' started before its target time");
    }
    if (entry.actual_end < entry.actual_begin) {
      return InternalError("event '" + entry.label + "' ended before it started");
    }
    auto [it, inserted] = last_on_channel.try_emplace(entry.channel, &entry);
    if (!inserted) {
      if (entry.actual_begin < it->second->actual_end) {
        return InternalError("channel '" + entry.channel + "' overlaps: '" +
                             it->second->label + "' and '" + entry.label + "'");
      }
      it->second = &entry;
    }
  }
  return Status::Ok();
}

std::string PlaybackTrace::ToJson() const {
  std::ostringstream os;
  os << "{\"presentations\":" << entries_.size() << ",\"freezes\":" << FreezeCount()
     << ",\"total_freeze_s\":" << obs::JsonNumber(TotalFreeze().ToSecondsF());
  os << ",\"entries\":[";
  bool first = true;
  for (const TraceEntry& entry : entries_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"label\":" << obs::JsonQuote(entry.label)
       << ",\"channel\":" << obs::JsonQuote(entry.channel)
       << ",\"scheduled_begin_s\":" << obs::JsonNumber(entry.scheduled_begin.ToSecondsF())
       << ",\"target_begin_s\":" << obs::JsonNumber(entry.target_begin.ToSecondsF())
       << ",\"actual_begin_s\":" << obs::JsonNumber(entry.actual_begin.ToSecondsF())
       << ",\"actual_end_s\":" << obs::JsonNumber(entry.actual_end.ToSecondsF())
       << ",\"lateness_ms\":" << obs::JsonNumber(entry.lateness.ToSecondsF() * 1000)
       << ",\"caused_freeze\":" << (entry.caused_freeze ? "true" : "false")
       << ",\"degraded\":" << (entry.degraded ? "true" : "false")
       << ",\"freeze_ms\":" << obs::JsonNumber(entry.freeze_amount.ToSecondsF() * 1000) << "}";
  }
  os << "],\"jitter\":{";
  first = true;
  for (const auto& [channel, jitter] : JitterByChannel()) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << obs::JsonQuote(channel) << ":{\"presentations\":" << jitter.presentations
       << ",\"mean_lateness_ms\":" << obs::JsonNumber(jitter.mean_lateness_ms)
       << ",\"max_lateness_ms\":" << obs::JsonNumber(jitter.max_lateness_ms)
       << ",\"p50_lateness_ms\":" << obs::JsonNumber(jitter.p50_lateness_ms)
       << ",\"p95_lateness_ms\":" << obs::JsonNumber(jitter.p95_lateness_ms)
       << ",\"p99_lateness_ms\":" << obs::JsonNumber(jitter.p99_lateness_ms) << "}";
  }
  os << "}}";
  return os.str();
}

std::string PlaybackTrace::Summary() const {
  std::ostringstream os;
  os << StrFormat("%zu presentations, %zu freezes (%.3fs frozen)\n", entries_.size(),
                  FreezeCount(), TotalFreeze().ToSecondsF());
  for (const auto& [channel, jitter] : JitterByChannel()) {
    os << StrFormat("  %-10s %4zu events, lateness mean %.2fms max %.2fms\n", channel.c_str(),
                    jitter.presentations, jitter.mean_lateness_ms, jitter.max_lateness_ms);
  }
  return os.str();
}

}  // namespace cmif
