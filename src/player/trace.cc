#include "src/player/trace.h"

#include <algorithm>
#include <sstream>

#include "src/base/string_util.h"

namespace cmif {

std::size_t PlaybackTrace::FreezeCount() const {
  std::size_t n = 0;
  for (const TraceEntry& entry : entries_) {
    if (entry.caused_freeze) {
      ++n;
    }
  }
  return n;
}

MediaTime PlaybackTrace::TotalFreeze() const {
  MediaTime total;
  for (const TraceEntry& entry : entries_) {
    total += entry.freeze_amount;
  }
  return total;
}

std::map<std::string, ChannelJitter> PlaybackTrace::JitterByChannel() const {
  std::map<std::string, ChannelJitter> out;
  for (const TraceEntry& entry : entries_) {
    ChannelJitter& jitter = out[entry.channel];
    double ms = entry.lateness.ToSecondsF() * 1000;
    jitter.mean_lateness_ms =
        (jitter.mean_lateness_ms * static_cast<double>(jitter.presentations) + ms) /
        static_cast<double>(jitter.presentations + 1);
    jitter.max_lateness_ms = std::max(jitter.max_lateness_ms, ms);
    ++jitter.presentations;
  }
  return out;
}

Status PlaybackTrace::Verify() const {
  std::map<std::string, const TraceEntry*> last_on_channel;
  for (const TraceEntry& entry : entries_) {
    if (entry.actual_begin < entry.target_begin) {
      return InternalError("event '" + entry.label + "' started before its target time");
    }
    if (entry.actual_end < entry.actual_begin) {
      return InternalError("event '" + entry.label + "' ended before it started");
    }
    auto [it, inserted] = last_on_channel.try_emplace(entry.channel, &entry);
    if (!inserted) {
      if (entry.actual_begin < it->second->actual_end) {
        return InternalError("channel '" + entry.channel + "' overlaps: '" +
                             it->second->label + "' and '" + entry.label + "'");
      }
      it->second = &entry;
    }
  }
  return Status::Ok();
}

std::string PlaybackTrace::Summary() const {
  std::ostringstream os;
  os << StrFormat("%zu presentations, %zu freezes (%.3fs frozen)\n", entries_.size(),
                  FreezeCount(), TotalFreeze().ToSecondsF());
  for (const auto& [channel, jitter] : JitterByChannel()) {
    os << StrFormat("  %-10s %4zu events, lateness mean %.2fms max %.2fms\n", channel.c_str(),
                    jitter.presentations, jitter.mean_lateness_ms, jitter.max_lateness_ms);
  }
  return os.str();
}

}  // namespace cmif
