// The playback engine: a deterministic discrete-event executor that drives a
// computed schedule against virtual devices. It realizes the paper's
// must/may semantics at run time: when a device cannot honor a "must"
// relationship within its tolerance, the engine freezes the document clock
// ("this may require a freeze-frame video operation to support the
// synchronization", section 5.3.4) so the relationship survives at the
// expense of overall presentation time; "may" lateness is merely recorded.
#ifndef SRC_PLAYER_ENGINE_H_
#define SRC_PLAYER_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/fault/circuit_breaker.h"
#include "src/player/clock.h"
#include "src/player/device.h"
#include "src/player/trace.h"
#include "src/sched/schedule.h"

namespace cmif {

// Run controls.
struct PlayerOptions {
  SystemProfile profile = WorkstationProfile();
  // Playback rate (document seconds per presentation second).
  std::int64_t rate_num = 1;
  std::int64_t rate_den = 1;
  // Lateness tolerated before a must-bound event forces a freeze; an
  // explicit incoming must arc with a finite max_delay overrides this with
  // that (tighter or looser) bound.
  MediaTime default_tolerance = MediaTime::Millis(50);
  // When false, nothing freezes: all lateness is recorded as jitter.
  bool enable_freeze = true;
  // Start position (document time); events wholly before it are skipped —
  // the navigation scenario of section 5.3.3.
  MediaTime start_at;
  // Graceful degradation under device faults (only reachable when a fault
  // plan targets "player.device.*"; fault-free runs are unaffected). When a
  // channel's circuit breaker opens, the lowest-priority live channel (text
  // first, then graphics, audio, video) is shed for the rest of the run;
  // individual lost payloads always present a placeholder in their scheduled
  // slot so sync arcs keep holding.
  bool enable_degradation = false;
  // Per-channel device breaker tuning (failures = dropped/faulted
  // presentations on that channel).
  fault::BreakerOptions channel_breaker{.failure_threshold = 3, .open_ms = 60000,
                                        .half_open_successes = 2, .half_open_probes = 2};
  // Streamed-delivery seam (play-while-compiling): maps an event to the
  // document time its payload bytes finish arriving. Unset = every block is
  // local before playback starts (the classic blob delivery). An event
  // whose block has not arrived by its begin time *stalls*: the engine
  // waits for the bytes exactly as it waits for a busy device, counts the
  // stall, and lets the freeze/tolerance machinery absorb the lateness.
  // Only consulted for events with a descriptor (immediate data travels in
  // the presentation body).
  std::function<MediaTime(const EventDescriptor&)> block_arrival;
};

// The outcome of one run.
struct PlaybackResult {
  PlaybackTrace trace;
  // Final clock: presentation_time includes freezes and rate scaling.
  VirtualClock clock;
  // Per-channel devices with their presentation records.
  std::vector<VirtualDevice> devices;
  std::size_t events_skipped = 0;  // due to start_at
  // Degradation accounting (all zero on fault-free runs).
  std::size_t degraded_events = 0;    // placeholder substituted for lost payload
  std::size_t suppressed_events = 0;  // events on channels shed after a breaker opened
  std::vector<std::string> dropped_channels;  // shed channels, in drop order
  // Events whose post-recovery lateness exceeded their must-arc tolerance
  // window — zero whenever freezing is enabled, by construction.
  std::size_t sync_violations = 0;
  // Streamed-delivery stall accounting (zero without a block_arrival hook):
  // events that had to wait for their payload bytes, and the total wait.
  std::size_t stalls = 0;
  MediaTime stall_total;
};

// Plays `schedule` (computed for `document`) on devices built from the
// profile. `blocks` supplies payload sizes for transfer-time modelling; it
// may be null (sizes then come from descriptor attributes only, via the
// store, which may also be null).
StatusOr<PlaybackResult> Play(const Document& document, const Schedule& schedule,
                              const DescriptorStore* store, const PlayerOptions& options = {});

}  // namespace cmif

#endif  // SRC_PLAYER_ENGINE_H_
