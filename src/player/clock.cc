#include "src/player/clock.h"

#include <cassert>

namespace cmif {

void VirtualClock::SetRate(std::int64_t num, std::int64_t den) {
  assert(num > 0 && den > 0 && "playback rate must be positive");
  rate_num_ = num;
  rate_den_ = den;
}

void VirtualClock::AdvanceDocument(MediaTime delta) {
  if (delta.is_negative() || delta.is_zero()) {
    return;
  }
  document_time_ += delta;
  // presentation delta = document delta / rate = delta * den / num.
  presentation_time_ += delta.MulRational(rate_den_, rate_num_);
}

void VirtualClock::AdvanceDocumentTo(MediaTime target) {
  if (target > document_time_) {
    AdvanceDocument(target - document_time_);
  }
}

void VirtualClock::Freeze(MediaTime duration) {
  if (duration.is_negative() || duration.is_zero()) {
    return;
  }
  presentation_time_ += duration;
  frozen_total_ += duration;
}

}  // namespace cmif
