#include "src/fmt/parser.h"

#include "src/obs/metrics.h"
#include "src/obs/obs.h"

#include "src/attr/parse.h"
#include "src/base/lexer.h"
#include "src/base/string_util.h"

namespace cmif {
namespace {

StatusOr<MediaTime> ParseTimeWord(const Token& token) {
  auto t = ParseMediaTime(token.text);
  if (!t.ok()) {
    return DataLossError(StrFormat("line %d: expected a time, got '%s'", token.line,
                                   token.text.c_str()));
  }
  return *t;
}

// Parses the arc body after "(syncarc" up to and including the ')'.
StatusOr<SyncArc> ParseArcBody(Lexer& lexer) {
  SyncArc arc;
  CMIF_ASSIGN_OR_RETURN(Token source_edge, lexer.Expect(TokenKind::kWord));
  CMIF_ASSIGN_OR_RETURN(arc.source_edge, ParseArcEdge(source_edge.text));
  CMIF_ASSIGN_OR_RETURN(Token rigor, lexer.Expect(TokenKind::kWord));
  CMIF_ASSIGN_OR_RETURN(arc.rigor, ParseArcRigor(rigor.text));
  CMIF_ASSIGN_OR_RETURN(Token source, lexer.Expect(TokenKind::kWord));
  CMIF_ASSIGN_OR_RETURN(arc.source, NodePath::Parse(source.text));
  CMIF_ASSIGN_OR_RETURN(Token offset, lexer.Expect(TokenKind::kWord));
  CMIF_ASSIGN_OR_RETURN(arc.offset, ParseTimeWord(offset));
  CMIF_ASSIGN_OR_RETURN(Token dest_edge, lexer.Expect(TokenKind::kWord));
  CMIF_ASSIGN_OR_RETURN(arc.dest_edge, ParseArcEdge(dest_edge.text));
  CMIF_ASSIGN_OR_RETURN(Token dest, lexer.Expect(TokenKind::kWord));
  CMIF_ASSIGN_OR_RETURN(arc.dest, NodePath::Parse(dest.text));
  CMIF_ASSIGN_OR_RETURN(Token min_delay, lexer.Expect(TokenKind::kWord));
  CMIF_ASSIGN_OR_RETURN(arc.min_delay, ParseTimeWord(min_delay));
  CMIF_ASSIGN_OR_RETURN(Token max_delay, lexer.Expect(TokenKind::kWord));
  if (max_delay.text == "inf") {
    arc.max_delay = std::nullopt;
  } else {
    CMIF_ASSIGN_OR_RETURN(MediaTime t, ParseTimeWord(max_delay));
    arc.max_delay = t;
  }
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
  Status shape = arc.CheckShape();
  if (!shape.ok()) {
    return DataLossError(StrFormat("line %d: %s", max_delay.line, shape.message().c_str()));
  }
  return arc;
}

// Parses "(data <medium> \"base64\")" after the "data" word.
StatusOr<DataBlock> ParseDataPayload(Lexer& lexer) {
  CMIF_ASSIGN_OR_RETURN(Token medium_word, lexer.Expect(TokenKind::kWord));
  CMIF_ASSIGN_OR_RETURN(MediaType medium, ParseMediaType(medium_word.text));
  CMIF_ASSIGN_OR_RETURN(Token body, lexer.Expect(TokenKind::kString));
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
  switch (medium) {
    case MediaType::kAudio: {
      CMIF_ASSIGN_OR_RETURN(std::string wav, Base64Decode(body.text));
      CMIF_ASSIGN_OR_RETURN(AudioBuffer audio, DecodeWav(wav));
      return DataBlock::FromAudio(std::move(audio));
    }
    case MediaType::kImage:
    case MediaType::kGraphic: {
      CMIF_ASSIGN_OR_RETURN(std::string ppm, Base64Decode(body.text));
      CMIF_ASSIGN_OR_RETURN(Raster image, DecodePpm(ppm));
      return DataBlock::FromImage(std::move(image), medium);
    }
    case MediaType::kText:
      return DataBlock::FromText(TextBlock(body.text, TextFormatting{}));
    case MediaType::kVideo:
      return DataLossError(StrFormat("line %d: immediate video payloads are not supported",
                                     medium_word.line));
  }
  return InternalError("unknown medium");
}

// Hostile inputs can nest arbitrarily deep; the parser recurses per level,
// so without a cap a few KB of "(seq () ..." overflows the stack (sanitizer
// builds, with their larger frames, overflow first). Real documents are
// depth < 20; 256 is far beyond any transportable document.
constexpr int kMaxParseDepth = 256;

// Parses a node starting after its '(' and kind word.
StatusOr<std::unique_ptr<Node>> ParseNodeBody(Lexer& lexer, NodeKind kind, int open_line,
                                              int depth = 0) {
  if (depth >= kMaxParseDepth) {
    return DataLossError(
        StrFormat("line %d: nodes nested deeper than %d levels", open_line, kMaxParseDepth));
  }
  auto node = std::make_unique<Node>(kind);
  CMIF_ASSIGN_OR_RETURN(node->attrs(), ParseAttrList(lexer));
  bool have_payload = false;
  while (true) {
    CMIF_ASSIGN_OR_RETURN(Token token, lexer.Next());
    if (token.kind == TokenKind::kRParen) {
      break;
    }
    if (token.kind == TokenKind::kString) {
      // Immediate text payload.
      if (kind != NodeKind::kImm) {
        return DataLossError(StrFormat("line %d: only imm nodes carry inline text", token.line));
      }
      node->set_immediate_data(DataBlock::FromText(TextBlock(token.text, TextFormatting{})));
      have_payload = true;
      continue;
    }
    if (token.kind != TokenKind::kLParen) {
      return DataLossError(StrFormat("line %d: unexpected %s in node body", token.line,
                                     std::string(TokenKindName(token.kind)).c_str()));
    }
    CMIF_ASSIGN_OR_RETURN(Token head, lexer.Expect(TokenKind::kWord));
    if (head.text == "syncarc") {
      CMIF_ASSIGN_OR_RETURN(SyncArc arc, ParseArcBody(lexer));
      node->AddArc(std::move(arc));
      continue;
    }
    if (head.text == "data") {
      if (kind != NodeKind::kImm) {
        return DataLossError(StrFormat("line %d: only imm nodes carry data payloads", head.line));
      }
      CMIF_ASSIGN_OR_RETURN(DataBlock block, ParseDataPayload(lexer));
      node->set_immediate_data(std::move(block));
      have_payload = true;
      continue;
    }
    auto child_kind = ParseNodeKind(head.text);
    if (!child_kind.ok()) {
      return DataLossError(StrFormat("line %d: unknown form '%s' in node body", head.line,
                                     head.text.c_str()));
    }
    if (node->is_leaf()) {
      return DataLossError(StrFormat("line %d: %s nodes cannot have children", head.line,
                                     std::string(NodeKindName(kind)).c_str()));
    }
    CMIF_ASSIGN_OR_RETURN(std::unique_ptr<Node> child,
                          ParseNodeBody(lexer, *child_kind, head.line, depth + 1));
    CMIF_RETURN_IF_ERROR(node->AddChild(std::move(child)).status());
  }
  if (kind == NodeKind::kImm && !have_payload) {
    return DataLossError(StrFormat("line %d: imm node has no payload", open_line));
  }
  return node;
}

StatusOr<std::unique_ptr<Node>> ParseOneNode(Lexer& lexer) {
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
  CMIF_ASSIGN_OR_RETURN(Token head, lexer.Expect(TokenKind::kWord));
  CMIF_ASSIGN_OR_RETURN(NodeKind kind, ParseNodeKind(head.text));
  return ParseNodeBody(lexer, kind, head.line);
}

}  // namespace

StatusOr<Document> ParseDocument(const std::string& text) {
  obs::Span span("fmt.parse");
  static obs::Histogram& parse_ms = obs::GetHistogram("fmt.parse_ms");
  obs::ScopedLatency latency(parse_ms);
  span.Annotate("bytes", text.size());
  Lexer lexer(text);
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
  CMIF_ASSIGN_OR_RETURN(Token head, lexer.Expect(TokenKind::kWord));
  if (head.text != "cmif") {
    return DataLossError(StrFormat("line %d: expected 'cmif', got '%s'", head.line,
                                   head.text.c_str()));
  }
  CMIF_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, ParseOneNode(lexer));
  if (root->is_leaf()) {
    return DataLossError("the root node must be seq or par");
  }
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
  CMIF_ASSIGN_OR_RETURN(Token end, lexer.Next());
  if (end.kind != TokenKind::kEnd) {
    return DataLossError(StrFormat("line %d: trailing input after the document", end.line));
  }

  Document document(root->kind());
  // Graft the parsed tree in: move children and attributes onto the fresh
  // root (Document owns its root node).
  document.root().attrs() = root->attrs();
  for (const SyncArc& arc : root->arcs()) {
    document.root().AddArc(arc);
  }
  while (!root->children().empty()) {
    CMIF_ASSIGN_OR_RETURN(std::unique_ptr<Node> child, root->TakeChild(0));
    CMIF_RETURN_IF_ERROR(document.root().AddChild(std::move(child)).status());
  }
  CMIF_RETURN_IF_ERROR(document.LoadDictionariesFromRoot());
  span.Annotate("nodes", document.root().SubtreeSize());
  if (obs::Enabled()) {
    static obs::Counter& documents = obs::GetCounter("fmt.documents_parsed");
    static obs::Counter& nodes = obs::GetCounter("fmt.nodes_parsed");
    documents.Add();
    nodes.Add(static_cast<std::int64_t>(document.root().SubtreeSize()));
  }
  return document;
}

StatusOr<std::unique_ptr<Node>> ParseNode(const std::string& text) {
  Lexer lexer(text);
  CMIF_ASSIGN_OR_RETURN(std::unique_ptr<Node> node, ParseOneNode(lexer));
  CMIF_ASSIGN_OR_RETURN(Token end, lexer.Next());
  if (end.kind != TokenKind::kEnd) {
    return DataLossError(StrFormat("line %d: trailing input after the node", end.line));
  }
  return node;
}

}  // namespace cmif
