#include "src/fmt/writer.h"

#include "src/obs/metrics.h"
#include "src/obs/obs.h"

#include <sstream>

#include "src/base/string_util.h"
#include "src/doc/stats.h"

namespace cmif {
namespace {

std::string TimeText(MediaTime t) {
  // Whole numbers are still written as rationals so the parser classifies
  // them as TIME, not NUMBER.
  if (t.den() == 1) {
    return t.ToString() + "/1";
  }
  return t.ToString();
}

StatusOr<std::string> ImmPayloadText(const DataBlock& data) {
  switch (data.medium()) {
    case MediaType::kText:
      return QuoteString(data.text().text());
    case MediaType::kAudio:
      return "(data audio " + QuoteString(Base64Encode(EncodeWav(data.audio()))) + ")";
    case MediaType::kImage:
      return "(data image " + QuoteString(Base64Encode(EncodePpm(data.image()))) + ")";
    case MediaType::kGraphic:
      return "(data graphic " + QuoteString(Base64Encode(EncodePpm(data.image()))) + ")";
    case MediaType::kVideo:
      return UnimplementedError(
          "immediate video payloads cannot be serialized; use an external node");
  }
  return InternalError("unknown medium");
}

std::string ArcText(const SyncArc& arc) {
  std::ostringstream os;
  os << "(syncarc " << ArcEdgeName(arc.source_edge) << " " << ArcRigorName(arc.rigor) << " "
     << arc.source.ToString() << " " << TimeText(arc.offset) << " "
     << ArcEdgeName(arc.dest_edge) << " " << arc.dest.ToString() << " "
     << TimeText(arc.min_delay) << " "
     << (arc.max_delay.has_value() ? TimeText(*arc.max_delay) : "inf") << ")";
  return os.str();
}

class Writer {
 public:
  explicit Writer(const WriteOptions& options) : options_(options) {}

  Status Append(const Node& node, int depth) {
    Indent(depth);
    os_ << "(" << NodeKindName(node.kind());
    os_ << " " << node.attrs().ToString();
    if (node.kind() == NodeKind::kImm) {
      CMIF_ASSIGN_OR_RETURN(std::string payload, ImmPayloadText(node.immediate_data()));
      os_ << " " << payload;
    }
    bool multiline = !node.children().empty() || !node.arcs().empty();
    for (const SyncArc& arc : node.arcs()) {
      os_ << "\n";
      Indent(depth + 1);
      os_ << ArcText(arc);
    }
    for (const auto& child : node.children()) {
      os_ << "\n";
      CMIF_RETURN_IF_ERROR(Append(*child, depth + 1));
    }
    if (multiline) {
      os_ << "\n";
      Indent(depth);
    }
    os_ << ")";
    return Status::Ok();
  }

  void Indent(int depth) {
    for (int i = 0; i < depth * options_.indent_width; ++i) {
      os_ << ' ';
    }
  }

  std::ostringstream& stream() { return os_; }

 private:
  WriteOptions options_;
  std::ostringstream os_;
};

}  // namespace

StatusOr<std::string> WriteDocument(const Document& document, const WriteOptions& options) {
  obs::Span span("fmt.serialize");
  static obs::Histogram& serialize_ms = obs::GetHistogram("fmt.serialize_ms");
  obs::ScopedLatency latency(serialize_ms);
  span.Annotate("nodes", document.root().SubtreeSize());
  if (obs::Enabled()) {
    static obs::Counter& documents = obs::GetCounter("fmt.documents_written");
    static obs::Counter& nodes = obs::GetCounter("fmt.nodes_written");
    documents.Add();
    nodes.Add(static_cast<std::int64_t>(document.root().SubtreeSize()));
  }
  // Serialize a clone so storing the dictionaries does not mutate the input.
  Document copy = document.Clone();
  copy.StoreDictionariesOnRoot();

  Writer writer(options);
  if (options.header_comment) {
    DocumentStats stats = ComputeStats(copy);
    writer.stream() << StrFormat("; CMIF document: %zu nodes, %zu arcs, %zu channels\n",
                                 stats.total_nodes, stats.arc_count, stats.channel_count);
  }
  writer.stream() << "(cmif\n";
  CMIF_RETURN_IF_ERROR(writer.Append(copy.root(), 1));
  writer.stream() << "\n)\n";
  return writer.stream().str();
}

StatusOr<std::string> WriteNode(const Node& node, const WriteOptions& options) {
  Writer writer(options);
  CMIF_RETURN_IF_ERROR(writer.Append(node, 0));
  writer.stream() << "\n";
  return writer.stream().str();
}

}  // namespace cmif
