// The CMIF concrete syntax writer. The paper specifies the structure of a
// document ("a human-readable document that can be passed from one location
// to another with or without the underlying data", section 5) but its
// companion syntax report [Rossum91] is not available, so this library
// defines an s-expression syntax that round-trips every structural element:
//
//   document := '(' 'cmif' node ')'
//   node     := '(' kind attrlist item* ')'
//   kind     := 'seq' | 'par' | 'ext' | 'imm'
//   attrlist := '(' (name value)* ')'
//   item     := node                              ; child of a seq/par
//             | '(' 'syncarc' arc ')'             ; arc written on this node
//             | string                            ; imm payload: plain text
//             | '(' 'data' medium string ')'      ; imm payload: base64 codec
//   arc      := edge rigor word time edge word time (time | 'inf')
//               (source-edge rigor source-path offset dest-edge dest-path
//                min-delay max-delay)
//
// Values follow src/attr/parse.h: IDs, integers (NUMBER), N/D or decimals
// (TIME), quoted strings, and nested lists. ';' starts a line comment.
#ifndef SRC_FMT_WRITER_H_
#define SRC_FMT_WRITER_H_

#include <string>

#include "src/base/status.h"
#include "src/doc/document.h"

namespace cmif {

// Serialization knobs.
struct WriteOptions {
  // Spaces per nesting level.
  int indent_width = 2;
  // Emit a header comment with summary statistics.
  bool header_comment = true;
};

// Renders the document (dictionaries are stored onto the root first, via a
// clone — the input is not mutated). Errors only for unserializable
// immediate payloads (inline video).
StatusOr<std::string> WriteDocument(const Document& document, const WriteOptions& options = {});

// Renders a single subtree (no 'cmif' wrapper, no dictionaries).
StatusOr<std::string> WriteNode(const Node& node, const WriteOptions& options = {});

}  // namespace cmif

#endif  // SRC_FMT_WRITER_H_
