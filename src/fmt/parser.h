// The CMIF concrete syntax parser (grammar in src/fmt/writer.h). Produces a
// Document with the root dictionaries already loaded; run ValidateDocument
// for the global consistency rules.
#ifndef SRC_FMT_PARSER_H_
#define SRC_FMT_PARSER_H_

#include <string>

#include "src/base/status.h"
#include "src/doc/document.h"

namespace cmif {

// Parses a full "(cmif ...)" document. Errors are kDataLoss with line info.
StatusOr<Document> ParseDocument(const std::string& text);

// Parses a single node subtree (no 'cmif' wrapper).
StatusOr<std::unique_ptr<Node>> ParseNode(const std::string& text);

}  // namespace cmif

#endif  // SRC_FMT_PARSER_H_
