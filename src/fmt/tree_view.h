// Structure renderers for the paper's figures: the CMIF tree in conventional
// and embedded form (Figure 5), the synchronization-arc table (Figure 9),
// and the channel/timeline view (Figures 3, 4b and 10).
#ifndef SRC_FMT_TREE_VIEW_H_
#define SRC_FMT_TREE_VIEW_H_

#include <string>
#include <vector>

#include "src/base/media_time.h"
#include "src/doc/document.h"

namespace cmif {

// Figure 5a: the conventional node-and-branch tree.
//
//   news [seq]
//   +- story1 [par]
//   |  +- video1 [ext file="d1"]
//   ...
std::string ConventionalTreeView(const Node& root);

// Figure 5b: the embedded (nested box) form.
//
//   [ news seq
//     [ story1 par
//       [ video1 ext ] [ audio1 ext ] ] ]
std::string EmbeddedTreeView(const Node& root);

// Figure 9: one table row per synchronization arc in the document, with the
// owning node's display path.
//
//   owner        type        source  offset  dest         min  max
std::string ArcTableView(const Node& root);

// One presented span on a channel lane.
struct TimelineSpan {
  std::string label;
  MediaTime start;
  MediaTime end;
};

// One channel lane of a timeline.
struct TimelineRow {
  std::string channel;
  std::vector<TimelineSpan> spans;
};

// Figures 3/10: ASCII channel-by-channel timeline. `columns` is the chart
// width in characters; time is scaled to the latest span end.
//
//   audio   |=story3=====|......|=story4====|
//   video   |=head==|=scene==|..|=head======|
std::string TimelineView(const std::vector<TimelineRow>& rows, int columns = 72);

// A plain tabular rendering of the same rows (start/end per span), exact.
std::string TimelineTable(const std::vector<TimelineRow>& rows);

}  // namespace cmif

#endif  // SRC_FMT_TREE_VIEW_H_
