#include "src/fmt/tree_view.h"

#include <algorithm>
#include <sstream>

#include "src/attr/registry.h"
#include "src/base/string_util.h"

namespace cmif {
namespace {

std::string NodeLabel(const Node& node) {
  std::string label = node.name();
  if (label.empty()) {
    label = "(unnamed)";
  }
  label += " [";
  label += NodeKindName(node.kind());
  if (const AttrValue* file = node.attrs().Find(kAttrFile)) {
    if (file->is_string()) {
      label += " file=" + QuoteString(file->string());
    }
  }
  if (const AttrValue* channel = node.attrs().Find(kAttrChannel)) {
    if (channel->is_id()) {
      label += " channel=" + channel->id();
    }
  }
  label += "]";
  return label;
}

void AppendConventional(const Node& node, const std::string& prefix, bool last, bool is_root,
                        std::ostringstream& os) {
  if (is_root) {
    os << NodeLabel(node) << "\n";
  } else {
    os << prefix << (last ? "`- " : "+- ") << NodeLabel(node) << "\n";
  }
  std::string child_prefix = is_root ? "" : prefix + (last ? "   " : "|  ");
  for (std::size_t i = 0; i < node.children().size(); ++i) {
    AppendConventional(node.ChildAt(i), child_prefix, i + 1 == node.children().size(), false,
                       os);
  }
}

void AppendEmbedded(const Node& node, int depth, std::ostringstream& os) {
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "[ ";
  std::string name = node.name();
  if (!name.empty()) {
    os << name << " ";
  }
  os << NodeKindName(node.kind());
  if (node.children().empty()) {
    os << " ]\n";
    return;
  }
  os << "\n";
  for (const auto& child : node.children()) {
    AppendEmbedded(*child, depth + 1, os);
  }
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "]\n";
}

void Pad(std::ostringstream& os, const std::string& text, std::size_t width) {
  os << text;
  for (std::size_t i = text.size(); i < width; ++i) {
    os << ' ';
  }
}

}  // namespace

std::string ConventionalTreeView(const Node& root) {
  std::ostringstream os;
  AppendConventional(root, "", true, true, os);
  return os.str();
}

std::string EmbeddedTreeView(const Node& root) {
  std::ostringstream os;
  AppendEmbedded(root, 0, os);
  return os.str();
}

std::string ArcTableView(const Node& root) {
  std::ostringstream os;
  os << "owner                    type        source          offset  dest                 "
        "min     max\n";
  os << "-----------------------  ----------  --------------  ------  -------------------  "
        "------  ------\n";
  root.Visit([&os](const Node& node) {
    for (const SyncArc& arc : node.arcs()) {
      Pad(os, node.DisplayPath(), 25);
      std::string type =
          std::string(ArcEdgeName(arc.source_edge)) + "-" + std::string(ArcRigorName(arc.rigor));
      Pad(os, type, 12);
      Pad(os, arc.source.ToString(), 16);
      Pad(os, arc.offset.ToString(), 8);
      Pad(os, std::string(ArcEdgeName(arc.dest_edge)) + ":" + arc.dest.ToString(), 21);
      Pad(os, arc.min_delay.ToString(), 8);
      os << (arc.max_delay.has_value() ? arc.max_delay->ToString() : "inf") << "\n";
    }
  });
  return os.str();
}

std::string TimelineView(const std::vector<TimelineRow>& rows, int columns) {
  MediaTime horizon;
  std::size_t label_width = 8;
  for (const TimelineRow& row : rows) {
    label_width = std::max(label_width, row.channel.size() + 1);
    for (const TimelineSpan& span : row.spans) {
      horizon = std::max(horizon, span.end);
    }
  }
  double total = horizon.ToSecondsF();
  int chart = std::max(columns - static_cast<int>(label_width) - 2, 10);
  std::ostringstream os;
  for (const TimelineRow& row : rows) {
    std::string lane(static_cast<std::size_t>(chart), '.');
    for (const TimelineSpan& span : row.spans) {
      int begin = total <= 0 ? 0 : static_cast<int>(span.start.ToSecondsF() / total * chart);
      int end = total <= 0 ? 0 : static_cast<int>(span.end.ToSecondsF() / total * chart);
      begin = std::clamp(begin, 0, chart - 1);
      end = std::clamp(end, begin + 1, chart);
      for (int i = begin; i < end; ++i) {
        lane[static_cast<std::size_t>(i)] = '=';
      }
      lane[static_cast<std::size_t>(begin)] = '|';
      // Overlay as much of the label as fits inside the span.
      for (std::size_t j = 0; j < span.label.size() && begin + 1 + static_cast<int>(j) < end;
           ++j) {
        lane[static_cast<std::size_t>(begin) + 1 + j] = span.label[j];
      }
    }
    Pad(os, row.channel, label_width);
    os << "|" << lane << "|\n";
  }
  os << std::string(label_width, ' ') << "0" << std::string(static_cast<std::size_t>(chart) - 6, ' ')
     << StrFormat("%6.1fs\n", total);
  return os.str();
}

std::string TimelineTable(const std::vector<TimelineRow>& rows) {
  std::ostringstream os;
  os << "channel      event                      start      end\n";
  os << "-----------  -------------------------  ---------  ---------\n";
  for (const TimelineRow& row : rows) {
    for (const TimelineSpan& span : row.spans) {
      Pad(os, row.channel, 13);
      Pad(os, span.label, 27);
      Pad(os, StrFormat("%.3f", span.start.ToSecondsF()), 11);
      os << StrFormat("%.3f", span.end.ToSecondsF()) << "\n";
    }
  }
  return os.str();
}

}  // namespace cmif
