#include "src/present/filter.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "src/base/string_util.h"

namespace cmif {

std::string_view FilterOpKindName(FilterOpKind kind) {
  switch (kind) {
    case FilterOpKind::kQuantizeColor:
      return "quantize-color";
    case FilterOpKind::kMonochrome:
      return "monochrome";
    case FilterOpKind::kDownscale:
      return "downscale";
    case FilterOpKind::kSubsampleFps:
      return "subsample-fps";
    case FilterOpKind::kResampleAudio:
      return "resample-audio";
    case FilterOpKind::kMixToMono:
      return "mix-to-mono";
  }
  return "?";
}

std::string FilterOp::ToString() const {
  switch (kind) {
    case FilterOpKind::kDownscale:
      return StrFormat("%s(%dx%d)", std::string(FilterOpKindName(kind)).c_str(), arg1, arg2);
    case FilterOpKind::kMonochrome:
    case FilterOpKind::kMixToMono:
      return std::string(FilterOpKindName(kind));
    default:
      return StrFormat("%s(%d)", std::string(FilterOpKindName(kind)).c_str(), arg1);
  }
}

FilterPlan PlanFilter(const DataDescriptor& descriptor, const SystemProfile& profile) {
  FilterPlan plan;
  plan.descriptor_id = descriptor.id();
  plan.bytes_before = descriptor.DeclaredBytes();
  plan.bytes_after = plan.bytes_before;
  MediaType medium = descriptor.Medium();
  const AttrList& attrs = descriptor.attrs();

  auto scale_bytes = [&plan](double factor) {
    plan.bytes_after = static_cast<std::int64_t>(static_cast<double>(plan.bytes_after) * factor);
  };

  switch (medium) {
    case MediaType::kVideo: {
      std::int64_t fps = attrs.GetNumberOr(kDescRate, 0);
      if (fps > profile.max_video_fps) {
        // Keep-every-N subsampling needs N to divide the source rate.
        int factor = 0;
        for (int candidate = 2; candidate <= fps; ++candidate) {
          if (fps % candidate == 0 && fps / candidate <= profile.max_video_fps) {
            factor = candidate;
            break;
          }
        }
        if (factor == 0) {
          plan.supported = false;
          plan.unsupported_reason =
              StrFormat("no integral subsampling of %lld fps fits under %d fps",
                        static_cast<long long>(fps), profile.max_video_fps);
          return plan;
        }
        plan.ops.push_back(FilterOp{FilterOpKind::kSubsampleFps, factor, 0});
        scale_bytes(1.0 / factor);
      }
      [[fallthrough]];
    }
    case MediaType::kImage:
    case MediaType::kGraphic: {
      std::int64_t width = attrs.GetNumberOr(kDescWidth, 0);
      std::int64_t height = attrs.GetNumberOr(kDescHeight, 0);
      if (width > profile.max_width || height > profile.max_height) {
        // Preserve aspect; fit inside the profile box.
        double sx = static_cast<double>(profile.max_width) / static_cast<double>(width);
        double sy = static_cast<double>(profile.max_height) / static_cast<double>(height);
        double s = std::min(sx, sy);
        int new_w = std::max(static_cast<int>(static_cast<double>(width) * s), 1);
        int new_h = std::max(static_cast<int>(static_cast<double>(height) * s), 1);
        plan.ops.push_back(FilterOp{FilterOpKind::kDownscale, new_w, new_h});
        scale_bytes(static_cast<double>(new_w) * new_h /
                    (static_cast<double>(width) * static_cast<double>(height)));
      }
      std::int64_t bits = attrs.GetNumberOr(kDescColorBits, 8);
      if (!profile.color) {
        plan.ops.push_back(FilterOp{FilterOpKind::kMonochrome, 0, 0});
        scale_bytes(1.0 / 3.0);
      } else if (bits > profile.max_color_bits) {
        plan.ops.push_back(FilterOp{FilterOpKind::kQuantizeColor, profile.max_color_bits, 0});
        scale_bytes(static_cast<double>(profile.max_color_bits) / static_cast<double>(bits));
      }
      break;
    }
    case MediaType::kAudio: {
      std::int64_t rate = attrs.GetNumberOr(kDescRate, 0);
      if (rate > profile.max_audio_rate) {
        plan.ops.push_back(FilterOp{FilterOpKind::kResampleAudio, profile.max_audio_rate, 0});
        scale_bytes(static_cast<double>(profile.max_audio_rate) / static_cast<double>(rate));
      }
      if (profile.max_audio_channels < 2) {
        plan.ops.push_back(FilterOp{FilterOpKind::kMixToMono, 0, 0});
      }
      break;
    }
    case MediaType::kText:
      break;  // text always fits
  }
  return plan;
}

StatusOr<DataBlock> ApplyFilter(const DataBlock& block, const FilterPlan& plan) {
  if (!plan.supported) {
    return FailedPreconditionError("plan for '" + plan.descriptor_id + "' is unsupported: " +
                                   plan.unsupported_reason);
  }
  DataBlock current = block;
  for (const FilterOp& op : plan.ops) {
    switch (op.kind) {
      case FilterOpKind::kQuantizeColor:
        if (current.medium() == MediaType::kVideo) {
          current = DataBlock::FromVideo(current.video().QuantizeColor(op.arg1));
        } else {
          current = DataBlock::FromImage(current.image().QuantizeColor(op.arg1),
                                         current.medium());
        }
        break;
      case FilterOpKind::kMonochrome:
        if (current.medium() == MediaType::kVideo) {
          VideoSegment mono(current.video().fps());
          for (const Raster& frame : current.video().frames()) {
            CMIF_RETURN_IF_ERROR(mono.Append(frame.ToMonochrome()));
          }
          current = DataBlock::FromVideo(std::move(mono));
        } else {
          current = DataBlock::FromImage(current.image().ToMonochrome(), current.medium());
        }
        break;
      case FilterOpKind::kDownscale:
        if (current.medium() == MediaType::kVideo) {
          CMIF_ASSIGN_OR_RETURN(VideoSegment scaled,
                                current.video().DownscaleFrames(op.arg1, op.arg2));
          current = DataBlock::FromVideo(std::move(scaled));
        } else {
          CMIF_ASSIGN_OR_RETURN(Raster scaled, current.image().Downscale(op.arg1, op.arg2));
          current = DataBlock::FromImage(std::move(scaled), current.medium());
        }
        break;
      case FilterOpKind::kSubsampleFps: {
        CMIF_ASSIGN_OR_RETURN(VideoSegment sampled, current.video().SubsampleRate(op.arg1));
        current = DataBlock::FromVideo(std::move(sampled));
        break;
      }
      case FilterOpKind::kResampleAudio: {
        CMIF_ASSIGN_OR_RETURN(AudioBuffer resampled, current.audio().Resample(op.arg1));
        current = DataBlock::FromAudio(std::move(resampled));
        break;
      }
      case FilterOpKind::kMixToMono:
        current = DataBlock::FromAudio(current.audio().ToMono());
        break;
    }
  }
  return current;
}

std::string FilterReport::ToString() const {
  std::ostringstream os;
  os << StrFormat("filter report: %zu descriptors, %zu need work, %zu unsupported\n",
                  plans.size(),
                  static_cast<std::size_t>(std::count_if(
                      plans.begin(), plans.end(),
                      [](const FilterPlan& p) { return p.NeedsWork(); })),
                  unsupported);
  os << StrFormat("bytes: %lld -> %lld (%.1f%%)\n",
                  static_cast<long long>(total_bytes_before),
                  static_cast<long long>(total_bytes_after),
                  total_bytes_before == 0
                      ? 100.0
                      : 100.0 * static_cast<double>(total_bytes_after) /
                            static_cast<double>(total_bytes_before));
  for (const FilterPlan& plan : plans) {
    if (!plan.supported) {
      os << "  " << plan.descriptor_id << ": UNSUPPORTED (" << plan.unsupported_reason << ")\n";
    } else if (plan.NeedsWork()) {
      os << "  " << plan.descriptor_id << ":";
      for (const FilterOp& op : plan.ops) {
        os << " " << op.ToString();
      }
      os << "\n";
    }
  }
  return os.str();
}

StatusOr<FilterReport> PlanDocumentFilter(const Document& document, const DescriptorStore& store,
                                          const SystemProfile& profile) {
  FilterReport report;
  std::vector<std::string> ids;
  Status failure;
  document.root().Visit([&](const Node& node) {
    if (!failure.ok() || node.kind() != NodeKind::kExt) {
      return;
    }
    auto file = document.ResolveAttr(node, kAttrFile);
    if (!file.ok()) {
      failure = file.status();
      return;
    }
    if (!file->has_value() || !(*file)->is_string()) {
      return;  // validator territory
    }
    const std::string& id = (*file)->string();
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
      ids.push_back(id);
    }
  });
  if (!failure.ok()) {
    return failure;
  }
  for (const std::string& id : ids) {
    const DataDescriptor* descriptor = store.Get(id);
    if (descriptor == nullptr) {
      return NotFoundError("descriptor '" + id + "' referenced but not stored");
    }
    FilterPlan plan = PlanFilter(*descriptor, profile);
    report.total_bytes_before += plan.bytes_before;
    report.total_bytes_after += plan.supported ? plan.bytes_after : 0;
    if (!plan.supported) {
      ++report.unsupported;
    }
    report.plans.push_back(std::move(plan));
  }
  return report;
}

StatusOr<DescriptorStore> ApplyDocumentFilter(const DescriptorStore& store,
                                              const BlockStore& blocks,
                                              const FilterReport& report) {
  DescriptorStore filtered;
  for (const FilterPlan& plan : report.plans) {
    const DataDescriptor* descriptor = store.Get(plan.descriptor_id);
    if (descriptor == nullptr) {
      return NotFoundError("descriptor '" + plan.descriptor_id + "' vanished from the store");
    }
    DataDescriptor copy = *descriptor;
    if (plan.supported && plan.NeedsWork()) {
      CMIF_ASSIGN_OR_RETURN(DataBlock payload, ResolveContent(*descriptor, blocks));
      CMIF_ASSIGN_OR_RETURN(DataBlock reduced, ApplyFilter(payload, plan));
      copy.DeriveAttrsFrom(reduced);
      copy.set_content(std::move(reduced));
    }
    CMIF_RETURN_IF_ERROR(filtered.Add(std::move(copy)));
  }
  return filtered;
}

Status InjectCapabilityConstraints(TimeGraph& graph, const Document& document,
                                   const std::vector<EventDescriptor>& events,
                                   const SystemProfile& profile) {
  (void)document;
  std::unordered_map<std::string, const EventDescriptor*> last_on_channel;
  for (const EventDescriptor& event : events) {
    const DeviceTiming& timing = profile.TimingFor(event.medium);
    auto [it, inserted] = last_on_channel.try_emplace(event.channel, &event);
    if (!inserted) {
      if (timing.setup.is_positive()) {
        CMIF_ASSIGN_OR_RETURN(int prev_end, graph.PointOf(*it->second->node, PointKind::kEnd));
        CMIF_ASSIGN_OR_RETURN(int next_begin, graph.PointOf(*event.node, PointKind::kBegin));
        Constraint c;
        c.from = prev_end;
        c.to = next_begin;
        c.lo = timing.setup;
        c.hi = std::nullopt;
        c.origin = ConstraintOrigin::kCapability;
        c.label = StrFormat("%s device setup %ss on channel '%s' before %s",
                            profile.name.c_str(), timing.setup.ToString().c_str(),
                            event.channel.c_str(), event.node->DisplayPath().c_str());
        CMIF_RETURN_IF_ERROR(graph.AddConstraint(std::move(c)));
      }
      it->second = &event;
    }
  }
  return Status::Ok();
}

}  // namespace cmif
