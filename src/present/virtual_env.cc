#include "src/present/virtual_env.h"

#include "src/base/string_util.h"

namespace cmif {

Status VirtualEnvironment::AddRegion(ScreenRegion region) {
  if (!IsValidId(region.name)) {
    return InvalidArgumentError("region name '" + region.name + "' is not a valid ID");
  }
  if (FindRegion(region.name) != nullptr) {
    return AlreadyExistsError("region '" + region.name + "' already defined");
  }
  if (region.width <= 0 || region.height <= 0 || region.x < 0 || region.y < 0 ||
      region.x + region.width > canvas_width_ || region.y + region.height > canvas_height_) {
    return OutOfRangeError(StrFormat("region '%s' (%d,%d %dx%d) leaves the %dx%d canvas",
                                     region.name.c_str(), region.x, region.y, region.width,
                                     region.height, canvas_width_, canvas_height_));
  }
  regions_.push_back(std::move(region));
  return Status::Ok();
}

Status VirtualEnvironment::AddSpeaker(SpeakerOutput speaker) {
  if (!IsValidId(speaker.name)) {
    return InvalidArgumentError("speaker name '" + speaker.name + "' is not a valid ID");
  }
  if (FindSpeaker(speaker.name) != nullptr) {
    return AlreadyExistsError("speaker '" + speaker.name + "' already defined");
  }
  if (speaker.pan < -1 || speaker.pan > 1) {
    return OutOfRangeError("speaker pan must lie in [-1, 1]");
  }
  speakers_.push_back(std::move(speaker));
  return Status::Ok();
}

const ScreenRegion* VirtualEnvironment::FindRegion(std::string_view name) const {
  for (const ScreenRegion& region : regions_) {
    if (region.name == name) {
      return &region;
    }
  }
  return nullptr;
}

const SpeakerOutput* VirtualEnvironment::FindSpeaker(std::string_view name) const {
  for (const SpeakerOutput& speaker : speakers_) {
    if (speaker.name == name) {
      return &speaker;
    }
  }
  return nullptr;
}

std::vector<std::pair<std::string, std::string>> VirtualEnvironment::OverlappingRegions() const {
  std::vector<std::pair<std::string, std::string>> overlaps;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    for (std::size_t j = i + 1; j < regions_.size(); ++j) {
      const ScreenRegion& a = regions_[i];
      const ScreenRegion& b = regions_[j];
      if (a.z_order != b.z_order) {
        continue;
      }
      bool disjoint = a.x + a.width <= b.x || b.x + b.width <= a.x || a.y + a.height <= b.y ||
                      b.y + b.height <= a.y;
      if (!disjoint) {
        overlaps.emplace_back(a.name, b.name);
      }
    }
  }
  return overlaps;
}

VirtualEnvironment VirtualEnvironment::NewsLayout(int canvas_width, int canvas_height) {
  VirtualEnvironment env(canvas_width, canvas_height);
  int label_h = canvas_height / 8;
  int caption_h = canvas_height / 6;
  int body_h = canvas_height - label_h - caption_h;
  int main_w = canvas_width * 2 / 3;
  (void)env.AddRegion(ScreenRegion{"label_strip", 0, 0, canvas_width, label_h, 2});
  (void)env.AddRegion(ScreenRegion{"main", 0, label_h, main_w, body_h, 0});
  (void)env.AddRegion(
      ScreenRegion{"inset", main_w, label_h, canvas_width - main_w, body_h, 0});
  (void)env.AddRegion(ScreenRegion{"caption_strip", 0, label_h + body_h, canvas_width,
                                   caption_h, 2});
  (void)env.AddSpeaker(SpeakerOutput{"center", 0});
  return env;
}

}  // namespace cmif
