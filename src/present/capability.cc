#include "src/present/capability.h"

namespace cmif {

const DeviceTiming& SystemProfile::TimingFor(MediaType medium) const {
  switch (medium) {
    case MediaType::kVideo:
      return video;
    case MediaType::kAudio:
      return audio;
    case MediaType::kImage:
    case MediaType::kGraphic:
      return image;
    case MediaType::kText:
      return text;
  }
  return text;
}

SystemProfile WorkstationProfile() {
  SystemProfile p;
  p.name = "workstation";
  p.max_color_bits = 8;
  p.color = true;
  p.max_width = 1280;
  p.max_height = 1024;
  p.max_video_fps = 25;
  p.max_audio_rate = 44100;
  p.max_audio_channels = 2;
  p.video = DeviceTiming{MediaTime::Millis(5), MediaTime::Millis(10), 40'000'000};
  p.audio = DeviceTiming{MediaTime::Millis(5), MediaTime::Millis(5), 10'000'000};
  p.image = DeviceTiming{MediaTime::Millis(5), MediaTime::Millis(10), 40'000'000};
  p.text = DeviceTiming{MediaTime::Millis(1), MediaTime::Millis(1), 0};
  return p;
}

SystemProfile PersonalSystemProfile() {
  SystemProfile p;
  p.name = "personal";
  p.max_color_bits = 3;
  p.color = true;
  p.max_width = 320;
  p.max_height = 240;
  p.max_video_fps = 12;
  p.max_audio_rate = 11025;
  p.max_audio_channels = 1;
  p.video = DeviceTiming{MediaTime::Millis(40), MediaTime::Millis(80), 2'000'000};
  p.audio = DeviceTiming{MediaTime::Millis(30), MediaTime::Millis(30), 1'000'000};
  p.image = DeviceTiming{MediaTime::Millis(60), MediaTime::Millis(120), 2'000'000};
  p.text = DeviceTiming{MediaTime::Millis(10), MediaTime::Millis(10), 0};
  return p;
}

SystemProfile PortableMonoProfile() {
  SystemProfile p;
  p.name = "portable-mono";
  p.max_color_bits = 1;
  p.color = false;
  p.max_width = 160;
  p.max_height = 120;
  p.max_video_fps = 5;
  p.max_audio_rate = 8000;
  p.max_audio_channels = 1;
  p.video = DeviceTiming{MediaTime::Millis(200), MediaTime::Millis(500), 250'000};
  p.audio = DeviceTiming{MediaTime::Millis(100), MediaTime::Millis(100), 125'000};
  p.image = DeviceTiming{MediaTime::Millis(250), MediaTime::Millis(500), 250'000};
  p.text = DeviceTiming{MediaTime::Millis(50), MediaTime::Millis(50), 0};
  return p;
}

}  // namespace cmif
