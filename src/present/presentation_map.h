// The presentation map: the output of the Presentation Mapping Tool. "This
// tool manipulates the definitions provided in the CMIF document and creates
// a presentation map that can be manipulated separately from the document
// itself" (section 2) — hence its own serialization, independent of the
// document's.
//
// Catalog syntax, one binding per channel:
//   (presmap
//     (bind <channel> region <region_name>)
//     (bind <channel> speaker <speaker_name> volume <number 0..100>))
#ifndef SRC_PRESENT_PRESENTATION_MAP_H_
#define SRC_PRESENT_PRESENTATION_MAP_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/doc/channel.h"
#include "src/present/virtual_env.h"

namespace cmif {

// Where a channel's output goes.
struct ChannelBinding {
  std::string channel;
  // Exactly one of the two names is set.
  std::string region;   // visual channels
  std::string speaker;  // audio channels
  int volume = 100;     // audio only, percent
  bool operator==(const ChannelBinding& other) const = default;
};

// Channel -> real-estate bindings, separate from the document.
class PresentationMap {
 public:
  PresentationMap() = default;

  Status BindRegion(std::string channel, std::string region);
  Status BindSpeaker(std::string channel, std::string speaker, int volume = 100);

  const ChannelBinding* Find(std::string_view channel) const;
  const std::vector<ChannelBinding>& bindings() const { return bindings_; }

  // Every channel must be bound to an existing region/speaker of `env`, with
  // media routed appropriately (visual media to regions, audio to speakers).
  Status Validate(const ChannelDictionary& channels, const VirtualEnvironment& env) const;

  // Builds a map using "preference defaults" (section 2): channels carrying
  // a "region"/"speaker" extra attribute bind there; remaining visual
  // channels tile over the unclaimed regions in definition order; audio
  // channels bind to the first speaker.
  static StatusOr<PresentationMap> AutoMap(const ChannelDictionary& channels,
                                           const VirtualEnvironment& env);

  std::string Serialize() const;
  static StatusOr<PresentationMap> Parse(const std::string& text);

 private:
  std::vector<ChannelBinding> bindings_;
};

}  // namespace cmif

#endif  // SRC_PRESENT_PRESENTATION_MAP_H_
