#include "src/present/compositor.h"

#include <algorithm>

#include "src/media/font.h"
#include "src/media/text.h"

namespace cmif {
namespace {

// The event visible on `channel` at time t: the active one, or (for the
// hold policy) the latest one that already ended with no successor active.
const ScheduledEvent* VisibleOn(const Schedule& schedule, std::string_view channel, MediaTime t,
                                bool hold) {
  const ScheduledEvent* visible = nullptr;
  for (const ScheduledEvent& event : schedule.events()) {
    if (event.event.channel != channel || event.begin > t) {
      continue;
    }
    if (t < event.end) {
      return &event;  // actively presented
    }
    if (hold && (visible == nullptr || event.end > visible->end)) {
      visible = &event;  // candidate to hold
    }
  }
  return visible;
}

// Draws `image` into the region: downscaled when larger, integer-upscaled
// (nearest neighbor) when much smaller, centered either way.
void BlitFitted(Raster& canvas, const ScreenRegion& region, const Raster& image) {
  const Raster* source = &image;
  Raster scaled;
  if (image.width() * 2 <= region.width && image.height() * 2 <= region.height &&
      !image.empty()) {
    int factor = std::min(region.width / image.width(), region.height / image.height());
    scaled = image.UpscaleNearest(factor);
    source = &scaled;
  } else if (image.width() > region.width || image.height() > region.height) {
    double sx = static_cast<double>(region.width) / image.width();
    double sy = static_cast<double>(region.height) / image.height();
    double s = std::min(sx, sy);
    int w = std::max(static_cast<int>(image.width() * s), 1);
    int h = std::max(static_cast<int>(image.height() * s), 1);
    auto down = image.Downscale(w, h);
    if (!down.ok()) {
      return;
    }
    scaled = std::move(down).value();
    source = &scaled;
  }
  int ox = region.x + (region.width - source->width()) / 2;
  int oy = region.y + (region.height - source->height()) / 2;
  for (int y = 0; y < source->height(); ++y) {
    for (int x = 0; x < source->width(); ++x) {
      int cx = ox + x;
      int cy = oy + y;
      if (cx >= 0 && cy >= 0 && cx < canvas.width() && cy < canvas.height()) {
        canvas.Put(cx, cy, source->At(x, y));
      }
    }
  }
}

void DrawTextBlock(Raster& canvas, const ScreenRegion& region, const TextBlock& text,
                   const CompositorOptions& options) {
  int scale = std::max(options.text_scale, 1);
  int columns = std::max(region.width / (kGlyphAdvance * scale), 4);
  std::vector<std::string> lines = text.WrapLines(columns);
  int line_height = TextHeight(scale) + scale;
  int y = region.y + scale;
  for (const std::string& line : lines) {
    if (y + TextHeight(scale) > region.y + region.height) {
      break;  // region full
    }
    DrawText(canvas, region.x + scale, y, line, options.text_color, scale);
    y += line_height;
  }
}

}  // namespace

StatusOr<Raster> ComposeFrame(const Document& document, const Schedule& schedule,
                              const PresentationMap& map, const VirtualEnvironment& env,
                              const DescriptorStore& store, const BlockStore& blocks,
                              MediaTime t, const CompositorOptions& options) {
  Raster canvas(env.canvas_width(), env.canvas_height(), options.background);

  // Regions draw in ascending z order so strips overlay the body.
  std::vector<const ChannelDef*> channels;
  for (const ChannelDef& channel : document.channels().channels()) {
    if (channel.medium != MediaType::kAudio) {
      channels.push_back(&channel);
    }
  }
  std::stable_sort(channels.begin(), channels.end(),
                   [&](const ChannelDef* a, const ChannelDef* b) {
                     const ChannelBinding* ba = map.Find(a->name);
                     const ChannelBinding* bb = map.Find(b->name);
                     const ScreenRegion* ra = ba ? env.FindRegion(ba->region) : nullptr;
                     const ScreenRegion* rb = bb ? env.FindRegion(bb->region) : nullptr;
                     return (ra ? ra->z_order : 0) < (rb ? rb->z_order : 0);
                   });

  for (const ChannelDef* channel : channels) {
    const ChannelBinding* binding = map.Find(channel->name);
    if (binding == nullptr || binding->region.empty()) {
      continue;
    }
    const ScreenRegion* region = env.FindRegion(binding->region);
    if (region == nullptr) {
      continue;
    }
    bool hold = options.hold_discrete_media && channel->medium != MediaType::kVideo;
    const ScheduledEvent* visible = VisibleOn(schedule, channel->name, t, hold);
    if (visible == nullptr) {
      continue;
    }
    CMIF_ASSIGN_OR_RETURN(DataBlock block, MaterializeEvent(visible->event, store, blocks));
    switch (block.medium()) {
      case MediaType::kVideo: {
        const VideoSegment& video = block.video();
        if (video.empty() || video.fps() <= 0) {
          break;
        }
        // Clamp into range so a held last frame renders during freeze gaps.
        std::int64_t index = (t - visible->begin).ToUnits(video.fps());
        index = std::clamp<std::int64_t>(index, 0,
                                         static_cast<std::int64_t>(video.frame_count()) - 1);
        BlitFitted(canvas, *region, video.Frame(static_cast<std::size_t>(index)));
        break;
      }
      case MediaType::kImage:
      case MediaType::kGraphic:
        BlitFitted(canvas, *region, block.image());
        break;
      case MediaType::kText:
        DrawTextBlock(canvas, *region, block.text(), options);
        break;
      case MediaType::kAudio:
        break;  // not visual
    }
  }
  return canvas;
}

StatusOr<std::vector<Raster>> ComposeFilmStrip(const Document& document,
                                               const Schedule& schedule,
                                               const PresentationMap& map,
                                               const VirtualEnvironment& env,
                                               const DescriptorStore& store,
                                               const BlockStore& blocks, MediaTime begin,
                                               MediaTime end, int count,
                                               const CompositorOptions& options) {
  if (count <= 0 || end <= begin) {
    return InvalidArgumentError("film strip needs count > 0 and end > begin");
  }
  std::vector<Raster> frames;
  frames.reserve(static_cast<std::size_t>(count));
  MediaTime span = end - begin;
  for (int i = 0; i < count; ++i) {
    MediaTime t = begin + span.MulRational(i, count);
    CMIF_ASSIGN_OR_RETURN(Raster frame,
                          ComposeFrame(document, schedule, map, env, store, blocks, t, options));
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace cmif
