// The virtual presentation environment: "this tool is used to allocate
// virtual presentation 'real estate' (such as areas on a display or channels
// of a loudspeaker) to a given multimedia document" (section 2). Regions and
// speaker outputs are named; the presentation map binds channels to them.
#ifndef SRC_PRESENT_VIRTUAL_ENV_H_
#define SRC_PRESENT_VIRTUAL_ENV_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/doc/channel.h"

namespace cmif {

// An axis-aligned screen region on the virtual canvas.
struct ScreenRegion {
  std::string name;
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;
  int z_order = 0;  // higher draws on top (labels over video)
};

// One loudspeaker output.
struct SpeakerOutput {
  std::string name;
  // Stereo position in [-1, 1]; 0 = center.
  double pan = 0;
};

// A virtual canvas plus named regions and speaker outputs.
class VirtualEnvironment {
 public:
  VirtualEnvironment(int canvas_width, int canvas_height)
      : canvas_width_(canvas_width), canvas_height_(canvas_height) {}

  int canvas_width() const { return canvas_width_; }
  int canvas_height() const { return canvas_height_; }

  // Defines a region; error when the name exists or the rectangle leaves
  // the canvas.
  Status AddRegion(ScreenRegion region);
  Status AddSpeaker(SpeakerOutput speaker);

  const ScreenRegion* FindRegion(std::string_view name) const;
  const SpeakerOutput* FindSpeaker(std::string_view name) const;
  const std::vector<ScreenRegion>& regions() const { return regions_; }
  const std::vector<SpeakerOutput>& speakers() const { return speakers_; }

  // True if two regions overlap at the same z order (a layout smell the
  // presentation tool warns about).
  std::vector<std::pair<std::string, std::string>> OverlappingRegions() const;

  // A standard news-style layout on the canvas: a main video area, a graphic
  // inset, a label strip on top, a caption strip at the bottom, and a center
  // speaker. Region names: main, inset, label_strip, caption_strip.
  static VirtualEnvironment NewsLayout(int canvas_width, int canvas_height);

 private:
  int canvas_width_;
  int canvas_height_;
  std::vector<ScreenRegion> regions_;
  std::vector<SpeakerOutput> speakers_;
};

}  // namespace cmif

#endif  // SRC_PRESENT_VIRTUAL_ENV_H_
