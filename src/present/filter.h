// Constraint filtering tools (section 2): "24-bit color to 8-bit color,
// color to monochrome, high-resolution to low resolution, full-frame-rate
// video to sub-sampled rate video". Filtering is split the way the paper
// argues it should be (section 6): *planning* reads only descriptor
// attributes — small clusters of data — while *applying* touches the media
// payloads. The Figure-1 bench measures that asymmetry.
#ifndef SRC_PRESENT_FILTER_H_
#define SRC_PRESENT_FILTER_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/doc/document.h"
#include "src/doc/event.h"
#include "src/present/capability.h"
#include "src/sched/timegraph.h"

namespace cmif {

enum class FilterOpKind {
  kQuantizeColor = 0,  // arg1 = bits per channel
  kMonochrome,
  kDownscale,          // arg1 = new width, arg2 = new height
  kSubsampleFps,       // arg1 = keep-every-N factor
  kResampleAudio,      // arg1 = new rate
  kMixToMono,
};

std::string_view FilterOpKindName(FilterOpKind kind);

// One planned reduction.
struct FilterOp {
  FilterOpKind kind = FilterOpKind::kQuantizeColor;
  int arg1 = 0;
  int arg2 = 0;
  std::string ToString() const;
};

// The reductions one descriptor needs to fit a profile.
struct FilterPlan {
  std::string descriptor_id;
  std::vector<FilterOp> ops;
  // Declared payload size before, and the attribute-estimated size after.
  std::int64_t bytes_before = 0;
  std::int64_t bytes_after = 0;
  // False when no reduction can make the block presentable (e.g. video on a
  // profile whose fps limit does not divide the source rate).
  bool supported = true;
  std::string unsupported_reason;

  bool NeedsWork() const { return !ops.empty(); }
};

// Plans the filter for one descriptor against `profile`, reading only its
// attributes (width/height/rate/color_bits/bytes).
FilterPlan PlanFilter(const DataDescriptor& descriptor, const SystemProfile& profile);

// Applies a plan to an actual payload. Errors propagate from the media ops.
StatusOr<DataBlock> ApplyFilter(const DataBlock& block, const FilterPlan& plan);

// Planning across a whole document: one plan per referenced descriptor.
struct FilterReport {
  std::vector<FilterPlan> plans;
  std::int64_t total_bytes_before = 0;
  std::int64_t total_bytes_after = 0;
  std::size_t unsupported = 0;
  std::string ToString() const;
};

// Plans every descriptor referenced by `document` (descriptor-only pass).
StatusOr<FilterReport> PlanDocumentFilter(const Document& document, const DescriptorStore& store,
                                          const SystemProfile& profile);

// Materializes a filtered database: resolves each planned descriptor's
// payload from `store`/`blocks`, applies its plan, stores the reduced block
// inline in the returned store and refreshes the descriptor attributes.
// Unsupported descriptors are copied through unchanged (the player decides
// whether to drop them).
StatusOr<DescriptorStore> ApplyDocumentFilter(const DescriptorStore& store,
                                              const BlockStore& blocks,
                                              const FilterReport& report);

// Injects the profile's device timing into a time graph as kCapability
// constraints: consecutive events on one channel need at least the medium's
// setup time between them, and each event needs the device latency after the
// start of its enclosing composite. This produces the paper's class-2
// conflicts when the document demands hard back-to-back synchronization.
Status InjectCapabilityConstraints(TimeGraph& graph, const Document& document,
                                   const std::vector<EventDescriptor>& events,
                                   const SystemProfile& profile);

}  // namespace cmif

#endif  // SRC_PRESENT_FILTER_H_
