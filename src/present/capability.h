// Target-system capability profiles. The constraint filtering tools map a
// document "from the virtual presentation environment to a physical
// presentation environment" (section 2); a profile describes the physical
// side: color depth, resolution, rates, and device timing. Profiles also
// feed kCapability constraints into the scheduler, producing the paper's
// class-2 conflicts (section 5.3.3).
#ifndef SRC_PRESENT_CAPABILITY_H_
#define SRC_PRESENT_CAPABILITY_H_

#include <string>

#include "src/base/media_time.h"
#include "src/media/media_type.h"

namespace cmif {

// Per-medium device timing.
struct DeviceTiming {
  // Fixed delay between commanding a presentation and it appearing.
  MediaTime latency;
  // Re-arm time between two presentations on the same channel.
  MediaTime setup;
  // Sustained transfer rate for payload bytes; 0 = infinite.
  std::int64_t bandwidth_bytes_per_s = 0;
};

// What a target system can do.
struct SystemProfile {
  std::string name;
  // Display.
  int max_color_bits = 8;      // bits per channel (8 = 24-bit color)
  bool color = true;           // false = monochrome output
  int max_width = 1280;
  int max_height = 1024;
  int max_video_fps = 25;
  // Audio.
  int max_audio_rate = 44100;
  int max_audio_channels = 2;
  // Device timing per medium.
  DeviceTiming video;
  DeviceTiming audio;
  DeviceTiming image;
  DeviceTiming text;

  const DeviceTiming& TimingFor(MediaType medium) const;
};

// A 1991 research workstation: full color, full rate, fast devices.
SystemProfile WorkstationProfile();
// A modest personal system: 8-bit color (3 bits/channel), quarter
// resolution, 12 fps video, 11 kHz mono audio, slower devices.
SystemProfile PersonalSystemProfile();
// A portable monochrome terminal: text and low-rate audio only, tiny
// display, long setup times. The stress profile for conflict benches.
SystemProfile PortableMonoProfile();

}  // namespace cmif

#endif  // SRC_PRESENT_CAPABILITY_H_
