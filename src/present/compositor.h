// The frame compositor: renders one instant of a scheduled document onto
// the virtual canvas — the paper's Figure 4a, produced by software. Visual
// channels draw into their mapped regions (z-ordered); video shows the
// frame at the current offset, stills and text hold until replaced (the
// discrete-media hold that accompanies the scheduler's stretchable events).
#ifndef SRC_PRESENT_COMPOSITOR_H_
#define SRC_PRESENT_COMPOSITOR_H_

#include "src/base/status.h"
#include "src/ddbms/store.h"
#include "src/doc/event.h"
#include "src/media/raster.h"
#include "src/present/presentation_map.h"
#include "src/sched/schedule.h"

namespace cmif {

struct CompositorOptions {
  Pixel background{12, 12, 12};
  Pixel text_color{235, 235, 235};
  // Text pixel scale (1 = 5x7 glyphs).
  int text_scale = 1;
  // Hold stills/text after their event ends until the next event on the
  // channel begins.
  bool hold_discrete_media = true;
};

// Renders the canvas at document time `t`. Channels without a visible event
// leave their region showing the background. Payloads are materialized via
// MaterializeEvent (clip/crop/slice respected).
StatusOr<Raster> ComposeFrame(const Document& document, const Schedule& schedule,
                              const PresentationMap& map, const VirtualEnvironment& env,
                              const DescriptorStore& store, const BlockStore& blocks,
                              MediaTime t, const CompositorOptions& options = {});

// Renders `count` frames evenly spaced over [begin, end) — a contact sheet
// of the presentation.
StatusOr<std::vector<Raster>> ComposeFilmStrip(const Document& document,
                                               const Schedule& schedule,
                                               const PresentationMap& map,
                                               const VirtualEnvironment& env,
                                               const DescriptorStore& store,
                                               const BlockStore& blocks, MediaTime begin,
                                               MediaTime end, int count,
                                               const CompositorOptions& options = {});

}  // namespace cmif

#endif  // SRC_PRESENT_COMPOSITOR_H_
