#include "src/present/presentation_map.h"

#include <set>
#include <sstream>

#include "src/base/lexer.h"
#include "src/base/string_util.h"

namespace cmif {

Status PresentationMap::BindRegion(std::string channel, std::string region) {
  if (Find(channel) != nullptr) {
    return AlreadyExistsError("channel '" + channel + "' is already bound");
  }
  ChannelBinding binding;
  binding.channel = std::move(channel);
  binding.region = std::move(region);
  bindings_.push_back(std::move(binding));
  return Status::Ok();
}

Status PresentationMap::BindSpeaker(std::string channel, std::string speaker, int volume) {
  if (Find(channel) != nullptr) {
    return AlreadyExistsError("channel '" + channel + "' is already bound");
  }
  if (volume < 0 || volume > 100) {
    return OutOfRangeError("volume must lie in [0, 100]");
  }
  ChannelBinding binding;
  binding.channel = std::move(channel);
  binding.speaker = std::move(speaker);
  binding.volume = volume;
  bindings_.push_back(std::move(binding));
  return Status::Ok();
}

const ChannelBinding* PresentationMap::Find(std::string_view channel) const {
  for (const ChannelBinding& binding : bindings_) {
    if (binding.channel == channel) {
      return &binding;
    }
  }
  return nullptr;
}

Status PresentationMap::Validate(const ChannelDictionary& channels,
                                 const VirtualEnvironment& env) const {
  for (const ChannelDef& channel : channels.channels()) {
    const ChannelBinding* binding = Find(channel.name);
    if (binding == nullptr) {
      return FailedPreconditionError("channel '" + channel.name + "' is unbound");
    }
    bool is_audio = channel.medium == MediaType::kAudio;
    if (is_audio) {
      if (binding->speaker.empty()) {
        return FailedPreconditionError("audio channel '" + channel.name +
                                       "' must bind to a speaker");
      }
      if (env.FindSpeaker(binding->speaker) == nullptr) {
        return NotFoundError("speaker '" + binding->speaker + "' is not in the environment");
      }
    } else {
      if (binding->region.empty()) {
        return FailedPreconditionError("visual channel '" + channel.name +
                                       "' must bind to a region");
      }
      if (env.FindRegion(binding->region) == nullptr) {
        return NotFoundError("region '" + binding->region + "' is not in the environment");
      }
    }
  }
  return Status::Ok();
}

StatusOr<PresentationMap> PresentationMap::AutoMap(const ChannelDictionary& channels,
                                                   const VirtualEnvironment& env) {
  PresentationMap map;
  std::set<std::string> claimed;
  // First pass: honor preference attributes.
  for (const ChannelDef& channel : channels.channels()) {
    if (channel.medium == MediaType::kAudio) {
      std::string speaker = channel.extra.GetIdOr("speaker", "");
      if (!speaker.empty()) {
        if (env.FindSpeaker(speaker) == nullptr) {
          return NotFoundError("preferred speaker '" + speaker + "' does not exist");
        }
        CMIF_RETURN_IF_ERROR(map.BindSpeaker(channel.name, speaker));
      }
    } else {
      std::string region = channel.extra.GetIdOr("region", "");
      if (!region.empty()) {
        if (env.FindRegion(region) == nullptr) {
          return NotFoundError("preferred region '" + region + "' does not exist");
        }
        claimed.insert(region);
        CMIF_RETURN_IF_ERROR(map.BindRegion(channel.name, region));
      }
    }
  }
  // Second pass: tile the rest.
  std::size_t next_region = 0;
  for (const ChannelDef& channel : channels.channels()) {
    if (map.Find(channel.name) != nullptr) {
      continue;
    }
    if (channel.medium == MediaType::kAudio) {
      if (env.speakers().empty()) {
        return ResourceExhaustedError("no speaker available for channel '" + channel.name + "'");
      }
      CMIF_RETURN_IF_ERROR(map.BindSpeaker(channel.name, env.speakers().front().name));
    } else {
      while (next_region < env.regions().size() &&
             claimed.contains(env.regions()[next_region].name)) {
        ++next_region;
      }
      if (next_region >= env.regions().size()) {
        return ResourceExhaustedError("no region left for channel '" + channel.name + "'");
      }
      claimed.insert(env.regions()[next_region].name);
      CMIF_RETURN_IF_ERROR(map.BindRegion(channel.name, env.regions()[next_region].name));
    }
  }
  return map;
}

std::string PresentationMap::Serialize() const {
  std::ostringstream os;
  os << "(presmap\n";
  for (const ChannelBinding& binding : bindings_) {
    if (!binding.region.empty()) {
      os << "  (bind " << binding.channel << " region " << binding.region << ")\n";
    } else {
      os << "  (bind " << binding.channel << " speaker " << binding.speaker << " volume "
         << binding.volume << ")\n";
    }
  }
  os << ")\n";
  return os.str();
}

StatusOr<PresentationMap> PresentationMap::Parse(const std::string& text) {
  PresentationMap map;
  Lexer lexer(text);
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
  CMIF_ASSIGN_OR_RETURN(Token head, lexer.Expect(TokenKind::kWord));
  if (head.text != "presmap") {
    return DataLossError("expected '(presmap', got '" + head.text + "'");
  }
  while (true) {
    CMIF_ASSIGN_OR_RETURN(Token token, lexer.Next());
    if (token.kind == TokenKind::kRParen) {
      break;
    }
    if (token.kind != TokenKind::kLParen) {
      return DataLossError(StrFormat("line %d: expected '(bind ...)'", token.line));
    }
    CMIF_ASSIGN_OR_RETURN(Token bind, lexer.Expect(TokenKind::kWord));
    if (bind.text != "bind") {
      return DataLossError(StrFormat("line %d: expected 'bind'", bind.line));
    }
    CMIF_ASSIGN_OR_RETURN(Token channel, lexer.Expect(TokenKind::kWord));
    CMIF_ASSIGN_OR_RETURN(Token kind, lexer.Expect(TokenKind::kWord));
    CMIF_ASSIGN_OR_RETURN(Token target, lexer.Expect(TokenKind::kWord));
    if (kind.text == "region") {
      CMIF_RETURN_IF_ERROR(map.BindRegion(channel.text, target.text));
      CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
    } else if (kind.text == "speaker") {
      int volume = 100;
      CMIF_ASSIGN_OR_RETURN(Token next, lexer.Next());
      if (next.kind == TokenKind::kWord && next.text == "volume") {
        CMIF_ASSIGN_OR_RETURN(Token value, lexer.Expect(TokenKind::kWord));
        volume = static_cast<int>(std::strtol(value.text.c_str(), nullptr, 10));
        CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kRParen).status());
      } else if (next.kind != TokenKind::kRParen) {
        return DataLossError(StrFormat("line %d: expected 'volume' or ')'", next.line));
      }
      CMIF_RETURN_IF_ERROR(map.BindSpeaker(channel.text, target.text, volume));
    } else {
      return DataLossError(StrFormat("line %d: unknown binding kind '%s'", kind.line,
                                     kind.text.c_str()));
    }
  }
  return map;
}

}  // namespace cmif
