// The CMIF request/response messages carried inside wire frames
// (src/net/wire.h). A request names a corpus document, a capability profile,
// and an optional channel selection; the response is the server-compiled
// presentation (serialized canonically, see src/net/presentation_wire.h)
// plus the serve outcome — healthy, recovered, degraded, or failed — so a
// client can tell a fresh compile from a stale fallback.
//
// Encoding: varint-prefixed fields in fixed order (the same LEB128 as the
// frame length). Every decoder returns kDataLoss on truncated or malformed
// payloads; unknown trailing bytes are also kDataLoss — the version byte in
// the frame header is the compatibility mechanism, not silent field skipping.
// Encoders and decoders therefore take the wire version the frame declares:
// v2 payloads stop before the v3 deadline/shed/queue fields, and decoding a
// payload under the wrong version fails structurally rather than silently.
#ifndef SRC_NET_PROTOCOL_H_
#define SRC_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/net/wire.h"
#include "src/obs/trace.h"
#include "src/serve/serve.h"

namespace cmif {
namespace net {

// What a client asks for.
struct PresentRequest {
  // Corpus document name (e.g. "news-3-s2").
  std::string document;
  // Capability profile name (e.g. "workstation"); empty selects the server's
  // first configured profile.
  std::string profile;
  // Channel selection: serialize only these channels of the compiled
  // presentation (empty = all). Selection never changes what is compiled or
  // cached — only what travels back.
  std::vector<std::string> channels;
  // When false the response carries only the presentation hash, not the
  // serialized body (a cheap integrity probe).
  bool want_body = true;
  // When false the server answers kFailed instead of serving a stale
  // presentation from the degraded path.
  bool allow_degraded = true;
  // Cross-process trace context (src/obs/trace.h). trace_id 0 = untraced.
  // When sampled, the server records spans under this id and returns them in
  // PresentResponse::server_spans so the client can merge one timeline.
  obs::TraceContext trace;
  // v3: relative service deadline in milliseconds, 0 = none. The server's
  // EDF scheduler turns it into an absolute deadline at admission; work
  // whose deadline is already blown is shed (kResourceExhausted) or, when
  // allow_degraded holds, answered from stale cache — never queued. v2
  // frames have no such field and are treated as deadline-free.
  std::int64_t deadline_ms = 0;
  // v4: when true the response also carries every resolved data block the
  // schedule references, inline (blob block delivery — the baseline the
  // streamed path is checked against). v2/v3 frames never carry blocks.
  bool want_blocks = false;
};

// One resolved data block on the wire: the descriptor it materializes and
// its canonical payload encoding (src/media/block_codec.h).
struct WireBlock {
  std::string descriptor_id;
  std::string payload;
};

// One server-side span on the wire: the subset of obs::SpanRecord a client
// needs to merge the server's timeline with its own (annotations stay
// server-side). Timestamps are the server's process clock; the client
// re-bases them when merging.
struct WireSpan {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t trace_id = 0;
  double start_us = 0;
  double duration_us = 0;
  std::int32_t tid = 0;
};

// What the server answers. `outcome` mirrors the serve layer's ladder; a
// kFailed response carries only the error fields.
struct PresentResponse {
  ServeOutcome outcome = ServeOutcome::kFailed;
  int attempts = 1;
  bool cache_hit = false;
  // The compile error behind kDegraded / kFailed (kOk otherwise).
  Status error;
  // Canonical serialization of the compiled presentation restricted to the
  // requested channels; empty when failed or !want_body.
  std::string presentation;
  // Fnv1a64 of the full canonical serialization (all requested channels),
  // present whenever a presentation was served — the client's end-to-end
  // integrity check against an in-process compile.
  std::uint64_t presentation_hash = 0;
  // Spans the server harvested for the request's (sampled) trace id; empty
  // for unsampled or untraced requests.
  std::vector<WireSpan> server_spans;
  // v3: true when the scheduler refused the request outright (queue full or
  // deadline blown with degraded fallback unavailable). A shed response has
  // outcome kFailed and error kResourceExhausted; the bit lets clients and
  // benches separate overload sheds from genuine compile failures.
  bool shed = false;
  // v3: milliseconds the request spent in the scheduler queue before a
  // worker picked it up (0 for shed-at-admission responses).
  double queue_ms = 0;
  // v4: resolved data blocks, in schedule first-need order, present only
  // when the request set want_blocks (empty otherwise). Capped at
  // kMaxWireBlocks entries; a corrupted count fails as kDataLoss.
  std::vector<WireBlock> blocks;
};

// Blocks the wire accepts per response — a corrupted count cannot make the
// decoder allocate unboundedly.
inline constexpr std::uint64_t kMaxWireBlocks = 4096;

std::string EncodeRequest(const PresentRequest& request,
                          std::uint8_t version = kWireVersion);
StatusOr<PresentRequest> DecodeRequest(std::string_view payload,
                                       std::uint8_t version = kWireVersion);

std::string EncodeResponse(const PresentResponse& response,
                           std::uint8_t version = kWireVersion);
StatusOr<PresentResponse> DecodeResponse(std::string_view payload,
                                         std::uint8_t version = kWireVersion);

// Batched messages (v3+; carried in kBatchRequest/kBatchResponse frames).
// Layout: varint count, then each message length-prefixed. Responses answer
// requests positionally. A batch is capped at kMaxBatchMessages entries so a
// corrupted count cannot amplify into unbounded work.
inline constexpr std::uint64_t kMaxBatchMessages = 1024;

std::string EncodeBatchRequest(const std::vector<PresentRequest>& requests,
                               std::uint8_t version = kWireVersion);
StatusOr<std::vector<PresentRequest>> DecodeBatchRequest(std::string_view payload,
                                                         std::uint8_t version = kWireVersion);

std::string EncodeBatchResponse(const std::vector<PresentResponse>& responses,
                                std::uint8_t version = kWireVersion);
StatusOr<std::vector<PresentResponse>> DecodeBatchResponse(std::string_view payload,
                                                           std::uint8_t version = kWireVersion);

// Protocol-level errors (bad frame, unknown document, server overload)
// travel as a kError frame whose payload is an encoded Status. Decode
// writes the carried status to *decoded and returns the decode result
// itself (kDataLoss on a malformed payload) — StatusOr<Status> would be
// ambiguous between the two states.
std::string EncodeWireStatus(const Status& status);
Status DecodeWireStatus(std::string_view payload, Status* decoded);

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_PROTOCOL_H_
