// The CMIF presentation server: a blocking TCP front end over a ServeLoop.
// One accept thread feeds a bounded queue of accepted connections; a fixed
// pool of worker threads drains it, each handling one connection at a time
// (requests on a connection are served strictly in order — that sequencing
// is the per-connection backpressure: a client cannot have two compiles in
// flight on one socket). When the pending queue is full the server answers
// kResourceExhausted on a kError frame and closes — overload is an explicit
// signal, never an unbounded queue.
//
// A request frame carries a PresentRequest; the answer is a kResponse frame
// with the compiled presentation (or a degraded/failed PresentResponse), or
// a kError frame for protocol-level failures (malformed frame, unknown
// document or profile). After any kDataLoss on the wire the stream is
// desynchronized and the connection is dropped.
#ifndef SRC_NET_SERVER_H_
#define SRC_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/socket.h"
#include "src/base/status.h"
#include "src/net/protocol.h"
#include "src/net/stats.h"
#include "src/net/wire.h"
#include "src/obs/metrics.h"
#include "src/serve/serve.h"

namespace cmif {
namespace net {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;       // 0 = ephemeral; NetServer::port() after Start()
  int workers = 2;    // connection-handling threads
  int accept_backlog = 16;
  // Accepted connections waiting for a worker; one more is rejected with
  // kResourceExhausted.
  std::size_t max_pending_connections = 16;
  // Per-connection read/write deadline; 0 = none. Bounds how long a worker
  // can be held by a silent client.
  int io_timeout_ms = 10000;
  WireLimits limits;
  // Head-based sampling rate for requests that arrive without a trace
  // context: the server starts its own trace for this fraction of them.
  // Requests that carry a sampled client trace are always recorded (the
  // client made the sampling decision at the head).
  double trace_sample_rate = 0.0;
  // Cap on spans returned in one PresentResponse; the deepest spans win
  // because harvest order is start-time order and we keep the earliest.
  std::size_t max_response_spans = 512;
};

class NetServer {
 public:
  struct Stats {
    std::uint64_t connections = 0;      // accepted and queued
    std::uint64_t rejected = 0;         // refused with kResourceExhausted
    std::uint64_t requests = 0;         // request frames answered
    std::uint64_t protocol_errors = 0;  // kError frames sent
  };

  // `loop` (and the corpus behind it) must outlive the server.
  explicit NetServer(ServeLoop& loop, NetServerOptions options = {});
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, then spawns the accept thread and worker pool.
  Status Start();
  // Unblocks every thread (listener close + shutdown of live connections)
  // and joins them. Idempotent; also run by the destructor.
  void Stop();

  // The bound port (resolves an ephemeral request after Start()).
  int port() const { return listener_.port(); }
  bool running() const { return running_; }

  Stats stats() const;

  // The live telemetry answered on a kStatsRequest frame: RED metrics from
  // the always-on request histogram, MappingCache and breaker health from the
  // serve loop, and tracing counters. Works whether or not obs is enabled —
  // the histogram is a server member, not a registry instrument.
  StatsSnapshot Snapshot() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(Socket socket);
  // One request frame -> one response frame. A non-OK return means a kError
  // frame was (or could not be) sent and the connection must drop.
  Status HandleFrame(Socket& socket, const Frame& frame);
  PresentResponse HandleRequest(const PresentRequest& request);

  ServeLoop& loop_;
  NetServerOptions options_;
  ListenSocket listener_;
  // Name -> index resolution for the wire's string identifiers, built once
  // at Start() (the corpus and profile set are fixed for the loop's life).
  std::unordered_map<std::string, std::size_t> documents_;
  std::unordered_map<std::string, std::size_t> profiles_;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  bool running_ = false;
  // steady_clock microseconds at Start(), for the snapshot's uptime.
  std::uint64_t started_us_ = 0;

  // RED duration distribution over every handled request, always on (its
  // Record is lock-free and the stats frame must work with obs compiled
  // out). Outcome/trace tallies ride alongside as plain atomics.
  obs::Histogram request_ms_;
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> traces_sampled_{0};

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Socket> pending_;          // guarded by mu_
  bool stopping_ = false;               // guarded by mu_
  std::unordered_set<int> live_fds_;    // guarded by mu_; see RegisterConnection
  Stats stats_;                         // guarded by mu_
  // Ring of recent sampled trace ids — the exemplars in the stats snapshot.
  static constexpr std::size_t kMaxExemplars = 16;
  std::vector<std::uint64_t> exemplars_;  // guarded by mu_
  std::size_t exemplar_next_ = 0;         // guarded by mu_
};

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_SERVER_H_
