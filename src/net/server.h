// The CMIF presentation server: an epoll reactor front end over a ServeLoop.
// One reactor thread (src/net/reactor.h) owns every connection's frame
// assembly and response flushing; decoded requests are admitted to a
// RequestScheduler (FIFO or EDF, src/net/scheduler.h) and drained by a
// ThreadPool of compile workers. A connection therefore supports request
// pipelining: a client may write many request frames back-to-back, work is
// scheduled globally (EDF reorders across connections by deadline), and
// responses flush strictly in request order per connection — the per-slot
// sequencer below buffers out-of-order completions until their turn.
//
// Overload is an explicit signal, never an unbounded queue: admission sheds
// when the scheduler queue is full (both policies) or when a request's
// deadline is already blown (EDF), answering a structured PresentResponse
// with shed=true and kResourceExhausted. A request whose deadline expires
// *while queued* (EDF) is degraded — answered from stale cache via
// ServeLoop::ServeStale — when the client allows it, shed otherwise; a full
// compile nobody is waiting for never burns a worker.
//
// A request frame carries a PresentRequest; the answer is a kResponse frame
// with the compiled presentation (or a degraded/shed/failed PresentResponse),
// or a kError frame for protocol-level failures (malformed payload, unknown
// frame type). kBatchRequest (wire v3) carries many requests; each is
// scheduled independently and the batch answers as one kBatchResponse once
// the last completes. Responses mirror the version of the frame that carried
// the request, so v2 clients interoperate frame-by-frame with a v3 server.
// After any kDataLoss on the wire the stream is desynchronized: the server
// flushes pending responses, answers a kError frame, and drops the
// connection.
#ifndef SRC_NET_SERVER_H_
#define SRC_NET_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_pool.h"
#include "src/net/protocol.h"
#include "src/net/reactor.h"
#include "src/net/scheduler.h"
#include "src/net/stats.h"
#include "src/net/stream.h"
#include "src/net/wire.h"
#include "src/obs/metrics.h"
#include "src/serve/prefetch.h"
#include "src/serve/serve.h"

namespace cmif {
namespace net {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;     // 0 = ephemeral; NetServer::port() after Start()
  int workers = 2;  // compile worker threads (ThreadPool size)
  int accept_backlog = 64;
  // Open-connection cap (reactor-enforced); one more gets a kError frame.
  std::size_t max_connections = 1024;
  // Scheduler admission: policy and queue-full shed threshold.
  SchedPolicy sched_policy = SchedPolicy::kFifo;
  std::size_t max_queue_depth = 256;
  // Deadline applied to requests that arrive without one (EDF only);
  // 0 = such requests are deadline-free and sort last.
  std::int64_t default_deadline_ms = 0;
  // Age limit for a partially received frame before the connection is
  // dropped (slow-loris defense); 0 = off. Idle connections *between*
  // frames are legitimate and never time out.
  std::int64_t partial_frame_timeout_ms = 10000;
  WireLimits limits;
  // Head-based sampling rate for requests that arrive without a trace
  // context: the server starts its own trace for this fraction of them.
  // Requests that carry a sampled client trace are always recorded (the
  // client made the sampling decision at the head).
  double trace_sample_rate = 0.0;
  // Cap on spans returned in one PresentResponse; the deepest spans win
  // because harvest order is start-time order and we keep the earliest.
  std::size_t max_response_spans = 512;
};

class NetServer {
 public:
  struct Stats {
    std::uint64_t connections = 0;      // accepted by the reactor
    std::uint64_t rejected = 0;         // refused over max_connections
    std::uint64_t requests = 0;         // request messages answered
    std::uint64_t protocol_errors = 0;  // kError frames sent
    std::uint64_t shed = 0;             // structured overload refusals
    std::uint64_t degraded_deadline = 0;  // expired-in-queue stale answers
  };

  // `loop` (and the corpus behind it) must outlive the server.
  explicit NetServer(ServeLoop& loop, NetServerOptions options = {});
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds + listens, spawns the reactor thread and the worker pool.
  Status Start();
  // Graceful shutdown: stops accepting, waits for every admitted request to
  // complete, flushes buffered responses (bounded by the reactor's drain
  // timeout), closes every connection, and only then tears the worker pool
  // down. Idempotent; also run by the destructor.
  void Stop();

  // The bound port (resolves an ephemeral request after Start()).
  int port() const { return reactor_ ? reactor_->port() : 0; }
  bool running() const { return running_.load(std::memory_order_relaxed); }

  Stats stats() const CMIF_EXCLUDES(mu_);
  // Scheduler-level counters (sheds, expiries, queue-wait totals).
  RequestScheduler::Stats scheduler_stats() const;

  // The live telemetry answered on a kStatsRequest frame: RED metrics from
  // the always-on request histogram, MappingCache and breaker health from the
  // serve loop, and tracing counters. Works whether or not obs is enabled —
  // the histogram is a server member, not a registry instrument.
  StatsSnapshot Snapshot() const CMIF_EXCLUDES(mu_);

 private:
  // One encoded frame waiting to go out.
  struct OutFrame {
    FrameType type = FrameType::kResponse;
    std::string payload;
  };

  // One response waiting its turn in a connection's pipeline. Slots are
  // assigned in frame-arrival order on the reactor thread and flushed in
  // that order no matter which order workers finish. A slot usually holds
  // one frame; a stream response holds the whole kStreamBegin..kStreamEnd
  // sequence, flushed back-to-back so pipelined requests behind it still
  // answer in order.
  struct Slot {
    bool ready = false;
    bool close_after = false;  // drop the connection once this flushes
    std::uint8_t version = kWireVersion;
    std::vector<OutFrame> frames;
  };

  struct ConnState {
    std::deque<Slot> slots;       // front = next slot to send
    std::uint64_t base_slot = 0;  // absolute index of slots.front()
    std::uint64_t next_slot = 0;  // next to assign
    bool eof = false;  // peer half-closed; close once the pipeline drains
  };

  // The shared tail of a kBatchRequest: sub-responses land positionally,
  // the last completion encodes the kBatchResponse frame.
  struct BatchState {
    std::vector<PresentResponse> responses;
    std::atomic<std::size_t> remaining{0};
  };

  // Reactor callbacks (reactor thread; must not block).
  void OnFrame(std::uint64_t conn_id, Frame frame);
  void OnEof(std::uint64_t conn_id);
  void OnDesync(std::uint64_t conn_id, const Status& error);
  void OnClosed(std::uint64_t conn_id);

  // Assigns the next response slot for `conn_id` (reactor thread).
  std::uint64_t AssignSlot(std::uint64_t conn_id) CMIF_EXCLUDES(mu_);
  // Fills a slot and flushes the connection's contiguous ready prefix
  // through the reactor (any thread).
  void CompleteSlot(std::uint64_t conn_id, std::uint64_t slot, FrameType type,
                    std::string payload, std::uint8_t version, bool close_after = false)
      CMIF_EXCLUDES(mu_);
  // Multi-frame variant: the whole frame sequence occupies one slot.
  void CompleteSlotFrames(std::uint64_t conn_id, std::uint64_t slot,
                          std::vector<OutFrame> frames, std::uint8_t version,
                          bool close_after = false) CMIF_EXCLUDES(mu_);

  // A request completion: the wire response plus the compiled presentation
  // behind it (null when nothing was served) — the streaming and
  // want_blocks paths need the schedule to build a delivery plan.
  using Completion =
      std::function<void(PresentResponse, std::shared_ptr<const CompiledPresentation>)>;

  // Admits one decoded request: schedules it (posting a worker ticket) or
  // sheds it immediately. `done` receives the finished response exactly once.
  void Admit(PresentRequest request, Completion done);
  // The worker-side request path: trace installation, spans, the serve
  // ladder — or the stale-degrade path when the deadline expired in queue.
  PresentResponse Process(const PresentRequest& request, const RequestScheduler::Item& item,
                          std::shared_ptr<const CompiledPresentation>* presentation);
  // Name -> index resolution plus the serve call (no trace bookkeeping).
  PresentResponse HandleRequest(const PresentRequest& request,
                                std::shared_ptr<const CompiledPresentation>* presentation);
  // Deadline expired while queued and the client allows degradation: answer
  // from stale cache (ServeLoop::ServeStale), shed when nothing is cached.
  PresentResponse HandleExpired(const PresentRequest& request,
                                std::shared_ptr<const CompiledPresentation>* presentation);
  PresentResponse ShedResponse(const Status& reason) const;

  // Builds the delivery plan for a served request under the shared stores'
  // read locks (resolving the request's profile name like HandleRequest).
  StatusOr<StreamPlan> BuildPlanFor(const PresentRequest& request,
                                    const CompiledPresentation& presentation) const;
  // Worker-side completion of a kStreamRequest: encodes the
  // kStreamBegin..kStreamEnd sequence into the reserved slot — or a plain
  // kResponse when there is nothing to stream (the client's blob fallback).
  void CompleteStream(std::uint64_t conn_id, std::uint64_t slot, const StreamRequest& stream,
                      PresentResponse response,
                      std::shared_ptr<const CompiledPresentation> presentation,
                      std::uint8_t version);

  void BumpProtocolErrors() CMIF_EXCLUDES(mu_);

  ServeLoop& loop_;
  NetServerOptions options_;
  // Name -> index resolution for the wire's string identifiers, built once
  // at Start() (the corpus and profile set are fixed for the loop's life).
  std::unordered_map<std::string, std::size_t> documents_;
  std::unordered_map<std::string, std::size_t> profiles_;

  std::unique_ptr<RequestScheduler> scheduler_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Reactor> reactor_;
  std::atomic<bool> running_{false};
  // steady_clock microseconds at Start(), for the snapshot's uptime.
  std::uint64_t started_us_ = 0;

  // RED duration distribution over every handled request, always on (its
  // Record is lock-free and the stats frame must work with obs compiled
  // out). Outcome/trace tallies ride alongside as plain atomics.
  obs::Histogram request_ms_;
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> traces_sampled_{0};
  // Streamed-delivery counters (the kStats "streaming" section). Bytes are
  // chunk payload bytes actually sent; full_bytes is what a blob delivery of
  // the same streams would have sent — the gap is the resume savings.
  std::atomic<std::uint64_t> streams_{0};
  std::atomic<std::uint64_t> stream_chunks_{0};
  std::atomic<std::uint64_t> stream_bytes_{0};
  std::atomic<std::uint64_t> stream_full_bytes_{0};
  std::atomic<std::uint64_t> stream_resumes_{0};
  std::atomic<std::uint64_t> stream_stalls_{0};

  mutable Mutex mu_;
  CondVar idle_cv_;  // signals outstanding_ == 0 (graceful Stop)
  std::unordered_map<std::uint64_t, ConnState> conns_ CMIF_GUARDED_BY(mu_);
  std::uint64_t outstanding_ CMIF_GUARDED_BY(mu_) = 0;  // admitted, not answered
  bool draining_ CMIF_GUARDED_BY(mu_) = false;          // Stop(): shed new work
  Stats stats_ CMIF_GUARDED_BY(mu_);
  // Ring of recent sampled trace ids — the exemplars in the stats snapshot.
  static constexpr std::size_t kMaxExemplars = 16;
  std::vector<std::uint64_t> exemplars_ CMIF_GUARDED_BY(mu_);
  std::size_t exemplar_next_ CMIF_GUARDED_BY(mu_) = 0;
};

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_SERVER_H_
