// The CMIF wire protocol framing: length-prefixed, CRC-framed binary frames
// carrying the request/response messages of src/net/protocol.h. The frame
// reuses the persist-v2 integrity machinery — varint lengths (src/base/
// varint.h) and CRC-32 (src/base/crc32.h) — so a corrupted or truncated
// frame is always a structured kDataLoss, never a crash or a silently wrong
// message:
//
//   frame := magic "CMIF" | u8 version | u8 type | varint payload_len
//            | payload bytes | u32le crc
//
// The CRC covers everything after the magic (version, type, length varint,
// payload), so a single flipped bit anywhere in the frame body or header is
// detected; magic and CRC bytes protect themselves by failing the equality
// check. After any decode error the stream is desynchronized — the only
// safe recovery is to drop the connection, which both endpoints do.
//
// Version negotiation is per-frame and implicit: a peer accepts any version
// in [kMinWireVersion, kWireVersion], decodes the payload by the version the
// frame declares, and answers in that same version. A v2 client therefore
// talks to a v3 server without handshakes — its requests simply carry no
// deadline, and the server's replies omit the v3 response fields.
//
// The socket read/write paths double as fault-injection sites: "net.read"
// and "net.write" can fail transiently, "net.frame_corrupt" flips bytes of
// an encoded frame in transit (detected by the CRC on the far side), and
// "net.slow_loris" injects sender-side latency so a frame trickles out
// slowly — the reactor's partial-frame timeout is what defends against it.
#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/socket.h"
#include "src/base/status.h"

namespace cmif {
namespace net {

inline constexpr std::string_view kFrameMagic = "CMIF";
// Version 4: streamed delivery — PresentRequest grows a want_blocks flag,
// PresentResponse can carry resolved data blocks, and the kStreamRequest/
// kStreamBegin/kStreamChunk/kStreamAck/kStreamEnd frames exist (chunked
// block transfer in schedule order, src/net/stream.h). Version 3 added
// request deadlines, shed/queue_ms, and the batch frames; version 2
// (TraceContext + kStats frames) is still accepted. A frame below
// kMinWireVersion fails cleanly at the header (kDataLoss), never by
// misparsing a payload.
inline constexpr std::uint8_t kWireVersion = 4;
inline constexpr std::uint8_t kMinWireVersion = 2;

// What a frame carries. kError is a protocol-level failure (overload, bad
// frame, bad message) encoded as a wire Status; application-level outcomes
// (degraded, failed compiles) travel inside a kResponse. kStatsRequest (an
// empty payload) asks for a live telemetry snapshot, answered by a
// kStatsResponse carrying an encoded StatsSnapshot (src/net/stats.h).
// kBatchRequest/kBatchResponse (v3+) carry several PresentRequests/
// PresentResponses in one frame, answered positionally. The kStream* frames
// (v4+) carry chunked block delivery: kStreamRequest opens a stream,
// kStreamBegin answers with the schedule prefix + chunk manifest, the
// server then pushes kStreamChunk frames in prefetch order and closes with
// kStreamEnd; kStreamAck is client→server delivery telemetry.
enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
  kStatsRequest = 6,
  kStatsResponse = 7,
  kBatchRequest = 8,
  kBatchResponse = 9,
  kStreamRequest = 10,
  kStreamBegin = 11,
  kStreamChunk = 12,
  kStreamAck = 13,
  kStreamEnd = 14,
};

std::string_view FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kError;
  // The version declared in the frame header; responses mirror it so old
  // clients get payloads they can parse.
  std::uint8_t version = kWireVersion;
  std::string payload;
};

struct WireLimits {
  // Upper bound on one frame's payload; a length prefix beyond this is
  // rejected before any allocation (a corrupted varint cannot OOM the peer).
  std::size_t max_payload_bytes = 8u << 20;
  // Highest wire version this endpoint accepts. Lowering it below
  // kWireVersion makes the endpoint behave like an older peer: frames in
  // (max_version, kWireVersion] fail at the header exactly as a genuinely
  // old implementation would reject them — the interop-fallback paths can
  // therefore be tested against the real decoder, not a mock.
  std::uint8_t max_version = kWireVersion;
};

// Renders one complete frame in the given wire version.
std::string EncodeFrame(FrameType type, std::string_view payload,
                        std::uint8_t version = kWireVersion);

// Decodes the frame at the front of `bytes`. On success `*consumed` is the
// frame's total size. Truncation, a bad magic/version/type, an oversized
// length, and a CRC mismatch are all kDataLoss with the byte offset of the
// failure.
StatusOr<Frame> DecodeFrame(std::string_view bytes, std::size_t* consumed,
                            const WireLimits& limits = {});

// Incremental frame extraction for non-blocking IO: the reactor Feed()s
// whatever recv() returned and drains complete frames with Next(). Header
// fields are validated as soon as their bytes arrive, so garbage fails fast
// even before a full frame is buffered.
class FrameAssembler {
 public:
  explicit FrameAssembler(const WireLimits& limits = {}) : limits_(limits) {}

  // Appends raw bytes received from the transport.
  void Feed(std::string_view bytes);

  // Extracts the next complete frame: a frame, nullopt when more bytes are
  // needed, or kDataLoss when the stream is desynchronized (drop the
  // connection; the assembler is poisoned and keeps returning the error).
  StatusOr<std::optional<Frame>> Next();

  // Bytes buffered but not yet consumed by a complete frame. Nonzero means
  // a frame is in flight — the reactor's slow-loris timeout applies.
  std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  WireLimits limits_;
  std::string buffer_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
  Status poisoned_ = Status::Ok();
};

// Blocking frame IO over a socket. WriteFrame probes the "net.write" fault
// site, the "net.frame_corrupt" corruption site, and the "net.slow_loris"
// latency site; ReadFrame probes "net.read". Both count net.tx_bytes /
// net.rx_bytes when obs is enabled.
Status WriteFrame(Socket& socket, FrameType type, std::string_view payload,
                  std::uint8_t version = kWireVersion);

// nullopt on a clean EOF at a frame boundary (the peer is done). Transport
// failures are kUnavailable; corrupt/truncated frames are kDataLoss.
StatusOr<std::optional<Frame>> ReadFrame(Socket& socket, const WireLimits& limits = {});

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_WIRE_H_
