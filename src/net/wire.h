// The CMIF wire protocol framing: length-prefixed, CRC-framed binary frames
// carrying the request/response messages of src/net/protocol.h. The frame
// reuses the persist-v2 integrity machinery — varint lengths (src/base/
// varint.h) and CRC-32 (src/base/crc32.h) — so a corrupted or truncated
// frame is always a structured kDataLoss, never a crash or a silently wrong
// message:
//
//   frame := magic "CMIF" | u8 version (1) | u8 type | varint payload_len
//            | payload bytes | u32le crc
//
// The CRC covers everything after the magic (version, type, length varint,
// payload), so a single flipped bit anywhere in the frame body or header is
// detected; magic and CRC bytes protect themselves by failing the equality
// check. After any decode error the stream is desynchronized — the only
// safe recovery is to drop the connection, which both endpoints do.
//
// The socket read/write paths double as fault-injection sites: "net.read"
// and "net.write" can fail transiently, and "net.frame_corrupt" flips bytes
// of an encoded frame in transit (detected by the CRC on the far side), so
// fig12-style chaos replays cover the network path end to end.
#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/socket.h"
#include "src/base/status.h"

namespace cmif {
namespace net {

inline constexpr std::string_view kFrameMagic = "CMIF";
// Version 2: PresentRequest carries a TraceContext, PresentResponse carries
// harvested server spans, and the kStatsRequest/kStatsResponse pair exists.
// Mixed-version peers fail cleanly at the frame header (kDataLoss), never by
// misparsing a payload.
inline constexpr std::uint8_t kWireVersion = 2;

// What a frame carries. kError is a protocol-level failure (overload, bad
// frame, bad message) encoded as a wire Status; application-level outcomes
// (degraded, failed compiles) travel inside a kResponse. kStatsRequest (an
// empty payload) asks for a live telemetry snapshot, answered by a
// kStatsResponse carrying an encoded StatsSnapshot (src/net/stats.h).
enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
  kStatsRequest = 6,
  kStatsResponse = 7,
};

std::string_view FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

struct WireLimits {
  // Upper bound on one frame's payload; a length prefix beyond this is
  // rejected before any allocation (a corrupted varint cannot OOM the peer).
  std::size_t max_payload_bytes = 8u << 20;
};

// Renders one complete frame.
std::string EncodeFrame(FrameType type, std::string_view payload);

// Decodes the frame at the front of `bytes`. On success `*consumed` is the
// frame's total size. Truncation, a bad magic/version/type, an oversized
// length, and a CRC mismatch are all kDataLoss with the byte offset of the
// failure.
StatusOr<Frame> DecodeFrame(std::string_view bytes, std::size_t* consumed,
                            const WireLimits& limits = {});

// Blocking frame IO over a socket. WriteFrame probes the "net.write" fault
// site and the "net.frame_corrupt" corruption site; ReadFrame probes
// "net.read". Both count net.tx_bytes / net.rx_bytes when obs is enabled.
Status WriteFrame(Socket& socket, FrameType type, std::string_view payload);

// nullopt on a clean EOF at a frame boundary (the peer is done). Transport
// failures are kUnavailable; corrupt/truncated frames are kDataLoss.
StatusOr<std::optional<Frame>> ReadFrame(Socket& socket, const WireLimits& limits = {});

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_WIRE_H_
