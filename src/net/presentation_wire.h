// Canonical text serialization of a compiled presentation, the payload body
// of a PresentResponse. Canonical means byte-identical for equal inputs:
// deterministic field order, exact rational times (never floats), and events
// keyed by stable document coordinates (channel, node path, descriptor id)
// rather than pointers — so a presentation compiled on the server and the
// same compile run in-process hash to the same Fnv1a64, which is the fig13
// acceptance check and the client's end-to-end integrity probe.
#ifndef SRC_NET_PRESENTATION_WIRE_H_
#define SRC_NET_PRESENTATION_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/mapping_cache.h"

namespace cmif {
namespace net {

// Renders `presentation` as canonical s-expression text. `channels`
// restricts the map bindings, filter plans, and scheduled events to the
// named channels (empty = everything). Filter plans have no channel of their
// own, so under a selection they are restricted to descriptors used by a
// selected event.
std::string SerializePresentation(const CompiledPresentation& presentation,
                                  const std::vector<std::string>& channels = {});

// Fnv1a64 over SerializePresentation(presentation, channels).
std::uint64_t PresentationHash(const CompiledPresentation& presentation,
                               const std::vector<std::string>& channels = {});

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_PRESENTATION_WIRE_H_
