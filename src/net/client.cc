#include "src/net/client.h"

#include <utility>

#include "src/base/string_util.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace cmif {
namespace net {

NetClient::NetClient(NetClientOptions options) : options_(std::move(options)) {
  if (options_.wire_version < kMinWireVersion) {
    options_.wire_version = kMinWireVersion;
  } else if (options_.wire_version > kWireVersion) {
    options_.wire_version = kWireVersion;
  }
}

void NetClient::Disconnect() { socket_.Close(); }

Status NetClient::EnsureConnected() {
  if (socket_.valid()) {
    return Status::Ok();
  }
  CMIF_ASSIGN_OR_RETURN(socket_,
                        ConnectTcp(options_.host, options_.port, options_.io_timeout_ms));
  if (ever_connected_) {
    ++reconnects_;
    if (obs::Enabled()) {
      static obs::Counter& reconnects = obs::GetCounter("net.client.reconnects");
      reconnects.Add();
    }
  }
  ever_connected_ = true;
  return Status::Ok();
}

StatusOr<Frame> NetClient::RoundTripOnce(FrameType type, const std::string& payload) {
  CMIF_RETURN_IF_ERROR(EnsureConnected());
  Status written = WriteFrame(socket_, type, payload, options_.wire_version);
  if (!written.ok()) {
    Disconnect();
    return written.code() == StatusCode::kUnavailable
               ? written
               : UnavailableError("send failed: " + written.ToString());
  }
  StatusOr<std::optional<Frame>> frame = ReadFrame(socket_, options_.limits);
  if (!frame.ok()) {
    // kDataLoss here means a corrupt inbound frame: the stream is
    // desynchronized, so reconnecting (and resending) is the only recovery —
    // map it to kUnavailable to make the retry wrapper do exactly that.
    Disconnect();
    return UnavailableError("receive failed: " + frame.status().ToString());
  }
  if (!frame->has_value()) {
    Disconnect();
    return UnavailableError("connection closed by server");
  }
  if ((*frame)->type == FrameType::kError) {
    // kError always precedes a server-side drop; don't reuse the stream.
    Disconnect();
    Status wire_status;
    CMIF_RETURN_IF_ERROR(DecodeWireStatus((*frame)->payload, &wire_status));
    if (wire_status.code() == StatusCode::kDataLoss) {
      // The server saw a corrupt frame — ours was damaged in transit.
      return UnavailableError("request corrupted in transit: " + wire_status.ToString());
    }
    return wire_status.ok() ? InternalError("server sent an OK error frame") : wire_status;
  }
  return *std::move(*frame);
}

StatusOr<Frame> NetClient::RoundTrip(FrameType type, const std::string& payload) {
  std::uint64_t salt = Fnv1a64(payload);
  return fault::Retry(
      options_.retry, [&] { return RoundTripOnce(type, payload); }, salt);
}

StatusOr<PresentResponse> NetClient::Present(const PresentRequest& request) {
  obs::ScopedLatency latency("net.client.request_ms");
  if (!request.trace.valid()) {
    CMIF_ASSIGN_OR_RETURN(
        Frame frame,
        RoundTrip(FrameType::kRequest, EncodeRequest(request, options_.wire_version)));
    return DecodePresentFrame(std::move(frame));
  }
  // Traced path: install the context, wrap the round trip in a client span,
  // and point the server at that span so its harvested spans nest under it.
  obs::ScopedTrace scoped_trace(request.trace);
  obs::Span span("net-client-request");
  PresentRequest traced = request;
  if (span.id() != 0) {
    traced.trace.parent_span_id = span.id();
  }
  span.Annotate("document", request.document);
  CMIF_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(FrameType::kRequest, EncodeRequest(traced, options_.wire_version)));
  StatusOr<PresentResponse> response = DecodePresentFrame(std::move(frame));
  if (response.ok()) {
    span.Annotate("server_spans", response->server_spans.size());
  }
  return response;
}

StatusOr<PresentResponse> NetClient::DecodePresentFrame(Frame frame) {
  if (frame.type != FrameType::kResponse) {
    Disconnect();
    return InternalError(StrFormat("expected a response frame, got %s",
                                   std::string(FrameTypeName(frame.type)).c_str()));
  }
  // Decode by the version the frame itself declares: the server mirrors the
  // request frame's version, so a v2 request gets a v2-shaped answer even
  // from a v3 server.
  StatusOr<PresentResponse> response = DecodeResponse(frame.payload, frame.version);
  if (!response.ok()) {
    Disconnect();  // CRC passed but the message is malformed: version skew
  }
  return response;
}

StatusOr<std::vector<PresentResponse>> NetClient::PresentBatch(
    const std::vector<PresentRequest>& requests) {
  if (options_.wire_version < 3) {
    return InvalidArgumentError("batch requests need wire v3 (client configured for v2)");
  }
  if (requests.size() > kMaxBatchMessages) {
    return InvalidArgumentError(
        StrFormat("batch of %zu exceeds kMaxBatchMessages", requests.size()));
  }
  obs::ScopedLatency latency("net.client.batch_ms");
  CMIF_ASSIGN_OR_RETURN(
      Frame frame, RoundTrip(FrameType::kBatchRequest,
                             EncodeBatchRequest(requests, options_.wire_version)));
  if (frame.type != FrameType::kBatchResponse) {
    Disconnect();
    return InternalError(StrFormat("expected a batch-response frame, got %s",
                                   std::string(FrameTypeName(frame.type)).c_str()));
  }
  StatusOr<std::vector<PresentResponse>> responses =
      DecodeBatchResponse(frame.payload, frame.version);
  if (!responses.ok()) {
    Disconnect();
    return responses.status();
  }
  if (responses->size() != requests.size()) {
    Disconnect();
    return InternalError(StrFormat("batch answered %zu of %zu requests",
                                   responses->size(), requests.size()));
  }
  return responses;
}

StatusOr<StatsSnapshot> NetClient::FetchStats() {
  CMIF_ASSIGN_OR_RETURN(Frame frame, RoundTrip(FrameType::kStatsRequest, ""));
  if (frame.type != FrameType::kStatsResponse) {
    Disconnect();
    return InternalError(StrFormat("expected a stats-response frame, got %s",
                                   std::string(FrameTypeName(frame.type)).c_str()));
  }
  // Decode by the answer frame's version (the server mirrors the request's,
  // so this is the version we spoke — but trust the frame, like Present).
  StatusOr<StatsSnapshot> snapshot = DecodeStatsSnapshot(frame.payload, frame.version);
  if (!snapshot.ok()) {
    Disconnect();
  }
  return snapshot;
}

StatusOr<StreamResult> NetClient::PresentStream(const PresentRequest& request,
                                                std::uint64_t chunk_bytes) {
  if (options_.wire_version < 4) {
    // A legacy client never opens streams: the plain request path is the
    // whole delivery (no wire blocks existed before v4).
    CMIF_ASSIGN_OR_RETURN(PresentResponse response, Present(request));
    StreamResult result;
    result.response = std::move(response);
    return result;
  }
  obs::ScopedLatency latency("net.client.stream_ms");
  StreamResult result;
  // Resume state carried across reconnects: the stream id, the contiguous
  // chunk count, and the byte prefix those chunks carried.
  std::uint64_t resume_stream_id = 0;
  std::uint64_t resume_chunks = 0;
  std::string resume_payload;
  const int budget = options_.retry.max_attempts < 1 ? 1 : options_.retry.max_attempts;
  Status last = UnavailableError("stream never attempted");
  for (int attempt = 0; attempt < budget; ++attempt) {
    Status connected = EnsureConnected();
    if (!connected.ok()) {
      last = connected;
      continue;
    }
    StreamRequest open;
    open.request = request;
    open.request.want_blocks = false;  // chunks are the delivery path
    open.chunk_bytes = chunk_bytes;
    open.resume_stream_id = resume_stream_id;
    open.resume_chunks = resume_chunks;
    Status written =
        WriteFrame(socket_, FrameType::kStreamRequest,
                   EncodeStreamRequest(open, options_.wire_version), options_.wire_version);
    if (!written.ok()) {
      Disconnect();
      last = written;
      continue;
    }
    StatusOr<std::optional<Frame>> first = ReadFrame(socket_, options_.limits);
    if (!first.ok() || !first->has_value()) {
      Disconnect();
      last = UnavailableError(first.ok() ? "connection closed by server"
                                         : "receive failed: " + first.status().ToString());
      continue;
    }
    Frame frame = *std::move(*first);
    if (frame.type == FrameType::kError) {
      // The server refused (or could not parse) the stream frame — an older
      // peer rejects wire v4 at the header. Requests are idempotent: fall
      // back to the plain request path, silently, *at wire v3*: the last
      // pre-stream version is valid on every peer that can answer at all,
      // while a v4 retry against a v3 peer would bounce off the same header
      // check. On a current server the downgrade only costs the (unused)
      // want_blocks tail — fallbacks never carry blocks anyway.
      Disconnect();
      const std::uint8_t speaking = options_.wire_version;
      options_.wire_version = 3;
      StatusOr<PresentResponse> fallback = Present(request);
      options_.wire_version = speaking;
      CMIF_ASSIGN_OR_RETURN(result.response, std::move(fallback));
      result.streamed = false;
      return result;
    }
    if (frame.type == FrameType::kResponse) {
      // The server's own fallback: nothing streamable behind this request
      // (failed/shed outcomes travel as a plain response).
      StatusOr<PresentResponse> response = DecodeResponse(frame.payload, frame.version);
      if (!response.ok()) {
        Disconnect();
        last = UnavailableError("malformed fallback response: " +
                                response.status().ToString());
        continue;
      }
      result.response = *std::move(response);
      result.streamed = false;
      return result;
    }
    if (frame.type != FrameType::kStreamBegin) {
      Disconnect();
      last = UnavailableError(StrFormat("expected a stream-begin frame, got %s",
                                        std::string(FrameTypeName(frame.type)).c_str()));
      continue;
    }
    StatusOr<StreamBegin> begin = DecodeStreamBegin(frame.payload, frame.version);
    if (!begin.ok()) {
      Disconnect();
      resume_stream_id = 0;
      resume_chunks = 0;
      resume_payload.clear();
      last = UnavailableError("malformed stream-begin: " + begin.status().ToString());
      continue;
    }
    const bool resumed = begin->stream_id == resume_stream_id &&
                         begin->resumed_from == resume_chunks && resume_chunks > 0;
    StreamReassembler reassembler;
    Status begun =
        reassembler.Begin(*begin, resumed ? std::move(resume_payload) : std::string());
    if (!begun.ok()) {
      Disconnect();
      resume_stream_id = 0;
      resume_chunks = 0;
      resume_payload.clear();
      last = UnavailableError("stream-begin rejected: " + begun.ToString());
      continue;
    }
    if (resumed) {
      ++result.resumes;
    }

    bool integrity_failed = false;
    Status stream_error = Status::Ok();
    while (true) {
      StatusOr<std::optional<Frame>> next = ReadFrame(socket_, options_.limits);
      if (!next.ok() || !next->has_value()) {
        stream_error = UnavailableError(next.ok() ? "stream cut by server"
                                                  : "receive failed: " +
                                                        next.status().ToString());
        break;
      }
      Frame data = *std::move(*next);
      if (data.type == FrameType::kStreamChunk) {
        StatusOr<StreamChunk> chunk = DecodeStreamChunk(data.payload, data.version);
        if (!chunk.ok()) {
          stream_error = UnavailableError("malformed chunk: " + chunk.status().ToString());
          break;
        }
        Status fed = reassembler.Feed(*chunk);
        if (!fed.ok()) {
          stream_error = UnavailableError("chunk rejected: " + fed.ToString());
          break;
        }
        result.bytes_streamed += chunk->payload.size();
        continue;
      }
      if (data.type == FrameType::kStreamEnd) {
        StatusOr<StreamEnd> end = DecodeStreamEnd(data.payload, data.version);
        if (!end.ok()) {
          stream_error = UnavailableError("malformed trailer: " + end.status().ToString());
          break;
        }
        StatusOr<std::vector<WireBlock>> blocks = reassembler.Finish(*end);
        if (!blocks.ok()) {
          // The end-to-end hash (or manifest cross-check) failed: some chunk
          // carried corrupt bytes that every frame CRC missed. Resuming
          // would replay them — restart from chunk 0.
          integrity_failed = true;
          stream_error = blocks.status();
          break;
        }
        result.response = std::move(begin->prefix);
        result.blocks = *std::move(blocks);
        result.streamed = true;
        result.stream_id = begin->stream_id;
        result.chunks_received = reassembler.chunks_received();
        // Best-effort delivery telemetry; a lost ack harms nothing. Stalls
        // are always zero here — playback has not run yet; the caller
        // reports them later via ReportStreamStalls.
        StreamAck ack;
        ack.stream_id = begin->stream_id;
        ack.chunks_received = reassembler.chunks_received();
        (void)WriteFrame(socket_, FrameType::kStreamAck,
                         EncodeStreamAck(ack, options_.wire_version), options_.wire_version);
        return result;
      }
      stream_error = UnavailableError(StrFormat("unexpected %s frame mid-stream",
                                                std::string(FrameTypeName(data.type)).c_str()));
      break;
    }
    Disconnect();
    last = stream_error;
    if (integrity_failed) {
      resume_stream_id = 0;
      resume_chunks = 0;
      resume_payload.clear();
      ++result.restarts;
    } else {
      resume_stream_id = begin->stream_id;
      resume_chunks = reassembler.chunks_received();
      resume_payload = reassembler.bytes();
    }
  }
  return last.ok() ? UnavailableError("stream retry budget exhausted") : last;
}

Status NetClient::ReportStreamStalls(std::uint64_t stream_id, std::uint64_t stalls) {
  if (options_.wire_version < 4) {
    return FailedPreconditionError("stream acks require wire v4");
  }
  if (stream_id == 0) {
    return InvalidArgumentError("stall report without a stream id (blob fallback?)");
  }
  CMIF_RETURN_IF_ERROR(EnsureConnected());
  StreamAck ack;
  ack.stream_id = stream_id;
  ack.stalls = stalls;
  Status written =
      WriteFrame(socket_, FrameType::kStreamAck, EncodeStreamAck(ack, options_.wire_version),
                 options_.wire_version);
  if (!written.ok()) {
    Disconnect();
  }
  return written;
}

Status NetClient::Ping() {
  CMIF_ASSIGN_OR_RETURN(Frame frame, RoundTrip(FrameType::kPing, "cmif-ping"));
  if (frame.type != FrameType::kPong || frame.payload != "cmif-ping") {
    Disconnect();
    return InternalError("malformed pong");
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace cmif
