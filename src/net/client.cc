#include "src/net/client.h"

#include <utility>

#include "src/base/string_util.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace cmif {
namespace net {

NetClient::NetClient(NetClientOptions options) : options_(std::move(options)) {
  if (options_.wire_version < kMinWireVersion) {
    options_.wire_version = kMinWireVersion;
  } else if (options_.wire_version > kWireVersion) {
    options_.wire_version = kWireVersion;
  }
}

void NetClient::Disconnect() { socket_.Close(); }

Status NetClient::EnsureConnected() {
  if (socket_.valid()) {
    return Status::Ok();
  }
  CMIF_ASSIGN_OR_RETURN(socket_,
                        ConnectTcp(options_.host, options_.port, options_.io_timeout_ms));
  if (ever_connected_) {
    ++reconnects_;
    if (obs::Enabled()) {
      static obs::Counter& reconnects = obs::GetCounter("net.client.reconnects");
      reconnects.Add();
    }
  }
  ever_connected_ = true;
  return Status::Ok();
}

StatusOr<Frame> NetClient::RoundTripOnce(FrameType type, const std::string& payload) {
  CMIF_RETURN_IF_ERROR(EnsureConnected());
  Status written = WriteFrame(socket_, type, payload, options_.wire_version);
  if (!written.ok()) {
    Disconnect();
    return written.code() == StatusCode::kUnavailable
               ? written
               : UnavailableError("send failed: " + written.ToString());
  }
  StatusOr<std::optional<Frame>> frame = ReadFrame(socket_, options_.limits);
  if (!frame.ok()) {
    // kDataLoss here means a corrupt inbound frame: the stream is
    // desynchronized, so reconnecting (and resending) is the only recovery —
    // map it to kUnavailable to make the retry wrapper do exactly that.
    Disconnect();
    return UnavailableError("receive failed: " + frame.status().ToString());
  }
  if (!frame->has_value()) {
    Disconnect();
    return UnavailableError("connection closed by server");
  }
  if ((*frame)->type == FrameType::kError) {
    // kError always precedes a server-side drop; don't reuse the stream.
    Disconnect();
    Status wire_status;
    CMIF_RETURN_IF_ERROR(DecodeWireStatus((*frame)->payload, &wire_status));
    if (wire_status.code() == StatusCode::kDataLoss) {
      // The server saw a corrupt frame — ours was damaged in transit.
      return UnavailableError("request corrupted in transit: " + wire_status.ToString());
    }
    return wire_status.ok() ? InternalError("server sent an OK error frame") : wire_status;
  }
  return *std::move(*frame);
}

StatusOr<Frame> NetClient::RoundTrip(FrameType type, const std::string& payload) {
  std::uint64_t salt = Fnv1a64(payload);
  return fault::Retry(
      options_.retry, [&] { return RoundTripOnce(type, payload); }, salt);
}

StatusOr<PresentResponse> NetClient::Present(const PresentRequest& request) {
  obs::ScopedLatency latency("net.client.request_ms");
  if (!request.trace.valid()) {
    CMIF_ASSIGN_OR_RETURN(
        Frame frame,
        RoundTrip(FrameType::kRequest, EncodeRequest(request, options_.wire_version)));
    return DecodePresentFrame(std::move(frame));
  }
  // Traced path: install the context, wrap the round trip in a client span,
  // and point the server at that span so its harvested spans nest under it.
  obs::ScopedTrace scoped_trace(request.trace);
  obs::Span span("net-client-request");
  PresentRequest traced = request;
  if (span.id() != 0) {
    traced.trace.parent_span_id = span.id();
  }
  span.Annotate("document", request.document);
  CMIF_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(FrameType::kRequest, EncodeRequest(traced, options_.wire_version)));
  StatusOr<PresentResponse> response = DecodePresentFrame(std::move(frame));
  if (response.ok()) {
    span.Annotate("server_spans", response->server_spans.size());
  }
  return response;
}

StatusOr<PresentResponse> NetClient::DecodePresentFrame(Frame frame) {
  if (frame.type != FrameType::kResponse) {
    Disconnect();
    return InternalError(StrFormat("expected a response frame, got %s",
                                   std::string(FrameTypeName(frame.type)).c_str()));
  }
  // Decode by the version the frame itself declares: the server mirrors the
  // request frame's version, so a v2 request gets a v2-shaped answer even
  // from a v3 server.
  StatusOr<PresentResponse> response = DecodeResponse(frame.payload, frame.version);
  if (!response.ok()) {
    Disconnect();  // CRC passed but the message is malformed: version skew
  }
  return response;
}

StatusOr<std::vector<PresentResponse>> NetClient::PresentBatch(
    const std::vector<PresentRequest>& requests) {
  if (options_.wire_version < 3) {
    return InvalidArgumentError("batch requests need wire v3 (client configured for v2)");
  }
  if (requests.size() > kMaxBatchMessages) {
    return InvalidArgumentError(
        StrFormat("batch of %zu exceeds kMaxBatchMessages", requests.size()));
  }
  obs::ScopedLatency latency("net.client.batch_ms");
  CMIF_ASSIGN_OR_RETURN(
      Frame frame, RoundTrip(FrameType::kBatchRequest,
                             EncodeBatchRequest(requests, options_.wire_version)));
  if (frame.type != FrameType::kBatchResponse) {
    Disconnect();
    return InternalError(StrFormat("expected a batch-response frame, got %s",
                                   std::string(FrameTypeName(frame.type)).c_str()));
  }
  StatusOr<std::vector<PresentResponse>> responses =
      DecodeBatchResponse(frame.payload, frame.version);
  if (!responses.ok()) {
    Disconnect();
    return responses.status();
  }
  if (responses->size() != requests.size()) {
    Disconnect();
    return InternalError(StrFormat("batch answered %zu of %zu requests",
                                   responses->size(), requests.size()));
  }
  return responses;
}

StatusOr<StatsSnapshot> NetClient::FetchStats() {
  CMIF_ASSIGN_OR_RETURN(Frame frame, RoundTrip(FrameType::kStatsRequest, ""));
  if (frame.type != FrameType::kStatsResponse) {
    Disconnect();
    return InternalError(StrFormat("expected a stats-response frame, got %s",
                                   std::string(FrameTypeName(frame.type)).c_str()));
  }
  StatusOr<StatsSnapshot> snapshot = DecodeStatsSnapshot(frame.payload);
  if (!snapshot.ok()) {
    Disconnect();
  }
  return snapshot;
}

Status NetClient::Ping() {
  CMIF_ASSIGN_OR_RETURN(Frame frame, RoundTrip(FrameType::kPing, "cmif-ping"));
  if (frame.type != FrameType::kPong || frame.payload != "cmif-ping") {
    Disconnect();
    return InternalError("malformed pong");
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace cmif
