#include "src/net/wire.h"

#include "src/base/crc32.h"
#include "src/base/string_util.h"
#include "src/base/varint.h"
#include "src/fault/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace net {
namespace {

// Little-endian u32, the same byte order regardless of host.
void PutU32Le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::uint32_t GetU32Le(const char* bytes) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[0])) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[3])) << 24;
}

StatusOr<FrameType> CheckFrameType(std::uint8_t raw) {
  switch (raw) {
    case 1:
      return FrameType::kRequest;
    case 2:
      return FrameType::kResponse;
    case 3:
      return FrameType::kError;
    case 4:
      return FrameType::kPing;
    case 5:
      return FrameType::kPong;
    case 6:
      return FrameType::kStatsRequest;
    case 7:
      return FrameType::kStatsResponse;
    default:
      return DataLossError(StrFormat("unknown frame type %u", raw));
  }
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kRequest:
      return "request";
    case FrameType::kResponse:
      return "response";
    case FrameType::kError:
      return "error";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kStatsRequest:
      return "stats-request";
    case FrameType::kStatsResponse:
      return "stats-response";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameMagic.size() + 2 + kMaxVarint64Bytes + payload.size() + 4);
  out.append(kFrameMagic);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  PutVarint64(out, payload.size());
  out.append(payload);
  // CRC over everything after the magic: version, type, length, payload.
  std::uint32_t crc = Crc32(std::string_view(out).substr(kFrameMagic.size()));
  PutU32Le(out, crc);
  return out;
}

StatusOr<Frame> DecodeFrame(std::string_view bytes, std::size_t* consumed,
                            const WireLimits& limits) {
  constexpr std::size_t kMagicEnd = 4;
  if (bytes.size() < kMagicEnd + 2) {
    return DataLossError(StrFormat("frame truncated: %zu header bytes", bytes.size()));
  }
  if (bytes.substr(0, kMagicEnd) != kFrameMagic) {
    return DataLossError("bad frame magic (expected \"CMIF\")");
  }
  std::uint8_t version = static_cast<std::uint8_t>(bytes[kMagicEnd]);
  if (version != kWireVersion) {
    return DataLossError(StrFormat("unsupported wire version %u", version));
  }
  CMIF_ASSIGN_OR_RETURN(FrameType type,
                        CheckFrameType(static_cast<std::uint8_t>(bytes[kMagicEnd + 1])));
  std::size_t pos = kMagicEnd + 2;
  CMIF_ASSIGN_OR_RETURN(std::uint64_t length, GetVarint64(bytes, &pos));
  if (length > limits.max_payload_bytes) {
    return DataLossError(StrFormat("frame payload of %llu bytes exceeds the %zu-byte limit",
                                   static_cast<unsigned long long>(length),
                                   limits.max_payload_bytes));
  }
  if (bytes.size() - pos < length + 4) {
    return DataLossError(StrFormat("frame truncated at byte offset %zu (payload needs %llu+4)",
                                   bytes.size(), static_cast<unsigned long long>(length)));
  }
  std::uint32_t expected = Crc32(bytes.substr(kMagicEnd, pos - kMagicEnd + length));
  std::uint32_t actual = GetU32Le(bytes.data() + pos + length);
  if (expected != actual) {
    return DataLossError(StrFormat("frame crc mismatch (stored %08x, computed %08x)", actual,
                                   expected));
  }
  Frame frame;
  frame.type = type;
  frame.payload.assign(bytes.substr(pos, length));
  *consumed = pos + length + 4;
  return frame;
}

Status WriteFrame(Socket& socket, FrameType type, std::string_view payload) {
  if (fault::Enabled()) {
    CMIF_RETURN_IF_ERROR(fault::InjectPoint("net.write"));
  }
  std::string encoded = EncodeFrame(type, payload);
  if (fault::Enabled()) {
    // In-transit corruption: the receiver's CRC check turns it into a
    // structured kDataLoss and drops the connection.
    fault::MaybeCorrupt("net.frame_corrupt", encoded);
  }
  if (obs::Enabled()) {
    static obs::Counter& tx_bytes = obs::GetCounter("net.tx_bytes");
    static obs::Counter& tx_frames = obs::GetCounter("net.tx_frames");
    tx_bytes.Add(static_cast<std::int64_t>(encoded.size()));
    tx_frames.Add();
  }
  return socket.WriteAll(encoded);
}

StatusOr<std::optional<Frame>> ReadFrame(Socket& socket, const WireLimits& limits) {
  if (fault::Enabled()) {
    CMIF_RETURN_IF_ERROR(fault::InjectPoint("net.read"));
  }
  // Magic + version + type; a clean EOF here means the peer is simply done.
  char head[6];
  CMIF_ASSIGN_OR_RETURN(bool open, socket.ReadExactOrEof(head, sizeof(head)));
  if (!open) {
    return std::optional<Frame>();
  }
  std::size_t rx = sizeof(head);
  if (std::string_view(head, 4) != kFrameMagic) {
    return DataLossError("bad frame magic (expected \"CMIF\")");
  }
  std::uint8_t version = static_cast<std::uint8_t>(head[4]);
  if (version != kWireVersion) {
    return DataLossError(StrFormat("unsupported wire version %u", version));
  }
  CMIF_ASSIGN_OR_RETURN(FrameType type, CheckFrameType(static_cast<std::uint8_t>(head[5])));
  std::uint32_t crc = Crc32(std::string_view(head + 4, 2));

  // Length varint, one byte at a time (it self-terminates).
  std::string length_bytes;
  std::uint64_t length = 0;
  for (std::size_t i = 0;; ++i) {
    if (i >= kMaxVarint64Bytes) {
      return DataLossError("frame length varint longer than 10 bytes");
    }
    char byte;
    CMIF_RETURN_IF_ERROR(socket.ReadExact(&byte, 1));
    ++rx;
    length_bytes.push_back(byte);
    if ((static_cast<std::uint8_t>(byte) & 0x80) == 0) {
      std::size_t pos = 0;
      CMIF_ASSIGN_OR_RETURN(length, GetVarint64(length_bytes, &pos));
      break;
    }
  }
  crc = Crc32Update(crc, length_bytes);
  if (length > limits.max_payload_bytes) {
    return DataLossError(StrFormat("frame payload of %llu bytes exceeds the %zu-byte limit",
                                   static_cast<unsigned long long>(length),
                                   limits.max_payload_bytes));
  }

  Frame frame;
  frame.type = type;
  frame.payload.resize(length);
  if (length > 0) {
    CMIF_RETURN_IF_ERROR(socket.ReadExact(frame.payload.data(), length));
    rx += length;
    crc = Crc32Update(crc, frame.payload);
  }
  char stored[4];
  CMIF_RETURN_IF_ERROR(socket.ReadExact(stored, sizeof(stored)));
  rx += sizeof(stored);
  if (obs::Enabled()) {
    static obs::Counter& rx_bytes = obs::GetCounter("net.rx_bytes");
    static obs::Counter& rx_frames = obs::GetCounter("net.rx_frames");
    rx_bytes.Add(static_cast<std::int64_t>(rx));
    rx_frames.Add();
  }
  if (GetU32Le(stored) != crc) {
    return DataLossError(StrFormat("frame crc mismatch (stored %08x, computed %08x)",
                                   GetU32Le(stored), crc));
  }
  return std::optional<Frame>(std::move(frame));
}

}  // namespace net
}  // namespace cmif
