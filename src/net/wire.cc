#include "src/net/wire.h"

#include <algorithm>

#include "src/base/crc32.h"
#include "src/base/string_util.h"
#include "src/base/varint.h"
#include "src/fault/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace net {
namespace {

// Little-endian u32, the same byte order regardless of host.
void PutU32Le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::uint32_t GetU32Le(const char* bytes) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[0])) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[3])) << 24;
}

Status CheckVersion(std::uint8_t version, const WireLimits& limits) {
  std::uint8_t max_version = std::min(limits.max_version, kWireVersion);
  if (version < kMinWireVersion || version > max_version) {
    return DataLossError(StrFormat("unsupported wire version %u (accepts %u..%u)", version,
                                   kMinWireVersion, max_version));
  }
  return Status::Ok();
}

// The frame type namespace grows with the wire version: a type a peer's
// declared version predates is as unparseable to it as an unknown one.
StatusOr<FrameType> CheckFrameType(std::uint8_t raw, std::uint8_t version) {
  switch (raw) {
    case 1:
      return FrameType::kRequest;
    case 2:
      return FrameType::kResponse;
    case 3:
      return FrameType::kError;
    case 4:
      return FrameType::kPing;
    case 5:
      return FrameType::kPong;
    case 6:
      return FrameType::kStatsRequest;
    case 7:
      return FrameType::kStatsResponse;
    case 8:
    case 9:
      if (version < 3) {
        return DataLossError(StrFormat("frame type %u requires wire version 3 (frame declares %u)",
                                       raw, version));
      }
      return raw == 8 ? FrameType::kBatchRequest : FrameType::kBatchResponse;
    case 10:
    case 11:
    case 12:
    case 13:
    case 14:
      if (version < 4) {
        return DataLossError(StrFormat("frame type %u requires wire version 4 (frame declares %u)",
                                       raw, version));
      }
      switch (raw) {
        case 10:
          return FrameType::kStreamRequest;
        case 11:
          return FrameType::kStreamBegin;
        case 12:
          return FrameType::kStreamChunk;
        case 13:
          return FrameType::kStreamAck;
        default:
          return FrameType::kStreamEnd;
      }
    default:
      return DataLossError(StrFormat("unknown frame type %u", raw));
  }
}

void CountRx(std::size_t bytes) {
  if (obs::Enabled()) {
    static obs::Counter& rx_bytes = obs::GetCounter("net.rx_bytes");
    static obs::Counter& rx_frames = obs::GetCounter("net.rx_frames");
    rx_bytes.Add(static_cast<std::int64_t>(bytes));
    rx_frames.Add();
  }
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kRequest:
      return "request";
    case FrameType::kResponse:
      return "response";
    case FrameType::kError:
      return "error";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kStatsRequest:
      return "stats-request";
    case FrameType::kStatsResponse:
      return "stats-response";
    case FrameType::kBatchRequest:
      return "batch-request";
    case FrameType::kBatchResponse:
      return "batch-response";
    case FrameType::kStreamRequest:
      return "stream-request";
    case FrameType::kStreamBegin:
      return "stream-begin";
    case FrameType::kStreamChunk:
      return "stream-chunk";
    case FrameType::kStreamAck:
      return "stream-ack";
    case FrameType::kStreamEnd:
      return "stream-end";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, std::string_view payload, std::uint8_t version) {
  std::string out;
  out.reserve(kFrameMagic.size() + 2 + kMaxVarint64Bytes + payload.size() + 4);
  out.append(kFrameMagic);
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(type));
  PutVarint64(out, payload.size());
  out.append(payload);
  // CRC over everything after the magic: version, type, length, payload.
  std::uint32_t crc = Crc32(std::string_view(out).substr(kFrameMagic.size()));
  PutU32Le(out, crc);
  return out;
}

StatusOr<Frame> DecodeFrame(std::string_view bytes, std::size_t* consumed,
                            const WireLimits& limits) {
  constexpr std::size_t kMagicEnd = 4;
  if (bytes.size() < kMagicEnd + 2) {
    return DataLossError(StrFormat("frame truncated: %zu header bytes", bytes.size()));
  }
  if (bytes.substr(0, kMagicEnd) != kFrameMagic) {
    return DataLossError("bad frame magic (expected \"CMIF\")");
  }
  std::uint8_t version = static_cast<std::uint8_t>(bytes[kMagicEnd]);
  CMIF_RETURN_IF_ERROR(CheckVersion(version, limits));
  CMIF_ASSIGN_OR_RETURN(FrameType type,
                        CheckFrameType(static_cast<std::uint8_t>(bytes[kMagicEnd + 1]), version));
  std::size_t pos = kMagicEnd + 2;
  CMIF_ASSIGN_OR_RETURN(std::uint64_t length, GetVarint64(bytes, &pos));
  if (length > limits.max_payload_bytes) {
    return DataLossError(StrFormat("frame payload of %llu bytes exceeds the %zu-byte limit",
                                   static_cast<unsigned long long>(length),
                                   limits.max_payload_bytes));
  }
  if (bytes.size() - pos < length + 4) {
    return DataLossError(StrFormat("frame truncated at byte offset %zu (payload needs %llu+4)",
                                   bytes.size(), static_cast<unsigned long long>(length)));
  }
  std::uint32_t expected = Crc32(bytes.substr(kMagicEnd, pos - kMagicEnd + length));
  std::uint32_t actual = GetU32Le(bytes.data() + pos + length);
  if (expected != actual) {
    return DataLossError(StrFormat("frame crc mismatch (stored %08x, computed %08x)", actual,
                                   expected));
  }
  Frame frame;
  frame.type = type;
  frame.version = version;
  frame.payload.assign(bytes.substr(pos, length));
  *consumed = pos + length + 4;
  return frame;
}

void FrameAssembler::Feed(std::string_view bytes) {
  // Compact once the consumed prefix dominates, so a long-lived pipelined
  // connection doesn't grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

StatusOr<std::optional<Frame>> FrameAssembler::Next() {
  if (!poisoned_.ok()) {
    return poisoned_;
  }
  constexpr std::size_t kMagicEnd = 4;
  std::string_view view = std::string_view(buffer_).substr(pos_);
  // Validate whatever header prefix has arrived so garbage fails at the
  // first wrong byte, not after a full (unbounded) "frame" accumulates.
  std::size_t magic_have = std::min(view.size(), kMagicEnd);
  if (view.substr(0, magic_have) != kFrameMagic.substr(0, magic_have)) {
    poisoned_ = DataLossError("bad frame magic (expected \"CMIF\")");
    return poisoned_;
  }
  if (view.size() < kMagicEnd + 2) {
    return std::optional<Frame>();
  }
  std::uint8_t version = static_cast<std::uint8_t>(view[kMagicEnd]);
  if (Status st = CheckVersion(version, limits_); !st.ok()) {
    poisoned_ = std::move(st);
    return poisoned_;
  }
  StatusOr<FrameType> type = CheckFrameType(static_cast<std::uint8_t>(view[kMagicEnd + 1]), version);
  if (!type.ok()) {
    poisoned_ = type.status();
    return poisoned_;
  }
  // Length varint: self-terminating, so parse as far as the buffer goes.
  std::size_t varint_end = kMagicEnd + 2;
  while (true) {
    if (varint_end - (kMagicEnd + 2) >= kMaxVarint64Bytes) {
      poisoned_ = DataLossError("frame length varint longer than 10 bytes");
      return poisoned_;
    }
    if (varint_end >= view.size()) {
      return std::optional<Frame>();
    }
    if ((static_cast<std::uint8_t>(view[varint_end]) & 0x80) == 0) {
      ++varint_end;
      break;
    }
    ++varint_end;
  }
  std::size_t lpos = kMagicEnd + 2;
  StatusOr<std::uint64_t> length = GetVarint64(view.substr(0, varint_end), &lpos);
  if (!length.ok()) {
    poisoned_ = length.status();
    return poisoned_;
  }
  if (*length > limits_.max_payload_bytes) {
    poisoned_ = DataLossError(StrFormat("frame payload of %llu bytes exceeds the %zu-byte limit",
                                        static_cast<unsigned long long>(*length),
                                        limits_.max_payload_bytes));
    return poisoned_;
  }
  std::size_t total = varint_end + *length + 4;
  if (view.size() < total) {
    return std::optional<Frame>();
  }
  std::size_t consumed = 0;
  StatusOr<Frame> frame = DecodeFrame(view.substr(0, total), &consumed, limits_);
  if (!frame.ok()) {
    poisoned_ = frame.status();
    return poisoned_;
  }
  pos_ += consumed;
  CountRx(consumed);
  return std::optional<Frame>(std::move(*frame));
}

Status WriteFrame(Socket& socket, FrameType type, std::string_view payload,
                  std::uint8_t version) {
  if (fault::Enabled()) {
    CMIF_RETURN_IF_ERROR(fault::InjectPoint("net.write"));
    // A slow-loris sender: the frame still goes out, just late. Against the
    // blocking server this only slows one connection's own requests; the
    // reactor's partial-frame timeout is the real defense being exercised.
    CMIF_RETURN_IF_ERROR(fault::InjectPoint("net.slow_loris"));
  }
  std::string encoded = EncodeFrame(type, payload, version);
  if (fault::Enabled()) {
    // In-transit corruption: the receiver's CRC check turns it into a
    // structured kDataLoss and drops the connection.
    fault::MaybeCorrupt("net.frame_corrupt", encoded);
  }
  if (obs::Enabled()) {
    static obs::Counter& tx_bytes = obs::GetCounter("net.tx_bytes");
    static obs::Counter& tx_frames = obs::GetCounter("net.tx_frames");
    tx_bytes.Add(static_cast<std::int64_t>(encoded.size()));
    tx_frames.Add();
  }
  return socket.WriteAll(encoded);
}

StatusOr<std::optional<Frame>> ReadFrame(Socket& socket, const WireLimits& limits) {
  if (fault::Enabled()) {
    CMIF_RETURN_IF_ERROR(fault::InjectPoint("net.read"));
  }
  // Magic + version + type; a clean EOF here means the peer is simply done.
  char head[6];
  CMIF_ASSIGN_OR_RETURN(bool open, socket.ReadExactOrEof(head, sizeof(head)));
  if (!open) {
    return std::optional<Frame>();
  }
  std::size_t rx = sizeof(head);
  if (std::string_view(head, 4) != kFrameMagic) {
    return DataLossError("bad frame magic (expected \"CMIF\")");
  }
  std::uint8_t version = static_cast<std::uint8_t>(head[4]);
  CMIF_RETURN_IF_ERROR(CheckVersion(version, limits));
  CMIF_ASSIGN_OR_RETURN(FrameType type,
                        CheckFrameType(static_cast<std::uint8_t>(head[5]), version));
  std::uint32_t crc = Crc32(std::string_view(head + 4, 2));

  // Length varint, one byte at a time (it self-terminates).
  std::string length_bytes;
  std::uint64_t length = 0;
  for (std::size_t i = 0;; ++i) {
    if (i >= kMaxVarint64Bytes) {
      return DataLossError("frame length varint longer than 10 bytes");
    }
    char byte;
    CMIF_RETURN_IF_ERROR(socket.ReadExact(&byte, 1));
    ++rx;
    length_bytes.push_back(byte);
    if ((static_cast<std::uint8_t>(byte) & 0x80) == 0) {
      std::size_t pos = 0;
      CMIF_ASSIGN_OR_RETURN(length, GetVarint64(length_bytes, &pos));
      break;
    }
  }
  crc = Crc32Update(crc, length_bytes);
  if (length > limits.max_payload_bytes) {
    return DataLossError(StrFormat("frame payload of %llu bytes exceeds the %zu-byte limit",
                                   static_cast<unsigned long long>(length),
                                   limits.max_payload_bytes));
  }

  Frame frame;
  frame.type = type;
  frame.version = version;
  frame.payload.resize(length);
  if (length > 0) {
    CMIF_RETURN_IF_ERROR(socket.ReadExact(frame.payload.data(), length));
    rx += length;
    crc = Crc32Update(crc, frame.payload);
  }
  char stored[4];
  CMIF_RETURN_IF_ERROR(socket.ReadExact(stored, sizeof(stored)));
  rx += sizeof(stored);
  CountRx(rx);
  if (GetU32Le(stored) != crc) {
    return DataLossError(StrFormat("frame crc mismatch (stored %08x, computed %08x)",
                                   GetU32Le(stored), crc));
  }
  return std::optional<Frame>(std::move(frame));
}

}  // namespace net
}  // namespace cmif
