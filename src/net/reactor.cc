#include "src/net/reactor.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/base/string_util.h"
#include "src/fault/fault.h"
#include "src/net/protocol.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace net {
namespace {

// epoll_event.data.u64 tags; connection ids start at 1.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Reactor::Reactor(ReactorOptions options, FrameHandler on_frame, EofHandler on_eof,
                 DesyncHandler on_desync, CloseHandler on_close)
    : options_(std::move(options)),
      on_frame_(std::move(on_frame)),
      on_eof_(std::move(on_eof)),
      on_desync_(std::move(on_desync)),
      on_close_(std::move(on_close)) {}

Reactor::~Reactor() { Stop(); }

Status Reactor::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("reactor already started");
  }
  CMIF_RETURN_IF_ERROR(listener_.Listen(options_.host, options_.port, options_.accept_backlog));
  CMIF_RETURN_IF_ERROR(listener_.SetNonBlocking());
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    listener_.Close();
    return UnavailableError(StrFormat("epoll_create1: %s", std::strerror(errno)));
  }
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    Status status = UnavailableError(StrFormat("pipe2: %s", std::strerror(errno)));
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    listener_.Close();
    return status;
  }
  wake_read_fd_ = pipe_fds[0];
  {
    MutexLock lock(mu_);
    wake_write_fd_ = pipe_fds[1];
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev);

  accepting_ = true;
  stopping_ = false;
  started_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void Reactor::StopAccepting() {
  Op op;
  op.kind = Op::Kind::kStopAccepting;
  PostOp(std::move(op));
}

void Reactor::Stop(std::int64_t drain_timeout_ms) {
  // exchange makes concurrent Stops idempotent: exactly one caller posts the
  // kStop op and tears down. Late SendFrame/CloseConnection callers still
  // enqueue safely — PostOp's wake is a no-op once the write end closes.
  if (!started_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  Op op;
  op.kind = Op::Kind::kStop;
  op.drain_timeout_ms = drain_timeout_ms;
  PostOp(std::move(op));
  if (thread_.joinable()) {
    thread_.join();
  }
  // Thread ids can be recycled: clear ours after the join so a future thread
  // that happens to reuse it never passes OnReactorThread().
  reactor_tid_.store(std::thread::id(), std::memory_order_relaxed);
  listener_.Close();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
  {
    MutexLock lock(mu_);
    if (wake_write_fd_ >= 0) {
      ::close(wake_write_fd_);
      wake_write_fd_ = -1;
    }
  }
}

Status Reactor::SendFrame(std::uint64_t conn_id, FrameType type, std::string_view payload,
                          std::uint8_t version, bool close_after) {
  if (fault::Enabled()) {
    // A failed response write drops the connection, exactly like the
    // blocking server's WriteFrame error path did.
    if (Status status = fault::InjectPoint("net.write"); !status.ok()) {
      CloseConnection(conn_id);
      return status;
    }
  }
  std::string encoded = EncodeFrame(type, payload, version);
  if (fault::Enabled()) {
    fault::MaybeCorrupt("net.frame_corrupt", encoded);
  }
  if (obs::Enabled()) {
    static obs::Counter& tx_bytes = obs::GetCounter("net.tx_bytes");
    static obs::Counter& tx_frames = obs::GetCounter("net.tx_frames");
    tx_bytes.Add(static_cast<std::int64_t>(encoded.size()));
    tx_frames.Add();
  }
  if (OnReactorThread()) {
    return SendFrameLocked(conn_id, std::move(encoded), close_after);
  }
  Op op;
  op.kind = Op::Kind::kSend;
  op.conn_id = conn_id;
  op.bytes = std::move(encoded);
  op.close_after = close_after;
  PostOp(std::move(op));
  return Status::Ok();
}

void Reactor::CloseConnection(std::uint64_t conn_id) {
  Op op;
  op.kind = Op::Kind::kClose;
  op.conn_id = conn_id;
  if (OnReactorThread()) {
    ApplyOp(std::move(op));
  } else {
    PostOp(std::move(op));
  }
}

Reactor::Stats Reactor::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

bool Reactor::OnReactorThread() const {
  // Compares against the id published by Run() rather than thread_ itself:
  // thread_ may be concurrently joined by Stop(), and a default id (set
  // before Run starts / after Stop joins) matches no live thread.
  return std::this_thread::get_id() == reactor_tid_.load(std::memory_order_relaxed);
}

void Reactor::PostOp(Op op) {
  MutexLock lock(mu_);
  mailbox_.push_back(std::move(op));
  // The wake happens under the same lock that guards the fd, so it can never
  // race Stop()'s close (worst case of the unsynchronized version: a write
  // to a recycled descriptor). The pipe is O_NONBLOCK; a full pipe already
  // has a pending wake, so a dropped byte is harmless.
  if (wake_write_fd_ >= 0) {
    char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void Reactor::Run() {
  reactor_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  std::vector<epoll_event> events(128);
  std::vector<std::pair<std::uint64_t, Status>> dead;
  std::int64_t last_sweep_us = NowUs();
  for (;;) {
    int timeout_ms = stopping_ ? 10 : 100;
    int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) {
      break;  // epoll itself failed; tear down below
    }
    for (int i = 0; i < std::max(n, 0); ++i) {
      std::uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        HandleAccept();
        continue;
      }
      if (tag == kWakeTag) {
        char drainbuf[256];
        while (::read(wake_read_fd_, drainbuf, sizeof(drainbuf)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) {
        continue;
      }
      Conn& conn = *it->second;
      std::uint32_t ev = events[i].events;
      if (ev & (EPOLLHUP | EPOLLERR)) {
        MarkDead(conn, UnavailableError("connection reset by peer"));
        continue;
      }
      if (ev & EPOLLIN) {
        HandleReadable(conn);
      }
      if (!conn.dead() && (ev & EPOLLOUT)) {
        HandleWritable(conn);
      }
    }

    std::vector<Op> ops;
    {
      MutexLock lock(mu_);
      ops.swap(mailbox_);
    }
    for (Op& op : ops) {
      ApplyOp(std::move(op));
    }

    std::int64_t now = NowUs();
    if (options_.partial_frame_timeout_ms > 0 && now - last_sweep_us > 50000) {
      SweepPartialFrames(now);
      last_sweep_us = now;
    }

    // Bury connections marked dead this iteration (deferred so handler
    // callbacks never see a freed Conn mid-event).
    dead.clear();
    for (auto& [id, conn] : conns_) {
      if (conn->dead()) {
        dead.emplace_back(id, conn->death_reason);
      }
    }
    for (auto& [id, reason] : dead) {
      DestroyConn(id, reason);
    }

    if (stopping_) {
      bool flushing = false;
      for (auto& [id, conn] : conns_) {
        if (conn->out_pos < conn->out.size()) {
          flushing = true;
          break;
        }
      }
      if (!flushing || now >= drain_deadline_us_) {
        break;
      }
    }
  }
  // Final teardown: every remaining connection closes (flushed or not —
  // the drain window above is the flush guarantee).
  std::vector<std::uint64_t> remaining;
  remaining.reserve(conns_.size());
  for (auto& [id, conn] : conns_) {
    remaining.push_back(id);
  }
  for (std::uint64_t id : remaining) {
    DestroyConn(id, UnavailableError("server stopping"));
  }
  listener_.Close();
}

void Reactor::HandleAccept() {
  for (;;) {
    StatusOr<std::optional<Socket>> accepted = listener_.TryAccept();
    if (!accepted.ok() || !accepted->has_value()) {
      return;  // drained, or listener closed by StopAccepting/Stop
    }
    Socket socket = std::move(**accepted);
    if (!accepting_) {
      continue;  // raced the listener close; drop
    }
    // The accept fault site models a flaky front end: the connection is
    // dropped right after the handshake and the client retries.
    if (fault::Enabled() && !fault::InjectPoint("net.accept").ok()) {
      MutexLock lock(mu_);
      ++stats_.accept_faults;
      continue;  // socket destructor closes the connection
    }
    // Non-blocking before anything else: the best-effort reject write below
    // relies on O_NONBLOCK — a blocking send() here would be the one
    // syscall that can stall the event loop.
    if (!socket.SetNonBlocking().ok()) {
      continue;
    }
    if (conns_.size() >= options_.max_connections) {
      {
        MutexLock lock(mu_);
        ++stats_.rejected_capacity;
      }
      if (obs::Enabled()) {
        obs::GetCounter("net.rejected").Add();
      }
      // Best effort: tell the client why before closing. The socket is
      // fresh, so one frame almost always fits the kernel buffer.
      std::string frame = EncodeFrame(
          FrameType::kError,
          EncodeWireStatus(ResourceExhaustedError(StrFormat(
              "server overloaded: %zu connections open", conns_.size()))));
      socket.TryWrite(frame);
      continue;
    }
    socket.SetNoDelay();
    std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(std::move(socket));
    conn->id = id;
    conn->assembler = FrameAssembler(options_.limits);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->socket.fd(), &ev) != 0) {
      continue;
    }
    conn->events = EPOLLIN;
    conns_.emplace(id, std::move(conn));
    {
      MutexLock lock(mu_);
      ++stats_.accepted;
      stats_.open = conns_.size();
    }
    if (obs::Enabled()) {
      obs::GetCounter("net.server.connections").Add();
      obs::GetGauge("net.open_connections").Set(static_cast<std::int64_t>(conns_.size()));
    }
  }
}

void Reactor::HandleReadable(Conn& conn) {
  if (conn.dead() || conn.read_eof || conn.desynced || stopping_) {
    return;
  }
  char buffer[16384];
  bool extracted_frame = false;
  for (;;) {
    IoResult io = conn.socket.TryRead(buffer, sizeof(buffer));
    if (io.state == IoResult::State::kWouldBlock) {
      break;
    }
    if (io.state == IoResult::State::kEof) {
      conn.read_eof = true;
      UpdateInterest(conn);
      on_eof_(conn.id);
      return;
    }
    if (io.state == IoResult::State::kError) {
      MarkDead(conn, io.error);
      return;
    }
    // No rx_bytes accounting here: the assembler's CountRx (wire.cc) already
    // counts every consumed byte when a frame completes; adding the raw read
    // as well would double the reported inbound traffic.
    conn.assembler.Feed(std::string_view(buffer, io.bytes));
    for (;;) {
      StatusOr<std::optional<Frame>> next = conn.assembler.Next();
      if (!next.ok()) {
        conn.desynced = true;
        conn.partial_since_us = 0;
        {
          MutexLock lock(mu_);
          ++stats_.desyncs;
        }
        UpdateInterest(conn);
        on_desync_(conn.id, next.status());
        return;
      }
      if (!next->has_value()) {
        break;
      }
      extracted_frame = true;
      on_frame_(conn.id, std::move(**next));
      if (conn.dead() || conn.desynced || stopping_) {
        return;
      }
    }
  }
  // Track the age of an incomplete frame for the slow-loris sweep. Any
  // complete frame consumed this call re-stamps the timer: a busy pipelined
  // peer whose read batches keep ending mid-frame is making progress, not
  // trickling, and must not accumulate age toward the timeout. A clean frame
  // boundary clears it entirely (idle connections between frames are
  // legitimate and live forever).
  if (conn.assembler.buffered() > 0) {
    if (extracted_frame || conn.partial_since_us == 0) {
      conn.partial_since_us = NowUs();
    }
  } else {
    conn.partial_since_us = 0;
  }
}

void Reactor::HandleWritable(Conn& conn) { FlushOut(conn); }

void Reactor::FlushOut(Conn& conn) {
  if (conn.dead()) {
    return;
  }
  while (conn.out_pos < conn.out.size()) {
    std::string_view remaining =
        std::string_view(conn.out).substr(conn.out_pos);
    if (fault::Enabled() && !fault::InjectPoint("net.partial_write").ok()) {
      // Short-write injection: this attempt moves a single byte, forcing the
      // resume-from-offset path that a full kernel buffer would.
      remaining = remaining.substr(0, 1);
    }
    IoResult io = conn.socket.TryWrite(remaining);
    if (io.state == IoResult::State::kWouldBlock) {
      break;
    }
    if (io.state != IoResult::State::kOk) {
      MarkDead(conn, io.error.ok() ? UnavailableError("write failed") : io.error);
      return;
    }
    conn.out_pos += io.bytes;
  }
  if (conn.out_pos >= conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
    if (conn.close_after_flush) {
      MarkDead(conn, Status::Ok());
      return;
    }
  }
  UpdateInterest(conn);
}

void Reactor::UpdateInterest(Conn& conn) {
  if (conn.dead()) {
    return;
  }
  std::uint32_t mask = 0;
  if (!conn.read_eof && !conn.desynced && !conn.close_after_flush && !stopping_) {
    mask |= EPOLLIN;
  }
  if (conn.out_pos < conn.out.size()) {
    mask |= EPOLLOUT;
  }
  if (mask != conn.events) {
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = conn.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.socket.fd(), &ev);
    conn.events = mask;
  }
}

void Reactor::MarkDead(Conn& conn, Status reason) {
  if (conn.dead()) {
    return;
  }
  conn.is_dead = true;
  conn.death_reason = std::move(reason);
}

Status Reactor::SendFrameLocked(std::uint64_t conn_id, std::string encoded, bool close_after) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second->dead()) {
    return NotFoundError("connection closed");
  }
  Conn& conn = *it->second;
  if (conn.out.empty() && conn.out_pos != 0) {
    conn.out_pos = 0;
  }
  conn.out.append(encoded);
  if (close_after) {
    conn.close_after_flush = true;
  }
  FlushOut(conn);
  return Status::Ok();
}

void Reactor::ApplyOp(Op op) {
  switch (op.kind) {
    case Op::Kind::kSend:
      SendFrameLocked(op.conn_id, std::move(op.bytes), op.close_after);
      break;
    case Op::Kind::kClose: {
      auto it = conns_.find(op.conn_id);
      if (it == conns_.end() || it->second->dead()) {
        break;
      }
      Conn& conn = *it->second;
      conn.close_after_flush = true;
      FlushOut(conn);  // destroys now if already drained
      if (!conn.dead()) {
        UpdateInterest(conn);
      }
      break;
    }
    case Op::Kind::kStopAccepting:
      if (accepting_) {
        accepting_ = false;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
        listener_.Close();
      }
      break;
    case Op::Kind::kStop:
      if (!stopping_) {
        stopping_ = true;
        drain_deadline_us_ = NowUs() + op.drain_timeout_ms * 1000;
        if (accepting_) {
          accepting_ = false;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
          listener_.Close();
        }
        for (auto& [id, conn] : conns_) {
          if (!conn->dead()) {
            UpdateInterest(*conn);
          }
        }
      }
      break;
  }
}

void Reactor::SweepPartialFrames(std::int64_t now_us) {
  std::int64_t limit_us = options_.partial_frame_timeout_ms * 1000;
  for (auto& [id, conn] : conns_) {
    if (conn->dead() || conn->partial_since_us == 0) {
      continue;
    }
    if (now_us - conn->partial_since_us > limit_us) {
      {
        MutexLock lock(mu_);
        ++stats_.slow_loris_drops;
      }
      MarkDead(*conn, UnavailableError(StrFormat(
                          "partial frame older than %lld ms dropped (slow loris)",
                          static_cast<long long>(options_.partial_frame_timeout_ms))));
    }
  }
}

void Reactor::DestroyConn(std::uint64_t conn_id, const Status& reason) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->socket.fd(), nullptr);
  conns_.erase(it);
  {
    MutexLock lock(mu_);
    stats_.open = conns_.size();
  }
  if (obs::Enabled()) {
    obs::GetGauge("net.open_connections").Set(static_cast<std::int64_t>(conns_.size()));
  }
  on_close_(conn_id, reason);
}

}  // namespace net
}  // namespace cmif
