#include "src/net/scheduler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/base/string_util.h"

namespace cmif {
namespace net {
namespace {

// Heap order for kEdf: earliest deadline at the top; deadline 0 ("none")
// sorts last; ties resolve in admission order so equal deadlines stay FIFO.
// std::push_heap builds a max-heap, so the comparator says "less urgent".
bool LessUrgent(const RequestScheduler::Item& a, const RequestScheduler::Item& b) {
  std::int64_t da = a.deadline_us == 0 ? std::numeric_limits<std::int64_t>::max() : a.deadline_us;
  std::int64_t db = b.deadline_us == 0 ? std::numeric_limits<std::int64_t>::max() : b.deadline_us;
  if (da != db) {
    return da > db;
  }
  return a.seq > b.seq;
}

}  // namespace

std::string_view SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "fifo";
    case SchedPolicy::kEdf:
      return "edf";
  }
  return "unknown";
}

StatusOr<SchedPolicy> ParseSchedPolicy(std::string_view name) {
  if (name == "fifo") {
    return SchedPolicy::kFifo;
  }
  if (name == "edf") {
    return SchedPolicy::kEdf;
  }
  return InvalidArgumentError(
      StrFormat("unknown scheduling policy \"%.*s\" (expected fifo or edf)",
                static_cast<int>(name.size()), name.data()));
}

RequestScheduler::RequestScheduler(SchedulerOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &fault::GlobalClock()) {}

std::int64_t RequestScheduler::NowMicros() const { return clock_->NowMicros(); }

Status RequestScheduler::Enqueue(std::int64_t deadline_ms, std::function<void(Item&)> work) {
  std::int64_t now = NowMicros();
  MutexLock lock(mu_);
  std::size_t depth = options_.policy == SchedPolicy::kEdf ? heap_.size() : fifo_.size();
  if (depth >= options_.max_queue_depth) {
    ++stats_.shed_queue_full;
    return ResourceExhaustedError(
        StrFormat("scheduler queue full (%zu queued)", depth));
  }
  Item item;
  item.seq = next_seq_++;
  item.enqueue_us = now;
  if (deadline_ms != 0) {
    // Negative = the remaining budget is already spent (a caller that
    // subtracted elapsed parse/transport time from a client deadline).
    item.deadline_us = now + deadline_ms * 1000;
  }
  if (options_.policy == SchedPolicy::kEdf && item.deadline_us != 0 &&
      item.deadline_us <= now) {
    ++stats_.shed_expired;
    return ResourceExhaustedError("deadline expired before admission");
  }
  item.work = std::move(work);
  ++stats_.enqueued;
  if (options_.policy == SchedPolicy::kEdf) {
    heap_.push_back(std::move(item));
    std::push_heap(heap_.begin(), heap_.end(), LessUrgent);
    stats_.depth = heap_.size();
  } else {
    fifo_.push_back(std::move(item));
    stats_.depth = fifo_.size();
  }
  stats_.max_depth = std::max(stats_.max_depth, stats_.depth);
  return Status::Ok();
}

std::optional<RequestScheduler::Item> RequestScheduler::Dequeue() {
  std::int64_t now = NowMicros();
  MutexLock lock(mu_);
  std::optional<Item> item;
  if (options_.policy == SchedPolicy::kEdf) {
    if (heap_.empty()) {
      return std::nullopt;
    }
    std::pop_heap(heap_.begin(), heap_.end(), LessUrgent);
    item = std::move(heap_.back());
    heap_.pop_back();
    stats_.depth = heap_.size();
    if (item->deadline_us != 0 && item->deadline_us <= now) {
      item->expired = true;
      ++stats_.expired_in_queue;
    }
  } else {
    if (fifo_.empty()) {
      return std::nullopt;
    }
    item = std::move(fifo_.front());
    fifo_.pop_front();
    stats_.depth = fifo_.size();
  }
  item->queue_wait_us = std::max<std::int64_t>(0, now - item->enqueue_us);
  ++stats_.dequeued;
  stats_.total_queue_wait_ms += static_cast<double>(item->queue_wait_us) / 1000.0;
  return item;
}

std::size_t RequestScheduler::depth() const {
  MutexLock lock(mu_);
  return options_.policy == SchedPolicy::kEdf ? heap_.size() : fifo_.size();
}

RequestScheduler::Stats RequestScheduler::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace net
}  // namespace cmif
