#include "src/net/protocol.h"

#include "src/base/string_util.h"
#include "src/base/varint.h"

namespace cmif {
namespace net {
namespace {

void PutString(std::string& out, std::string_view value) {
  PutVarint64(out, value.size());
  out.append(value);
}

StatusOr<std::string> GetString(std::string_view bytes, std::size_t* pos) {
  CMIF_ASSIGN_OR_RETURN(std::uint64_t length, GetVarint64(bytes, pos));
  if (bytes.size() - *pos < length) {
    return DataLossError(StrFormat("string of %llu bytes truncated at offset %zu",
                                   static_cast<unsigned long long>(length), *pos));
  }
  std::string value(bytes.substr(*pos, length));
  *pos += length;
  return value;
}

StatusOr<bool> GetBool(std::string_view bytes, std::size_t* pos) {
  CMIF_ASSIGN_OR_RETURN(std::uint64_t raw, GetVarint64(bytes, pos));
  if (raw > 1) {
    return DataLossError(StrFormat("bool field has value %llu at offset %zu",
                                   static_cast<unsigned long long>(raw), *pos));
  }
  return raw == 1;
}

Status CheckFullyConsumed(std::string_view bytes, std::size_t pos) {
  if (pos != bytes.size()) {
    return DataLossError(
        StrFormat("%zu trailing bytes after message at offset %zu", bytes.size() - pos, pos));
  }
  return Status::Ok();
}

StatusOr<StatusCode> CheckStatusCode(std::uint64_t raw) {
  if (raw > static_cast<std::uint64_t>(StatusCode::kUnavailable)) {
    return DataLossError(
        StrFormat("unknown status code %llu", static_cast<unsigned long long>(raw)));
  }
  return static_cast<StatusCode>(raw);
}

StatusOr<ServeOutcome> CheckOutcome(std::uint64_t raw) {
  if (raw > static_cast<std::uint64_t>(ServeOutcome::kFailed)) {
    return DataLossError(
        StrFormat("unknown serve outcome %llu", static_cast<unsigned long long>(raw)));
  }
  return static_cast<ServeOutcome>(raw);
}

}  // namespace

std::string EncodeRequest(const PresentRequest& request) {
  std::string out;
  PutString(out, request.document);
  PutString(out, request.profile);
  PutVarint64(out, request.channels.size());
  for (const std::string& channel : request.channels) {
    PutString(out, channel);
  }
  PutVarint64(out, request.want_body ? 1 : 0);
  PutVarint64(out, request.allow_degraded ? 1 : 0);
  return out;
}

StatusOr<PresentRequest> DecodeRequest(std::string_view payload) {
  PresentRequest request;
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(request.document, GetString(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(request.profile, GetString(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t channels, GetVarint64(payload, &pos));
  if (channels > payload.size()) {  // each selected channel costs >= 1 byte
    return DataLossError(StrFormat("channel count %llu exceeds payload size",
                                   static_cast<unsigned long long>(channels)));
  }
  request.channels.reserve(channels);
  for (std::uint64_t i = 0; i < channels; ++i) {
    CMIF_ASSIGN_OR_RETURN(std::string channel, GetString(payload, &pos));
    request.channels.push_back(std::move(channel));
  }
  CMIF_ASSIGN_OR_RETURN(request.want_body, GetBool(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(request.allow_degraded, GetBool(payload, &pos));
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return request;
}

std::string EncodeResponse(const PresentResponse& response) {
  std::string out;
  PutVarint64(out, static_cast<std::uint64_t>(response.outcome));
  PutVarint64(out, static_cast<std::uint64_t>(response.attempts < 0 ? 0 : response.attempts));
  PutVarint64(out, response.cache_hit ? 1 : 0);
  PutVarint64(out, static_cast<std::uint64_t>(response.error.code()));
  PutString(out, response.error.message());
  PutString(out, response.presentation);
  PutVarint64(out, response.presentation_hash);
  return out;
}

StatusOr<PresentResponse> DecodeResponse(std::string_view payload) {
  PresentResponse response;
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(std::uint64_t outcome, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(response.outcome, CheckOutcome(outcome));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t attempts, GetVarint64(payload, &pos));
  if (attempts > 1u << 20) {
    return DataLossError(StrFormat("implausible attempt count %llu",
                                   static_cast<unsigned long long>(attempts)));
  }
  response.attempts = static_cast<int>(attempts);
  CMIF_ASSIGN_OR_RETURN(response.cache_hit, GetBool(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t code, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(StatusCode status_code, CheckStatusCode(code));
  CMIF_ASSIGN_OR_RETURN(std::string message, GetString(payload, &pos));
  response.error = Status(status_code, std::move(message));
  CMIF_ASSIGN_OR_RETURN(response.presentation, GetString(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(response.presentation_hash, GetVarint64(payload, &pos));
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return response;
}

std::string EncodeWireStatus(const Status& status) {
  std::string out;
  PutVarint64(out, static_cast<std::uint64_t>(status.code()));
  PutString(out, status.message());
  return out;
}

Status DecodeWireStatus(std::string_view payload, Status* decoded) {
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(std::uint64_t code, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(StatusCode status_code, CheckStatusCode(code));
  CMIF_ASSIGN_OR_RETURN(std::string message, GetString(payload, &pos));
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  *decoded = Status(status_code, std::move(message));
  return Status::Ok();
}

}  // namespace net
}  // namespace cmif
