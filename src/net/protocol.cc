#include "src/net/protocol.h"

#include "src/base/codec_util.h"
#include "src/base/string_util.h"
#include "src/base/varint.h"

namespace cmif {
namespace net {
namespace {

// Spans the wire accepts per response — a corrupted count cannot make the
// decoder allocate unboundedly, and a chatty server cannot flood a client.
constexpr std::uint64_t kMaxWireSpans = 4096;

StatusOr<StatusCode> CheckStatusCode(std::uint64_t raw) {
  if (raw > static_cast<std::uint64_t>(StatusCode::kUnavailable)) {
    return DataLossError(
        StrFormat("unknown status code %llu", static_cast<unsigned long long>(raw)));
  }
  return static_cast<StatusCode>(raw);
}

StatusOr<ServeOutcome> CheckOutcome(std::uint64_t raw) {
  if (raw > static_cast<std::uint64_t>(ServeOutcome::kFailed)) {
    return DataLossError(
        StrFormat("unknown serve outcome %llu", static_cast<unsigned long long>(raw)));
  }
  return static_cast<ServeOutcome>(raw);
}

}  // namespace

std::string EncodeRequest(const PresentRequest& request, std::uint8_t version) {
  std::string out;
  PutString(out, request.document);
  PutString(out, request.profile);
  PutVarint64(out, request.channels.size());
  for (const std::string& channel : request.channels) {
    PutString(out, channel);
  }
  PutVarint64(out, request.want_body ? 1 : 0);
  PutVarint64(out, request.allow_degraded ? 1 : 0);
  PutVarint64(out, request.trace.trace_id);
  PutVarint64(out, request.trace.parent_span_id);
  PutVarint64(out, request.trace.sampled ? 1 : 0);
  if (version >= 3) {
    PutVarint64(out, static_cast<std::uint64_t>(request.deadline_ms < 0 ? 0 : request.deadline_ms));
  }
  if (version >= 4) {
    PutVarint64(out, request.want_blocks ? 1 : 0);
  }
  return out;
}

StatusOr<PresentRequest> DecodeRequest(std::string_view payload, std::uint8_t version) {
  PresentRequest request;
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(request.document, GetString(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(request.profile, GetString(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t channels, GetVarint64(payload, &pos));
  if (channels > payload.size()) {  // each selected channel costs >= 1 byte
    return DataLossError(StrFormat("channel count %llu exceeds payload size",
                                   static_cast<unsigned long long>(channels)));
  }
  request.channels.reserve(channels);
  for (std::uint64_t i = 0; i < channels; ++i) {
    CMIF_ASSIGN_OR_RETURN(std::string channel, GetString(payload, &pos));
    request.channels.push_back(std::move(channel));
  }
  CMIF_ASSIGN_OR_RETURN(request.want_body, GetBool(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(request.allow_degraded, GetBool(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(request.trace.trace_id, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(request.trace.parent_span_id, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(request.trace.sampled, GetBool(payload, &pos));
  if (request.trace.trace_id == 0 &&
      (request.trace.parent_span_id != 0 || request.trace.sampled)) {
    return DataLossError("trace fields set without a trace id");
  }
  if (version >= 3) {
    CMIF_ASSIGN_OR_RETURN(std::uint64_t deadline, GetVarint64(payload, &pos));
    if (deadline > static_cast<std::uint64_t>(1) << 40) {  // > ~34 years is corruption
      return DataLossError(StrFormat("implausible deadline %llu ms",
                                     static_cast<unsigned long long>(deadline)));
    }
    request.deadline_ms = static_cast<std::int64_t>(deadline);
  }
  if (version >= 4) {
    CMIF_ASSIGN_OR_RETURN(request.want_blocks, GetBool(payload, &pos));
  }
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return request;
}

std::string EncodeResponse(const PresentResponse& response, std::uint8_t version) {
  std::string out;
  PutVarint64(out, static_cast<std::uint64_t>(response.outcome));
  PutVarint64(out, static_cast<std::uint64_t>(response.attempts < 0 ? 0 : response.attempts));
  PutVarint64(out, response.cache_hit ? 1 : 0);
  PutVarint64(out, static_cast<std::uint64_t>(response.error.code()));
  PutString(out, response.error.message());
  PutString(out, response.presentation);
  PutVarint64(out, response.presentation_hash);
  PutVarint64(out, response.server_spans.size());
  for (const WireSpan& span : response.server_spans) {
    PutString(out, span.name);
    PutVarint64(out, span.id);
    PutVarint64(out, span.parent_id);
    PutVarint64(out, span.trace_id);
    PutF64(out, span.start_us);
    PutF64(out, span.duration_us);
    PutVarint64(out, static_cast<std::uint64_t>(span.tid < 0 ? 0 : span.tid));
  }
  if (version >= 3) {
    PutVarint64(out, response.shed ? 1 : 0);
    PutF64(out, response.queue_ms < 0 ? 0 : response.queue_ms);
  }
  if (version >= 4) {
    PutVarint64(out, response.blocks.size());
    for (const WireBlock& block : response.blocks) {
      PutString(out, block.descriptor_id);
      PutString(out, block.payload);
    }
  }
  return out;
}

StatusOr<PresentResponse> DecodeResponse(std::string_view payload, std::uint8_t version) {
  PresentResponse response;
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(std::uint64_t outcome, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(response.outcome, CheckOutcome(outcome));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t attempts, GetVarint64(payload, &pos));
  if (attempts > 1u << 20) {
    return DataLossError(StrFormat("implausible attempt count %llu",
                                   static_cast<unsigned long long>(attempts)));
  }
  response.attempts = static_cast<int>(attempts);
  CMIF_ASSIGN_OR_RETURN(response.cache_hit, GetBool(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t code, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(StatusCode status_code, CheckStatusCode(code));
  CMIF_ASSIGN_OR_RETURN(std::string message, GetString(payload, &pos));
  response.error = Status(status_code, std::move(message));
  CMIF_ASSIGN_OR_RETURN(response.presentation, GetString(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(response.presentation_hash, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t span_count, GetVarint64(payload, &pos));
  // Each span costs >= 20 bytes on the wire (3 varints + 2 f64 + name + tid),
  // so a count beyond payload size (or the hard cap) is corruption.
  if (span_count > kMaxWireSpans || span_count > payload.size()) {
    return DataLossError(
        StrFormat("span count %llu exceeds bounds", static_cast<unsigned long long>(span_count)));
  }
  response.server_spans.reserve(span_count);
  for (std::uint64_t i = 0; i < span_count; ++i) {
    WireSpan span;
    CMIF_ASSIGN_OR_RETURN(span.name, GetString(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(span.id, GetVarint64(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(span.parent_id, GetVarint64(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(span.trace_id, GetVarint64(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(span.start_us, GetF64(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(span.duration_us, GetF64(payload, &pos));
    if (span.duration_us < 0) {
      return DataLossError(StrFormat("negative span duration at offset %zu", pos));
    }
    CMIF_ASSIGN_OR_RETURN(std::uint64_t tid, GetVarint64(payload, &pos));
    if (tid > 1u << 20) {
      return DataLossError(
          StrFormat("implausible span tid %llu", static_cast<unsigned long long>(tid)));
    }
    span.tid = static_cast<std::int32_t>(tid);
    response.server_spans.push_back(std::move(span));
  }
  if (version >= 3) {
    CMIF_ASSIGN_OR_RETURN(response.shed, GetBool(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(response.queue_ms, GetF64(payload, &pos));
    if (response.queue_ms < 0) {
      return DataLossError(StrFormat("negative queue_ms at offset %zu", pos));
    }
  }
  if (version >= 4) {
    CMIF_ASSIGN_OR_RETURN(std::uint64_t block_count, GetVarint64(payload, &pos));
    // Each block costs >= 2 bytes on the wire (two length prefixes), so a
    // count beyond payload size (or the hard cap) is corruption.
    if (block_count > kMaxWireBlocks || block_count > payload.size()) {
      return DataLossError(StrFormat("block count %llu exceeds bounds",
                                     static_cast<unsigned long long>(block_count)));
    }
    response.blocks.reserve(block_count);
    for (std::uint64_t i = 0; i < block_count; ++i) {
      WireBlock block;
      CMIF_ASSIGN_OR_RETURN(block.descriptor_id, GetString(payload, &pos));
      CMIF_ASSIGN_OR_RETURN(block.payload, GetString(payload, &pos));
      response.blocks.push_back(std::move(block));
    }
  }
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return response;
}

namespace {

// Shared batch plumbing: varint count, then each message length-prefixed.
template <typename Message, typename Encode>
std::string EncodeBatch(const std::vector<Message>& messages, std::uint8_t version,
                        Encode&& encode) {
  std::string out;
  PutVarint64(out, messages.size());
  for (const Message& message : messages) {
    PutString(out, encode(message, version));
  }
  return out;
}

template <typename Message, typename Decode>
StatusOr<std::vector<Message>> DecodeBatch(std::string_view payload, std::uint8_t version,
                                           std::string_view what, Decode&& decode) {
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(std::uint64_t count, GetVarint64(payload, &pos));
  // Each message costs >= 1 byte on the wire, so a count beyond payload size
  // (or the hard cap) is corruption, not a big batch.
  if (count > kMaxBatchMessages || count > payload.size()) {
    return DataLossError(StrFormat("batch %.*s count %llu exceeds bounds",
                                   static_cast<int>(what.size()), what.data(),
                                   static_cast<unsigned long long>(count)));
  }
  std::vector<Message> messages;
  messages.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    CMIF_ASSIGN_OR_RETURN(std::string encoded, GetString(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(Message message, decode(encoded, version));
    messages.push_back(std::move(message));
  }
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return messages;
}

}  // namespace

std::string EncodeBatchRequest(const std::vector<PresentRequest>& requests,
                               std::uint8_t version) {
  return EncodeBatch(requests, version,
                     [](const PresentRequest& r, std::uint8_t v) { return EncodeRequest(r, v); });
}

StatusOr<std::vector<PresentRequest>> DecodeBatchRequest(std::string_view payload,
                                                         std::uint8_t version) {
  return DecodeBatch<PresentRequest>(
      payload, version, "request",
      [](std::string_view bytes, std::uint8_t v) { return DecodeRequest(bytes, v); });
}

std::string EncodeBatchResponse(const std::vector<PresentResponse>& responses,
                                std::uint8_t version) {
  return EncodeBatch(responses, version,
                     [](const PresentResponse& r, std::uint8_t v) { return EncodeResponse(r, v); });
}

StatusOr<std::vector<PresentResponse>> DecodeBatchResponse(std::string_view payload,
                                                           std::uint8_t version) {
  return DecodeBatch<PresentResponse>(
      payload, version, "response",
      [](std::string_view bytes, std::uint8_t v) { return DecodeResponse(bytes, v); });
}

std::string EncodeWireStatus(const Status& status) {
  std::string out;
  PutVarint64(out, static_cast<std::uint64_t>(status.code()));
  PutString(out, status.message());
  return out;
}

Status DecodeWireStatus(std::string_view payload, Status* decoded) {
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(std::uint64_t code, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(StatusCode status_code, CheckStatusCode(code));
  CMIF_ASSIGN_OR_RETURN(std::string message, GetString(payload, &pos));
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  *decoded = Status(status_code, std::move(message));
  return Status::Ok();
}

}  // namespace net
}  // namespace cmif
